#include "src/anonymizer/cell_id.h"

#include <cstdio>

#include "src/common/status.h"

namespace casper::anonymizer {

CellId CellId::Parent() const {
  CASPER_DCHECK(!is_root());
  return CellId{level - 1, x >> 1, y >> 1};
}

std::array<CellId, 4> CellId::Children() const {
  const uint32_t cx = x << 1;
  const uint32_t cy = y << 1;
  return {CellId{level + 1, cx, cy}, CellId{level + 1, cx + 1, cy},
          CellId{level + 1, cx, cy + 1}, CellId{level + 1, cx + 1, cy + 1}};
}

CellId CellId::HorizontalNeighbor() const {
  CASPER_DCHECK(!is_root());
  return CellId{level, x ^ 1u, y};
}

CellId CellId::VerticalNeighbor() const {
  CASPER_DCHECK(!is_root());
  return CellId{level, x, y ^ 1u};
}

bool CellId::IsAncestorOf(const CellId& descendant) const {
  if (descendant.level < level) return false;
  const uint32_t shift = descendant.level - level;
  return (descendant.x >> shift) == x && (descendant.y >> shift) == y;
}

std::string CellId::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "L%u(%u,%u)", level, x, y);
  return buf;
}

}  // namespace casper::anonymizer
