#ifndef CASPER_ANONYMIZER_PRIVACY_ANALYSIS_H_
#define CASPER_ANONYMIZER_PRIVACY_ANALYSIS_H_

#include <vector>

#include "src/anonymizer/anonymizer.h"
#include "src/common/stats.h"

/// \file
/// Empirical privacy evaluation of a cloak stream — the measurable side
/// of the paper's anonymizer requirements (§4): *accuracy* (achieved k
/// and area vs the profile) and *quality* (an adversary learns nothing
/// beyond "uniformly somewhere in R").

namespace casper::anonymizer {

/// One observation: a cloak plus the ground truth the adversary does
/// not have.
struct CloakObservation {
  Rect region;
  uint64_t users_in_region = 0;
  PrivacyProfile profile;
  Point true_position;
};

/// Aggregate privacy report over a set of observations.
struct PrivacyReport {
  /// Achieved anonymity k' (users in region) and accuracy ratio k'/k.
  SummaryStats achieved_k;
  SummaryStats k_accuracy;

  /// Achieved region area and, where a_min > 0, the ratio A'/a_min.
  SummaryStats area;
  SummaryStats area_accuracy;

  /// Anonymity-set entropy log2(k') — bits of identity uncertainty.
  SummaryStats identity_entropy_bits;

  /// Fraction of observations meeting their own profile (should be 1).
  double profile_satisfaction = 0.0;

  /// Center-guess attack: the adversary's best point estimate is the
  /// region center (uniformity means nothing better exists). Reported
  /// as the mean error normalized by the region's half-diagonal; a
  /// value near the uniform-expectation (~0.54 for squares) means the
  /// cloak leaks no positional skew.
  double center_attack_normalized_error = 0.0;
};

/// Builds the report. Observations must be non-empty.
PrivacyReport AnalyzeCloaks(const std::vector<CloakObservation>& observations);

/// Chi-squared-style uniformity diagnostic for the quality requirement:
/// partitions each cloak into `grid x grid` buckets, accumulates where
/// the true positions fall (normalized per cloak), and returns the
/// maximum relative deviation from the uniform expectation across
/// buckets. Values near 0 indicate the adversary cannot bias a guess
/// toward any sub-region. Requires at least one observation.
double UniformityDeviation(const std::vector<CloakObservation>& observations,
                           int grid);

}  // namespace casper::anonymizer

#endif  // CASPER_ANONYMIZER_PRIVACY_ANALYSIS_H_
