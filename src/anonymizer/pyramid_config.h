#ifndef CASPER_ANONYMIZER_PYRAMID_CONFIG_H_
#define CASPER_ANONYMIZER_PYRAMID_CONFIG_H_

#include <algorithm>
#include <cmath>

#include "src/anonymizer/cell_id.h"
#include "src/common/geometry.h"
#include "src/common/status.h"

namespace casper::anonymizer {

/// Geometry of the pyramid (§4.1): the managed space and the index of
/// the lowest (finest) level. Level h has 4^h cells; `height` is the
/// deepest level, so the pyramid holds height+1 levels (a "9 level"
/// pyramid in the paper's experiments is height = 9 here).
struct PyramidConfig {
  Rect space = Rect(0.0, 0.0, 1.0, 1.0);
  int height = 9;

  /// Area of one cell at `level`.
  double CellArea(int level) const {
    return space.Area() / std::pow(4.0, level);
  }

  /// Rectangle covered by `cell`.
  Rect CellRect(const CellId& cell) const {
    const double w = space.width() / cell.GridDim();
    const double h = space.height() / cell.GridDim();
    const double x0 = space.min.x + cell.x * w;
    const double y0 = space.min.y + cell.y * h;
    return Rect(x0, y0, x0 + w, y0 + h);
  }

  /// Cell at `level` containing `p` (clamped into the space, so points
  /// on the max boundary land in the last cell). This is the hash
  /// function h(x, y) of §4.1.
  CellId CellAt(int level, const Point& p) const {
    CASPER_DCHECK(level >= 0 && level <= height);
    const uint32_t dim = 1u << level;
    const double fx = (p.x - space.min.x) / space.width();
    const double fy = (p.y - space.min.y) / space.height();
    const uint32_t cx = static_cast<uint32_t>(std::clamp(
        static_cast<int64_t>(fx * dim), int64_t{0}, int64_t{dim} - 1));
    const uint32_t cy = static_cast<uint32_t>(std::clamp(
        static_cast<int64_t>(fy * dim), int64_t{0}, int64_t{dim} - 1));
    return CellId{static_cast<uint32_t>(level), cx, cy};
  }

  /// Leaf (lowest-level) cell containing `p`.
  CellId LeafCellAt(const Point& p) const { return CellAt(height, p); }

  /// Deepest level whose cell area still satisfies `a_min`
  /// (0 when even the root is too small — callers validate a_min
  /// against the space beforehand).
  int DeepestLevelWithArea(double a_min) const {
    if (a_min <= 0.0) return height;
    int level = height;
    while (level > 0 && CellArea(level) < a_min) --level;
    return level;
  }
};

}  // namespace casper::anonymizer

#endif  // CASPER_ANONYMIZER_PYRAMID_CONFIG_H_
