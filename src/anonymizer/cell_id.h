#ifndef CASPER_ANONYMIZER_CELL_ID_H_
#define CASPER_ANONYMIZER_CELL_ID_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/geometry.h"

/// \file
/// Pyramid cell addressing (§4.1). The pyramid decomposes space into
/// levels 0..H; level `h` is a 2^h x 2^h grid (4^h cells). A cell is
/// addressed by (level, x, y) with x growing rightward and y upward.
///
/// Neighbor definition (paper §4.1): two cells are neighbors iff they
/// share a parent and lie in a common row (horizontal neighbor) or
/// column (vertical neighbor); every non-root cell therefore has exactly
/// one of each — its siblings within the 2x2 quadrant.

namespace casper::anonymizer {

struct CellId {
  uint32_t level = 0;
  uint32_t x = 0;
  uint32_t y = 0;

  static CellId Root() { return CellId{0, 0, 0}; }

  bool is_root() const { return level == 0; }

  /// Cells per side at this level (2^level).
  uint32_t GridDim() const { return 1u << level; }

  CellId Parent() const;

  /// The four children, in (SW, SE, NW, NE) order.
  std::array<CellId, 4> Children() const;

  /// Sibling in the same row of the parent quadrant.
  CellId HorizontalNeighbor() const;

  /// Sibling in the same column of the parent quadrant.
  CellId VerticalNeighbor() const;

  /// Which child slot (0..3) of the parent this cell occupies.
  int ChildSlot() const { return (x & 1u) | ((y & 1u) << 1); }

  /// True when `descendant` lies in this cell's subtree (or equals it).
  bool IsAncestorOf(const CellId& descendant) const;

  std::string ToString() const;

  friend bool operator==(const CellId& a, const CellId& b) {
    return a.level == b.level && a.x == b.x && a.y == b.y;
  }
};

struct CellIdHash {
  size_t operator()(const CellId& c) const {
    // level < 2^6, x/y < 2^29 in practice; mix into one word.
    uint64_t v = (static_cast<uint64_t>(c.level) << 58) ^
                 (static_cast<uint64_t>(c.x) << 29) ^ c.y;
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    return static_cast<size_t>(v);
  }
};

}  // namespace casper::anonymizer

#endif  // CASPER_ANONYMIZER_CELL_ID_H_
