#include "src/anonymizer/privacy_analysis.h"

#include <algorithm>
#include <cmath>

namespace casper::anonymizer {

PrivacyReport AnalyzeCloaks(
    const std::vector<CloakObservation>& observations) {
  CASPER_DCHECK(!observations.empty());
  PrivacyReport report;
  size_t satisfied = 0;
  double attack_error = 0.0;

  for (const CloakObservation& obs : observations) {
    report.achieved_k.Add(static_cast<double>(obs.users_in_region));
    report.k_accuracy.Add(static_cast<double>(obs.users_in_region) /
                          std::max<uint32_t>(obs.profile.k, 1));
    report.area.Add(obs.region.Area());
    if (obs.profile.a_min > 0.0) {
      report.area_accuracy.Add(obs.region.Area() / obs.profile.a_min);
    }
    report.identity_entropy_bits.Add(
        std::log2(std::max<double>(1.0, static_cast<double>(
                                            obs.users_in_region))));
    if (obs.users_in_region >= obs.profile.k &&
        obs.region.Area() >= obs.profile.a_min - 1e-15) {
      ++satisfied;
    }
    const double half_diagonal =
        0.5 * Distance(obs.region.min, obs.region.max);
    if (half_diagonal > 0.0) {
      attack_error +=
          Distance(obs.region.Center(), obs.true_position) / half_diagonal;
    }
  }
  report.profile_satisfaction =
      static_cast<double>(satisfied) / observations.size();
  report.center_attack_normalized_error =
      attack_error / static_cast<double>(observations.size());
  return report;
}

double UniformityDeviation(const std::vector<CloakObservation>& observations,
                           int grid) {
  CASPER_DCHECK(!observations.empty());
  CASPER_DCHECK(grid >= 1);
  std::vector<double> buckets(static_cast<size_t>(grid) *
                                  static_cast<size_t>(grid),
                              0.0);
  size_t counted = 0;
  for (const CloakObservation& obs : observations) {
    if (obs.region.Area() <= 0.0) continue;
    const double fx =
        (obs.true_position.x - obs.region.min.x) / obs.region.width();
    const double fy =
        (obs.true_position.y - obs.region.min.y) / obs.region.height();
    const int bx = std::clamp(static_cast<int>(fx * grid), 0, grid - 1);
    const int by = std::clamp(static_cast<int>(fy * grid), 0, grid - 1);
    buckets[static_cast<size_t>(by) * grid + bx] += 1.0;
    ++counted;
  }
  if (counted == 0) return 0.0;
  const double expect =
      static_cast<double>(counted) / static_cast<double>(buckets.size());
  double worst = 0.0;
  for (double b : buckets) {
    worst = std::max(worst, std::abs(b - expect) / expect);
  }
  return worst;
}

}  // namespace casper::anonymizer
