#include "src/anonymizer/pseudonyms.h"

namespace casper::anonymizer {

Pseudonym PseudonymRegistry::FreshPseudonym() {
  // Draw until unused; collisions are vanishingly rare in 64 bits but
  // correctness should not depend on luck.
  Pseudonym p;
  do {
    p = rng_.Next();
  } while (reverse_.count(p) > 0);
  return p;
}

Pseudonym PseudonymRegistry::PseudonymFor(UserId uid) {
  auto it = forward_.find(uid);
  if (it != forward_.end()) return it->second;
  const Pseudonym p = FreshPseudonym();
  forward_[uid] = p;
  reverse_[p] = uid;
  return p;
}

Result<UserId> PseudonymRegistry::Resolve(Pseudonym pseudonym) const {
  auto it = reverse_.find(pseudonym);
  if (it == reverse_.end()) return Status::NotFound("unknown pseudonym");
  return it->second;
}

Result<Pseudonym> PseudonymRegistry::Rotate(UserId uid) {
  auto it = forward_.find(uid);
  if (it == forward_.end()) {
    return Status::NotFound("user has no active pseudonym");
  }
  reverse_.erase(it->second);
  const Pseudonym p = FreshPseudonym();
  it->second = p;
  reverse_[p] = uid;
  return p;
}

Status PseudonymRegistry::Forget(UserId uid) {
  auto it = forward_.find(uid);
  if (it == forward_.end()) {
    return Status::NotFound("user has no active pseudonym");
  }
  reverse_.erase(it->second);
  forward_.erase(it);
  return Status::OK();
}

}  // namespace casper::anonymizer
