#include "src/anonymizer/basic_anonymizer.h"

namespace casper::anonymizer {

BasicAnonymizer::BasicAnonymizer(const PyramidConfig& config)
    : config_(config) {
  CASPER_DCHECK(config_.height >= 0 && config_.height <= 15);
  CASPER_DCHECK(!config_.space.is_empty());
  counts_.resize(static_cast<size_t>(config_.height) + 1);
  for (int level = 0; level <= config_.height; ++level) {
    const size_t dim = size_t{1} << level;
    counts_[static_cast<size_t>(level)].assign(dim * dim, 0);
  }
}

uint64_t& BasicAnonymizer::CounterAt(const CellId& cell) {
  auto& level = counts_[cell.level];
  return level[static_cast<size_t>(cell.y) * cell.GridDim() + cell.x];
}

const uint64_t& BasicAnonymizer::CounterAt(const CellId& cell) const {
  const auto& level = counts_[cell.level];
  return level[static_cast<size_t>(cell.y) * cell.GridDim() + cell.x];
}

uint64_t BasicAnonymizer::CellCount(const CellId& cell) const {
  CASPER_DCHECK(static_cast<int>(cell.level) <= config_.height);
  return CounterAt(cell);
}

void BasicAnonymizer::ApplyDelta(CellId cell, int64_t delta) {
  while (true) {
    uint64_t& counter = CounterAt(cell);
    CASPER_DCHECK(delta > 0 || counter > 0);
    counter = static_cast<uint64_t>(static_cast<int64_t>(counter) + delta);
    ++stats_.counter_updates;
    if (cell.is_root()) break;
    cell = cell.Parent();
  }
}

Status BasicAnonymizer::RegisterUser(UserId uid, const PrivacyProfile& profile,
                                     const Point& position) {
  if (users_.count(uid) > 0) {
    return Status::AlreadyExists("user already registered");
  }
  if (!config_.space.Contains(position)) {
    return Status::OutOfRange("position outside the managed space");
  }
  if (profile.k == 0) {
    return Status::InvalidArgument("profile.k must be at least 1");
  }
  const CellId leaf = config_.LeafCellAt(position);
  users_[uid] = UserRecord{profile, position, leaf};
  ApplyDelta(leaf, +1);
  return Status::OK();
}

Status BasicAnonymizer::UpdateLocation(UserId uid, const Point& position) {
  auto it = users_.find(uid);
  if (it == users_.end()) return Status::NotFound("unknown user");
  if (!config_.space.Contains(position)) {
    return Status::OutOfRange("position outside the managed space");
  }
  ++stats_.location_updates;
  UserRecord& rec = it->second;
  const CellId new_leaf = config_.LeafCellAt(position);
  rec.position = position;
  if (new_leaf == rec.leaf) return Status::OK();

  ++stats_.cell_crossings;
  // Mutate counters from both leaves up to (but excluding) the lowest
  // common ancestor; above it the +1/-1 cancel.
  CellId down = rec.leaf;
  CellId up = new_leaf;
  while (!(down == up)) {
    uint64_t& old_counter = CounterAt(down);
    CASPER_DCHECK(old_counter > 0);
    --old_counter;
    ++CounterAt(up);
    stats_.counter_updates += 2;
    if (down.is_root()) break;
    down = down.Parent();
    up = up.Parent();
  }
  rec.leaf = new_leaf;
  return Status::OK();
}

Status BasicAnonymizer::UpdateProfile(UserId uid,
                                      const PrivacyProfile& profile) {
  auto it = users_.find(uid);
  if (it == users_.end()) return Status::NotFound("unknown user");
  if (profile.k == 0) {
    return Status::InvalidArgument("profile.k must be at least 1");
  }
  it->second.profile = profile;
  return Status::OK();
}

Status BasicAnonymizer::DeregisterUser(UserId uid) {
  auto it = users_.find(uid);
  if (it == users_.end()) return Status::NotFound("unknown user");
  ApplyDelta(it->second.leaf, -1);
  users_.erase(it);
  return Status::OK();
}

Result<PrivacyProfile> BasicAnonymizer::GetProfile(UserId uid) const {
  auto it = users_.find(uid);
  if (it == users_.end()) return Status::NotFound("unknown user");
  return it->second.profile;
}

Result<CloakingResult> BasicAnonymizer::Cloak(UserId uid) {
  return Cloak(uid, CloakingOptions{});
}

Result<CloakingResult> BasicAnonymizer::Cloak(UserId uid,
                                              const CloakingOptions& options) {
  auto it = users_.find(uid);
  if (it == users_.end()) return Status::NotFound("unknown user");
  auto result = BottomUpCloak(
      config_, [this](const CellId& cell) { return CellCount(cell); },
      users_.size(), it->second.profile, it->second.leaf, options);
  if (result.ok()) {
    ++stats_.cloak_calls;
    stats_.cloak_levels_visited +=
        static_cast<uint64_t>(result.value().levels_visited);
  }
  return result;
}

bool BasicAnonymizer::CheckInvariants() const {
  // Root holds everyone.
  if (CounterAt(CellId::Root()) != users_.size()) return false;
  // Each internal cell equals the sum of its children.
  for (int level = 0; level < config_.height; ++level) {
    const uint32_t dim = 1u << level;
    for (uint32_t y = 0; y < dim; ++y) {
      for (uint32_t x = 0; x < dim; ++x) {
        const CellId cell{static_cast<uint32_t>(level), x, y};
        uint64_t sum = 0;
        for (const CellId& child : cell.Children()) sum += CounterAt(child);
        if (sum != CounterAt(cell)) return false;
      }
    }
  }
  // Every user's leaf matches her position.
  for (const auto& [uid, rec] : users_) {
    (void)uid;
    if (!(config_.LeafCellAt(rec.position) == rec.leaf)) return false;
  }
  return true;
}

}  // namespace casper::anonymizer
