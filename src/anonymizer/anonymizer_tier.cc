#include "src/anonymizer/anonymizer_tier.h"

#include <utility>
#include <vector>

#include "src/anonymizer/adaptive_anonymizer.h"
#include "src/anonymizer/basic_anonymizer.h"
#include "src/common/stopwatch.h"
#include "src/processor/private_knn.h"
#include "src/processor/private_nn.h"
#include "src/processor/private_nn_private.h"
#include "src/processor/private_range.h"

namespace casper::anonymizer {

AnonymizerTier::AnonymizerTier(const AnonymizerTierOptions& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : obs::CasperMetrics::Default()),
      pseudonyms_(options.pseudonym_seed) {
  if (options_.use_adaptive_anonymizer) {
    anonymizer_ = std::make_unique<AdaptiveAnonymizer>(options_.pyramid);
  } else {
    anonymizer_ = std::make_unique<BasicAnonymizer>(options_.pyramid);
  }
}

void AnonymizerTier::SyncPyramidMetrics() {
  const MaintenanceStats& stats = anonymizer_->stats();
  auto bump = [](obs::Counter* counter, uint64_t current, uint64_t* last) {
    // ResetStats() (bench harnesses) shrinks the source counters; the
    // diff simply re-bases without decrementing the monotonic metric.
    if (current > *last) counter->Increment(current - *last);
    *last = current;
  };
  bump(metrics_->pyramid_splits_total, stats.splits, &last_splits_);
  bump(metrics_->pyramid_merges_total, stats.merges, &last_merges_);
  bump(metrics_->pyramid_counter_updates_total, stats.counter_updates,
       &last_counter_updates_);
}

void AnonymizerTier::SyncGauges() {
  metrics_->users->Set(static_cast<double>(anonymizer_->user_count()));
  metrics_->pending_publications->Set(
      static_cast<double>(pending_publication_.size()));
}

Result<CloakingResult> AnonymizerTier::Cloak(UserId uid) {
  Stopwatch watch;
  Result<CloakingResult> result = anonymizer_->Cloak(uid);
  if (!result.ok()) {
    metrics_->cloak_failures_total->Increment();
    return result;
  }
  metrics_->cloaks_total->Increment();
  metrics_->cloak_seconds->Observe(watch.ElapsedSeconds());
  metrics_->cloak_area->Observe(result->region.Area());
  metrics_->cloak_k_achieved->Observe(
      static_cast<double>(result->users_in_region));
  return result;
}

Status AnonymizerTier::RegisterUser(UserId uid, const PrivacyProfile& profile,
                                    const Point& position,
                                    PrivateStoreSink* sink) {
  CASPER_RETURN_IF_ERROR(anonymizer_->RegisterUser(uid, profile, position));
  metrics_->user_events_total[static_cast<size_t>(obs::UserEvent::kRegister)]
      ->Increment();
  client_positions_[uid] = position;
  Status status = Status::OK();
  if (options_.publish_on_event) {
    status = PublishRegion(uid, sink);
    // A larger population can make previously unsatisfiable profiles
    // publishable.
    if (status.ok()) status = RetryPendingPublications(sink);
  }
  SyncPyramidMetrics();
  SyncGauges();
  return status;
}

Status AnonymizerTier::UpdateLocation(UserId uid, const Point& position,
                                      PrivateStoreSink* sink) {
  CASPER_RETURN_IF_ERROR(anonymizer_->UpdateLocation(uid, position));
  metrics_->user_events_total[static_cast<size_t>(obs::UserEvent::kMove)]
      ->Increment();
  client_positions_[uid] = position;
  Status status = Status::OK();
  if (options_.publish_on_event) {
    status = PublishRegion(uid, sink);
  }
  SyncPyramidMetrics();
  SyncGauges();
  return status;
}

Status AnonymizerTier::UpdateProfile(UserId uid, const PrivacyProfile& profile,
                                     PrivateStoreSink* sink) {
  CASPER_RETURN_IF_ERROR(anonymizer_->UpdateProfile(uid, profile));
  metrics_->user_events_total[static_cast<size_t>(obs::UserEvent::kProfile)]
      ->Increment();
  Status status = Status::OK();
  if (options_.publish_on_event) {
    status = PublishRegion(uid, sink);
  }
  SyncPyramidMetrics();
  SyncGauges();
  return status;
}

Status AnonymizerTier::DeregisterUser(UserId uid, PrivateStoreSink* sink) {
  CASPER_RETURN_IF_ERROR(anonymizer_->DeregisterUser(uid));
  metrics_->user_events_total[static_cast<size_t>(obs::UserEvent::kDeregister)]
      ->Increment();
  client_positions_.erase(uid);
  pending_publication_.erase(uid);
  CASPER_RETURN_IF_ERROR(RetractRegion(uid, sink));
  if (current_pseudonym_.erase(uid) > 0) {
    CASPER_RETURN_IF_ERROR(pseudonyms_.Forget(uid));
  }
  SyncPyramidMetrics();
  SyncGauges();
  return Status::OK();
}

Status AnonymizerTier::RetryPendingPublications(PrivateStoreSink* sink) {
  if (pending_publication_.empty()) return Status::OK();
  const std::vector<UserId> pending(pending_publication_.begin(),
                                    pending_publication_.end());
  for (UserId uid : pending) {
    CASPER_RETURN_IF_ERROR(PublishRegion(uid, sink));
  }
  return Status::OK();
}

Result<Pseudonym> AnonymizerTier::NextPseudonym(UserId uid) {
  if (current_pseudonym_.count(uid) > 0) {
    return pseudonyms_.Rotate(uid);
  }
  return pseudonyms_.PseudonymFor(uid);
}

Status AnonymizerTier::PublishRegion(UserId uid, PrivateStoreSink* sink) {
  CASPER_RETURN_IF_ERROR(RetractRegion(uid, sink));
  auto cloak = Cloak(uid);
  if (cloak.status().code() == StatusCode::kFailedPrecondition) {
    // The profile cannot be satisfied yet (k exceeds the current
    // population). Publishing nothing is the only safe choice; the
    // user is retried once the population grows.
    pending_publication_.insert(uid);
    return Status::OK();
  }
  if (!cloak.ok()) return cloak.status();
  pending_publication_.erase(uid);
  CASPER_ASSIGN_OR_RETURN(pseudonym, NextPseudonym(uid));
  current_pseudonym_[uid] = pseudonym;
  published_.insert(uid);
  RegionUpsertMsg upsert;
  upsert.handle = pseudonym;
  upsert.region = cloak.value().region;
  CASPER_RETURN_IF_ERROR(sink->Apply(upsert));
  metrics_->regions_published_total->Increment();
  return Status::OK();
}

Status AnonymizerTier::RetractRegion(UserId uid, PrivateStoreSink* sink) {
  auto pseudonym = current_pseudonym_.find(uid);
  if (published_.count(uid) == 0 || pseudonym == current_pseudonym_.end()) {
    return Status::OK();  // Nothing stored yet.
  }
  RegionRemoveMsg remove;
  remove.handle = pseudonym->second;
  CASPER_RETURN_IF_ERROR(sink->Apply(remove));
  published_.erase(uid);
  metrics_->regions_retracted_total->Increment();
  return Status::OK();
}

Result<SnapshotMsg> AnonymizerTier::BuildSnapshot() {
  SnapshotMsg snapshot;
  snapshot.regions.reserve(client_positions_.size());
  published_.clear();
  for (const auto& [uid, pos] : client_positions_) {
    (void)pos;
    auto cloak = Cloak(uid);
    if (cloak.status().code() == StatusCode::kFailedPrecondition) {
      // Unsatisfiable profile (k above the population): never publish a
      // weaker region; the user simply stays out of this snapshot.
      pending_publication_.insert(uid);
      continue;
    }
    if (!cloak.ok()) return cloak.status();
    pending_publication_.erase(uid);
    published_.insert(uid);
    // Strip the identity: the server sees a fresh pseudonym per
    // snapshot, so regions cannot be linked across syncs.
    CASPER_ASSIGN_OR_RETURN(pseudonym, NextPseudonym(uid));
    current_pseudonym_[uid] = pseudonym;
    snapshot.regions.push_back(
        processor::PrivateTarget{pseudonym, cloak.value().region});
  }
  metrics_->snapshots_total->Increment();
  metrics_->regions_published_total->Increment(snapshot.regions.size());
  SyncPyramidMetrics();
  SyncGauges();
  return snapshot;
}

Result<CloakedQueryMsg> AnonymizerTier::StripIdentity(
    const QueryRequest& request, const CloakingResult& cloak) const {
  CloakedQueryMsg msg;
  msg.kind = KindOf(request);
  if (IsCloakedKind(msg.kind)) msg.cloak = cloak.region;
  if (const auto* q = std::get_if<KNearestPublicQ>(&request)) {
    msg.k = q->k;
  } else if (const auto* q = std::get_if<RangePublicQ>(&request)) {
    msg.radius = q->radius;
  } else if (const auto* q = std::get_if<NearestPrivateQ>(&request)) {
    // The requester's own region is stored too (under her current
    // pseudonym); the server must exclude it from buddy answers. The
    // handle is opaque outside this tier.
    const auto self = current_pseudonym_.find(q->uid);
    if (self != current_pseudonym_.end()) {
      msg.has_exclude = true;
      msg.exclude_handle = self->second;
    }
  } else if (const auto* q = std::get_if<PublicNearestQ>(&request)) {
    msg.point = q->q;
  } else if (const auto* q = std::get_if<PublicRangeQ>(&request)) {
    msg.region = q->region;
  } else if (const auto* q = std::get_if<DensityQ>(&request)) {
    msg.cols = q->cols;
    msg.rows = q->rows;
  }
  return msg;
}

Result<QueryResponse> AnonymizerTier::RefineForClient(
    const QueryRequest& request, const CloakingResult& cloak,
    CandidateListMsg answer, const TransmissionModel& model) const {
  const uint64_t uid = UidOf(request);
  TimingBreakdown timing;
  timing.processor_seconds = answer.processor_seconds;
  timing.transmission_seconds = model.SecondsFor(RecordCount(answer.payload));

  switch (answer.kind) {
    case QueryKind::kNearestPublic: {
      PublicNNResponse response;
      response.cloak = cloak;
      response.timing = timing;
      response.degraded = answer.degraded;
      response.server_answer =
          std::get<processor::PublicCandidateList>(std::move(answer.payload));
      // The client refines locally with its exact position.
      CASPER_ASSIGN_OR_RETURN(position, ClientPosition(uid));
      CASPER_ASSIGN_OR_RETURN(
          exact, processor::RefineNearest(response.server_answer.candidates,
                                          position));
      response.exact = exact;
      return QueryResponse(std::move(response));
    }
    case QueryKind::kKNearestPublic: {
      PublicKnnResponse response;
      response.cloak = cloak;
      response.timing = timing;
      response.degraded = answer.degraded;
      response.server_answer =
          std::get<processor::KnnCandidateList>(std::move(answer.payload));
      CASPER_ASSIGN_OR_RETURN(position, ClientPosition(uid));
      response.exact =
          processor::RefineKNearest(response.server_answer.candidates,
                                    position, response.server_answer.k);
      return QueryResponse(std::move(response));
    }
    case QueryKind::kRangePublic: {
      PublicRangeResponse response;
      response.cloak = cloak;
      response.timing = timing;
      response.degraded = answer.degraded;
      response.server_answer =
          std::get<processor::PublicRangeCandidates>(std::move(answer.payload));
      const auto* q = std::get_if<RangePublicQ>(&request);
      const double radius = q != nullptr ? q->radius : 0.0;
      CASPER_ASSIGN_OR_RETURN(position, ClientPosition(uid));
      response.exact = processor::RefineRange(
          response.server_answer.candidates, position, radius);
      return QueryResponse(std::move(response));
    }
    case QueryKind::kNearestPrivate: {
      PrivateNNResponse response;
      response.cloak = cloak;
      response.timing = timing;
      response.degraded = answer.degraded;
      response.server_answer =
          std::get<processor::PrivateCandidateList>(std::move(answer.payload));
      if (response.server_answer.candidates.empty()) {
        return Status::NotFound("no other users available as buddies");
      }
      CASPER_ASSIGN_OR_RETURN(position, ClientPosition(uid));
      CASPER_ASSIGN_OR_RETURN(
          best,
          processor::RefineNearestRegion(response.server_answer.candidates,
                                         position));
      response.best = best;
      return QueryResponse(std::move(response));
    }
    // The public-over-private kinds need no client-side refinement (the
    // asker knows her exact parameters); they pass through untimed,
    // matching the facade's historical behavior.
    case QueryKind::kPublicNearest:
      return QueryResponse(
          std::get<processor::PublicNNCandidates>(std::move(answer.payload)));
    case QueryKind::kPublicRange:
      return QueryResponse(
          std::get<processor::RangeCountResult>(std::move(answer.payload)));
    case QueryKind::kDensity:
      return QueryResponse(
          std::get<processor::DensityMap>(std::move(answer.payload)));
  }
  return Status::InvalidArgument("unknown query kind");
}

Result<Point> AnonymizerTier::ClientPosition(UserId uid) const {
  auto it = client_positions_.find(uid);
  if (it == client_positions_.end()) return Status::NotFound("unknown user");
  return it->second;
}

}  // namespace casper::anonymizer
