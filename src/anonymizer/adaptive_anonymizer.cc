#include "src/anonymizer/adaptive_anonymizer.h"

#include <algorithm>

namespace casper::anonymizer {

AdaptiveAnonymizer::AdaptiveAnonymizer(const PyramidConfig& config)
    : config_(config) {
  CASPER_DCHECK(config_.height >= 0 && config_.height <= 15);
  CASPER_DCHECK(!config_.space.is_empty());
  cells_[CellId::Root()] = CellNode{};
}

AdaptiveAnonymizer::CellNode& AdaptiveAnonymizer::NodeAt(const CellId& cell) {
  auto it = cells_.find(cell);
  CASPER_DCHECK(it != cells_.end());
  return it->second;
}

const AdaptiveAnonymizer::CellNode& AdaptiveAnonymizer::NodeAt(
    const CellId& cell) const {
  auto it = cells_.find(cell);
  CASPER_DCHECK(it != cells_.end());
  return it->second;
}

uint64_t AdaptiveAnonymizer::CellCount(const CellId& cell) const {
  return NodeAt(cell).count;
}

CellId AdaptiveAnonymizer::FindLeaf(const Point& p) const {
  CellId cell = CellId::Root();
  while (!NodeAt(cell).is_leaf) {
    cell = config_.CellAt(static_cast<int>(cell.level) + 1, p);
  }
  return cell;
}

void AdaptiveAnonymizer::RecomputeMostRelaxed(CellNode* node) {
  node->has_most_relaxed = false;
  for (UserId uid : node->users) {
    const PrivacyProfile& p = users_.at(uid).profile;
    if (!node->has_most_relaxed ||
        MoreRelaxed(p, users_.at(node->most_relaxed).profile)) {
      node->most_relaxed = uid;
      node->has_most_relaxed = true;
    }
  }
}

void AdaptiveAnonymizer::InsertIntoLeaf(UserId uid, const CellId& leaf) {
  CellNode& node = NodeAt(leaf);
  CASPER_DCHECK(node.is_leaf);
  node.users.push_back(uid);
  if (!node.has_most_relaxed ||
      MoreRelaxed(users_.at(uid).profile,
                  users_.at(node.most_relaxed).profile)) {
    node.most_relaxed = uid;
    node.has_most_relaxed = true;
  }
  // Bump counters up to the root.
  CellId cell = leaf;
  while (true) {
    ++NodeAt(cell).count;
    ++stats_.counter_updates;
    if (cell.is_root()) break;
    cell = cell.Parent();
  }
}

void AdaptiveAnonymizer::RemoveFromLeaf(UserId uid, const CellId& leaf) {
  CellNode& node = NodeAt(leaf);
  CASPER_DCHECK(node.is_leaf);
  auto it = std::find(node.users.begin(), node.users.end(), uid);
  CASPER_DCHECK(it != node.users.end());
  node.users.erase(it);
  if (node.has_most_relaxed && node.most_relaxed == uid) {
    RecomputeMostRelaxed(&node);
  }
  CellId cell = leaf;
  while (true) {
    CellNode& n = NodeAt(cell);
    CASPER_DCHECK(n.count > 0);
    --n.count;
    ++stats_.counter_updates;
    if (cell.is_root()) break;
    cell = cell.Parent();
  }
}

void AdaptiveAnonymizer::MoveBetweenLeaves(UserId uid, const CellId& from,
                                           const CellId& to) {
  // User-list and u_r cache maintenance at both leaves.
  CellNode& src = NodeAt(from);
  auto it = std::find(src.users.begin(), src.users.end(), uid);
  CASPER_DCHECK(it != src.users.end());
  src.users.erase(it);
  if (src.has_most_relaxed && src.most_relaxed == uid) {
    RecomputeMostRelaxed(&src);
  }
  CellNode& dst = NodeAt(to);
  dst.users.push_back(uid);
  if (!dst.has_most_relaxed ||
      MoreRelaxed(users_.at(uid).profile,
                  users_.at(dst.most_relaxed).profile)) {
    dst.most_relaxed = uid;
    dst.has_most_relaxed = true;
  }

  // Counter mutations from both leaves up to (excluding) their lowest
  // common ancestor — above it the +1/-1 cancel, exactly as in the
  // basic anonymizer's update path.
  CellId a = from;
  CellId b = to;
  while (a.level > b.level) {
    --NodeAt(a).count;
    ++stats_.counter_updates;
    a = a.Parent();
  }
  while (b.level > a.level) {
    ++NodeAt(b).count;
    ++stats_.counter_updates;
    b = b.Parent();
  }
  while (!(a == b)) {
    --NodeAt(a).count;
    ++NodeAt(b).count;
    stats_.counter_updates += 2;
    a = a.Parent();
    b = b.Parent();
  }
}

namespace {

/// Could Algorithm 1 terminate for profile `p` at a quadrant cell with
/// child-slot `slot`, given the quadrant's four cell populations and the
/// per-cell area? Mirrors lines 2-13 of Algorithm 1: the cell alone, or
/// its horizontal (slot^1) / vertical (slot^2) sibling union. Keeping
/// the split/merge criteria aligned with the cloaking algorithm is what
/// makes the basic and adaptive anonymizers return identical regions
/// (the paper's §6.1.1 observation).
bool SatisfiableInQuadrant(const std::array<uint64_t, 4>& counts, int slot,
                           double cell_area, const PrivacyProfile& p) {
  const auto s = static_cast<size_t>(slot);
  if (counts[s] >= p.k && cell_area >= p.a_min) return true;
  const uint64_t n_h = counts[s] + counts[s ^ 1u];
  const uint64_t n_v = counts[s] + counts[s ^ 2u];
  return (n_h >= p.k || n_v >= p.k) && 2.0 * cell_area >= p.a_min;
}

}  // namespace

void AdaptiveAnonymizer::MaybeSplit(const CellId& leaf) {
  CellNode& node = NodeAt(leaf);
  CASPER_DCHECK(node.is_leaf);
  const int child_level = static_cast<int>(leaf.level) + 1;
  if (child_level > config_.height) return;
  if (node.users.empty()) return;

  // u_r pre-filter: if even the most relaxed user's a_min rejects a
  // two-cell union at the child level, nobody can be satisfied there.
  const double child_area = config_.CellArea(child_level);
  if (users_.at(node.most_relaxed).profile.a_min > 2.0 * child_area) return;

  // Hypothetical child populations.
  std::array<uint64_t, 4> child_count{0, 0, 0, 0};
  for (UserId uid : node.users) {
    const CellId child = config_.CellAt(child_level, users_.at(uid).position);
    ++child_count[static_cast<size_t>(child.ChildSlot())];
  }
  bool worthwhile = false;
  for (UserId uid : node.users) {
    const UserRecord& rec = users_.at(uid);
    const CellId child = config_.CellAt(child_level, rec.position);
    if (SatisfiableInQuadrant(child_count, child.ChildSlot(), child_area,
                              rec.profile)) {
      worthwhile = true;
      break;
    }
  }
  if (!worthwhile) return;

  // Split: materialize the four children and distribute the users.
  ++stats_.splits;
  std::vector<UserId> users = std::move(node.users);
  node.users.clear();
  node.is_leaf = false;
  node.has_most_relaxed = false;
  const std::array<CellId, 4> children = leaf.Children();
  for (const CellId& child : children) {
    cells_[child] = CellNode{};
    ++stats_.counter_updates;  // Cell creation + counter initialization.
  }
  for (UserId uid : users) {
    UserRecord& rec = users_.at(uid);
    const CellId child = config_.CellAt(child_level, rec.position);
    CellNode& cnode = NodeAt(child);
    cnode.users.push_back(uid);
    ++cnode.count;
    rec.leaf = child;
  }
  for (const CellId& child : children) {
    CellNode& cnode = NodeAt(child);
    RecomputeMostRelaxed(&cnode);
    // Deepen further where warranted so the structure converges.
    MaybeSplit(child);
  }
}

void AdaptiveAnonymizer::MaybeMergeChildrenOf(const CellId& parent) {
  auto pit = cells_.find(parent);
  if (pit == cells_.end() || pit->second.is_leaf) return;

  const std::array<CellId, 4> children = parent.Children();
  // All four children must be leaves.
  for (const CellId& child : children) {
    if (!NodeAt(child).is_leaf) return;
  }
  // Merge only if no user in the quadrant can be satisfied at the
  // children's level (§4.2 merge criterion) — neither by her own cell
  // nor by a sibling union, mirroring Algorithm 1's options.
  std::array<uint64_t, 4> counts{};
  for (size_t s = 0; s < 4; ++s) {
    counts[static_cast<size_t>(children[s].ChildSlot())] =
        NodeAt(children[s]).count;
  }
  const double child_area =
      config_.CellArea(static_cast<int>(children[0].level));
  for (const CellId& child : children) {
    const CellNode& cnode = NodeAt(child);
    for (UserId uid : cnode.users) {
      if (SatisfiableInQuadrant(counts, child.ChildSlot(), child_area,
                                users_.at(uid).profile)) {
        return;
      }
    }
  }

  ++stats_.merges;
  CellNode& pnode = pit->second;
  pnode.is_leaf = true;
  for (const CellId& child : children) {
    CellNode& cnode = NodeAt(child);
    for (UserId uid : cnode.users) {
      users_.at(uid).leaf = parent;
      pnode.users.push_back(uid);
    }
    cells_.erase(child);
    ++stats_.counter_updates;  // Cell removal.
  }
  RecomputeMostRelaxed(&pnode);

  if (!parent.is_root()) MaybeMergeChildrenOf(parent.Parent());
}

Status AdaptiveAnonymizer::RegisterUser(UserId uid,
                                        const PrivacyProfile& profile,
                                        const Point& position) {
  if (users_.count(uid) > 0) {
    return Status::AlreadyExists("user already registered");
  }
  if (!config_.space.Contains(position)) {
    return Status::OutOfRange("position outside the managed space");
  }
  if (profile.k == 0) {
    return Status::InvalidArgument("profile.k must be at least 1");
  }
  const CellId leaf = FindLeaf(position);
  users_[uid] = UserRecord{profile, position, leaf};
  InsertIntoLeaf(uid, leaf);
  MaybeSplit(leaf);
  return Status::OK();
}

Status AdaptiveAnonymizer::UpdateLocation(UserId uid, const Point& position) {
  auto it = users_.find(uid);
  if (it == users_.end()) return Status::NotFound("unknown user");
  if (!config_.space.Contains(position)) {
    return Status::OutOfRange("position outside the managed space");
  }
  ++stats_.location_updates;
  UserRecord& rec = it->second;
  const CellId old_leaf = rec.leaf;
  if (config_.CellRect(old_leaf).Contains(position)) {
    // Same maintained cell: only the exact position changes. The move
    // may shift the user into a different hypothetical child, so the
    // split condition can newly hold.
    rec.position = position;
    MaybeSplit(old_leaf);
    return Status::OK();
  }

  ++stats_.cell_crossings;
  rec.position = position;
  const CellId new_leaf = FindLeaf(position);
  MoveBetweenLeaves(uid, old_leaf, new_leaf);
  rec.leaf = new_leaf;
  MaybeSplit(new_leaf);
  // The departure may allow the old quadrant to collapse. (If the new
  // leaf sits in that quadrant the merge check accounts for its user
  // too, and user records are re-pointed during the merge.)
  if (!old_leaf.is_root()) MaybeMergeChildrenOf(old_leaf.Parent());
  return Status::OK();
}

Status AdaptiveAnonymizer::UpdateProfile(UserId uid,
                                         const PrivacyProfile& profile) {
  auto it = users_.find(uid);
  if (it == users_.end()) return Status::NotFound("unknown user");
  if (profile.k == 0) {
    return Status::InvalidArgument("profile.k must be at least 1");
  }
  it->second.profile = profile;
  const CellId leaf = it->second.leaf;
  CellNode& node = NodeAt(leaf);
  RecomputeMostRelaxed(&node);
  // A relaxation can warrant a deeper structure; a tightening can
  // collapse the quadrant.
  MaybeSplit(leaf);
  if (!leaf.is_root() && NodeAt(it->second.leaf).is_leaf &&
      it->second.leaf == leaf) {
    MaybeMergeChildrenOf(leaf.Parent());
  }
  return Status::OK();
}

Status AdaptiveAnonymizer::DeregisterUser(UserId uid) {
  auto it = users_.find(uid);
  if (it == users_.end()) return Status::NotFound("unknown user");
  const CellId leaf = it->second.leaf;
  RemoveFromLeaf(uid, leaf);
  users_.erase(it);
  if (!leaf.is_root()) MaybeMergeChildrenOf(leaf.Parent());
  return Status::OK();
}

Result<PrivacyProfile> AdaptiveAnonymizer::GetProfile(UserId uid) const {
  auto it = users_.find(uid);
  if (it == users_.end()) return Status::NotFound("unknown user");
  return it->second.profile;
}

Result<CloakingResult> AdaptiveAnonymizer::Cloak(UserId uid) {
  return Cloak(uid, CloakingOptions{});
}

Result<CloakingResult> AdaptiveAnonymizer::Cloak(
    UserId uid, const CloakingOptions& options) {
  auto it = users_.find(uid);
  if (it == users_.end()) return Status::NotFound("unknown user");
  auto result = BottomUpCloak(
      config_, [this](const CellId& cell) { return CellCount(cell); },
      users_.size(), it->second.profile, it->second.leaf, options);
  if (result.ok()) {
    ++stats_.cloak_calls;
    stats_.cloak_levels_visited +=
        static_cast<uint64_t>(result.value().levels_visited);
  }
  return result;
}

bool AdaptiveAnonymizer::CheckInvariants() const {
  auto root_it = cells_.find(CellId::Root());
  if (root_it == cells_.end()) return false;
  if (root_it->second.count != users_.size()) return false;

  size_t visited = 0;
  size_t users_seen = 0;
  std::vector<CellId> stack{CellId::Root()};
  while (!stack.empty()) {
    const CellId cell = stack.back();
    stack.pop_back();
    ++visited;
    const CellNode& node = NodeAt(cell);
    if (node.is_leaf) {
      if (node.count != node.users.size()) return false;
      users_seen += node.users.size();
      if (!node.users.empty() && !node.has_most_relaxed) return false;
      const Rect r = config_.CellRect(cell);
      for (UserId uid : node.users) {
        const auto uit = users_.find(uid);
        if (uit == users_.end()) return false;
        if (!(uit->second.leaf == cell)) return false;
        if (!r.Contains(uit->second.position)) return false;
      }
    } else {
      if (!node.users.empty()) return false;
      uint64_t sum = 0;
      for (const CellId& child : cell.Children()) {
        if (!IsMaterialized(child)) return false;
        sum += NodeAt(child).count;
        stack.push_back(child);
      }
      if (sum != node.count) return false;
      if (static_cast<int>(cell.level) >= config_.height) return false;
    }
  }
  if (visited != cells_.size()) return false;  // No orphan cells.
  if (users_seen != users_.size()) return false;
  return true;
}

}  // namespace casper::anonymizer
