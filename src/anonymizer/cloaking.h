#ifndef CASPER_ANONYMIZER_CLOAKING_H_
#define CASPER_ANONYMIZER_CLOAKING_H_

#include <cstdint>
#include <functional>

#include "src/anonymizer/cell_id.h"
#include "src/anonymizer/privacy_profile.h"
#include "src/anonymizer/pyramid_config.h"
#include "src/common/result.h"

/// \file
/// The bottom-up cloaking procedure (Algorithm 1, §4.1), shared by the
/// basic and adaptive anonymizers. It only needs per-cell user counts,
/// supplied through a callback, so both pyramid representations reuse
/// the identical decision logic — which also guarantees the paper's
/// observation that both anonymizers "result in the same cloaked region"
/// (§6.1.1).

namespace casper::anonymizer {

/// Per-cell user count lookup. Called only for the start cell, its
/// ancestors, and their horizontal/vertical neighbors (which, by the
/// paper's same-parent neighbor definition, always exist whenever the
/// queried cell does).
using CellCountFn = std::function<uint64_t(const CellId&)>;

struct CloakingOptions {
  /// Disable the neighbor-merge step (lines 5-13 of Algorithm 1) to
  /// quantify its contribution; ablation only.
  bool enable_neighbor_merge = true;
};

/// A cloaked region plus the accounting the experiments report.
struct CloakingResult {
  /// The cloaked spatial region R sent to the database server.
  Rect region;

  /// Number of users inside the region (k' of Fig. 10c).
  uint64_t users_in_region = 0;

  /// Pyramid levels inspected, i.e. 1 + number of recursive parent
  /// steps taken (the cloaking-cost driver of Fig. 10a).
  int levels_visited = 0;

  /// Whether the region is a two-cell neighbor union rather than a
  /// single cell.
  bool merged_with_neighbor = false;
};

/// Runs Algorithm 1 from `start` upward. Preconditions (validated):
/// profile.k must not exceed the total user population and
/// profile.a_min must not exceed the total space area — the paper
/// requires both so that the root always terminates the recursion.
Result<CloakingResult> BottomUpCloak(const PyramidConfig& config,
                                     const CellCountFn& cell_count,
                                     uint64_t total_users,
                                     const PrivacyProfile& profile,
                                     CellId start,
                                     const CloakingOptions& options = {});

}  // namespace casper::anonymizer

#endif  // CASPER_ANONYMIZER_CLOAKING_H_
