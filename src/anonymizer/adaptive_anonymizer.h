#ifndef CASPER_ANONYMIZER_ADAPTIVE_ANONYMIZER_H_
#define CASPER_ANONYMIZER_ADAPTIVE_ANONYMIZER_H_

#include <unordered_map>
#include <vector>

#include "src/anonymizer/anonymizer.h"

/// \file
/// The adaptive location anonymizer (§4.2): an *incomplete* pyramid that
/// materializes only cells that can potentially serve as cloaking
/// regions. Maintained cells form a quadtree — a materialized cell is
/// either a *leaf* (a lowest maintained cell, holding its users' ids) or
/// fully split into four materialized children. Because the paper
/// defines neighbors as same-parent siblings, every cell Algorithm 1
/// inspects (ancestors of the start leaf and their siblings) is always
/// materialized.
///
/// Structure maintenance (§4.2):
///  * split a leaf at level i when some user in it could be satisfied by
///    a level-(i+1) cell (area admits a_min and the hypothetical child
///    containing the user holds >= k users);
///  * merge four sibling leaves when no user in them can be satisfied by
///    any level-i cell.
/// A per-leaf most-relaxed-user cache (`u_r` in the paper) short-circuits
/// the split check.

namespace casper::anonymizer {

class AdaptiveAnonymizer final : public LocationAnonymizer {
 public:
  explicit AdaptiveAnonymizer(const PyramidConfig& config);

  Status RegisterUser(UserId uid, const PrivacyProfile& profile,
                      const Point& position) override;
  Status UpdateLocation(UserId uid, const Point& position) override;
  Status UpdateProfile(UserId uid, const PrivacyProfile& profile) override;
  Status DeregisterUser(UserId uid) override;
  Result<PrivacyProfile> GetProfile(UserId uid) const override;

  Result<CloakingResult> Cloak(UserId uid) override;
  Result<CloakingResult> Cloak(UserId uid,
                               const CloakingOptions& options) override;

  size_t user_count() const override { return users_.size(); }
  const PyramidConfig& config() const override { return config_; }
  const MaintenanceStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = MaintenanceStats{}; }

  /// Users counted in a *materialized* cell (DCHECKs materialization).
  uint64_t CellCount(const CellId& cell) const;

  bool IsMaterialized(const CellId& cell) const {
    return cells_.count(cell) > 0;
  }

  /// Number of materialized cells (the maintenance-saving metric).
  size_t materialized_cell_count() const { return cells_.size(); }

  /// Structural invariants for tests: quadtree shape (every internal
  /// cell has exactly 4 materialized children), counts consistent with
  /// user lists, user records pointing at real leaves.
  bool CheckInvariants() const;

 private:
  struct CellNode {
    uint64_t count = 0;
    bool is_leaf = true;
    std::vector<UserId> users;   ///< Leaf only.
    UserId most_relaxed = 0;     ///< Valid only when `users` non-empty.
    bool has_most_relaxed = false;
  };

  struct UserRecord {
    PrivacyProfile profile;
    Point position;
    CellId leaf;
  };

  CellNode& NodeAt(const CellId& cell);
  const CellNode& NodeAt(const CellId& cell) const;

  /// Descend from the root to the leaf whose region contains `p`.
  CellId FindLeaf(const Point& p) const;

  /// Add/remove a user id to a leaf, updating ancestor counts, the
  /// user-list, and the most-relaxed cache.
  void InsertIntoLeaf(UserId uid, const CellId& leaf);
  void RemoveFromLeaf(UserId uid, const CellId& leaf);

  /// Move a user between leaves on a cell crossing, mutating counters
  /// only up to the lowest common ancestor (the same cost model as the
  /// basic anonymizer's update path).
  void MoveBetweenLeaves(UserId uid, const CellId& from, const CellId& to);

  void RecomputeMostRelaxed(CellNode* node);

  /// Split `leaf` if some user warrants a deeper cell; recurses into the
  /// new children so the structure converges in one pass.
  void MaybeSplit(const CellId& leaf);

  /// Merge the four children of `parent` back into it if no user in
  /// them can be satisfied at their level; recurses upward.
  void MaybeMergeChildrenOf(const CellId& parent);

  PyramidConfig config_;
  std::unordered_map<CellId, CellNode, CellIdHash> cells_;
  std::unordered_map<UserId, UserRecord> users_;
  MaintenanceStats stats_;
};

}  // namespace casper::anonymizer

#endif  // CASPER_ANONYMIZER_ADAPTIVE_ANONYMIZER_H_
