#ifndef CASPER_ANONYMIZER_ANONYMIZER_TIER_H_
#define CASPER_ANONYMIZER_ANONYMIZER_TIER_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "src/anonymizer/anonymizer.h"
#include "src/anonymizer/pseudonyms.h"
#include "src/casper/messages.h"
#include "src/casper/responses.h"
#include "src/casper/transmission.h"
#include "src/obs/casper_metrics.h"

/// \file
/// The trusted location-anonymizer tier (Figure 1, middle box): the one
/// place that holds user identities, exact positions, privacy profiles,
/// and the pseudonym registry. Everything it emits toward the database
/// server is a wire message with identity already stripped
/// (CloakedQueryMsg / RegionUpsertMsg / SnapshotMsg), and everything it
/// receives back (CandidateListMsg) it refines on the client's behalf
/// with the client's exact position. The server tier is only ever
/// reached through the PrivateStoreSink / message interfaces, never as
/// a concrete type — the seam any multi-process deployment would cut.

namespace casper::anonymizer {

struct AnonymizerTierOptions {
  PyramidConfig pyramid;

  /// Which anonymizer variant backs the tier (§4.1 vs §4.2).
  bool use_adaptive_anonymizer = true;

  /// Seed of the pseudonym stream used to strip user identities before
  /// cloaked regions reach the database server (§3 pseudonymity).
  uint64_t pseudonym_seed = 0xCA5;

  /// When true, every user event (register / move / profile change)
  /// immediately publishes a fresh cloaked region into the sink passed
  /// to the lifecycle calls; otherwise regions only flow on
  /// BuildSnapshot() (the paper's batch model).
  bool publish_on_event = false;

  /// Instrument bundle; null resolves to obs::CasperMetrics::Default().
  obs::CasperMetrics* metrics = nullptr;
};

/// The trusted middleware process. All calls are single-threaded by
/// design (one anonymizer instance, as in the paper); the const query
/// helpers (StripIdentity / RefineForClient / ClientPosition) are
/// read-only and safe to call concurrently with each other.
class AnonymizerTier {
 public:
  explicit AnonymizerTier(const AnonymizerTierOptions& options);

  // --- User lifecycle (mobile clients -> anonymizer) ------------------
  //
  // `sink` receives the region maintenance messages this event implies
  // (deregistration always retracts; the other events publish only in
  // publish_on_event mode).

  Status RegisterUser(UserId uid, const PrivacyProfile& profile,
                      const Point& position, PrivateStoreSink* sink);
  Status UpdateLocation(UserId uid, const Point& position,
                        PrivateStoreSink* sink);
  Status UpdateProfile(UserId uid, const PrivacyProfile& profile,
                       PrivateStoreSink* sink);
  Status DeregisterUser(UserId uid, PrivateStoreSink* sink);

  // --- Batch publication ----------------------------------------------

  /// Cloaks every registered user, rotates her pseudonym, and returns
  /// the identity-stripped snapshot for the server to bulk-load. Users
  /// whose profile cannot be satisfied yet (k above the population)
  /// stay out of the snapshot and are retried on later events.
  Result<SnapshotMsg> BuildSnapshot();

  // --- Query-path helpers ---------------------------------------------

  /// Algorithm 1 for the user's current position. Records the cloak
  /// latency / area / k-achieved distributions; both the query path and
  /// region publication funnel through it.
  Result<CloakingResult> Cloak(UserId uid);

  /// Turns a client request plus its cloak into the message the server
  /// is allowed to see: exact position replaced by the cloaked region,
  /// user id dropped entirely (buddy queries carry the requester's
  /// current pseudonym handle so the server can exclude her own stored
  /// region — the handle resolves to nothing outside this tier).
  Result<CloakedQueryMsg> StripIdentity(const QueryRequest& request,
                                        const CloakingResult& cloak) const;

  /// Client-side completion of a query: unpacks the server's candidate
  /// list, prices the downlink (§6.3 model), and refines the exact
  /// answer with the client's true position.
  Result<QueryResponse> RefineForClient(const QueryRequest& request,
                                        const CloakingResult& cloak,
                                        CandidateListMsg answer,
                                        const TransmissionModel& model) const;

  // --- Trusted-side knowledge -----------------------------------------

  /// The client's own exact position (known only to the client and this
  /// tier; used for local refinement and quality checks).
  Result<Point> ClientPosition(UserId uid) const;

  /// Translate a pseudonym from a query answer back to the user id
  /// (only this tier can; the database server never).
  Result<UserId> ResolvePseudonym(Pseudonym pseudonym) const {
    return pseudonyms_.Resolve(pseudonym);
  }

  LocationAnonymizer& anonymizer() { return *anonymizer_; }
  size_t user_count() const { return anonymizer_->user_count(); }
  const AnonymizerTierOptions& options() const { return options_; }

 private:
  /// Re-cloak one user and replace her stored region through `sink`,
  /// rotating the pseudonym (publish_on_event mode).
  Status PublishRegion(UserId uid, PrivateStoreSink* sink);
  Status RetractRegion(UserId uid, PrivateStoreSink* sink);

  /// Users whose profiles could not be satisfied yet are retried as the
  /// population grows.
  Status RetryPendingPublications(PrivateStoreSink* sink);

  /// Current pseudonym for `uid`: rotated when one exists (so stored
  /// regions cannot be linked across publications), fresh otherwise.
  Result<Pseudonym> NextPseudonym(UserId uid);

  /// Mirrors the anonymizer's pyramid maintenance counters (splits,
  /// merges, counter updates) into the registry by diffing against the
  /// last sync — callers may ResetStats() underneath us, which simply
  /// re-bases the diff. Called after every mutating entry point.
  void SyncPyramidMetrics();

  /// Gauge refresh (population, pending publications).
  void SyncGauges();

  AnonymizerTierOptions options_;
  obs::CasperMetrics* metrics_;
  /// Last MaintenanceStats values mirrored into counters.
  uint64_t last_splits_ = 0;
  uint64_t last_merges_ = 0;
  uint64_t last_counter_updates_ = 0;
  std::unique_ptr<LocationAnonymizer> anonymizer_;
  /// Identity stripping for server-side private data.
  PseudonymRegistry pseudonyms_;
  /// The querying user's own pseudonym must be excluded from buddy
  /// answers; track the current one per user.
  std::unordered_map<UserId, Pseudonym> current_pseudonym_;
  /// Users whose region is currently stored at the server.
  std::unordered_set<UserId> published_;
  /// Users awaiting a satisfiable profile (see RetryPendingPublications).
  std::unordered_set<UserId> pending_publication_;
  /// Client-side knowledge: each client knows its own exact position.
  std::unordered_map<UserId, Point> client_positions_;
};

}  // namespace casper::anonymizer

#endif  // CASPER_ANONYMIZER_ANONYMIZER_TIER_H_
