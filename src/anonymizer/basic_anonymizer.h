#ifndef CASPER_ANONYMIZER_BASIC_ANONYMIZER_H_
#define CASPER_ANONYMIZER_BASIC_ANONYMIZER_H_

#include <unordered_map>
#include <vector>

#include "src/anonymizer/anonymizer.h"

/// \file
/// The basic location anonymizer (§4.1): a *complete* pyramid — every
/// cell of every level keeps a live user counter — plus a hash table
/// (uid -> profile, position, lowest-level cell). Location updates that
/// cross a cell boundary propagate counter changes from both leaves up
/// to the lowest common ancestor; cloaking always starts at the lowest
/// level.

namespace casper::anonymizer {

class BasicAnonymizer final : public LocationAnonymizer {
 public:
  explicit BasicAnonymizer(const PyramidConfig& config);

  Status RegisterUser(UserId uid, const PrivacyProfile& profile,
                      const Point& position) override;
  Status UpdateLocation(UserId uid, const Point& position) override;
  Status UpdateProfile(UserId uid, const PrivacyProfile& profile) override;
  Status DeregisterUser(UserId uid) override;
  Result<PrivacyProfile> GetProfile(UserId uid) const override;

  Result<CloakingResult> Cloak(UserId uid) override;
  Result<CloakingResult> Cloak(UserId uid,
                               const CloakingOptions& options) override;

  size_t user_count() const override { return users_.size(); }
  const PyramidConfig& config() const override { return config_; }
  const MaintenanceStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = MaintenanceStats{}; }

  /// Users currently counted in `cell` (any level). Exposed for tests
  /// and for the shared cloaking core.
  uint64_t CellCount(const CellId& cell) const;

  /// Structural invariant check for tests: every level's counters sum to
  /// the user count and parents equal the sum of their children.
  bool CheckInvariants() const;

 private:
  struct UserRecord {
    PrivacyProfile profile;
    Point position;
    CellId leaf;
  };

  uint64_t& CounterAt(const CellId& cell);
  const uint64_t& CounterAt(const CellId& cell) const;

  /// Add `delta` to `leaf` and all its ancestors; counts mutations.
  void ApplyDelta(CellId leaf, int64_t delta);

  PyramidConfig config_;
  /// counts_[level] is a flat 2^level x 2^level row-major counter grid.
  std::vector<std::vector<uint64_t>> counts_;
  std::unordered_map<UserId, UserRecord> users_;
  MaintenanceStats stats_;
};

}  // namespace casper::anonymizer

#endif  // CASPER_ANONYMIZER_BASIC_ANONYMIZER_H_
