#ifndef CASPER_ANONYMIZER_PSEUDONYMS_H_
#define CASPER_ANONYMIZER_PSEUDONYMS_H_

#include <unordered_map>

#include "src/anonymizer/privacy_profile.h"
#include "src/common/result.h"
#include "src/common/rng.h"

/// \file
/// Pseudonymity layer of the anonymizer (§3: "while cloaking the
/// location information, the anonymizer also removes any user identity
/// to ensure the pseudonymity of the location information"). The
/// trusted anonymizer replaces user ids with opaque pseudonyms before
/// anything reaches the database server, and translates responses back.
/// Pseudonyms rotate on demand so long-lived server-side identifiers
/// cannot be linked across sessions.

namespace casper::anonymizer {

using Pseudonym = uint64_t;

class PseudonymRegistry {
 public:
  /// Seed controls the (non-cryptographic) pseudonym stream; a real
  /// deployment would swap in a keyed PRF without touching callers.
  explicit PseudonymRegistry(uint64_t seed) : rng_(seed) {}

  /// Current pseudonym for `uid`, allocating one on first use.
  Pseudonym PseudonymFor(UserId uid);

  /// Resolve a pseudonym back to the user (trusted side only).
  Result<UserId> Resolve(Pseudonym pseudonym) const;

  /// Retire the user's current pseudonym and issue a fresh one; the
  /// old pseudonym stops resolving (unlinkability across rotations).
  Result<Pseudonym> Rotate(UserId uid);

  /// Drop all state for a user (deregistration).
  Status Forget(UserId uid);

  size_t active_count() const { return forward_.size(); }

 private:
  Pseudonym FreshPseudonym();

  Rng rng_;
  std::unordered_map<UserId, Pseudonym> forward_;
  std::unordered_map<Pseudonym, UserId> reverse_;
};

}  // namespace casper::anonymizer

#endif  // CASPER_ANONYMIZER_PSEUDONYMS_H_
