#include "src/anonymizer/cloaking.h"

namespace casper::anonymizer {

Result<CloakingResult> BottomUpCloak(const PyramidConfig& config,
                                     const CellCountFn& cell_count,
                                     uint64_t total_users,
                                     const PrivacyProfile& profile,
                                     CellId start,
                                     const CloakingOptions& options) {
  if (profile.k == 0) {
    return Status::InvalidArgument("profile.k must be at least 1");
  }
  if (profile.k > total_users) {
    return Status::FailedPrecondition(
        "profile.k exceeds the registered user population");
  }
  if (profile.a_min > config.space.Area()) {
    return Status::FailedPrecondition(
        "profile.a_min exceeds the total space area");
  }
  if (static_cast<int>(start.level) > config.height) {
    return Status::InvalidArgument("start cell below the pyramid height");
  }

  CloakingResult result;
  CellId cid = start;
  while (true) {
    ++result.levels_visited;
    const double cell_area = config.CellArea(static_cast<int>(cid.level));
    const uint64_t n = cell_count(cid);

    // Line 2: the cell alone satisfies the profile.
    if (n >= profile.k && cell_area >= profile.a_min) {
      result.region = config.CellRect(cid);
      result.users_in_region = n;
      return result;
    }

    // Lines 5-13: try merging with the horizontal or vertical sibling.
    if (options.enable_neighbor_merge && !cid.is_root()) {
      const CellId cid_v = cid.VerticalNeighbor();
      const CellId cid_h = cid.HorizontalNeighbor();
      const uint64_t n_v = n + cell_count(cid_v);
      const uint64_t n_h = n + cell_count(cid_h);
      if ((n_v >= profile.k || n_h >= profile.k) &&
          2.0 * cell_area >= profile.a_min) {
        // Prefer the merge whose population lands closer to k (line 9):
        // take the horizontal union when both qualify and it is the
        // smaller of the two, or when the vertical union fails.
        const bool choose_horizontal =
            (n_h >= profile.k && n_v >= profile.k && n_h <= n_v) ||
            n_v < profile.k;
        const CellId other = choose_horizontal ? cid_h : cid_v;
        result.region = config.CellRect(cid).Union(config.CellRect(other));
        result.users_in_region = choose_horizontal ? n_h : n_v;
        result.merged_with_neighbor = true;
        return result;
      }
    }

    // Line 15: recurse on the parent. Root termination is guaranteed by
    // the validated preconditions (root count = total_users >= k and
    // root area = space area >= a_min).
    if (cid.is_root()) {
      return Status::Internal(
          "root cell failed to satisfy a validated profile");
    }
    cid = cid.Parent();
  }
}

}  // namespace casper::anonymizer
