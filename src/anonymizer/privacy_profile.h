#ifndef CASPER_ANONYMIZER_PRIVACY_PROFILE_H_
#define CASPER_ANONYMIZER_PRIVACY_PROFILE_H_

#include <cstdint>

/// \file
/// The user privacy profile of §3: a tuple (k, A_min). `k` requests
/// k-anonymity (the cloaked region must contain at least k users);
/// `A_min` is the minimum acceptable area of the cloaked region,
/// guarding against dense areas where even large k yields a tiny region.

namespace casper::anonymizer {

using UserId = uint64_t;

struct PrivacyProfile {
  /// k-anonymity requirement; k = 1 means "just me" (no anonymity).
  uint32_t k = 1;

  /// Minimum cloaked area, in absolute space-area units. 0 disables the
  /// area constraint.
  double a_min = 0.0;

  friend bool operator==(const PrivacyProfile& a, const PrivacyProfile& b) {
    return a.k == b.k && a.a_min == b.a_min;
  }
};

/// Strictness partial order used by the adaptive anonymizer's
/// most-relaxed-user tracking (§4.2): a profile is *more relaxed* when it
/// can potentially be satisfied by smaller (deeper) cells. Smaller
/// `a_min` admits deeper levels; ties break on smaller `k`.
inline bool MoreRelaxed(const PrivacyProfile& a, const PrivacyProfile& b) {
  if (a.a_min != b.a_min) return a.a_min < b.a_min;
  return a.k < b.k;
}

}  // namespace casper::anonymizer

#endif  // CASPER_ANONYMIZER_PRIVACY_PROFILE_H_
