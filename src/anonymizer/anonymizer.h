#ifndef CASPER_ANONYMIZER_ANONYMIZER_H_
#define CASPER_ANONYMIZER_ANONYMIZER_H_

#include <cstdint>

#include "src/anonymizer/cloaking.h"
#include "src/anonymizer/privacy_profile.h"
#include "src/anonymizer/pyramid_config.h"
#include "src/common/result.h"

/// \file
/// The location-anonymizer abstraction of §4: a trusted third party that
/// receives exact locations plus privacy profiles and produces cloaked
/// spatial regions. Two implementations exist — BasicAnonymizer
/// (complete pyramid, §4.1) and AdaptiveAnonymizer (incomplete pyramid
/// with cell splitting/merging, §4.2).

namespace casper::anonymizer {

/// Structural maintenance accounting. The paper's update-cost experiments
/// (Figs. 10b, 11b, 12b) report `counter_updates / location_updates`.
struct MaintenanceStats {
  /// Pyramid cell-counter mutations (increments/decrements), plus — for
  /// the adaptive structure — cell creations/removals and user moves
  /// performed during splits and merges (each counted as one update).
  uint64_t counter_updates = 0;

  /// Location updates that actually changed a cell (others are free).
  uint64_t cell_crossings = 0;

  uint64_t location_updates = 0;
  uint64_t splits = 0;
  uint64_t merges = 0;
  uint64_t cloak_calls = 0;
  uint64_t cloak_levels_visited = 0;

  double UpdatesPerLocationUpdate() const {
    if (location_updates == 0) return 0.0;
    return static_cast<double>(counter_updates) /
           static_cast<double>(location_updates);
  }
  double LevelsPerCloak() const {
    if (cloak_calls == 0) return 0.0;
    return static_cast<double>(cloak_levels_visited) /
           static_cast<double>(cloak_calls);
  }
};

/// Common interface of both anonymizers. All mutating calls are
/// single-threaded by design (the anonymizer is one middleware process
/// in the paper's architecture).
class LocationAnonymizer {
 public:
  virtual ~LocationAnonymizer() = default;

  /// Register a new user at `position` with `profile`.
  /// Fails with AlreadyExists for duplicate ids and OutOfRange for
  /// positions outside the managed space.
  virtual Status RegisterUser(UserId uid, const PrivacyProfile& profile,
                              const Point& position) = 0;

  /// Process one (uid, x, y) location update.
  virtual Status UpdateLocation(UserId uid, const Point& position) = 0;

  /// Change a user's privacy profile (the paper's flexibility
  /// requirement: "ability to change her requirements at any time").
  virtual Status UpdateProfile(UserId uid, const PrivacyProfile& profile) = 0;

  virtual Status DeregisterUser(UserId uid) = 0;

  /// The user's current privacy profile (NotFound for unknown users).
  virtual Result<PrivacyProfile> GetProfile(UserId uid) const = 0;

  /// Blur the user's current location into a cloaked region matching
  /// her profile (Algorithm 1).
  virtual Result<CloakingResult> Cloak(UserId uid) = 0;

  /// Cloak with explicit options (ablation hooks).
  virtual Result<CloakingResult> Cloak(UserId uid,
                                       const CloakingOptions& options) = 0;

  virtual size_t user_count() const = 0;
  virtual const PyramidConfig& config() const = 0;
  virtual const MaintenanceStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace casper::anonymizer

#endif  // CASPER_ANONYMIZER_ANONYMIZER_H_
