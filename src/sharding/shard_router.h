#ifndef CASPER_SHARDING_SHARD_ROUTER_H_
#define CASPER_SHARDING_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/casper/messages.h"
#include "src/common/geometry.h"
#include "src/common/result.h"
#include "src/obs/shard_metrics.h"
#include "src/server/query_server.h"
#include "src/sharding/partition.h"
#include "src/transport/channel.h"
#include "src/transport/resilient_client.h"
#include "src/transport/server_endpoint.h"

/// \file
/// The scale-out front of the server tier: N QueryServer shards, each
/// owning one contiguous Morton range of pyramid cells (see
/// partition.h), behind a router that fans cloaked queries out to the
/// intersecting shards and merges the per-shard candidate lists into
/// exactly the answer a single server over the union would give.
///
/// Exactness rests on three invariants:
///  1. **Disjoint ownership.** A public target lives on the shard of
///     its position's cell; a private region on the shard of its
///     center's cell. Per-shard answers never overlap, so unions are
///     duplicate-free.
///  2. **Canonical candidate order.** Every processor sorts its
///     candidate list by target id (processor/*.cc), so a merged,
///     id-sorted union is byte-identical to the single-server list.
///  3. **Per-shard bounds.** For NN/k-NN the router derives the same
///     filter distances the single server would, in the style of the
///     per-edge k-NN bound (KnnEdgeExtension): the k-th smallest
///     distance over the union of per-shard k-NN lists at a cloak
///     corner *is* the global k-th distance, because the union
///     contains the global k nearest; and a branch-and-bound over
///     MinDist(q, ShardBounds(i)) finds the global nearest filter
///     while pruning shards that provably cannot improve it.
///
/// Degradation: each shard sits behind its own ResilientClient (own
/// breaker, retries, idempotency window). When a shard is unreachable
/// and its data could have contributed, the merged answer is returned
/// with degraded=true (still inclusive over the reachable shards);
/// when every relevant shard is down, the query fails kUnavailable.

namespace casper::sharding {

struct ShardRouterOptions {
  size_t num_shards = 1;

  /// Pyramid level of the partition grid (4^level cells).
  uint32_t partition_level = 4;

  /// The managed space; must contain every target position and region
  /// center handed to the router.
  Rect space = Rect(0.0, 0.0, 1.0, 1.0);

  /// Options applied to every shard's QueryServer (filter policy,
  /// density extent, metrics bundle).
  server::QueryServerOptions server;

  /// Per-shard client resilience (each shard gets its own breaker,
  /// retry budget, and replay buffer from this template).
  transport::ResilienceOptions resilience;

  /// Wraps shard `i`'s in-process DirectChannel (which the router
  /// keeps alive) — chaos tests inject FaultInjectingChannel here.
  /// Null leaves the direct channel in place.
  std::function<std::unique_ptr<transport::Channel>(transport::Channel*,
                                                    size_t shard)>
      channel_decorator;

  /// Registry for the casper_shard_* instruments; null resolves to
  /// obs::MetricsRegistry::Default().
  obs::MetricsRegistry* registry = nullptr;
};

/// Routes the full wire surface of one QueryServer across N shards.
/// Thread-safety matches QueryServer: Execute() may run from many
/// threads at once; maintenance (Apply / Load / SetPublicTargets /
/// Rebalance) is single-threaded and never concurrent with queries.
class ShardRouter : public PrivateStoreSink {
 public:
  explicit ShardRouter(const ShardRouterOptions& options);

  // --- Public data (server-side provisioning, not wire traffic) -------
  void AddPublicTarget(const processor::PublicTarget& target);
  void SetPublicTargets(const std::vector<processor::PublicTarget>& targets);

  // --- Maintenance stream (PrivateStoreSink) ---------------------------
  /// Routed to the owning shard of the region's center. A `replaces`
  /// handle owned by a *different* shard is split into a remove on the
  /// old owner plus a plain upsert on the new one (the cross-boundary
  /// move case a single server never sees).
  Status Apply(const RegionUpsertMsg& msg) override;
  Status Apply(const RegionRemoveMsg& msg) override;

  /// Bulk snapshot: partitioned by region center; every shard receives
  /// a (possibly empty) sub-snapshot so stale state is cleared fleet-
  /// wide.
  Status Load(const SnapshotMsg& snapshot);

  // --- Queries ---------------------------------------------------------
  /// Fan out, merge, and return the answer a single QueryServer over
  /// the union of all shards would encode — byte-identical modulo
  /// processor_seconds (which times the merge) and the degraded flag.
  Result<CandidateListMsg> Execute(const CloakedQueryMsg& query) const;

  // --- Hotspot rebalancing ---------------------------------------------
  /// Recompute the partition from the per-cell load counters
  /// (ShardPartition::Balanced) and hand cell ranges off between
  /// shards through the storage tier: every shard checkpoints under
  /// `checkpoint_dir` (DiskStorageManager::Create — a missing parent
  /// directory surfaces as the storage tier's typed kNotFound), a
  /// fresh fleet is built on the new partition, and the checkpoints
  /// are restored and redistributed by the new ownership rule. No-op
  /// when the balanced partition equals the current one. Answers are
  /// byte-identical across a rebalance.
  Status Rebalance(const std::string& checkpoint_dir);

  // --- Introspection ---------------------------------------------------
  const ShardPartition& partition() const { return partition_; }
  size_t num_shards() const { return shards_.size(); }
  transport::BreakerState breaker_state(size_t shard) const;
  size_t public_count(size_t shard) const { return public_counts_[shard]; }
  size_t region_count(size_t shard) const { return region_counts_[shard]; }
  size_t total_public() const { return total_public_; }
  size_t total_regions() const { return handle_shard_.size(); }
  const obs::ShardMetrics& metrics() const { return metrics_; }

 private:
  /// One shard's full stack. Construction order is destruction-safe:
  /// client -> (decorated) channel -> direct channel -> endpoint ->
  /// server.
  struct Shard {
    std::unique_ptr<server::QueryServer> server;
    std::unique_ptr<transport::ServerEndpoint> endpoint;
    std::unique_ptr<transport::DirectChannel> direct;
    std::unique_ptr<transport::Channel> decorated;  ///< May be null.
    std::unique_ptr<transport::ResilientClient> client;
    /// Monotone high-water half-extents of every region ever loaded or
    /// upserted into this shard; bounds how far a region owned here
    /// can reach beyond its center, so window fan-out stays exact.
    double halfwidth_hw = 0.0;
    double halfheight_hw = 0.0;
  };

  /// Per-query merge bookkeeping: which shards were touched (fan-out
  /// histogram), whether any relevant shard was down (degraded flag),
  /// and whether any relevant shard answered (all-down => unavailable).
  struct MergeCtx {
    std::vector<uint8_t> touched;
    size_t touched_count = 0;
    bool degraded = false;

    explicit MergeCtx(size_t n) : touched(n, 0) {}
  };

  std::vector<Shard> BuildShards(const ShardPartition& partition) const;

  /// One fan-out call through shard `i`'s resilient client. Transport
  /// failure (breaker open / retries exhausted / deadline) returns the
  /// error and bumps the shard's error counter; the caller decides
  /// whether that degrades or fails the merge.
  Result<CandidateListMsg> CallShard(size_t shard, const CloakedQueryMsg& sub,
                                     MergeCtx* ctx) const;

  static bool IsShardDown(const Status& status);

  /// Union of per-shard public targets inside `window`, id-sorted.
  /// Fans out to the shards whose cells intersect the window.
  Result<std::vector<processor::PublicTarget>> FetchPublicUnion(
      const Rect& window, MergeCtx* ctx) const;

  /// Union of per-shard private regions overlapping `window`,
  /// id-sorted. A shard is relevant when its bounds, expanded by its
  /// high-water half-extents, intersect the window — every region's
  /// center lies in its shard's bounds, and a region overlapping the
  /// window has its center within the window expanded by its own
  /// half-extents.
  Result<std::vector<processor::PrivateTarget>> FetchPrivateUnion(
      const Rect& window, MergeCtx* ctx) const;

  /// Globally nearest public target to `q` (the NearestTargetFn of the
  /// filter construction): branch-and-bound over shards ascending by
  /// MinDist(q, ShardBounds), probing each with a point-cloak NN
  /// sub-query until the bound exceeds the best distance found.
  Result<processor::FilterTarget> GlobalNearestPublic(const Point& q,
                                                      MergeCtx* ctx) const;

  /// Globally minimal MaxDist region filter (private-data NN), same
  /// branch-and-bound; MinDist(q, bounds) lower-bounds MaxDist because
  /// MaxDist(q, region) >= dist(q, center) >= MinDist(q, bounds).
  Result<processor::FilterTarget> GlobalNearestPrivate(
      const Point& q, bool has_exclude, uint64_t exclude_handle,
      MergeCtx* ctx) const;

  /// The global k-th smallest distance from `q` to a public target:
  /// k-th smallest over the union of per-shard k-NN candidate lists
  /// (falling back to a full per-shard fetch when a shard holds fewer
  /// than k targets).
  Result<double> GlobalKthDistance(const Point& q, uint64_t k,
                                   MergeCtx* ctx) const;

  /// The global minimax bound B for public-query-over-private-data NN:
  /// min over shards of the per-shard bound, with the same pruning.
  Result<double> GlobalMinimaxBound(const Point& q, MergeCtx* ctx) const;

  // Per-kind merges, writing response->payload.
  Status MergeNearestPublic(const CloakedQueryMsg& query, MergeCtx* ctx,
                            CandidateListMsg* response) const;
  Status MergeKNearestPublic(const CloakedQueryMsg& query, MergeCtx* ctx,
                             CandidateListMsg* response) const;
  Status MergeRangePublic(const CloakedQueryMsg& query, MergeCtx* ctx,
                          CandidateListMsg* response) const;
  Status MergeNearestPrivate(const CloakedQueryMsg& query, MergeCtx* ctx,
                             CandidateListMsg* response) const;
  Status MergePublicNearest(const CloakedQueryMsg& query, MergeCtx* ctx,
                            CandidateListMsg* response) const;
  Status MergePublicRange(const CloakedQueryMsg& query, MergeCtx* ctx,
                          CandidateListMsg* response) const;
  Status MergeDensity(const CloakedQueryMsg& query, MergeCtx* ctx,
                      CandidateListMsg* response) const;

  void RecordQueryLoad(const CloakedQueryMsg& query) const;
  void NoteRegionExtents(size_t shard, const Rect& region);
  void UpdateStoredGauge(size_t shard);

  ShardRouterOptions options_;
  ShardPartition partition_;
  mutable obs::ShardMetrics metrics_;
  std::vector<Shard> shards_;

  // Routing state (maintenance-thread only, read-only during queries).
  std::unordered_map<uint64_t, size_t> handle_shard_;  ///< region -> owner
  std::vector<size_t> public_counts_;
  std::vector<size_t> region_counts_;
  size_t total_public_ = 0;

  /// Per-cell query+upsert load, driving Rebalance(). Atomic because
  /// concurrent Execute() calls record loads.
  std::unique_ptr<std::atomic<uint64_t>[]> cell_loads_;
};

}  // namespace casper::sharding

#endif  // CASPER_SHARDING_SHARD_ROUTER_H_
