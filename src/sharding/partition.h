#ifndef CASPER_SHARDING_PARTITION_H_
#define CASPER_SHARDING_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/result.h"

/// \file
/// The spatial partition map of the sharded server tier. Space is the
/// level-L pyramid grid (2^L x 2^L cells, the same decomposition the
/// anonymizer's pyramid uses, §4.1); cells are linearized by their
/// Morton (Z-order) code, and each shard owns one contiguous Morton
/// range. Contiguity over the space-filling curve keeps each shard's
/// cells spatially clustered, so a cloaked region intersects few
/// shards, and makes rebalancing a pure boundary move: shifting a
/// range endpoint hands off exactly the cells between the old and new
/// boundary.

namespace casper::sharding {

/// Interleaves the low `level` bits of x (even positions) and y (odd
/// positions) into the Morton code of cell (x, y) at that level.
uint64_t MortonEncode(uint32_t x, uint32_t y);

/// Inverse of MortonEncode.
void MortonDecode(uint64_t code, uint32_t* x, uint32_t* y);

/// An immutable partition of the level-`level` grid over `space` into
/// `num_shards` contiguous Morton ranges. Shard i owns codes
/// [boundary[i], boundary[i+1]) with boundary[0] = 0 and
/// boundary[num_shards] = 4^level.
class ShardPartition {
 public:
  /// Equal-size contiguous ranges (the bootstrap partition).
  static ShardPartition Uniform(size_t num_shards, uint32_t level,
                                const Rect& space);

  /// Load-balanced ranges: `cell_loads` holds one weight per Morton
  /// code (size 4^level); boundaries are chosen greedily so each
  /// shard's weight approaches total/num_shards. Every shard keeps at
  /// least one cell. InvalidArgument when `cell_loads` has the wrong
  /// size or num_shards exceeds the cell count.
  static Result<ShardPartition> Balanced(const std::vector<uint64_t>& cell_loads,
                                         size_t num_shards, uint32_t level,
                                         const Rect& space);

  size_t num_shards() const { return boundaries_.size() - 1; }
  uint32_t level() const { return level_; }
  const Rect& space() const { return space_; }
  uint64_t cell_count() const { return uint64_t{1} << (2 * level_); }

  /// Morton code of the cell containing `p` (clamped into `space`).
  uint64_t CellCodeOf(const Point& p) const;

  /// The shard owning the cell that contains `p`. Points are assigned
  /// to exactly one shard — this is the ownership rule for public
  /// targets (by position) and private regions (by center).
  size_t HomeShard(const Point& p) const;

  /// Shard owning Morton code `code`.
  size_t ShardOfCode(uint64_t code) const;

  /// Every shard whose owned cells intersect `window` (closed
  /// boundaries, matching Rect::Intersects). Exact per-cell walk — no
  /// bounding-box over-approximation — returned ascending.
  std::vector<size_t> ShardsIntersecting(const Rect& window) const;

  /// Bounding box of shard `i`'s owned cells. MinDist(q, bounds) lower
  /// bounds the distance from q to anything the shard owns, which is
  /// what the cross-shard NN bound prunes on.
  const Rect& ShardBounds(size_t shard) const { return bounds_[shard]; }

  /// The rectangle of one grid cell.
  Rect CellRect(uint64_t code) const;

  /// Range boundaries, size num_shards() + 1.
  const std::vector<uint64_t>& boundaries() const { return boundaries_; }

  std::string ToString() const;

  friend bool operator==(const ShardPartition& a, const ShardPartition& b) {
    return a.level_ == b.level_ && a.space_ == b.space_ &&
           a.boundaries_ == b.boundaries_;
  }

 private:
  ShardPartition(std::vector<uint64_t> boundaries, uint32_t level,
                 const Rect& space);

  void ComputeBounds();

  std::vector<uint64_t> boundaries_;
  uint32_t level_ = 0;
  Rect space_;
  std::vector<Rect> bounds_;  ///< Per-shard cell-union bounding box.
};

}  // namespace casper::sharding

#endif  // CASPER_SHARDING_PARTITION_H_
