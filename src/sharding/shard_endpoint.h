#ifndef CASPER_SHARDING_SHARD_ENDPOINT_H_
#define CASPER_SHARDING_SHARD_ENDPOINT_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/sharding/shard_router.h"
#include "src/transport/channel.h"

/// \file
/// The wire front of the shard fleet: the same byte-level contract as
/// transport::ServerEndpoint (decode request -> dispatch -> encode
/// response), but dispatching into a ShardRouter instead of a single
/// QueryServer. Because the contract matches, anything built to talk
/// to one server through a Channel — the CasperService facade, the
/// ResilientClient, chaos wrappers — talks to a whole fleet unchanged:
/// plug a ShardChannel in via CasperOptions::channel_decorator and the
/// anonymizer tier's queries, upserts, removes, and snapshots all fan
/// out across the shards (`casper_cli --shards=N` does exactly this).

namespace casper::sharding {

/// Decodes one request frame, dispatches it to the router, and encodes
/// the response — CandidateListMsg for queries (the router echoes the
/// request id and sets `degraded` when a down shard's data could have
/// contributed), AckMsg for maintenance and for every failure.
class ShardEndpoint {
 public:
  explicit ShardEndpoint(ShardRouter* router);

  Result<std::string> Handle(std::string_view request,
                             const transport::CallContext& context);

 private:
  ShardRouter* router_;
};

/// In-process Channel delivering frames straight to a ShardEndpoint —
/// the fleet-shaped twin of transport::DirectChannel.
class ShardChannel : public transport::Channel {
 public:
  explicit ShardChannel(ShardEndpoint* endpoint);

  Result<std::string> Call(std::string_view request,
                           const transport::CallContext& context) override;

 private:
  ShardEndpoint* endpoint_;
};

}  // namespace casper::sharding

#endif  // CASPER_SHARDING_SHARD_ENDPOINT_H_
