#include "src/sharding/partition.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/status.h"

namespace casper::sharding {

uint64_t MortonEncode(uint32_t x, uint32_t y) {
  auto spread = [](uint64_t v) {
    v &= 0xFFFFFFFFull;
    v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
    v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
    v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
    v = (v | (v << 2)) & 0x3333333333333333ull;
    v = (v | (v << 1)) & 0x5555555555555555ull;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

void MortonDecode(uint64_t code, uint32_t* x, uint32_t* y) {
  auto squash = [](uint64_t v) {
    v &= 0x5555555555555555ull;
    v = (v | (v >> 1)) & 0x3333333333333333ull;
    v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0Full;
    v = (v | (v >> 4)) & 0x00FF00FF00FF00FFull;
    v = (v | (v >> 8)) & 0x0000FFFF0000FFFFull;
    v = (v | (v >> 16)) & 0x00000000FFFFFFFFull;
    return static_cast<uint32_t>(v);
  };
  *x = squash(code);
  *y = squash(code >> 1);
}

ShardPartition::ShardPartition(std::vector<uint64_t> boundaries, uint32_t level,
                               const Rect& space)
    : boundaries_(std::move(boundaries)), level_(level), space_(space) {
  ComputeBounds();
}

ShardPartition ShardPartition::Uniform(size_t num_shards, uint32_t level,
                                       const Rect& space) {
  CASPER_DCHECK(num_shards >= 1);
  const uint64_t cells = uint64_t{1} << (2 * level);
  num_shards = std::min<size_t>(num_shards, cells);
  std::vector<uint64_t> boundaries(num_shards + 1);
  for (size_t i = 0; i <= num_shards; ++i) {
    boundaries[i] = cells * i / num_shards;
  }
  return ShardPartition(std::move(boundaries), level, space);
}

Result<ShardPartition> ShardPartition::Balanced(
    const std::vector<uint64_t>& cell_loads, size_t num_shards, uint32_t level,
    const Rect& space) {
  const uint64_t cells = uint64_t{1} << (2 * level);
  if (cell_loads.size() != cells) {
    return Status::InvalidArgument("cell_loads size does not match level");
  }
  if (num_shards < 1 || num_shards > cells) {
    return Status::InvalidArgument("num_shards outside [1, cell_count]");
  }
  uint64_t total = 0;
  for (uint64_t w : cell_loads) total += w;

  // Greedy prefix split: cut each boundary once the running weight
  // reaches the remaining-average target, while always leaving at
  // least one cell per remaining shard.
  std::vector<uint64_t> boundaries;
  boundaries.reserve(num_shards + 1);
  boundaries.push_back(0);
  uint64_t code = 0;
  uint64_t remaining = total;
  for (size_t shard = 0; shard + 1 < num_shards; ++shard) {
    const size_t shards_left = num_shards - shard;
    const uint64_t target = (remaining + shards_left - 1) / shards_left;
    // Leave at least one cell for each of the shards after this one.
    const uint64_t last_start = cells - (shards_left - 1);
    uint64_t acc = 0;
    while (code < last_start) {
      if (acc > 0 && acc + cell_loads[code] > target) break;
      acc += cell_loads[code];
      ++code;
    }
    boundaries.push_back(code);
    remaining -= acc;
  }
  boundaries.push_back(cells);
  return ShardPartition(std::move(boundaries), level, space);
}

uint64_t ShardPartition::CellCodeOf(const Point& p) const {
  const uint32_t dim = 1u << level_;
  const double fx = (p.x - space_.min.x) / space_.width();
  const double fy = (p.y - space_.min.y) / space_.height();
  const auto clamp_idx = [dim](double f) {
    const auto i = static_cast<int64_t>(f * dim);
    return static_cast<uint32_t>(
        std::clamp<int64_t>(i, 0, static_cast<int64_t>(dim) - 1));
  };
  return MortonEncode(clamp_idx(fx), clamp_idx(fy));
}

size_t ShardPartition::HomeShard(const Point& p) const {
  return ShardOfCode(CellCodeOf(p));
}

size_t ShardPartition::ShardOfCode(uint64_t code) const {
  // First boundary strictly greater than code, minus one.
  const auto it =
      std::upper_bound(boundaries_.begin() + 1, boundaries_.end(), code);
  return static_cast<size_t>(it - boundaries_.begin()) - 1;
}

Rect ShardPartition::CellRect(uint64_t code) const {
  uint32_t x = 0, y = 0;
  MortonDecode(code, &x, &y);
  const uint32_t dim = 1u << level_;
  const double w = space_.width() / dim;
  const double h = space_.height() / dim;
  const double x0 = space_.min.x + x * w;
  const double y0 = space_.min.y + y * h;
  return Rect(x0, y0, x0 + w, y0 + h);
}

std::vector<size_t> ShardPartition::ShardsIntersecting(
    const Rect& window) const {
  std::vector<size_t> out;
  if (window.is_empty()) return out;
  const uint32_t dim = 1u << level_;
  const double cw = space_.width() / dim;
  const double ch = space_.height() / dim;
  // Index range padded by one cell each side, then an exact closed
  // Intersects() test per cell: a window landing precisely on a cell
  // edge touches the cells on both sides, and the exact test uses the
  // same floating-point cell rects every other ownership decision
  // does, so the fan-out set never disagrees with a per-cell walk.
  const auto idx = [&](double v, double org, double step, int64_t pad) {
    const auto i =
        static_cast<int64_t>(std::floor((v - org) / step)) + pad;
    return static_cast<uint32_t>(
        std::clamp<int64_t>(i, 0, static_cast<int64_t>(dim) - 1));
  };
  const uint32_t x_lo = idx(window.min.x, space_.min.x, cw, -1);
  const uint32_t x_hi = idx(window.max.x, space_.min.x, cw, +1);
  const uint32_t y_lo = idx(window.min.y, space_.min.y, ch, -1);
  const uint32_t y_hi = idx(window.max.y, space_.min.y, ch, +1);
  std::vector<bool> seen(num_shards(), false);
  for (uint32_t y = y_lo; y <= y_hi; ++y) {
    for (uint32_t x = x_lo; x <= x_hi; ++x) {
      const uint64_t code = MortonEncode(x, y);
      if (!CellRect(code).Intersects(window)) continue;
      const size_t s = ShardOfCode(code);
      if (!seen[s]) {
        seen[s] = true;
        out.push_back(s);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ShardPartition::ComputeBounds() {
  bounds_.assign(num_shards(), Rect());
  for (size_t shard = 0; shard < num_shards(); ++shard) {
    Rect box;  // default-constructed Rect is empty
    for (uint64_t code = boundaries_[shard]; code < boundaries_[shard + 1];
         ++code) {
      const Rect cell = CellRect(code);
      if (box.is_empty()) {
        box = cell;
      } else {
        box = Rect(std::min(box.min.x, cell.min.x),
                   std::min(box.min.y, cell.min.y),
                   std::max(box.max.x, cell.max.x),
                   std::max(box.max.y, cell.max.y));
      }
    }
    bounds_[shard] = box;
  }
}

std::string ShardPartition::ToString() const {
  std::ostringstream os;
  os << "level=" << level_ << " shards=" << num_shards() << " [";
  for (size_t i = 0; i < boundaries_.size(); ++i) {
    if (i) os << ", ";
    os << boundaries_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace casper::sharding
