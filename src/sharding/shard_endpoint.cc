#include "src/sharding/shard_endpoint.h"

#include <utility>

namespace casper::sharding {

ShardEndpoint::ShardEndpoint(ShardRouter* router) : router_(router) {
  CASPER_DCHECK(router != nullptr);
}

Result<std::string> ShardEndpoint::Handle(std::string_view request,
                                          const transport::CallContext&) {
  Result<MessageTag> tag = TagOf(request);
  if (!tag.ok()) {
    return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
  }
  switch (tag.value()) {
    case MessageTag::kCloakedQuery: {
      Result<CloakedQueryMsg> query = DecodeCloakedQuery(request);
      if (!query.ok()) {
        return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
      }
      Result<CandidateListMsg> answer = router_->Execute(query.value());
      if (!answer.ok()) {
        return Encode(AckMsg::For(query->request_id, answer.status()));
      }
      // The router already echoes the request id into its response.
      return Encode(std::move(answer).value());
    }
    case MessageTag::kRegionUpsert: {
      Result<RegionUpsertMsg> msg = DecodeRegionUpsert(request);
      if (!msg.ok()) {
        return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
      }
      return Encode(AckMsg::For(msg->request_id, router_->Apply(msg.value())));
    }
    case MessageTag::kRegionRemove: {
      Result<RegionRemoveMsg> msg = DecodeRegionRemove(request);
      if (!msg.ok()) {
        return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
      }
      return Encode(AckMsg::For(msg->request_id, router_->Apply(msg.value())));
    }
    case MessageTag::kSnapshot: {
      Result<SnapshotMsg> msg = DecodeSnapshot(request);
      if (!msg.ok()) {
        return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
      }
      // Snapshots carry no request id (whole-fleet replacement is
      // naturally idempotent); acks for them always echo 0.
      return Encode(AckMsg::For(0, router_->Load(msg.value())));
    }
    case MessageTag::kCandidateList:
    case MessageTag::kAck:
      return Encode(AckMsg::For(
          0, Status::InvalidArgument("response message sent as request")));
  }
  return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
}

ShardChannel::ShardChannel(ShardEndpoint* endpoint) : endpoint_(endpoint) {
  CASPER_DCHECK(endpoint != nullptr);
}

Result<std::string> ShardChannel::Call(std::string_view request,
                                       const transport::CallContext& context) {
  return endpoint_->Handle(request, context);
}

}  // namespace casper::sharding
