#include "src/sharding/shard_router.h"

#include <algorithm>
#include <array>
#include <utility>
#include <variant>

#include "src/common/stopwatch.h"
#include "src/processor/density.h"
#include "src/processor/extended_area.h"
#include "src/processor/private_knn.h"
#include "src/processor/private_nn.h"
#include "src/processor/private_nn_private.h"
#include "src/processor/private_range.h"
#include "src/processor/public_nn_private.h"
#include "src/processor/public_range.h"
#include "src/storage/disk_storage.h"

namespace casper::sharding {
namespace {

/// Salt for the request id of the remove half of a cross-shard replace,
/// so the two halves occupy distinct idempotency-window slots. Unkeyed
/// (id 0) messages stay unkeyed.
constexpr uint64_t kSubRequestSalt = 0x9E3779B97F4A7C15ull;

uint64_t DeriveSubRequestId(uint64_t request_id) {
  return request_id == 0 ? 0 : request_id ^ kSubRequestSalt;
}

void SortById(std::vector<processor::PublicTarget>* targets) {
  std::sort(targets->begin(), targets->end(),
            [](const processor::PublicTarget& a,
               const processor::PublicTarget& b) { return a.id < b.id; });
}

void SortById(std::vector<processor::PrivateTarget>* targets) {
  std::sort(targets->begin(), targets->end(),
            [](const processor::PrivateTarget& a,
               const processor::PrivateTarget& b) { return a.id < b.id; });
}

}  // namespace

ShardRouter::ShardRouter(const ShardRouterOptions& options)
    : options_(options),
      partition_(ShardPartition::Uniform(std::max<size_t>(1, options.num_shards),
                                         options.partition_level,
                                         options.space)),
      metrics_(options.registry, partition_.num_shards()),
      shards_(BuildShards(partition_)),
      public_counts_(partition_.num_shards(), 0),
      region_counts_(partition_.num_shards(), 0),
      cell_loads_(new std::atomic<uint64_t>[partition_.cell_count()]()) {
  // Uniform() clamps the shard count to the cell count; keep the two
  // views consistent for Rebalance().
  options_.num_shards = partition_.num_shards();
}

std::vector<ShardRouter::Shard> ShardRouter::BuildShards(
    const ShardPartition& partition) const {
  std::vector<Shard> fleet;
  fleet.reserve(partition.num_shards());
  for (size_t i = 0; i < partition.num_shards(); ++i) {
    Shard shard;
    shard.server = std::make_unique<server::QueryServer>(options_.server);
    shard.endpoint =
        std::make_unique<transport::ServerEndpoint>(shard.server.get());
    shard.direct =
        std::make_unique<transport::DirectChannel>(shard.endpoint.get());
    transport::Channel* channel = shard.direct.get();
    if (options_.channel_decorator) {
      shard.decorated = options_.channel_decorator(shard.direct.get(), i);
      if (shard.decorated) channel = shard.decorated.get();
    }
    shard.client =
        std::make_unique<transport::ResilientClient>(channel,
                                                     options_.resilience);
    fleet.push_back(std::move(shard));
  }
  return fleet;
}

transport::BreakerState ShardRouter::breaker_state(size_t shard) const {
  return shards_[shard].client->breaker_state();
}

// --- Public data -----------------------------------------------------------

void ShardRouter::AddPublicTarget(const processor::PublicTarget& target) {
  const size_t shard = partition_.HomeShard(target.position);
  shards_[shard].server->AddPublicTarget(target);
  ++public_counts_[shard];
  ++total_public_;
  UpdateStoredGauge(shard);
}

void ShardRouter::SetPublicTargets(
    const std::vector<processor::PublicTarget>& targets) {
  std::vector<std::vector<processor::PublicTarget>> grouped(shards_.size());
  for (const processor::PublicTarget& t : targets) {
    grouped[partition_.HomeShard(t.position)].push_back(t);
  }
  total_public_ = targets.size();
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].server->SetPublicTargets(grouped[s]);
    public_counts_[s] = grouped[s].size();
    UpdateStoredGauge(s);
  }
}

// --- Maintenance stream ----------------------------------------------------

Status ShardRouter::Apply(const RegionUpsertMsg& msg) {
  const size_t dest = partition_.HomeShard(msg.region.Center());
  RegionUpsertMsg forward = msg;
  size_t vacated = dest;
  if (msg.has_replaces) {
    const auto it = handle_shard_.find(msg.replaces);
    if (it == handle_shard_.end()) {
      // Same outcome as the single server's embedded remove failing.
      return Status::Internal("stored region missing from private store");
    }
    vacated = it->second;
    if (vacated != dest) {
      // Cross-boundary move: the old owner drops the region, the new
      // owner takes a plain insert.
      RegionRemoveMsg remove;
      remove.request_id = DeriveSubRequestId(msg.request_id);
      remove.handle = msg.replaces;
      CASPER_RETURN_IF_ERROR(shards_[vacated].client->Apply(remove));
      forward.has_replaces = false;
      forward.replaces = 0;
    }
  } else if (handle_shard_.count(msg.handle) != 0) {
    // The owning shard may differ from `dest`, in which case it would
    // happily insert a duplicate — enforce the fleet-wide invariant.
    return Status::Internal("region handle already stored");
  }
  CASPER_RETURN_IF_ERROR(shards_[dest].client->Apply(forward));
  if (msg.has_replaces) {
    handle_shard_.erase(msg.replaces);
    --region_counts_[vacated];
    if (vacated != dest) UpdateStoredGauge(vacated);
  }
  handle_shard_[msg.handle] = dest;
  ++region_counts_[dest];
  NoteRegionExtents(dest, msg.region);
  UpdateStoredGauge(dest);
  cell_loads_[partition_.CellCodeOf(msg.region.Center())].fetch_add(
      1, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardRouter::Apply(const RegionRemoveMsg& msg) {
  const auto it = handle_shard_.find(msg.handle);
  if (it == handle_shard_.end()) {
    return Status::Internal("stored region missing from private store");
  }
  const size_t shard = it->second;
  CASPER_RETURN_IF_ERROR(shards_[shard].client->Apply(msg));
  handle_shard_.erase(it);
  --region_counts_[shard];
  UpdateStoredGauge(shard);
  return Status::OK();
}

Status ShardRouter::Load(const SnapshotMsg& snapshot) {
  std::vector<SnapshotMsg> grouped(shards_.size());
  for (const processor::PrivateTarget& r : snapshot.regions) {
    grouped[partition_.HomeShard(r.region.Center())].regions.push_back(r);
  }
  // Every shard receives its sub-snapshot — including empty ones, so a
  // reload wipes regions the new snapshot no longer contains.
  for (size_t s = 0; s < shards_.size(); ++s) {
    CASPER_RETURN_IF_ERROR(shards_[s].client->Load(grouped[s]));
  }
  handle_shard_.clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].halfwidth_hw = 0.0;
    shards_[s].halfheight_hw = 0.0;
    region_counts_[s] = grouped[s].regions.size();
    for (const processor::PrivateTarget& r : grouped[s].regions) {
      handle_shard_[r.id] = s;
      NoteRegionExtents(s, r.region);
    }
    UpdateStoredGauge(s);
  }
  return Status::OK();
}

void ShardRouter::NoteRegionExtents(size_t shard, const Rect& region) {
  shards_[shard].halfwidth_hw =
      std::max(shards_[shard].halfwidth_hw, region.width() / 2.0);
  shards_[shard].halfheight_hw =
      std::max(shards_[shard].halfheight_hw, region.height() / 2.0);
}

void ShardRouter::UpdateStoredGauge(size_t shard) {
  metrics_.stored_objects[shard]->Set(
      static_cast<double>(public_counts_[shard] + region_counts_[shard]));
}

// --- Fan-out plumbing ------------------------------------------------------

bool ShardRouter::IsShardDown(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kDataLoss;
}

Result<CandidateListMsg> ShardRouter::CallShard(size_t shard,
                                                const CloakedQueryMsg& sub,
                                                MergeCtx* ctx) const {
  if (!ctx->touched[shard]) {
    ctx->touched[shard] = 1;
    ++ctx->touched_count;
  }
  metrics_.requests_total[shard]->Increment();
  auto result = shards_[shard].client->Execute(sub, nullptr);
  if (!result.ok() && IsShardDown(result.status())) {
    metrics_.errors_total[shard]->Increment();
  }
  return result;
}

Result<std::vector<processor::PublicTarget>> ShardRouter::FetchPublicUnion(
    const Rect& window, MergeCtx* ctx) const {
  std::vector<processor::PublicTarget> merged;
  if (window.is_empty()) return merged;
  CloakedQueryMsg sub;
  sub.kind = QueryKind::kRangePublic;
  sub.cloak = window;
  sub.radius = 0.0;
  size_t relevant = 0;
  size_t live = 0;
  for (size_t s : partition_.ShardsIntersecting(window)) {
    if (public_counts_[s] == 0) continue;
    ++relevant;
    auto answer = CallShard(s, sub, ctx);
    if (!answer.ok()) {
      if (IsShardDown(answer.status())) {
        ctx->degraded = true;
        continue;
      }
      return answer.status();
    }
    ++live;
    auto& list = std::get<processor::PublicRangeCandidates>(answer->payload);
    merged.insert(merged.end(), list.candidates.begin(),
                  list.candidates.end());
  }
  if (relevant > 0 && live == 0) {
    return Status::Unavailable("every shard relevant to the window is down");
  }
  // Ownership is disjoint, so the concatenation is duplicate-free and
  // the id-sort reproduces the single store's canonical order.
  SortById(&merged);
  return merged;
}

Result<std::vector<processor::PrivateTarget>> ShardRouter::FetchPrivateUnion(
    const Rect& window, MergeCtx* ctx) const {
  std::vector<processor::PrivateTarget> merged;
  if (window.is_empty()) return merged;
  CloakedQueryMsg sub;
  sub.kind = QueryKind::kPublicRange;
  sub.region = window;
  size_t relevant = 0;
  size_t live = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (region_counts_[s] == 0) continue;
    const Rect& bounds = partition_.ShardBounds(s);
    if (bounds.is_empty()) continue;
    // A region owned here has its center inside `bounds` and reaches at
    // most the shard's high-water half-extents beyond it.
    const Rect reach =
        bounds.ExpandedPerSide(shards_[s].halfwidth_hw,
                               shards_[s].halfheight_hw,
                               shards_[s].halfwidth_hw,
                               shards_[s].halfheight_hw);
    if (!reach.Intersects(window)) continue;
    ++relevant;
    auto answer = CallShard(s, sub, ctx);
    if (!answer.ok()) {
      if (IsShardDown(answer.status())) {
        ctx->degraded = true;
        continue;
      }
      return answer.status();
    }
    ++live;
    auto& counts = std::get<processor::RangeCountResult>(answer->payload);
    merged.insert(merged.end(), counts.overlapping.begin(),
                  counts.overlapping.end());
  }
  if (relevant > 0 && live == 0) {
    return Status::Unavailable("every shard relevant to the window is down");
  }
  SortById(&merged);
  return merged;
}

// --- Cross-shard NN bounds -------------------------------------------------

namespace {
struct ProbeOrder {
  size_t shard = 0;
  double lower = 0.0;  ///< MinDist(q, shard bounds): proof lower bound.
};

std::vector<ProbeOrder> OrderByLowerBound(const ShardPartition& partition,
                                          const std::vector<size_t>& counts,
                                          const Point& q) {
  std::vector<ProbeOrder> order;
  for (size_t s = 0; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    const Rect& bounds = partition.ShardBounds(s);
    if (bounds.is_empty()) continue;
    order.push_back({s, MinDist(q, bounds)});
  }
  std::sort(order.begin(), order.end(),
            [](const ProbeOrder& a, const ProbeOrder& b) {
              return a.lower < b.lower;
            });
  return order;
}
}  // namespace

Result<processor::FilterTarget> ShardRouter::GlobalNearestPublic(
    const Point& q, MergeCtx* ctx) const {
  CloakedQueryMsg probe;
  probe.kind = QueryKind::kNearestPublic;
  probe.cloak = Rect::FromPoint(q);

  bool found = false;
  double best_d = 0.0;
  processor::FilterTarget best;
  std::vector<double> down_lowers;
  for (const ProbeOrder& e :
       OrderByLowerBound(partition_, public_counts_, q)) {
    // Branch-and-bound: every target on this shard is at least `lower`
    // away, so once the best found distance beats the bound the rest of
    // the (sorted) shards cannot improve it.
    if (found && e.lower > best_d) break;
    metrics_.probe_calls_total->Increment();
    auto answer = CallShard(e.shard, probe, ctx);
    if (!answer.ok()) {
      if (IsShardDown(answer.status())) {
        down_lowers.push_back(e.lower);
        continue;
      }
      if (answer.status().code() == StatusCode::kNotFound) continue;
      return answer.status();
    }
    const auto& list =
        std::get<processor::PublicCandidateList>(answer->payload);
    for (const processor::PublicTarget& t : list.candidates) {
      const double d = Distance(q, t.position);
      if (!found || d < best_d || (d == best_d && t.id < best.id)) {
        found = true;
        best_d = d;
        best = processor::FilterTarget{t.id, Rect::FromPoint(t.position)};
      }
    }
  }
  if (!found) {
    if (!down_lowers.empty()) {
      return Status::Unavailable("every shard holding public targets is down");
    }
    return Status::NotFound("no public targets stored");
  }
  for (double lower : down_lowers) {
    if (lower <= best_d) {
      // The unreachable shard could have held a closer target.
      ctx->degraded = true;
      break;
    }
  }
  return best;
}

Result<processor::FilterTarget> ShardRouter::GlobalNearestPrivate(
    const Point& q, bool has_exclude, uint64_t exclude_handle,
    MergeCtx* ctx) const {
  CloakedQueryMsg probe;
  probe.kind = QueryKind::kNearestPrivate;
  probe.cloak = Rect::FromPoint(q);
  probe.has_exclude = has_exclude;
  probe.exclude_handle = exclude_handle;

  bool found = false;
  double best_d = 0.0;
  processor::FilterTarget best;
  std::vector<double> down_lowers;
  for (const ProbeOrder& e :
       OrderByLowerBound(partition_, region_counts_, q)) {
    // MaxDist(q, region) >= dist(q, center) >= MinDist(q, bounds)
    // because every owned region's *center* lies in the shard bounds.
    if (found && e.lower > best_d) break;
    metrics_.probe_calls_total->Increment();
    auto answer = CallShard(e.shard, probe, ctx);
    if (!answer.ok()) {
      if (IsShardDown(answer.status())) {
        down_lowers.push_back(e.lower);
        continue;
      }
      // "no eligible target in store": the shard holds only the
      // excluded region — it simply has no filter to offer.
      if (answer.status().code() == StatusCode::kNotFound) continue;
      return answer.status();
    }
    const auto& list =
        std::get<processor::PrivateCandidateList>(answer->payload);
    for (const processor::PrivateTarget& t : list.candidates) {
      const double d = MaxDist(q, t.region);
      if (!found || d < best_d || (d == best_d && t.id < best.id)) {
        found = true;
        best_d = d;
        best = processor::FilterTarget{t.id, t.region};
      }
    }
  }
  if (!found) {
    if (!down_lowers.empty()) {
      return Status::Unavailable("every shard holding regions is down");
    }
    return Status::NotFound("no eligible target in store");
  }
  for (double lower : down_lowers) {
    if (lower <= best_d) {
      ctx->degraded = true;
      break;
    }
  }
  return best;
}

Result<double> ShardRouter::GlobalKthDistance(const Point& q, uint64_t k,
                                              MergeCtx* ctx) const {
  CloakedQueryMsg probe;
  probe.kind = QueryKind::kKNearestPublic;
  probe.cloak = Rect::FromPoint(q);
  probe.k = k;

  // Probe in ascending order of MinDist(q, shard bounds), keeping the
  // running k-th smallest distance over everything collected so far.
  // Once k distances are in hand, a shard whose lower bound exceeds the
  // running d_k can only contribute distances >= d_k — adding them
  // cannot change the k-th smallest *value* — so the probe loop stops.
  std::vector<double> dists;
  const auto running_dk = [&]() {
    std::nth_element(dists.begin(),
                     dists.begin() + static_cast<ptrdiff_t>(k - 1),
                     dists.end());
    return dists[k - 1];
  };
  std::vector<double> down_lowers;
  for (const ProbeOrder& e :
       OrderByLowerBound(partition_, public_counts_, q)) {
    if (dists.size() >= k && e.lower > running_dk()) break;
    metrics_.probe_calls_total->Increment();
    auto answer = CallShard(e.shard, probe, ctx);
    if (!answer.ok() && answer.status().code() == StatusCode::kNotFound) {
      // Shard holds fewer than k targets — take everything it has. All
      // of a shard's targets lie inside its (closed) bounds box.
      CloakedQueryMsg full;
      full.kind = QueryKind::kRangePublic;
      full.cloak = partition_.ShardBounds(e.shard);
      full.radius = 0.0;
      answer = CallShard(e.shard, full, ctx);
    }
    if (!answer.ok()) {
      if (IsShardDown(answer.status())) {
        down_lowers.push_back(e.lower);
        continue;
      }
      return answer.status();
    }
    if (const auto* knn =
            std::get_if<processor::KnnCandidateList>(&answer->payload)) {
      for (const auto& t : knn->candidates) {
        dists.push_back(Distance(q, t.position));
      }
    } else {
      const auto& range =
          std::get<processor::PublicRangeCandidates>(answer->payload);
      for (const auto& t : range.candidates) {
        dists.push_back(Distance(q, t.position));
      }
    }
  }
  // The probed union contains the global k nearest (each shard
  // contributes its local k nearest, the global k nearest are locally
  // among the k nearest of their own shard, and pruned shards cannot
  // hold any of them), and every entry is a real target, so the union's
  // k-th smallest distance IS the global k-th distance.
  if (dists.size() < k) {
    if (!down_lowers.empty()) {
      return Status::Unavailable("too many shards down for the k-NN bound");
    }
    return Status::NotFound("store holds fewer than k targets");
  }
  const double dk = running_dk();
  // A dead shard only degrades the bound if it could have held one of
  // the k nearest — i.e. its lower bound does not exceed d_k.
  for (double lower : down_lowers) {
    if (lower <= dk) {
      ctx->degraded = true;
      break;
    }
  }
  return dk;
}

Result<double> ShardRouter::GlobalMinimaxBound(const Point& q,
                                               MergeCtx* ctx) const {
  CloakedQueryMsg probe;
  probe.kind = QueryKind::kPublicNearest;
  probe.point = q;

  bool found = false;
  double best = 0.0;
  std::vector<double> down_lowers;
  for (const ProbeOrder& e :
       OrderByLowerBound(partition_, region_counts_, q)) {
    // Per-shard minimax >= dist(q, some center) >= MinDist(q, bounds),
    // so a shard whose bound exceeds the best minimax cannot lower it.
    if (found && e.lower > best) break;
    metrics_.probe_calls_total->Increment();
    auto answer = CallShard(e.shard, probe, ctx);
    if (!answer.ok()) {
      if (IsShardDown(answer.status())) {
        down_lowers.push_back(e.lower);
        continue;
      }
      if (answer.status().code() == StatusCode::kNotFound) continue;
      return answer.status();
    }
    const double bound =
        std::get<processor::PublicNNCandidates>(answer->payload)
            .minimax_bound;
    if (!found || bound < best) {
      found = true;
      best = bound;
    }
  }
  if (!found) {
    if (!down_lowers.empty()) {
      return Status::Unavailable("every shard holding regions is down");
    }
    return Status::NotFound("no private targets stored");
  }
  for (double lower : down_lowers) {
    if (lower <= best) {
      ctx->degraded = true;
      break;
    }
  }
  return best;
}

// --- Per-kind merges -------------------------------------------------------

Status ShardRouter::MergeNearestPublic(const CloakedQueryMsg& query,
                                       MergeCtx* ctx,
                                       CandidateListMsg* response) const {
  if (query.cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  if (total_public_ == 0) {
    return Status::NotFound("no public targets stored");
  }
  const processor::NearestTargetFn nearest = [this, ctx](const Point& p) {
    return GlobalNearestPublic(p, ctx);
  };
  CASPER_ASSIGN_OR_RETURN(
      area, processor::ComputeExtendedAreaForPolicy(
                query.cloak, options_.server.filter_policy, nearest));
  processor::PublicCandidateList out;
  out.policy = options_.server.filter_policy;
  out.area = area;
  CASPER_ASSIGN_OR_RETURN(merged, FetchPublicUnion(area.a_ext, ctx));
  out.candidates = std::move(merged);
  response->payload = std::move(out);
  return Status::OK();
}

Status ShardRouter::MergeKNearestPublic(const CloakedQueryMsg& query,
                                        MergeCtx* ctx,
                                        CandidateListMsg* response) const {
  if (query.k == 0) return Status::InvalidArgument("k must be at least 1");
  if (query.cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  if (total_public_ < query.k) {
    return Status::NotFound("store holds fewer than k targets");
  }
  const auto corners = query.cloak.Corners();
  std::array<double, 4> d;
  for (size_t i = 0; i < 4; ++i) {
    CASPER_ASSIGN_OR_RETURN(kth, GlobalKthDistance(corners[i], query.k, ctx));
    d[i] = kth;
  }
  // Identical extension step to PrivateKNearestNeighbors — the shared
  // per-edge bound applied to the merged corner distances.
  const double w = query.cloak.width();
  const double h = query.cloak.height();
  const double bottom = processor::KnnEdgeExtension(d[0], d[1], w);
  const double right = processor::KnnEdgeExtension(d[1], d[2], h);
  const double top = processor::KnnEdgeExtension(d[2], d[3], w);
  const double left = processor::KnnEdgeExtension(d[3], d[0], h);
  processor::KnnCandidateList out;
  out.k = static_cast<size_t>(query.k);
  out.a_ext = query.cloak.ExpandedPerSide(left, bottom, right, top);
  CASPER_ASSIGN_OR_RETURN(merged, FetchPublicUnion(out.a_ext, ctx));
  out.candidates = std::move(merged);
  response->payload = std::move(out);
  return Status::OK();
}

Status ShardRouter::MergeRangePublic(const CloakedQueryMsg& query,
                                     MergeCtx* ctx,
                                     CandidateListMsg* response) const {
  if (query.cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  if (query.radius < 0.0) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  processor::PublicRangeCandidates out;
  out.search_window = query.cloak.Expanded(query.radius);
  CASPER_ASSIGN_OR_RETURN(merged, FetchPublicUnion(out.search_window, ctx));
  out.candidates = std::move(merged);
  response->payload = std::move(out);
  return Status::OK();
}

Status ShardRouter::MergeNearestPrivate(const CloakedQueryMsg& query,
                                        MergeCtx* ctx,
                                        CandidateListMsg* response) const {
  if (query.cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  if (handle_shard_.empty()) {
    return Status::NotFound("no private targets stored");
  }
  const processor::NearestTargetFn nearest = [&](const Point& p) {
    return GlobalNearestPrivate(p, query.has_exclude, query.exclude_handle,
                                ctx);
  };
  CASPER_ASSIGN_OR_RETURN(
      area, processor::ComputeExtendedAreaForPolicy(
                query.cloak, options_.server.filter_policy, nearest));
  processor::PrivateCandidateList out;
  out.policy = options_.server.filter_policy;
  out.area = area;
  // The server dispatch never sets min_overlap_fraction, and at
  // fraction 0 OverlappingAtLeast degenerates to plain overlap — which
  // is exactly what the per-shard kPublicRange fetch returns.
  CASPER_ASSIGN_OR_RETURN(merged, FetchPrivateUnion(area.a_ext, ctx));
  out.candidates = std::move(merged);
  if (query.has_exclude) {
    auto& cands = out.candidates;
    for (size_t i = 0; i < cands.size(); ++i) {
      if (cands[i].id == query.exclude_handle) {
        cands.erase(cands.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  response->payload = std::move(out);
  return Status::OK();
}

Status ShardRouter::MergePublicNearest(const CloakedQueryMsg& query,
                                       MergeCtx* ctx,
                                       CandidateListMsg* response) const {
  if (handle_shard_.empty()) {
    return Status::NotFound("no private targets stored");
  }
  CASPER_ASSIGN_OR_RETURN(bound, GlobalMinimaxBound(query.point, ctx));
  processor::PublicNNCandidates out;
  out.minimax_bound = bound;
  const Rect window = Rect::FromPoint(query.point).Expanded(bound);
  CASPER_ASSIGN_OR_RETURN(merged, FetchPrivateUnion(window, ctx));
  for (const processor::PrivateTarget& t : merged) {
    const double min_d = MinDist(query.point, t.region);
    if (min_d <= bound) {
      out.candidates.push_back(processor::PublicNNCandidates::Candidate{
          t, min_d, MaxDist(query.point, t.region)});
    }
  }
  std::sort(out.candidates.begin(), out.candidates.end(),
            [](const processor::PublicNNCandidates::Candidate& a,
               const processor::PublicNNCandidates::Candidate& b) {
              if (a.min_dist != b.min_dist) return a.min_dist < b.min_dist;
              return a.target.id < b.target.id;
            });
  response->payload = std::move(out);
  return Status::OK();
}

Status ShardRouter::MergePublicRange(const CloakedQueryMsg& query,
                                     MergeCtx* ctx,
                                     CandidateListMsg* response) const {
  if (query.region.is_empty()) {
    return Status::InvalidArgument("query region must be non-empty");
  }
  CASPER_ASSIGN_OR_RETURN(merged, FetchPrivateUnion(query.region, ctx));
  // Same id-sorted accumulation order as the single server, so the
  // floating-point `expected` sum matches bit for bit.
  response->payload = processor::AccumulateRangeCounts(merged, query.region);
  return Status::OK();
}

Status ShardRouter::MergeDensity(const CloakedQueryMsg& query, MergeCtx* ctx,
                                 CandidateListMsg* response) const {
  const Rect& extent = options_.server.density_extent;
  if (extent.is_empty()) {
    return Status::InvalidArgument("extent must be non-empty");
  }
  if (query.cols < 1 || query.rows < 1) {
    return Status::InvalidArgument("grid must be at least 1x1");
  }
  CASPER_ASSIGN_OR_RETURN(merged, FetchPrivateUnion(extent, ctx));
  CASPER_ASSIGN_OR_RETURN(
      map, processor::ExpectedDensityFromTargets(merged, extent, query.cols,
                                                 query.rows));
  response->payload = std::move(map);
  return Status::OK();
}

// --- Query entry point -----------------------------------------------------

Result<CandidateListMsg> ShardRouter::Execute(
    const CloakedQueryMsg& query) const {
  Stopwatch watch;
  RecordQueryLoad(query);
  MergeCtx ctx(shards_.size());
  CandidateListMsg response;
  response.kind = query.kind;
  response.request_id = query.request_id;
  Status merged = Status::InvalidArgument("unknown query kind");
  switch (query.kind) {
    case QueryKind::kNearestPublic:
      merged = MergeNearestPublic(query, &ctx, &response);
      break;
    case QueryKind::kKNearestPublic:
      merged = MergeKNearestPublic(query, &ctx, &response);
      break;
    case QueryKind::kRangePublic:
      merged = MergeRangePublic(query, &ctx, &response);
      break;
    case QueryKind::kNearestPrivate:
      merged = MergeNearestPrivate(query, &ctx, &response);
      break;
    case QueryKind::kPublicNearest:
      merged = MergePublicNearest(query, &ctx, &response);
      break;
    case QueryKind::kPublicRange:
      merged = MergePublicRange(query, &ctx, &response);
      break;
    case QueryKind::kDensity:
      merged = MergeDensity(query, &ctx, &response);
      break;
  }
  if (ctx.touched_count > 0) {
    metrics_.fanout_shards->Observe(static_cast<double>(ctx.touched_count));
  }
  if (!merged.ok()) {
    if (merged.code() == StatusCode::kUnavailable) {
      metrics_.unavailable_total->Increment();
    }
    return merged;
  }
  response.degraded = ctx.degraded;
  if (ctx.degraded) metrics_.degraded_answers_total->Increment();
  response.processor_seconds = watch.ElapsedSeconds();
  return response;
}

void ShardRouter::RecordQueryLoad(const CloakedQueryMsg& query) const {
  Point anchor;
  switch (query.kind) {
    case QueryKind::kPublicNearest:
      anchor = query.point;
      break;
    case QueryKind::kPublicRange:
      if (query.region.is_empty()) return;
      anchor = query.region.Center();
      break;
    case QueryKind::kDensity:
      if (options_.server.density_extent.is_empty()) return;
      anchor = options_.server.density_extent.Center();
      break;
    default:
      if (query.cloak.is_empty()) return;
      anchor = query.cloak.Center();
      break;
  }
  cell_loads_[partition_.CellCodeOf(anchor)].fetch_add(
      1, std::memory_order_relaxed);
}

// --- Hotspot rebalancing ---------------------------------------------------

namespace {
std::string ShardCheckpointPath(const std::string& dir, size_t shard) {
  return dir + "/shard" + std::to_string(shard);
}
}  // namespace

Status ShardRouter::Rebalance(const std::string& checkpoint_dir) {
  std::vector<uint64_t> loads(partition_.cell_count());
  for (size_t i = 0; i < loads.size(); ++i) {
    loads[i] = cell_loads_[i].load(std::memory_order_relaxed);
  }
  CASPER_ASSIGN_OR_RETURN(
      next, ShardPartition::Balanced(loads, shards_.size(),
                                     options_.partition_level,
                                     options_.space));
  if (next == partition_) return Status::OK();

  // Phase 1 — every shard checkpoints through the storage tier. A bad
  // checkpoint directory surfaces here as the disk backend's typed
  // kNotFound, before any shard state has changed.
  const size_t n = shards_.size();
  for (size_t s = 0; s < n; ++s) {
    CASPER_ASSIGN_OR_RETURN(
        sm, storage::DiskStorageManager::Create(
                ShardCheckpointPath(checkpoint_dir, s)));
    CASPER_RETURN_IF_ERROR(shards_[s].server->Save(sm.get()));
  }

  // Phase 2 — restore each checkpoint and deal the objects out by the
  // new ownership rule.
  std::vector<std::vector<processor::PublicTarget>> pub(n);
  std::vector<SnapshotMsg> priv(n);
  uint64_t moved = 0;
  for (size_t s = 0; s < n; ++s) {
    CASPER_ASSIGN_OR_RETURN(
        sm, storage::DiskStorageManager::Open(
                ShardCheckpointPath(checkpoint_dir, s)));
    server::QueryServer recovery(options_.server);
    CASPER_RETURN_IF_ERROR(recovery.Open(sm.get()));
    for (const processor::PublicTarget& t :
         recovery.public_store().RangeQuery(options_.space)) {
      const size_t owner = next.HomeShard(t.position);
      if (owner != s) ++moved;
      pub[owner].push_back(t);
    }
    for (const processor::PrivateTarget& r :
         recovery.private_store().Overlapping(options_.space)) {
      const size_t owner = next.HomeShard(r.region.Center());
      if (owner != s) ++moved;
      priv[owner].regions.push_back(r);
    }
  }

  // Phase 3 — install a fresh fleet under the new partition. Answers
  // are byte-identical across the swap because every candidate list is
  // a pure, canonically ordered function of the stored sets.
  std::vector<Shard> fleet = BuildShards(next);
  handle_shard_.clear();
  total_public_ = 0;
  for (size_t s = 0; s < n; ++s) {
    fleet[s].server->SetPublicTargets(pub[s]);
    public_counts_[s] = pub[s].size();
    total_public_ += pub[s].size();
    CASPER_RETURN_IF_ERROR(fleet[s].client->Load(priv[s]));
    region_counts_[s] = priv[s].regions.size();
    for (const processor::PrivateTarget& r : priv[s].regions) {
      handle_shard_[r.id] = s;
      fleet[s].halfwidth_hw =
          std::max(fleet[s].halfwidth_hw, r.region.width() / 2.0);
      fleet[s].halfheight_hw =
          std::max(fleet[s].halfheight_hw, r.region.height() / 2.0);
    }
  }
  shards_ = std::move(fleet);
  partition_ = next;
  for (size_t i = 0; i < partition_.cell_count(); ++i) {
    cell_loads_[i].store(0, std::memory_order_relaxed);
  }
  for (size_t s = 0; s < n; ++s) UpdateStoredGauge(s);
  metrics_.rebalances_total->Increment();
  metrics_.handoff_objects_total->Increment(moved);
  return Status::OK();
}

}  // namespace casper::sharding
