#include "src/network/road_network.h"

#include <algorithm>

namespace casper::network {

double SpeedOf(RoadClass cls) {
  // Speeds are expressed in space-units per second for a unit-square
  // city: a highway crossing of the whole map takes ~50 s, so per-tick
  // displacements stay small ("reasonable speeds", §4.2) and location
  // updates mostly stay within a pyramid cell, as in the paper's setup.
  switch (cls) {
    case RoadClass::kHighway: return 0.02;
    case RoadClass::kArterial: return 0.01;
    case RoadClass::kLocal: return 0.005;
  }
  return 0.005;
}

NodeId RoadEdge::Other(NodeId n) const {
  CASPER_DCHECK(n == from || n == to);
  return n == from ? to : from;
}

NodeId RoadNetwork::AddNode(const Point& position) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(RoadNode{id, position});
  adjacency_.emplace_back();
  return id;
}

Result<EdgeId> RoadNetwork::AddEdge(NodeId a, NodeId b, RoadClass cls) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    return Status::NotFound("edge endpoint does not exist");
  }
  if (a == b) return Status::InvalidArgument("self loops are not allowed");
  if (HasEdge(a, b)) return Status::AlreadyExists("duplicate edge");

  const EdgeId id = static_cast<EdgeId>(edges_.size());
  const double length = Distance(nodes_[a].position, nodes_[b].position);
  edges_.push_back(RoadEdge{id, a, b, cls, length});
  adjacency_[a].push_back(id);
  adjacency_[b].push_back(id);
  return id;
}

bool RoadNetwork::HasEdge(NodeId a, NodeId b) const {
  if (a >= adjacency_.size()) return false;
  for (EdgeId eid : adjacency_[a]) {
    const RoadEdge& e = edges_[eid];
    if ((e.from == a && e.to == b) || (e.from == b && e.to == a)) return true;
  }
  return false;
}

Rect RoadNetwork::bounds() const {
  Rect box;
  for (const RoadNode& n : nodes_) box = box.Union(Rect::FromPoint(n.position));
  return box;
}

NodeId RoadNetwork::NearestNode(const Point& p) const {
  NodeId best = kInvalidNode;
  double best_d = 0.0;
  for (const RoadNode& n : nodes_) {
    const double d = SquaredDistance(p, n.position);
    if (best == kInvalidNode || d < best_d) {
      best = n.id;
      best_d = d;
    }
  }
  return best;
}

std::vector<std::vector<NodeId>> RoadNetwork::ConnectedComponents() const {
  std::vector<std::vector<NodeId>> components;
  std::vector<bool> seen(nodes_.size(), false);
  for (NodeId start = 0; start < nodes_.size(); ++start) {
    if (seen[start]) continue;
    std::vector<NodeId> component;
    std::vector<NodeId> stack{start};
    seen[start] = true;
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      component.push_back(n);
      for (EdgeId eid : adjacency_[n]) {
        const NodeId other = edges_[eid].Other(n);
        if (!seen[other]) {
          seen[other] = true;
          stack.push_back(other);
        }
      }
    }
    components.push_back(std::move(component));
  }
  return components;
}

bool RoadNetwork::IsConnected() const {
  if (nodes_.empty()) return true;
  return ConnectedComponents().size() == 1;
}

}  // namespace casper::network
