#include "src/network/network_generator.h"

#include <algorithm>

namespace casper::network {

namespace {

/// Road class of the grid line with index `i` (row or column).
RoadClass LineClass(int i, const NetworkGeneratorOptions& opt) {
  if (opt.highway_every > 0 && i % opt.highway_every == 0) {
    return RoadClass::kHighway;
  }
  if (opt.arterial_every > 0 && i % opt.arterial_every == 0) {
    return RoadClass::kArterial;
  }
  return RoadClass::kLocal;
}

}  // namespace

Result<RoadNetwork> NetworkGenerator::Generate(uint64_t seed) const {
  const NetworkGeneratorOptions& opt = options_;
  if (opt.rows < 2 || opt.cols < 2) {
    return Status::InvalidArgument("need at least a 2x2 grid");
  }
  if (opt.jitter < 0.0 || opt.jitter >= 0.5) {
    return Status::InvalidArgument("jitter must be in [0, 0.5)");
  }
  if (opt.space.is_empty()) {
    return Status::InvalidArgument("space must be non-empty");
  }
  if (opt.diagonal_prob < 0.0 || opt.diagonal_prob > 1.0 ||
      opt.dropout_prob < 0.0 || opt.dropout_prob >= 1.0) {
    return Status::InvalidArgument("probabilities out of range");
  }

  Rng rng(seed);
  RoadNetwork net;

  const double dx = opt.space.width() / (opt.cols - 1);
  const double dy = opt.space.height() / (opt.rows - 1);

  // Jittered grid of intersections. Border nodes stay inside the space.
  std::vector<NodeId> grid(static_cast<size_t>(opt.rows) *
                           static_cast<size_t>(opt.cols));
  auto at = [&](int r, int c) -> NodeId& {
    return grid[static_cast<size_t>(r) * static_cast<size_t>(opt.cols) +
                static_cast<size_t>(c)];
  };
  for (int r = 0; r < opt.rows; ++r) {
    for (int c = 0; c < opt.cols; ++c) {
      const double jx = rng.Uniform(-opt.jitter, opt.jitter) * dx;
      const double jy = rng.Uniform(-opt.jitter, opt.jitter) * dy;
      Point p{opt.space.min.x + c * dx + jx, opt.space.min.y + r * dy + jy};
      p = ClampToRect(p, opt.space);
      at(r, c) = net.AddNode(p);
    }
  }

  // Grid streets. Horizontal edges take the row's class, vertical edges
  // the column's class; local streets may drop out.
  for (int r = 0; r < opt.rows; ++r) {
    for (int c = 0; c < opt.cols; ++c) {
      if (c + 1 < opt.cols) {
        const RoadClass cls = LineClass(r, opt);
        if (cls != RoadClass::kLocal || !rng.Bernoulli(opt.dropout_prob)) {
          auto st = net.AddEdge(at(r, c), at(r, c + 1), cls);
          CASPER_DCHECK(st.ok());
        }
      }
      if (r + 1 < opt.rows) {
        const RoadClass cls = LineClass(c, opt);
        if (cls != RoadClass::kLocal || !rng.Bernoulli(opt.dropout_prob)) {
          auto st = net.AddEdge(at(r, c), at(r + 1, c), cls);
          CASPER_DCHECK(st.ok());
        }
      }
    }
  }

  // Diagonal shortcuts inside grid squares (alternating orientation so
  // diagonals never cross each other).
  for (int r = 0; r + 1 < opt.rows; ++r) {
    for (int c = 0; c + 1 < opt.cols; ++c) {
      if (!rng.Bernoulli(opt.diagonal_prob)) continue;
      if ((r + c) % 2 == 0) {
        (void)net.AddEdge(at(r, c), at(r + 1, c + 1), RoadClass::kLocal);
      } else {
        (void)net.AddEdge(at(r, c + 1), at(r + 1, c), RoadClass::kLocal);
      }
    }
  }

  // Repair connectivity broken by dropout: link each extra component to
  // the main one through the closest node pair.
  std::vector<std::vector<NodeId>> components = net.ConnectedComponents();
  while (components.size() > 1) {
    // Largest component is the backbone.
    size_t main_idx = 0;
    for (size_t i = 1; i < components.size(); ++i) {
      if (components[i].size() > components[main_idx].size()) main_idx = i;
    }
    for (size_t i = 0; i < components.size(); ++i) {
      if (i == main_idx) continue;
      NodeId best_a = kInvalidNode, best_b = kInvalidNode;
      double best_d = 0.0;
      for (NodeId a : components[i]) {
        for (NodeId b : components[main_idx]) {
          const double d =
              SquaredDistance(net.node(a).position, net.node(b).position);
          if (best_a == kInvalidNode || d < best_d) {
            best_a = a;
            best_b = b;
            best_d = d;
          }
        }
      }
      auto st = net.AddEdge(best_a, best_b, RoadClass::kLocal);
      CASPER_DCHECK(st.ok());
    }
    components = net.ConnectedComponents();
  }

  CASPER_DCHECK(net.IsConnected());
  return net;
}

}  // namespace casper::network
