#ifndef CASPER_NETWORK_MOVING_OBJECTS_H_
#define CASPER_NETWORK_MOVING_OBJECTS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/network/road_network.h"
#include "src/network/shortest_path.h"

/// \file
/// Network-based moving-object simulator in the style of Brinkhoff's
/// generator [Brinkhoff, GeoInformatica 2002], which the paper uses to
/// drive all experiments (§6). Objects travel along shortest routes
/// between random network nodes at road-class speeds (scaled by a
/// per-object agility factor) and re-route upon arrival.

namespace casper::network {

using ObjectId = uint64_t;

/// One position report, the `(uid, x, y)` update of §4.1.
struct LocationUpdate {
  ObjectId uid = 0;
  Point position;
  uint64_t tick = 0;
};

struct SimulatorOptions {
  /// Number of moving objects.
  size_t object_count = 1000;

  /// Simulated seconds per tick.
  double tick_seconds = 1.0;

  /// Per-object speed factor drawn uniformly from this range; multiplies
  /// the road-class speed (models slow/fast object classes).
  double min_speed_factor = 0.5;
  double max_speed_factor = 1.5;
};

/// Degenerate-input accounting for the simulator.
struct SimulatorStats {
  /// Ticks where an object made no measurable progress within the
  /// per-tick iteration bound (zero-length edge chains, degenerate
  /// speeds) and was parked at its route head for the tick.
  uint64_t zero_progress_fallbacks = 0;
};

/// Simulates `object_count` objects over a road network. Deterministic
/// for a given seed. The network must outlive the simulator.
class MovingObjectSimulator {
 public:
  /// The network must be connected and non-empty.
  MovingObjectSimulator(const RoadNetwork* network, SimulatorOptions options,
                        uint64_t seed);

  /// Advance the simulation one tick and return a position update for
  /// every object (all objects report every tick, as in the paper's
  /// "continuous location updates" model).
  std::vector<LocationUpdate> Tick();

  /// Current position of an object (uid in [0, object_count)).
  Point PositionOf(ObjectId uid) const;

  size_t object_count() const { return objects_.size(); }
  uint64_t current_tick() const { return tick_; }
  const RoadNetwork& network() const { return *network_; }
  const SimulatorStats& stats() const { return stats_; }

  /// Change the simulated seconds per tick between ticks (scenario
  /// scripts vary it to model rush-hour congestion). Must be positive
  /// and finite.
  void set_tick_seconds(double seconds);
  double tick_seconds() const { return options_.tick_seconds; }

 private:
  struct ObjectState {
    Route route;
    size_t edge_index = 0;      ///< Index into route.edges.
    double offset = 0.0;        ///< Distance traveled along current edge.
    double speed_factor = 1.0;
    Point position;
  };

  void AssignNewRoute(ObjectState* obj, NodeId from);
  /// Position `offset` space units from the start of route edge `idx`.
  Point PointOnEdge(const Route& route, size_t idx, double offset) const;

  const RoadNetwork* network_;
  SimulatorOptions options_;
  Rng rng_;
  std::vector<ObjectState> objects_;
  SimulatorStats stats_;
  uint64_t tick_ = 0;
};

}  // namespace casper::network

#endif  // CASPER_NETWORK_MOVING_OBJECTS_H_
