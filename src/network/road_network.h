#ifndef CASPER_NETWORK_ROAD_NETWORK_H_
#define CASPER_NETWORK_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/result.h"
#include "src/common/status.h"

/// \file
/// Road-network substrate for the Brinkhoff-style moving-object
/// generator (the paper feeds the generator the Hennepin County road
/// map; we substitute a synthetic network, see DESIGN.md).
///
/// The network is an undirected graph of spatial nodes connected by
/// edges of three road classes with different free-flow speeds.

namespace casper::network {

using NodeId = uint32_t;
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Road classes, from fastest to slowest.
enum class RoadClass : uint8_t {
  kHighway = 0,
  kArterial = 1,
  kLocal = 2,
};

/// Free-flow speed of a road class, in space units per time unit.
double SpeedOf(RoadClass cls);

struct RoadNode {
  NodeId id = kInvalidNode;
  Point position;
};

struct RoadEdge {
  EdgeId id = 0;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  RoadClass cls = RoadClass::kLocal;
  double length = 0.0;

  /// Travel time at free-flow speed.
  double TravelTime() const { return length / SpeedOf(cls); }

  /// The endpoint that is not `n` (DCHECKs that `n` is an endpoint).
  NodeId Other(NodeId n) const;
};

/// An undirected spatial graph. Nodes and edges are append-only; ids are
/// dense indices.
class RoadNetwork {
 public:
  NodeId AddNode(const Point& position);

  /// Adds an undirected edge; length is the Euclidean node distance.
  /// Fails on unknown endpoints, self loops, or duplicate edges.
  Result<EdgeId> AddEdge(NodeId a, NodeId b, RoadClass cls);

  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const { return edges_.size(); }

  const RoadNode& node(NodeId id) const {
    CASPER_DCHECK(id < nodes_.size());
    return nodes_[id];
  }
  const RoadEdge& edge(EdgeId id) const {
    CASPER_DCHECK(id < edges_.size());
    return edges_[id];
  }

  /// Edges incident to `id`.
  const std::vector<EdgeId>& IncidentEdges(NodeId id) const {
    CASPER_DCHECK(id < adjacency_.size());
    return adjacency_[id];
  }

  /// True when an edge already connects `a` and `b`.
  bool HasEdge(NodeId a, NodeId b) const;

  /// Bounding box of all node positions.
  Rect bounds() const;

  /// Node closest to `p` (linear scan; the generator builds a grid for
  /// hot paths). kInvalidNode when the network is empty.
  NodeId NearestNode(const Point& p) const;

  /// Whether every node can reach every other node.
  bool IsConnected() const;

  /// Connected components as lists of node ids (for repair passes).
  std::vector<std::vector<NodeId>> ConnectedComponents() const;

 private:
  std::vector<RoadNode> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

}  // namespace casper::network

#endif  // CASPER_NETWORK_ROAD_NETWORK_H_
