#include "src/network/moving_objects.h"

#include <algorithm>
#include <cmath>

namespace casper::network {

MovingObjectSimulator::MovingObjectSimulator(const RoadNetwork* network,
                                             SimulatorOptions options,
                                             uint64_t seed)
    : network_(network), options_(options), rng_(seed) {
  CASPER_DCHECK(network_ != nullptr);
  CASPER_DCHECK(network_->node_count() >= 2);
  CASPER_DCHECK(options_.min_speed_factor > 0.0);
  CASPER_DCHECK(options_.min_speed_factor <= options_.max_speed_factor);

  objects_.resize(options_.object_count);
  for (ObjectState& obj : objects_) {
    obj.speed_factor =
        rng_.Uniform(options_.min_speed_factor, options_.max_speed_factor);
    const NodeId start =
        static_cast<NodeId>(rng_.UniformInt(0, network_->node_count() - 1));
    obj.position = network_->node(start).position;
    AssignNewRoute(&obj, start);
  }
}

void MovingObjectSimulator::AssignNewRoute(ObjectState* obj, NodeId from) {
  // Pick a distinct random destination; the network is connected so the
  // route always exists.
  NodeId to = from;
  while (to == from) {
    to = static_cast<NodeId>(rng_.UniformInt(0, network_->node_count() - 1));
  }
  auto route = ShortestPathAStar(*network_, from, to);
  CASPER_DCHECK(route.ok());
  obj->route = std::move(route).value();
  obj->edge_index = 0;
  obj->offset = 0.0;
}

Point MovingObjectSimulator::PointOnEdge(const Route& route, size_t idx,
                                         double offset) const {
  const RoadEdge& e = network_->edge(route.edges[idx]);
  const Point a = network_->node(route.nodes[idx]).position;
  const Point b = network_->node(route.nodes[idx + 1]).position;
  const double t = e.length > 0.0 ? std::clamp(offset / e.length, 0.0, 1.0)
                                  : 1.0;
  return Point{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

std::vector<LocationUpdate> MovingObjectSimulator::Tick() {
  ++tick_;
  std::vector<LocationUpdate> updates;
  updates.reserve(objects_.size());

  for (size_t i = 0; i < objects_.size(); ++i) {
    ObjectState& obj = objects_[i];
    double budget = options_.tick_seconds;

    // Consume travel budget edge by edge; on arrival, immediately start
    // a new route (continuing within the same tick). Zero-length edges
    // and degenerate speeds consume no budget, so the loop is bounded:
    // each iteration must either spend budget or advance an edge, and
    // after `kMaxIterations` zero-progress iterations the object is
    // parked for the tick (typed fallback, counted in stats) instead of
    // spinning forever.
    const size_t kMaxIterations =
        64 + 2 * std::max<size_t>(network_->edge_count(), 1);
    size_t iterations = 0;
    while (budget > 0.0) {
      if (++iterations > kMaxIterations) {
        ++stats_.zero_progress_fallbacks;
        break;
      }
      if (obj.edge_index >= obj.route.edges.size()) {
        AssignNewRoute(&obj, obj.route.nodes.back());
        continue;
      }
      const RoadEdge& e = network_->edge(obj.route.edges[obj.edge_index]);
      const double speed = SpeedOf(e.cls) * obj.speed_factor;
      const double remaining = e.length - obj.offset;
      const double step = speed * budget;
      if (!(speed > 0.0) || remaining <= 0.0) {
        // No time passes crossing a zero-length edge (or a stalled
        // object cannot cross at all): skip the edge without touching
        // the budget rather than dividing by zero below.
        obj.offset = 0.0;
        ++obj.edge_index;
        continue;
      }
      if (step < remaining) {
        obj.offset += step;
        budget = 0.0;
      } else {
        budget -= remaining / speed;
        obj.offset = 0.0;
        ++obj.edge_index;
      }
    }
    CASPER_DCHECK(budget <= 0.0 || iterations > kMaxIterations);

    if (obj.edge_index >= obj.route.edges.size()) {
      obj.position = network_->node(obj.route.nodes.back()).position;
    } else {
      obj.position = PointOnEdge(obj.route, obj.edge_index, obj.offset);
    }
    updates.push_back(LocationUpdate{static_cast<ObjectId>(i), obj.position,
                                     tick_});
  }
  return updates;
}

void MovingObjectSimulator::set_tick_seconds(double seconds) {
  CASPER_DCHECK(seconds > 0.0 && std::isfinite(seconds));
  options_.tick_seconds = seconds;
}

Point MovingObjectSimulator::PositionOf(ObjectId uid) const {
  CASPER_DCHECK(uid < objects_.size());
  return objects_[uid].position;
}

}  // namespace casper::network
