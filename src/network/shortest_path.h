#ifndef CASPER_NETWORK_SHORTEST_PATH_H_
#define CASPER_NETWORK_SHORTEST_PATH_H_

#include <vector>

#include "src/common/result.h"
#include "src/network/road_network.h"

/// \file
/// Shortest-path routing over a RoadNetwork, minimizing free-flow travel
/// time. Plain Dijkstra plus an A* variant with the admissible
/// straight-line-at-highway-speed heuristic; both return identical routes.

namespace casper::network {

/// A route from `nodes.front()` to `nodes.back()`; `edges[i]` connects
/// `nodes[i]` to `nodes[i+1]`.
struct Route {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  double travel_time = 0.0;
  double length = 0.0;

  bool empty() const { return nodes.empty(); }
};

/// Dijkstra over travel time. Returns NotFound when `to` is unreachable
/// from `from` (cannot happen on generator output, which is connected).
Result<Route> ShortestPath(const RoadNetwork& net, NodeId from, NodeId to);

/// A* with straight-line / max-speed heuristic; same result as Dijkstra,
/// fewer node expansions on large networks.
Result<Route> ShortestPathAStar(const RoadNetwork& net, NodeId from,
                                NodeId to);

}  // namespace casper::network

#endif  // CASPER_NETWORK_SHORTEST_PATH_H_
