#ifndef CASPER_NETWORK_NETWORK_GENERATOR_H_
#define CASPER_NETWORK_NETWORK_GENERATOR_H_

#include "src/common/rng.h"
#include "src/network/road_network.h"

/// \file
/// Synthetic road-network generator. Stands in for the Hennepin County
/// road map the paper feeds to the Brinkhoff generator: a jittered grid
/// of intersections with highway rows/columns, arterial rows/columns,
/// diagonal shortcuts, and random local-street dropout — yielding the
/// skewed, network-constrained user distribution the experiments need
/// (see DESIGN.md substitutions).

namespace casper::network {

struct NetworkGeneratorOptions {
  /// Intersection grid dimensions (nodes per side).
  int rows = 24;
  int cols = 24;

  /// The spatial extent of the generated network.
  Rect space = Rect(0.0, 0.0, 1.0, 1.0);

  /// Maximum node displacement as a fraction of grid spacing, in [0, 0.5).
  double jitter = 0.3;

  /// Every `highway_every`-th row/column is a highway (0 disables).
  int highway_every = 8;

  /// Every `arterial_every`-th row/column is an arterial (0 disables).
  int arterial_every = 4;

  /// Probability of adding a diagonal shortcut inside a grid square.
  double diagonal_prob = 0.1;

  /// Probability of dropping a local street (connectivity is repaired
  /// afterwards, so the result is always a single component).
  double dropout_prob = 0.15;
};

/// Generates a connected synthetic road network.
class NetworkGenerator {
 public:
  explicit NetworkGenerator(NetworkGeneratorOptions options)
      : options_(options) {}

  /// Build a network; deterministic for a given seed. Returns
  /// InvalidArgument for degenerate options (fewer than 2 rows/cols,
  /// jitter out of range, empty space).
  Result<RoadNetwork> Generate(uint64_t seed) const;

  const NetworkGeneratorOptions& options() const { return options_; }

 private:
  NetworkGeneratorOptions options_;
};

}  // namespace casper::network

#endif  // CASPER_NETWORK_NETWORK_GENERATOR_H_
