#include "src/network/shortest_path.h"

#include <limits>
#include <queue>

namespace casper::network {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared search core. `heuristic(n)` must lower-bound the remaining
/// travel time from n to the goal (0 for Dijkstra).
template <typename Heuristic>
Result<Route> Search(const RoadNetwork& net, NodeId from, NodeId to,
                     Heuristic heuristic) {
  if (from >= net.node_count() || to >= net.node_count()) {
    return Status::NotFound("unknown node id");
  }

  std::vector<double> dist(net.node_count(), kInf);
  std::vector<EdgeId> via_edge(net.node_count(), 0);
  std::vector<NodeId> via_node(net.node_count(), kInvalidNode);
  std::vector<bool> settled(net.node_count(), false);

  using QueueEntry = std::pair<double, NodeId>;  // (f-cost, node)
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  dist[from] = 0.0;
  frontier.emplace(heuristic(from), from);

  while (!frontier.empty()) {
    const NodeId n = frontier.top().second;
    frontier.pop();
    if (settled[n]) continue;
    settled[n] = true;
    if (n == to) break;
    for (EdgeId eid : net.IncidentEdges(n)) {
      const RoadEdge& e = net.edge(eid);
      const NodeId m = e.Other(n);
      const double candidate = dist[n] + e.TravelTime();
      if (candidate < dist[m]) {
        dist[m] = candidate;
        via_edge[m] = eid;
        via_node[m] = n;
        frontier.emplace(candidate + heuristic(m), m);
      }
    }
  }

  if (dist[to] == kInf) return Status::NotFound("destination unreachable");

  Route route;
  route.travel_time = dist[to];
  for (NodeId n = to; n != from; n = via_node[n]) {
    route.nodes.push_back(n);
    route.edges.push_back(via_edge[n]);
    route.length += net.edge(via_edge[n]).length;
  }
  route.nodes.push_back(from);
  std::reverse(route.nodes.begin(), route.nodes.end());
  std::reverse(route.edges.begin(), route.edges.end());
  return route;
}

}  // namespace

Result<Route> ShortestPath(const RoadNetwork& net, NodeId from, NodeId to) {
  return Search(net, from, to, [](NodeId) { return 0.0; });
}

Result<Route> ShortestPathAStar(const RoadNetwork& net, NodeId from,
                                NodeId to) {
  if (to >= net.node_count()) return Status::NotFound("unknown node id");
  const Point goal = net.node(to).position;
  const double max_speed = SpeedOf(RoadClass::kHighway);
  return Search(net, from, to, [&net, goal, max_speed](NodeId n) {
    return Distance(net.node(n).position, goal) / max_speed;
  });
}

}  // namespace casper::network
