#ifndef CASPER_PROCESSOR_PRIVATE_RANGE_H_
#define CASPER_PROCESSOR_PRIVATE_RANGE_H_

#include <vector>

#include "src/common/result.h"
#include "src/processor/target_store.h"

/// \file
/// Private *range* queries — "every gas station within distance r of
/// me" — behind a cloaked region. The paper notes the extension from NN
/// queries is straightforward (§5): since the user may be anywhere in
/// her cloak A, the inclusive-and-minimal candidate region is A
/// expanded by r on every side (the Minkowski sum with the radius-r
/// ball, conservatively rectangularized); the client filters the exact
/// circular range locally.

namespace casper::processor {

struct PublicRangeCandidates {
  std::vector<PublicTarget> candidates;
  /// The expanded server-side search window.
  Rect search_window;

  friend bool operator==(const PublicRangeCandidates& a,
                         const PublicRangeCandidates& b) {
    return a.candidates == b.candidates && a.search_window == b.search_window;
  }
};

struct PrivateRangeCandidates {
  std::vector<PrivateTarget> candidates;
  Rect search_window;

  friend bool operator==(const PrivateRangeCandidates& a,
                         const PrivateRangeCandidates& b) {
    return a.candidates == b.candidates && a.search_window == b.search_window;
  }
};

/// Candidates for a private circular range query (radius `r`) over
/// public point data. Inclusive: every target within distance r of any
/// point of `cloak` is returned.
Result<PublicRangeCandidates> PrivateRangeOverPublic(
    const PublicTargetStore& store, const Rect& cloak, double radius);

/// Same over private (cloaked) target data; a candidate is any region
/// that could contain an object within distance r of the user.
Result<PrivateRangeCandidates> PrivateRangeOverPrivate(
    const PrivateTargetStore& store, const Rect& cloak, double radius);

/// Client-side refinement: the candidates truly within `radius` of the
/// user's exact position (for private targets: possibly within — their
/// region intersects the exact query circle's bounding box).
std::vector<PublicTarget> RefineRange(
    const std::vector<PublicTarget>& candidates, const Point& user_position,
    double radius);

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_PRIVATE_RANGE_H_
