#ifndef CASPER_PROCESSOR_PRIVATE_KNN_H_
#define CASPER_PROCESSOR_PRIVATE_KNN_H_

#include <vector>

#include "src/common/result.h"
#include "src/processor/target_store.h"

/// \file
/// k-nearest-neighbor extension of Algorithm 2 (§5 notes extensions to
/// other query types are straightforward; this makes the claim
/// concrete). For each cloak vertex v_i the filter distance becomes
/// d_i = distance to the k-th nearest target — an upper bound on the
/// k-NN radius of any user at v_i. Along an edge (v_i, v_j) of length
/// L, the k-NN radius at p is bounded by
///     min(d_i + |p - v_i|, d_j + |p - v_j|)
/// (triangle inequality: the k targets serving v_i serve p at the
/// extra cost of |p - v_i|). The maximum of this bound over the edge is
///     max(d_i, d_j)                 when |d_i - d_j| >= L,
///     (d_i + d_j + L) / 2           otherwise,
/// which is the per-side extension distance. The candidate list (all
/// targets in the extended area) then provably contains the exact k
/// nearest targets of every possible user position in the cloak.

namespace casper::processor {

struct KnnCandidateList {
  std::vector<PublicTarget> candidates;
  Rect a_ext;
  size_t k = 1;

  size_t size() const { return candidates.size(); }

  friend bool operator==(const KnnCandidateList& a,
                         const KnnCandidateList& b) {
    return a.candidates == b.candidates && a.a_ext == b.a_ext && a.k == b.k;
  }
};

/// Maximum over an edge of length `length` of the per-point k-NN radius
/// bound min(d_i + |p - v_i|, d_j + |p - v_j|) — the per-side extension
/// distance of the filter step (see file comment). Shared with the
/// shard router, which re-derives the same extension from the per-shard
/// filter minima so a cross-shard merge reproduces the single-server
/// extended area exactly.
double KnnEdgeExtension(double d_i, double d_j, double length);

/// Candidate list for a private k-NN query over public data.
/// InvalidArgument for k == 0 or empty cloak; NotFound when the store
/// holds fewer than k targets.
Result<KnnCandidateList> PrivateKNearestNeighbors(
    const PublicTargetStore& store, const Rect& cloak, size_t k);

/// Client-side refinement: the exact k nearest candidates, ascending by
/// distance to `user_position`.
std::vector<PublicTarget> RefineKNearest(
    const std::vector<PublicTarget>& candidates, const Point& user_position,
    size_t k);

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_PRIVATE_KNN_H_
