#ifndef CASPER_PROCESSOR_PRIVATE_NN_H_
#define CASPER_PROCESSOR_PRIVATE_NN_H_

#include <vector>

#include "src/common/result.h"
#include "src/processor/extended_area.h"
#include "src/processor/target_store.h"

/// \file
/// Private nearest-neighbor queries over *public* data (§5.1,
/// Algorithm 2): "where is my nearest gas station?" asked from behind a
/// cloaked region. The server returns a candidate list that provably
/// contains the querying user's exact nearest target no matter where in
/// the cloak she actually is (Theorem 1), computed from the minimal
/// extended range (Theorem 2). The client refines locally.

namespace casper::processor {

/// Server answer for a private NN query over public data.
struct PublicCandidateList {
  std::vector<PublicTarget> candidates;
  ExtendedArea area;
  FilterPolicy policy = FilterPolicy::kFourFilters;

  size_t size() const { return candidates.size(); }

  friend bool operator==(const PublicCandidateList& a,
                         const PublicCandidateList& b) {
    return a.candidates == b.candidates && a.area == b.area &&
           a.policy == b.policy;
  }
};

/// Sorts a candidate list into its canonical (ascending-id) wire order.
/// Every processor emits candidates in this order so that answers are a
/// pure function of the stored *set* of targets — independent of tree
/// shape, insertion order, or which shard held which target.
void CanonicalizeCandidates(std::vector<PublicTarget>* candidates);

/// Executes Algorithm 2 against `store` for the cloaked region `cloak`.
/// Fails with NotFound when the store is empty and InvalidArgument for
/// an empty cloak.
Result<PublicCandidateList> PrivateNearestNeighbor(
    const PublicTargetStore& store, const Rect& cloak,
    FilterPolicy policy = FilterPolicy::kFourFilters);

/// Client-side refinement step: the exact nearest candidate to the
/// user's true position. NotFound on an empty candidate list (cannot
/// happen for lists produced by PrivateNearestNeighbor on a non-empty
/// store).
Result<PublicTarget> RefineNearest(const std::vector<PublicTarget>& candidates,
                                   const Point& user_position);

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_PRIVATE_NN_H_
