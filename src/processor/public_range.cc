#include "src/processor/public_range.h"

#include <algorithm>

namespace casper::processor {

void CanonicalizePrivateTargets(std::vector<PrivateTarget>* targets) {
  std::sort(targets->begin(), targets->end(),
            [](const PrivateTarget& a, const PrivateTarget& b) {
              return a.id < b.id;
            });
}

RangeCountResult AccumulateRangeCounts(
    const std::vector<PrivateTarget>& overlapping, const Rect& query) {
  RangeCountResult result;
  result.overlapping = overlapping;
  result.possible = result.overlapping.size();
  for (const PrivateTarget& t : result.overlapping) {
    const double area = t.region.Area();
    double fraction;
    if (area > 0.0) {
      fraction = t.region.IntersectionArea(query) / area;
    } else {
      // Degenerate region: the user position is known exactly; the
      // overlap test already established containment.
      fraction = 1.0;
    }
    result.expected += fraction;
    if (query.Contains(t.region)) ++result.certain;
  }
  return result;
}

Result<RangeCountResult> PublicRangeCount(const PrivateTargetStore& store,
                                          const Rect& query) {
  if (query.is_empty()) {
    return Status::InvalidArgument("query region must be non-empty");
  }
  std::vector<PrivateTarget> overlapping = store.Overlapping(query);
  CanonicalizePrivateTargets(&overlapping);
  return AccumulateRangeCounts(overlapping, query);
}

}  // namespace casper::processor
