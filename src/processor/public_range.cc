#include "src/processor/public_range.h"

namespace casper::processor {

Result<RangeCountResult> PublicRangeCount(const PrivateTargetStore& store,
                                          const Rect& query) {
  if (query.is_empty()) {
    return Status::InvalidArgument("query region must be non-empty");
  }
  RangeCountResult result;
  result.overlapping = store.Overlapping(query);
  result.possible = result.overlapping.size();
  for (const PrivateTarget& t : result.overlapping) {
    const double area = t.region.Area();
    double fraction;
    if (area > 0.0) {
      fraction = t.region.IntersectionArea(query) / area;
    } else {
      // Degenerate region: the user position is known exactly; the
      // overlap test already established containment.
      fraction = 1.0;
    }
    result.expected += fraction;
    if (query.Contains(t.region)) ++result.certain;
  }
  return result;
}

}  // namespace casper::processor
