#ifndef CASPER_PROCESSOR_FILTER_POLICY_H_
#define CASPER_PROCESSOR_FILTER_POLICY_H_

#include <array>
#include <functional>

#include "src/common/geometry.h"
#include "src/common/result.h"
#include "src/processor/target_store.h"

/// \file
/// Filter selection for Algorithm 2 (§5.1.1 step 1 and the 1/2/4-filter
/// alternatives evaluated in §6.2). Public point targets are treated as
/// degenerate rectangles so one code path serves both data kinds: for a
/// point, MaxDist equals the ordinary distance and the furthest corner
/// is the point itself.

namespace casper::processor {

/// How many filter targets seed the pruning (§6.2): one (nearest to the
/// cloak center), two (nearest to two opposite corners), or four
/// (nearest to every corner, the full Algorithm 2).
enum class FilterPolicy {
  kOneFilter = 1,
  kTwoFilters = 2,
  kFourFilters = 4,
};

/// A filter target: identity plus its (possibly degenerate) region.
struct FilterTarget {
  TargetId id = 0;
  Rect region;
};

/// Nearest-target probe used during filter selection. Must return the
/// target minimizing MaxDist(q, region) — for public data that is the
/// ordinary nearest neighbor. NotFound is propagated (empty store).
using NearestTargetFn = std::function<Result<FilterTarget>(const Point&)>;

/// Picks the filter target assigned to each of the cloak's four corners
/// (Rect::Corners() order). kOneFilter probes the center and assigns it
/// everywhere; kTwoFilters probes corners v0 and v2 and assigns v1/v3 to
/// whichever of the two is closer (by MaxDist); kFourFilters probes all
/// corners.
Result<std::array<FilterTarget, 4>> SelectFilters(
    const Rect& cloak, FilterPolicy policy, const NearestTargetFn& nearest);

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_FILTER_POLICY_H_
