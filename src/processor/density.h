#ifndef CASPER_PROCESSOR_DENSITY_H_
#define CASPER_PROCESSOR_DENSITY_H_

#include <vector>

#include "src/common/result.h"
#include "src/processor/target_store.h"

/// \file
/// Aggregate public queries over private data (§5 notes aggregates as a
/// straightforward extension; the paper's introduction motivates them
/// with traffic monitoring): an expected-density map over a uniform
/// grid, computed from cloaked regions under the §4.3 uniformity
/// guarantee — each user contributes to a grid cell in proportion to
/// the fraction of her cloaked region overlapping that cell.

namespace casper::processor {

/// An `rows x cols` grid of expected counts over `extent`.
class DensityMap {
 public:
  DensityMap(const Rect& extent, int cols, int rows);

  /// Rebuild a map from its serialized parts (wire-message decode).
  /// InvalidArgument when the grid is non-positive or `cells` has the
  /// wrong length.
  static Result<DensityMap> FromCells(const Rect& extent, int cols, int rows,
                                      std::vector<double> cells);

  double At(int col, int row) const {
    CASPER_DCHECK(col >= 0 && col < cols_ && row >= 0 && row < rows_);
    return cells_[static_cast<size_t>(row) * cols_ + col];
  }

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  const Rect& extent() const { return extent_; }

  /// Sum of all cells — equals the expected number of users inside the
  /// extent.
  double Total() const;

  /// The rectangle covered by a cell.
  Rect CellRect(int col, int row) const;

  friend bool operator==(const DensityMap& a, const DensityMap& b) {
    return a.extent_ == b.extent_ && a.cols_ == b.cols_ && a.rows_ == b.rows_ &&
           a.cells_ == b.cells_;
  }

 private:
  friend Result<DensityMap> ExpectedDensityFromTargets(
      const std::vector<PrivateTarget>&, const Rect&, int, int);

  Rect extent_;
  int cols_;
  int rows_;
  std::vector<double> cells_;
};

/// Accumulates an already-canonicalized (id-sorted) target list into a
/// density map. Floating-point accumulation follows the list order, so
/// a sharded router feeding the merged union through this helper
/// reproduces the single-server map bit for bit.
Result<DensityMap> ExpectedDensityFromTargets(
    const std::vector<PrivateTarget>& targets, const Rect& extent, int cols,
    int rows);

/// Builds the expected-density map of `store` over `extent`.
/// InvalidArgument on a degenerate extent or non-positive grid.
Result<DensityMap> ExpectedDensity(const PrivateTargetStore& store,
                                   const Rect& extent, int cols, int rows);

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_DENSITY_H_
