#include "src/processor/continuous.h"

namespace casper::processor {

Result<PublicCandidateList> ContinuousQueryManager::Evaluate(
    const Rect& cloak) {
  ++stats_.evaluations;
  return PrivateNearestNeighbor(*store_, cloak, policy_);
}

Result<QueryId> ContinuousQueryManager::Register(const Rect& cloak) {
  CASPER_ASSIGN_OR_RETURN(answer, Evaluate(cloak));
  const QueryId qid = next_id_++;
  queries_[qid] = QueryState{cloak, std::move(answer)};
  return qid;
}

Status ContinuousQueryManager::Unregister(QueryId qid) {
  if (queries_.erase(qid) == 0) return Status::NotFound("unknown query");
  return Status::OK();
}

Result<PublicCandidateList> ContinuousQueryManager::OnCloakChanged(
    QueryId qid, const Rect& cloak) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) return Status::NotFound("unknown query");
  QueryState& state = it->second;

  // Containment shortcut: a list inclusive for every position of the
  // old (larger) region is inclusive for the new one.
  if (state.cloak.Contains(cloak)) {
    ++stats_.reuses;
    state.cloak = cloak;
    return state.answer;
  }

  CASPER_ASSIGN_OR_RETURN(answer, Evaluate(cloak));
  state.cloak = cloak;
  state.answer = std::move(answer);
  return state.answer;
}

Status ContinuousQueryManager::OnTargetInserted(const PublicTarget& target) {
  for (auto& [qid, state] : queries_) {
    (void)qid;
    // Old extension distances are still valid upper bounds; the list
    // stays "all targets inside A_EXT" by appending when covered.
    if (state.answer.area.a_ext.Contains(target.position)) {
      state.answer.candidates.push_back(target);
      ++stats_.insert_patches;
    }
  }
  return Status::OK();
}

Status ContinuousQueryManager::OnTargetRemoved(const PublicTarget& target) {
  for (auto& [qid, state] : queries_) {
    (void)qid;
    auto& candidates = state.answer.candidates;
    bool was_candidate = false;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].id == target.id) {
        candidates.erase(candidates.begin() + static_cast<ptrdiff_t>(i));
        was_candidate = true;
        break;
      }
    }
    if (!was_candidate) {
      // Every bound and every possible answer lives inside A_EXT, so a
      // removal outside it cannot affect this query.
      ++stats_.removal_no_ops;
      continue;
    }
    // The removed target may have been a filter, so the stored A_EXT is
    // no longer a proven cover: recompute.
    ++stats_.removal_recomputes;
    CASPER_ASSIGN_OR_RETURN(answer, Evaluate(state.cloak));
    state.answer = std::move(answer);
  }
  return Status::OK();
}

Result<PublicCandidateList> ContinuousQueryManager::Answer(
    QueryId qid) const {
  auto it = queries_.find(qid);
  if (it == queries_.end()) return Status::NotFound("unknown query");
  return it->second.answer;
}

Result<Rect> ContinuousQueryManager::CloakOf(QueryId qid) const {
  auto it = queries_.find(qid);
  if (it == queries_.end()) return Status::NotFound("unknown query");
  return it->second.cloak;
}

}  // namespace casper::processor
