#include "src/processor/extended_area.h"

#include <algorithm>

#include "src/common/status.h"

namespace casper::processor {

ExtendedArea ComputeExtendedArea(const Rect& cloak,
                                 const std::array<FilterTarget, 4>& filters) {
  CASPER_DCHECK(!cloak.is_empty());
  const std::array<Point, 4> v = cloak.Corners();

  ExtendedArea result;
  for (size_t e = 0; e < 4; ++e) {
    const size_t i = e;
    const size_t j = (e + 1) % 4;
    const FilterTarget& fi = filters[i];
    const FilterTarget& fj = filters[j];
    const Segment edge{v[i], v[j]};

    const double d_i = MaxDist(v[i], fi.region);
    const double d_j = MaxDist(v[j], fj.region);
    double d_m = 0.0;

    EdgeExtension ext;
    if (fi.id != fj.id) {
      // Anchor segment endpoints: furthest corners from the reverse
      // vertices (for point targets these are the points themselves).
      const Point s = FurthestCorner(v[j], fi.region);
      const Point t = FurthestCorner(v[i], fj.region);
      Point m;
      if (BisectorEdgeIntersection(s, t, edge, &m)) {
        ext.has_middle = true;
        ext.middle = m;
        d_m = Distance(m, s);  // == Distance(m, t) up to rounding.
      }
    }
    ext.max_d = std::max({d_i, d_j, d_m});
    result.edges[e] = ext;
  }

  result.a_ext = cloak.ExpandedPerSide(
      /*left=*/result.edges[3].max_d, /*bottom=*/result.edges[0].max_d,
      /*right=*/result.edges[1].max_d, /*top=*/result.edges[2].max_d);
  return result;
}

Result<ExtendedArea> ComputeExtendedAreaForPolicy(
    const Rect& cloak, FilterPolicy policy, const NearestTargetFn& nearest) {
  if (policy != FilterPolicy::kTwoFilters) {
    CASPER_ASSIGN_OR_RETURN(filters, SelectFilters(cloak, policy, nearest));
    return ComputeExtendedArea(cloak, filters);
  }

  if (cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  const std::array<Point, 4> v = cloak.Corners();
  CASPER_ASSIGN_OR_RETURN(f0, nearest(v[0]));
  CASPER_ASSIGN_OR_RETURN(f2, nearest(v[2]));

  ExtendedArea best;
  bool have_best = false;
  for (int assign1 = 0; assign1 < 2; ++assign1) {
    for (int assign3 = 0; assign3 < 2; ++assign3) {
      std::array<FilterTarget, 4> filters = {
          f0, assign1 == 0 ? f0 : f2, f2, assign3 == 0 ? f0 : f2};
      const ExtendedArea area = ComputeExtendedArea(cloak, filters);
      if (!have_best || area.a_ext.Area() < best.a_ext.Area()) {
        best = area;
        have_best = true;
      }
    }
  }
  return best;
}

}  // namespace casper::processor
