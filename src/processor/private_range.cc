#include "src/processor/private_range.h"

#include "src/processor/private_nn.h"
#include "src/processor/public_range.h"

namespace casper::processor {

Result<PublicRangeCandidates> PrivateRangeOverPublic(
    const PublicTargetStore& store, const Rect& cloak, double radius) {
  if (cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  if (radius < 0.0) return Status::InvalidArgument("radius must be >= 0");
  PublicRangeCandidates result;
  result.search_window = cloak.Expanded(radius);
  result.candidates = store.RangeQuery(result.search_window);
  CanonicalizeCandidates(&result.candidates);
  return result;
}

Result<PrivateRangeCandidates> PrivateRangeOverPrivate(
    const PrivateTargetStore& store, const Rect& cloak, double radius) {
  if (cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  if (radius < 0.0) return Status::InvalidArgument("radius must be >= 0");
  PrivateRangeCandidates result;
  result.search_window = cloak.Expanded(radius);
  result.candidates = store.Overlapping(result.search_window);
  CanonicalizePrivateTargets(&result.candidates);
  return result;
}

std::vector<PublicTarget> RefineRange(
    const std::vector<PublicTarget>& candidates, const Point& user_position,
    double radius) {
  std::vector<PublicTarget> out;
  for (const PublicTarget& t : candidates) {
    if (Distance(user_position, t.position) <= radius) out.push_back(t);
  }
  return out;
}

}  // namespace casper::processor
