#include "src/processor/concurrent_query_cache.h"

namespace casper::processor {

ConcurrentQueryCache::ConcurrentQueryCache(const PublicTargetStore* store,
                                           size_t capacity,
                                           FilterPolicy policy,
                                           size_t shard_count) {
  CASPER_DCHECK(store != nullptr);
  const size_t shards = shard_count > 0 ? shard_count : 1;
  const size_t total = capacity > 0 ? capacity : shards;
  // Ceil-divide so the summed shard capacity is at least `capacity`.
  const size_t per_shard = (total + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(store, per_shard, policy));
  }
}

ConcurrentQueryCache::Shard& ConcurrentQueryCache::ShardFor(
    const Rect& cloak) {
  return *shards_[HashRect(cloak) % shards_.size()];
}

Result<PublicCandidateList> ConcurrentQueryCache::Query(const Rect& cloak) {
  Shard& shard = ShardFor(cloak);
  uint64_t d_hits, d_misses;
  Result<PublicCandidateList> result = [&]() -> Result<PublicCandidateList> {
    std::lock_guard<std::mutex> lock(shard.mu);
    const QueryCacheStats before = shard.cache.stats();
    Result<PublicCandidateList> r = shard.cache.Query(cloak);
    const QueryCacheStats& after = shard.cache.stats();
    d_hits = after.hits - before.hits;
    d_misses = after.misses - before.misses;
    return r;
  }();
  if (d_hits != 0) {
    hits_.fetch_add(d_hits, std::memory_order_relaxed);
    if (metric_hits_ != nullptr) metric_hits_->Increment(d_hits);
  }
  if (d_misses != 0) {
    misses_.fetch_add(d_misses, std::memory_order_relaxed);
    if (metric_misses_ != nullptr) metric_misses_->Increment(d_misses);
  }
  return result;
}

std::optional<PublicCandidateList> ConcurrentQueryCache::Peek(
    const Rect& cloak) {
  Shard& shard = ShardFor(cloak);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.cache.Peek(cloak);
}

void ConcurrentQueryCache::InvalidateAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cache.InvalidateAll();
  }
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

QueryCacheStats ConcurrentQueryCache::stats() const {
  QueryCacheStats merged;
  merged.hits = hits_.load(std::memory_order_relaxed);
  merged.misses = misses_.load(std::memory_order_relaxed);
  merged.invalidations = invalidations_.load(std::memory_order_relaxed);
  return merged;
}

size_t ConcurrentQueryCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->cache.size();
  }
  return total;
}

}  // namespace casper::processor
