#ifndef CASPER_PROCESSOR_PRIVATE_NN_PRIVATE_H_
#define CASPER_PROCESSOR_PRIVATE_NN_PRIVATE_H_

#include <vector>

#include "src/common/result.h"
#include "src/processor/extended_area.h"
#include "src/processor/target_store.h"

/// \file
/// Private nearest-neighbor queries over *private* data (§5.2): "where
/// is my nearest buddy?" where both the querying user and the targets
/// are cloaked regions. Algorithm 2 runs with the furthest-corner
/// adaptations; the candidate list contains every target region that
/// could host the true nearest buddy (Theorem 3) and is minimal given
/// the filters (Theorem 4).

namespace casper::processor {

struct PrivateCandidateList {
  std::vector<PrivateTarget> candidates;
  ExtendedArea area;
  FilterPolicy policy = FilterPolicy::kFourFilters;

  size_t size() const { return candidates.size(); }

  friend bool operator==(const PrivateCandidateList& a,
                         const PrivateCandidateList& b) {
    return a.candidates == b.candidates && a.area == b.area &&
           a.policy == b.policy;
  }
};

struct PrivateNNOptions {
  FilterPolicy policy = FilterPolicy::kFourFilters;

  /// Candidate admission threshold: a target must have at least this
  /// fraction of its own region inside A_EXT (§5.2.1 step 4's
  /// probabilistic x% policy). 0 = any overlap (the default, which is
  /// the inclusive setting; positive values trade inclusiveness for a
  /// smaller list).
  double min_overlap_fraction = 0.0;

  /// Target id to exclude from the whole computation — filters and
  /// candidates alike. Buddy queries set this to the querying user's
  /// own stored region: with the self region eligible it would win
  /// every filter probe (distance ~0) and shrink A_EXT below any
  /// actual buddy.
  std::optional<TargetId> exclude_id;
};

/// Algorithm 2 with the §5.2.1 modifications against cloaked targets.
Result<PrivateCandidateList> PrivateNearestNeighborOverPrivate(
    const PrivateTargetStore& store, const Rect& cloak,
    const PrivateNNOptions& options = {});

/// Client-side refinement under region uncertainty: ranks candidates by
/// the given metric from the user's true position. With kMaxDist the
/// choice is the certain-best bound (minimax); kMinDist is optimistic.
enum class RefineMetric { kMinDist, kMaxDist };
Result<PrivateTarget> RefineNearestRegion(
    const std::vector<PrivateTarget>& candidates, const Point& user_position,
    RefineMetric metric = RefineMetric::kMaxDist);

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_PRIVATE_NN_PRIVATE_H_
