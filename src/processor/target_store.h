#ifndef CASPER_PROCESSOR_TARGET_STORE_H_
#define CASPER_PROCESSOR_TARGET_STORE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/result.h"
#include "src/spatial/epoch_index.h"

/// \file
/// The two data populations of the privacy-aware database server (§5):
///  * public data — exact point locations (gas stations, hospitals,
///    police cars) stored as-is;
///  * private data — users' cloaked rectangular regions received from
///    the location anonymizer; the server never sees exact positions.
///
/// Both stores are backed by spatial::EpochIndex: mutations go to the
/// authoritative Guttman R-tree and publish a new epoch; every read
/// acquires the current immutable snapshot (packed FlatRTree base plus
/// a small delta) with one atomic load, so the query hot path walks
/// cache-friendly flat arrays and never takes a lock.

namespace casper::processor {

using TargetId = uint64_t;

/// A public target: an exact point.
struct PublicTarget {
  TargetId id = 0;
  Point position;

  friend bool operator==(const PublicTarget& a, const PublicTarget& b) {
    return a.id == b.id && a.position == b.position;
  }
};

/// A private target: a cloaked region.
struct PrivateTarget {
  TargetId id = 0;
  Rect region;

  friend bool operator==(const PrivateTarget& a, const PrivateTarget& b) {
    return a.id == b.id && a.region == b.region;
  }
};

/// Point targets indexed by an epoch-published R-tree.
class PublicTargetStore {
 public:
  PublicTargetStore() = default;

  /// Bulk-build from a target list (STR packing).
  explicit PublicTargetStore(const std::vector<PublicTarget>& targets);

  /// Incremental insert. Fails on duplicate id only in debug checks;
  /// ids are caller-managed.
  void Insert(const PublicTarget& target);
  bool Remove(const PublicTarget& target);

  /// Nearest target to `q`; NotFound on empty store.
  Result<PublicTarget> Nearest(const Point& q) const;

  std::vector<PublicTarget> KNearest(const Point& q, size_t k) const;

  /// All targets inside `window` (closed boundaries).
  std::vector<PublicTarget> RangeQuery(const Rect& window) const;

  size_t RangeCount(const Rect& window) const;

  size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  /// Epoch/reclamation counters of the backing index (exported through
  /// obs by the server tier).
  spatial::EpochIndex::Stats epoch_stats() const { return index_.stats(); }

  /// Checkpoint the store to `sm`; returns the checkpoint root page.
  Result<storage::PageId> SaveTo(storage::IStorageManager* sm) const {
    return index_.Checkpoint(sm);
  }

  /// Rebuild a store from a SaveTo root page.
  static Result<PublicTargetStore> LoadFrom(storage::IStorageManager* sm,
                                            storage::PageId root);

 private:
  spatial::EpochIndex index_;
};

/// Region targets indexed by an epoch-published R-tree. Nearest-neighbor
/// ranking uses the MaxDist metric (distance to the region's furthest
/// corner), which is what the private-data filter step requires (§5.2.1:
/// "the exact location of a target object within its cloaked area is the
/// furthest corner").
class PrivateTargetStore {
 public:
  PrivateTargetStore() = default;
  explicit PrivateTargetStore(const std::vector<PrivateTarget>& targets);

  void Insert(const PrivateTarget& target);
  bool Remove(const PrivateTarget& target);

  /// Target whose furthest corner is nearest to `q`. When `exclude` is
  /// set, that target id is skipped (a querying user's own stored
  /// region must not act as its own filter).
  Result<PrivateTarget> NearestByMaxDist(
      const Point& q, std::optional<TargetId> exclude = std::nullopt) const;

  /// All targets whose region overlaps `window`.
  std::vector<PrivateTarget> Overlapping(const Rect& window) const;

  /// Targets with at least `min_overlap_fraction` of their own area
  /// inside `window` (the probabilistic x%-policy of §5.2.1 step 4;
  /// 0 reduces to plain overlap).
  std::vector<PrivateTarget> OverlappingAtLeast(
      const Rect& window, double min_overlap_fraction) const;

  size_t OverlapCount(const Rect& window) const;

  size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  /// See PublicTargetStore::epoch_stats().
  spatial::EpochIndex::Stats epoch_stats() const { return index_.stats(); }

  /// Checkpoint the store to `sm`; returns the checkpoint root page.
  Result<storage::PageId> SaveTo(storage::IStorageManager* sm) const {
    return index_.Checkpoint(sm);
  }

  /// Rebuild a store from a SaveTo root page.
  static Result<PrivateTargetStore> LoadFrom(storage::IStorageManager* sm,
                                             storage::PageId root);

 private:
  spatial::EpochIndex index_;
};

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_TARGET_STORE_H_
