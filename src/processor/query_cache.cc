#include "src/processor/query_cache.h"

namespace casper::processor {

size_t HashRect(const Rect& rect) {
  auto mix = [](uint64_t h, double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  uint64_t h = 0;
  h = mix(h, rect.min.x);
  h = mix(h, rect.min.y);
  h = mix(h, rect.max.x);
  h = mix(h, rect.max.y);
  // Finalizer (murmur3 fmix64): cell-aligned cloaks have highly regular
  // double bit patterns whose mixed low bits stay correlated — without
  // avalanching them, `h % shards` piles every cloak onto one shard.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<size_t>(h);
}

CachingQueryProcessor::CachingQueryProcessor(const PublicTargetStore* store,
                                             size_t capacity,
                                             FilterPolicy policy)
    : store_(store), capacity_(capacity > 0 ? capacity : 1),
      policy_(policy) {
  CASPER_DCHECK(store != nullptr);
}

Result<PublicCandidateList> CachingQueryProcessor::Query(const Rect& cloak) {
  const RectKey key{cloak};
  auto it = map_.find(key);
  if (it != map_.end() && it->second.epoch == epoch_) {
    ++stats_.hits;
    // Refresh LRU position.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.answer;
  }

  ++stats_.misses;
  CASPER_ASSIGN_OR_RETURN(answer,
                          PrivateNearestNeighbor(*store_, cloak, policy_));
  if (it != map_.end()) {
    // Stale entry for this key: refill it in place at the new epoch.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second = Entry{answer, epoch_, lru_.begin()};
    return answer;
  }
  if (map_.size() >= capacity_) {
    const RectKey victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(key);
  map_[key] = Entry{answer, epoch_, lru_.begin()};
  return answer;
}

std::optional<PublicCandidateList> CachingQueryProcessor::Peek(
    const Rect& cloak) const {
  auto it = map_.find(RectKey{cloak});
  if (it == map_.end() || it->second.epoch != epoch_) return std::nullopt;
  return it->second.answer;
}

void CachingQueryProcessor::InvalidateAll() {
  if (!map_.empty()) ++stats_.invalidations;
  ++epoch_;
}

}  // namespace casper::processor
