#include "src/processor/query_cache.h"

namespace casper::processor {

size_t CachingQueryProcessor::RectKeyHash::operator()(
    const RectKey& k) const {
  auto mix = [](uint64_t h, double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  uint64_t h = 0;
  h = mix(h, k.rect.min.x);
  h = mix(h, k.rect.min.y);
  h = mix(h, k.rect.max.x);
  h = mix(h, k.rect.max.y);
  return static_cast<size_t>(h);
}

CachingQueryProcessor::CachingQueryProcessor(const PublicTargetStore* store,
                                             size_t capacity,
                                             FilterPolicy policy)
    : store_(store), capacity_(capacity > 0 ? capacity : 1),
      policy_(policy) {
  CASPER_DCHECK(store != nullptr);
}

Result<PublicCandidateList> CachingQueryProcessor::Query(const Rect& cloak) {
  const RectKey key{cloak};
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    // Refresh LRU position.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.answer;
  }

  ++stats_.misses;
  CASPER_ASSIGN_OR_RETURN(answer,
                          PrivateNearestNeighbor(*store_, cloak, policy_));
  if (map_.size() >= capacity_) {
    const RectKey victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(key);
  map_[key] = Entry{answer, lru_.begin()};
  return answer;
}

void CachingQueryProcessor::InvalidateAll() {
  if (!map_.empty()) ++stats_.invalidations;
  map_.clear();
  lru_.clear();
}

}  // namespace casper::processor
