#include "src/processor/private_nn_private.h"

#include "src/processor/public_range.h"

namespace casper::processor {

Result<PrivateCandidateList> PrivateNearestNeighborOverPrivate(
    const PrivateTargetStore& store, const Rect& cloak,
    const PrivateNNOptions& options) {
  if (cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  if (store.empty()) return Status::NotFound("no private targets stored");
  if (options.min_overlap_fraction < 0.0 ||
      options.min_overlap_fraction > 1.0) {
    return Status::InvalidArgument("min_overlap_fraction outside [0, 1]");
  }

  // Step 1: filters ranked by furthest-corner distance (MaxDist), so a
  // filter is a *guaranteed* upper bound on the NN distance from its
  // vertex regardless of where the target really is inside its region.
  const NearestTargetFn nearest = [&store, &options](const Point& q) {
    return [&]() -> Result<FilterTarget> {
      CASPER_ASSIGN_OR_RETURN(t,
                              store.NearestByMaxDist(q, options.exclude_id));
      return FilterTarget{t.id, t.region};
    }();
  };
  CASPER_ASSIGN_OR_RETURN(
      area, ComputeExtendedAreaForPolicy(cloak, options.policy, nearest));
  PrivateCandidateList result;
  result.policy = options.policy;
  result.area = area;

  // Step 4: every target whose region overlaps A_EXT (optionally
  // thresholded by the probabilistic policy), minus the excluded id.
  result.candidates = store.OverlappingAtLeast(result.area.a_ext,
                                               options.min_overlap_fraction);
  CanonicalizePrivateTargets(&result.candidates);
  if (options.exclude_id.has_value()) {
    auto& cands = result.candidates;
    for (size_t i = 0; i < cands.size(); ++i) {
      if (cands[i].id == *options.exclude_id) {
        cands.erase(cands.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  return result;
}

Result<PrivateTarget> RefineNearestRegion(
    const std::vector<PrivateTarget>& candidates, const Point& user_position,
    RefineMetric metric) {
  if (candidates.empty()) return Status::NotFound("empty candidate list");
  auto rank = [&](const PrivateTarget& t) {
    return metric == RefineMetric::kMinDist
               ? MinDist(user_position, t.region)
               : MaxDist(user_position, t.region);
  };
  const PrivateTarget* best = &candidates.front();
  double best_d = rank(*best);
  for (const PrivateTarget& t : candidates) {
    const double d = rank(t);
    if (d < best_d) {
      best = &t;
      best_d = d;
    }
  }
  return *best;
}

}  // namespace casper::processor
