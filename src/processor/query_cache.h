#ifndef CASPER_PROCESSOR_QUERY_CACHE_H_
#define CASPER_PROCESSOR_QUERY_CACHE_H_

#include <list>
#include <unordered_map>

#include "src/processor/private_nn.h"

/// \file
/// Cloak-keyed candidate-list cache. A consequence of Casper's design
/// the paper does not exploit: the anonymizer's cloaks are *cell
/// aligned*, so co-located users with similar profiles receive exactly
/// the same cloaked region — and Algorithm 2's answer depends only on
/// the cloak (and the target set). Memoizing candidate lists by cloak
/// rectangle therefore serves whole neighborhoods from one evaluation,
/// which is how a production server would absorb the "large numbers of
/// outstanding queries" §5 alludes to.
///
/// The cache is invalidated wholesale when the target set changes
/// (coarse but always safe — the epoch bump is O(1)).

namespace casper::processor {

struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class CachingQueryProcessor {
 public:
  /// The store must outlive the processor. `capacity` bounds the number
  /// of cached cloak rectangles (LRU eviction).
  CachingQueryProcessor(const PublicTargetStore* store, size_t capacity,
                        FilterPolicy policy = FilterPolicy::kFourFilters);

  /// Cached Algorithm 2: same contract as PrivateNearestNeighbor.
  Result<PublicCandidateList> Query(const Rect& cloak);

  /// Must be called after any mutation of the target store; drops every
  /// cached entry.
  void InvalidateAll();

  const QueryCacheStats& stats() const { return stats_; }
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  struct RectKey {
    Rect rect;
    bool operator==(const RectKey& other) const {
      return rect == other.rect;
    }
  };
  struct RectKeyHash {
    size_t operator()(const RectKey& k) const;
  };

  using LruList = std::list<RectKey>;
  struct Entry {
    PublicCandidateList answer;
    LruList::iterator lru_pos;
  };

  const PublicTargetStore* store_;
  size_t capacity_;
  FilterPolicy policy_;
  std::unordered_map<RectKey, Entry, RectKeyHash> map_;
  LruList lru_;  ///< Front = most recently used.
  QueryCacheStats stats_;
};

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_QUERY_CACHE_H_
