#ifndef CASPER_PROCESSOR_QUERY_CACHE_H_
#define CASPER_PROCESSOR_QUERY_CACHE_H_

#include <list>
#include <optional>
#include <unordered_map>

#include "src/processor/private_nn.h"

/// \file
/// Cloak-keyed candidate-list cache. A consequence of Casper's design
/// the paper does not exploit: the anonymizer's cloaks are *cell
/// aligned*, so co-located users with similar profiles receive exactly
/// the same cloaked region — and Algorithm 2's answer depends only on
/// the cloak (and the target set). Memoizing candidate lists by cloak
/// rectangle therefore serves whole neighborhoods from one evaluation,
/// which is how a production server would absorb the "large numbers of
/// outstanding queries" §5 alludes to.
///
/// The cache is invalidated wholesale when the target set changes
/// (coarse but always safe — the epoch bump is O(1)): entries are
/// stamped with the epoch current at insert time, InvalidateAll only
/// increments the epoch, and a stale entry is discarded lazily when its
/// key is next looked up (or when LRU eviction reaches it).

namespace casper::processor {

/// Order-insensitive hash of a cloak rectangle; shared by this cache's
/// key lookup and ConcurrentQueryCache's shard selection.
size_t HashRect(const Rect& rect);

struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class CachingQueryProcessor {
 public:
  /// The store must outlive the processor. `capacity` bounds the number
  /// of cached cloak rectangles (LRU eviction).
  CachingQueryProcessor(const PublicTargetStore* store, size_t capacity,
                        FilterPolicy policy = FilterPolicy::kFourFilters);

  /// Cached Algorithm 2: same contract as PrivateNearestNeighbor.
  Result<PublicCandidateList> Query(const Rect& cloak);

  /// Hit-only lookup for degraded serving during a server outage:
  /// returns the cached answer when a *current-epoch* entry exists for
  /// `cloak`, nullopt otherwise. Restricting to the current epoch keeps
  /// candidate-list inclusiveness intact — a pre-invalidation entry
  /// could be missing a target added since. Never computes, never
  /// evicts, and leaves LRU order and hit/miss stats untouched.
  std::optional<PublicCandidateList> Peek(const Rect& cloak) const;

  /// Must be called after any mutation of the target store. O(1): bumps
  /// the epoch; stale entries are dropped lazily on their next lookup.
  void InvalidateAll();

  const QueryCacheStats& stats() const { return stats_; }
  /// Resident entries, *including* not-yet-reclaimed stale ones.
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t epoch() const { return epoch_; }

 private:
  struct RectKey {
    Rect rect;
    bool operator==(const RectKey& other) const {
      return rect == other.rect;
    }
  };
  struct RectKeyHash {
    size_t operator()(const RectKey& k) const { return HashRect(k.rect); }
  };

  using LruList = std::list<RectKey>;
  struct Entry {
    PublicCandidateList answer;
    uint64_t epoch = 0;  ///< Epoch current when the entry was filled.
    LruList::iterator lru_pos;
  };

  const PublicTargetStore* store_;
  size_t capacity_;
  FilterPolicy policy_;
  std::unordered_map<RectKey, Entry, RectKeyHash> map_;
  LruList lru_;  ///< Front = most recently used.
  QueryCacheStats stats_;
  uint64_t epoch_ = 0;
};

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_QUERY_CACHE_H_
