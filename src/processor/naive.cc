#include "src/processor/naive.h"

namespace casper::processor {

Result<PublicTarget> NaiveCenterNearest(const PublicTargetStore& store,
                                        const Rect& cloak) {
  if (cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  return store.Nearest(cloak.Center());
}

std::vector<PublicTarget> NaiveSendAll(const PublicTargetStore& store) {
  // A range query over the whole plane enumerates every entry.
  const Rect everything(-1e300, -1e300, 1e300, 1e300);
  return store.RangeQuery(everything);
}

}  // namespace casper::processor
