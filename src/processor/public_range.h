#ifndef CASPER_PROCESSOR_PUBLIC_RANGE_H_
#define CASPER_PROCESSOR_PUBLIC_RANGE_H_

#include <vector>

#include "src/common/result.h"
#include "src/processor/target_store.h"

/// \file
/// Public queries over *private* data (§5): "how many cars are in this
/// area?" asked by an administrator with an exactly known query region,
/// evaluated over cloaked user regions. Because the server only stores
/// regions, the count is inherently uncertain; the processor reports
/// the certain/possible bounds and the expected value under the paper's
/// uniformity guarantee (§4.3: a user is uniformly distributed over her
/// cloaked region).

namespace casper::processor {

struct RangeCountResult {
  /// Targets fully inside the query region — definitely counted.
  size_t certain = 0;

  /// Targets overlapping the query region — possibly counted.
  size_t possible = 0;

  /// Expected count: sum over overlapping targets of the fractional
  /// area overlap (exactly `certain` <= expected <= `possible`).
  double expected = 0.0;

  /// The overlapping targets, for callers that need the identities.
  std::vector<PrivateTarget> overlapping;

  friend bool operator==(const RangeCountResult& a, const RangeCountResult& b) {
    return a.certain == b.certain && a.possible == b.possible &&
           a.expected == b.expected && a.overlapping == b.overlapping;
  }
};

/// Sorts private targets into canonical (ascending-id) wire order; see
/// CanonicalizeCandidates in private_nn.h for why.
void CanonicalizePrivateTargets(std::vector<PrivateTarget>* targets);

/// Folds an already-canonicalized overlap list into the count result.
/// Floating-point accumulation follows the list order, so a sharded
/// router that feeds the merged (id-sorted) union through this helper
/// reproduces `expected` bit for bit.
RangeCountResult AccumulateRangeCounts(
    const std::vector<PrivateTarget>& overlapping, const Rect& query);

/// Evaluates a public range-count query over cloaked regions.
Result<RangeCountResult> PublicRangeCount(const PrivateTargetStore& store,
                                          const Rect& query);

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_PUBLIC_RANGE_H_
