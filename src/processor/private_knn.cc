#include "src/processor/private_knn.h"

#include <algorithm>

#include "src/processor/private_nn.h"

namespace casper::processor {

double KnnEdgeExtension(double d_i, double d_j, double length) {
  if (std::abs(d_i - d_j) >= length) return std::max(d_i, d_j);
  return (d_i + d_j + length) / 2.0;
}

Result<KnnCandidateList> PrivateKNearestNeighbors(
    const PublicTargetStore& store, const Rect& cloak, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be at least 1");
  if (cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  if (store.size() < k) {
    return Status::NotFound("store holds fewer than k targets");
  }

  // Filter step: the k-th NN distance at each vertex.
  const auto corners = cloak.Corners();
  std::array<double, 4> d;
  for (size_t i = 0; i < 4; ++i) {
    const auto knn = store.KNearest(corners[i], k);
    CASPER_DCHECK(knn.size() == k);
    d[i] = Distance(corners[i], knn.back().position);
  }

  // Extension step: per-edge bound (edges in Rect::Corners() order).
  const double w = cloak.width();
  const double h = cloak.height();
  const double bottom = KnnEdgeExtension(d[0], d[1], w);
  const double right = KnnEdgeExtension(d[1], d[2], h);
  const double top = KnnEdgeExtension(d[2], d[3], w);
  const double left = KnnEdgeExtension(d[3], d[0], h);

  KnnCandidateList result;
  result.k = k;
  result.a_ext = cloak.ExpandedPerSide(left, bottom, right, top);
  result.candidates = store.RangeQuery(result.a_ext);
  CanonicalizeCandidates(&result.candidates);
  return result;
}

std::vector<PublicTarget> RefineKNearest(
    const std::vector<PublicTarget>& candidates, const Point& user_position,
    size_t k) {
  std::vector<PublicTarget> sorted = candidates;
  const size_t take = std::min(k, sorted.size());
  std::partial_sort(sorted.begin(),
                    sorted.begin() + static_cast<ptrdiff_t>(take),
                    sorted.end(),
                    [&](const PublicTarget& a, const PublicTarget& b) {
                      return SquaredDistance(user_position, a.position) <
                             SquaredDistance(user_position, b.position);
                    });
  sorted.resize(take);
  return sorted;
}

}  // namespace casper::processor
