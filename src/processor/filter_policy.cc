#include "src/processor/filter_policy.h"

namespace casper::processor {

Result<std::array<FilterTarget, 4>> SelectFilters(
    const Rect& cloak, FilterPolicy policy, const NearestTargetFn& nearest) {
  if (cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  const std::array<Point, 4> v = cloak.Corners();
  std::array<FilterTarget, 4> filters;

  switch (policy) {
    case FilterPolicy::kOneFilter: {
      CASPER_ASSIGN_OR_RETURN(f, nearest(cloak.Center()));
      filters.fill(f);
      return filters;
    }
    case FilterPolicy::kTwoFilters: {
      CASPER_ASSIGN_OR_RETURN(f0, nearest(v[0]));
      CASPER_ASSIGN_OR_RETURN(f2, nearest(v[2]));
      filters[0] = f0;
      filters[2] = f2;
      // The in-between corners take whichever anchor filter upper-bounds
      // their nearest-neighbor distance more tightly.
      for (int i : {1, 3}) {
        const double d0 = MaxDist(v[static_cast<size_t>(i)], f0.region);
        const double d2 = MaxDist(v[static_cast<size_t>(i)], f2.region);
        filters[static_cast<size_t>(i)] = d0 <= d2 ? f0 : f2;
      }
      return filters;
    }
    case FilterPolicy::kFourFilters: {
      for (size_t i = 0; i < 4; ++i) {
        CASPER_ASSIGN_OR_RETURN(f, nearest(v[i]));
        filters[i] = f;
      }
      return filters;
    }
  }
  return Status::InvalidArgument("unknown filter policy");
}

}  // namespace casper::processor
