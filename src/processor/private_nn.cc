#include "src/processor/private_nn.h"

#include <algorithm>

namespace casper::processor {

void CanonicalizeCandidates(std::vector<PublicTarget>* candidates) {
  std::sort(candidates->begin(), candidates->end(),
            [](const PublicTarget& a, const PublicTarget& b) {
              return a.id < b.id;
            });
}

Result<PublicCandidateList> PrivateNearestNeighbor(
    const PublicTargetStore& store, const Rect& cloak, FilterPolicy policy) {
  if (cloak.is_empty()) {
    return Status::InvalidArgument("cloaked area must be non-empty");
  }
  if (store.empty()) return Status::NotFound("no public targets stored");

  // Step 1: filter targets per cloak corner.
  const NearestTargetFn nearest = [&store](const Point& q) {
    return [&]() -> Result<FilterTarget> {
      CASPER_ASSIGN_OR_RETURN(t, store.Nearest(q));
      return FilterTarget{t.id, Rect::FromPoint(t.position)};
    }();
  };
  // Steps 2-3: middle points and the extended area.
  CASPER_ASSIGN_OR_RETURN(area,
                          ComputeExtendedAreaForPolicy(cloak, policy, nearest));
  PublicCandidateList result;
  result.policy = policy;
  result.area = area;

  // Step 4: the candidate list is a range query over A_EXT. Canonical
  // (id-sorted) order keeps the encoded answer independent of tree
  // shape, so a sharded merge can reproduce it byte for byte.
  result.candidates = store.RangeQuery(result.area.a_ext);
  CanonicalizeCandidates(&result.candidates);
  return result;
}

Result<PublicTarget> RefineNearest(const std::vector<PublicTarget>& candidates,
                                   const Point& user_position) {
  if (candidates.empty()) return Status::NotFound("empty candidate list");
  const PublicTarget* best = &candidates.front();
  double best_d = SquaredDistance(user_position, best->position);
  for (const PublicTarget& t : candidates) {
    const double d = SquaredDistance(user_position, t.position);
    if (d < best_d) {
      best = &t;
      best_d = d;
    }
  }
  return *best;
}

}  // namespace casper::processor
