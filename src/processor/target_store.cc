#include "src/processor/target_store.h"

namespace casper::processor {

namespace {

std::vector<spatial::RTree::Entry> ToEntries(
    const std::vector<PublicTarget>& targets) {
  std::vector<spatial::RTree::Entry> entries;
  entries.reserve(targets.size());
  for (const PublicTarget& t : targets) {
    entries.push_back({Rect::FromPoint(t.position), t.id});
  }
  return entries;
}

std::vector<spatial::RTree::Entry> ToEntries(
    const std::vector<PrivateTarget>& targets) {
  std::vector<spatial::RTree::Entry> entries;
  entries.reserve(targets.size());
  for (const PrivateTarget& t : targets) {
    CASPER_DCHECK(!t.region.is_empty());
    entries.push_back({t.region, t.id});
  }
  return entries;
}

}  // namespace

PublicTargetStore::PublicTargetStore(const std::vector<PublicTarget>& targets)
    : index_(spatial::EpochIndex::BulkLoad(ToEntries(targets))) {}

void PublicTargetStore::Insert(const PublicTarget& target) {
  index_.Insert(Rect::FromPoint(target.position), target.id);
}

bool PublicTargetStore::Remove(const PublicTarget& target) {
  return index_.Remove(Rect::FromPoint(target.position), target.id);
}

Result<PublicTarget> PublicTargetStore::Nearest(const Point& q) const {
  const auto snapshot = index_.Acquire();
  const auto nn = snapshot->Nearest(q, spatial::RTree::Metric::kMinDist);
  if (!nn.found) return Status::NotFound("target store is empty");
  return PublicTarget{nn.neighbor.id, nn.neighbor.box.min};
}

std::vector<PublicTarget> PublicTargetStore::KNearest(const Point& q,
                                                      size_t k) const {
  const auto snapshot = index_.Acquire();
  std::vector<PublicTarget> out;
  for (const auto& n :
       snapshot->KNearest(q, k, spatial::RTree::Metric::kMinDist)) {
    out.push_back(PublicTarget{n.id, n.box.min});
  }
  return out;
}

std::vector<PublicTarget> PublicTargetStore::RangeQuery(
    const Rect& window) const {
  const auto snapshot = index_.Acquire();
  std::vector<PublicTarget> out;
  snapshot->RangeQuery(window, [&out](const spatial::RTree::Entry& e) {
    out.push_back(PublicTarget{e.id, e.box.min});
    return true;
  });
  return out;
}

size_t PublicTargetStore::RangeCount(const Rect& window) const {
  return index_.Acquire()->RangeCount(window);
}

PrivateTargetStore::PrivateTargetStore(
    const std::vector<PrivateTarget>& targets)
    : index_(spatial::EpochIndex::BulkLoad(ToEntries(targets))) {}

void PrivateTargetStore::Insert(const PrivateTarget& target) {
  CASPER_DCHECK(!target.region.is_empty());
  index_.Insert(target.region, target.id);
}

bool PrivateTargetStore::Remove(const PrivateTarget& target) {
  return index_.Remove(target.region, target.id);
}

Result<PrivateTarget> PrivateTargetStore::NearestByMaxDist(
    const Point& q, std::optional<TargetId> exclude) const {
  const auto snapshot = index_.Acquire();
  const size_t want = exclude.has_value() ? 2 : 1;
  for (const auto& n :
       snapshot->KNearest(q, want, spatial::RTree::Metric::kMaxDist)) {
    if (exclude.has_value() && n.id == *exclude) continue;
    return PrivateTarget{n.id, n.box};
  }
  return Status::NotFound("no eligible target in store");
}

std::vector<PrivateTarget> PrivateTargetStore::Overlapping(
    const Rect& window) const {
  const auto snapshot = index_.Acquire();
  std::vector<PrivateTarget> out;
  snapshot->RangeQuery(window, [&out](const spatial::RTree::Entry& e) {
    out.push_back(PrivateTarget{e.id, e.box});
    return true;
  });
  return out;
}

std::vector<PrivateTarget> PrivateTargetStore::OverlappingAtLeast(
    const Rect& window, double min_overlap_fraction) const {
  CASPER_DCHECK(min_overlap_fraction >= 0.0 && min_overlap_fraction <= 1.0);
  const auto snapshot = index_.Acquire();
  std::vector<PrivateTarget> out;
  snapshot->RangeQuery(window, [&](const spatial::RTree::Entry& e) {
    const double area = e.box.Area();
    const double overlap = e.box.IntersectionArea(window);
    // Degenerate (zero-area) regions count as fully overlapped.
    const double fraction = area > 0.0 ? overlap / area : 1.0;
    if (fraction >= min_overlap_fraction) {
      out.push_back(PrivateTarget{e.id, e.box});
    }
    return true;
  });
  return out;
}

size_t PrivateTargetStore::OverlapCount(const Rect& window) const {
  return index_.Acquire()->RangeCount(window);
}

Result<PublicTargetStore> PublicTargetStore::LoadFrom(
    storage::IStorageManager* sm, storage::PageId root) {
  PublicTargetStore store;
  CASPER_ASSIGN_OR_RETURN(index, spatial::EpochIndex::Restore(sm, root));
  store.index_ = std::move(index);
  return store;
}

Result<PrivateTargetStore> PrivateTargetStore::LoadFrom(
    storage::IStorageManager* sm, storage::PageId root) {
  PrivateTargetStore store;
  CASPER_ASSIGN_OR_RETURN(index, spatial::EpochIndex::Restore(sm, root));
  store.index_ = std::move(index);
  return store;
}

}  // namespace casper::processor
