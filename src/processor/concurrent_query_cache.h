#ifndef CASPER_PROCESSOR_CONCURRENT_QUERY_CACHE_H_
#define CASPER_PROCESSOR_CONCURRENT_QUERY_CACHE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/obs/metrics.h"
#include "src/processor/query_cache.h"

/// \file
/// Thread-safe variant of the cloak-keyed candidate-list cache: the key
/// space is striped across N independently-locked shards, each an
/// ordinary CachingQueryProcessor. A cloak rectangle always maps to the
/// same shard (by HashRect), so concurrent queries for *different*
/// cloaks almost never contend, while queries for the *same* cloak
/// serialize on one shard and share one Algorithm-2 evaluation — which
/// is exactly the access pattern of a batch of co-located users.
///
/// Aggregate statistics are kept in relaxed atomics outside the shard
/// locks; stats() returns a merged snapshot that is exact once all
/// in-flight queries have completed.

namespace casper::processor {

class ConcurrentQueryCache {
 public:
  static constexpr size_t kDefaultShards = 8;

  /// `capacity` is the total entry budget, split evenly across shards.
  /// The store must outlive the cache.
  ConcurrentQueryCache(const PublicTargetStore* store, size_t capacity,
                       FilterPolicy policy = FilterPolicy::kFourFilters,
                       size_t shard_count = kDefaultShards);

  /// Thread-safe cached Algorithm 2; same contract (and byte-identical
  /// answers) as PrivateNearestNeighbor on an unchanged store.
  Result<PublicCandidateList> Query(const Rect& cloak);

  /// Thread-safe hit-only lookup (current-epoch entries only; never
  /// computes). The degraded-serving path of the resilient transport:
  /// when the server tier is unreachable, a peeked answer is still
  /// inclusive for its cloak. See CachingQueryProcessor::Peek.
  std::optional<PublicCandidateList> Peek(const Rect& cloak);

  /// Thread-safe wholesale invalidation: bumps every shard's epoch
  /// (O(shards), each bump O(1)); stale entries are reclaimed lazily.
  void InvalidateAll();

  /// Mirrors hit/miss accounting into registry counters. Call before
  /// the first concurrent Query() (the pointers are read unguarded on
  /// the hot path); pass nullptrs to detach.
  void AttachMetrics(obs::Counter* hits, obs::Counter* misses) {
    metric_hits_ = hits;
    metric_misses_ = misses;
  }

  /// Merged snapshot across shards (relaxed reads).
  QueryCacheStats stats() const;

  /// Resident entries across all shards, including stale ones. Takes
  /// the shard locks; intended for tests and reporting.
  size_t size() const;

  size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    Shard(const PublicTargetStore* store, size_t capacity,
          FilterPolicy policy)
        : cache(store, capacity, policy) {}
    std::mutex mu;
    CachingQueryProcessor cache;
  };

  Shard& ShardFor(const Rect& cloak);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
};

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_CONCURRENT_QUERY_CACHE_H_
