#include "src/processor/public_nn_private.h"

#include <algorithm>

namespace casper::processor {

Result<PublicNNCandidates> PublicNearestNeighborOverPrivate(
    const PrivateTargetStore& store, const Point& query) {
  if (store.empty()) return Status::NotFound("no private targets stored");

  // Minimax bound from the MaxDist-nearest region.
  CASPER_ASSIGN_OR_RETURN(anchor, store.NearestByMaxDist(query));
  PublicNNCandidates result;
  result.minimax_bound = MaxDist(query, anchor.region);

  // Every region intersecting the closed disk around the query of
  // radius B; the bounding-square range query over-approximates the
  // disk, then the exact MinDist test filters.
  const Rect window = Rect::FromPoint(query).Expanded(result.minimax_bound);
  for (const PrivateTarget& t : store.Overlapping(window)) {
    const double min_d = MinDist(query, t.region);
    if (min_d <= result.minimax_bound) {
      result.candidates.push_back(PublicNNCandidates::Candidate{
          t, min_d, MaxDist(query, t.region)});
    }
  }
  // Canonical order: ascending MinDist, target id as the tie-break so
  // the encoded answer is independent of tree shape / shard layout.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const PublicNNCandidates::Candidate& a,
               const PublicNNCandidates::Candidate& b) {
              if (a.min_dist != b.min_dist) return a.min_dist < b.min_dist;
              return a.target.id < b.target.id;
            });
  return result;
}

}  // namespace casper::processor
