#include "src/processor/density.h"

#include <algorithm>

#include "src/processor/public_range.h"

namespace casper::processor {

DensityMap::DensityMap(const Rect& extent, int cols, int rows)
    : extent_(extent), cols_(cols), rows_(rows) {
  CASPER_DCHECK(cols >= 1 && rows >= 1);
  cells_.assign(static_cast<size_t>(cols) * static_cast<size_t>(rows), 0.0);
}

Result<DensityMap> DensityMap::FromCells(const Rect& extent, int cols,
                                         int rows, std::vector<double> cells) {
  if (cols < 1 || rows < 1) {
    return Status::InvalidArgument("grid must be at least 1x1");
  }
  if (cells.size() != static_cast<size_t>(cols) * static_cast<size_t>(rows)) {
    return Status::InvalidArgument("cell count does not match grid");
  }
  DensityMap map(extent, cols, rows);
  map.cells_ = std::move(cells);
  return map;
}

double DensityMap::Total() const {
  double total = 0.0;
  for (double c : cells_) total += c;
  return total;
}

Rect DensityMap::CellRect(int col, int row) const {
  const double w = extent_.width() / cols_;
  const double h = extent_.height() / rows_;
  const double x0 = extent_.min.x + col * w;
  const double y0 = extent_.min.y + row * h;
  return Rect(x0, y0, x0 + w, y0 + h);
}

Result<DensityMap> ExpectedDensityFromTargets(
    const std::vector<PrivateTarget>& targets, const Rect& extent, int cols,
    int rows) {
  if (extent.is_empty()) {
    return Status::InvalidArgument("extent must be non-empty");
  }
  if (cols < 1 || rows < 1) {
    return Status::InvalidArgument("grid must be at least 1x1");
  }

  DensityMap map(extent, cols, rows);
  const double cell_w = extent.width() / cols;
  const double cell_h = extent.height() / rows;

  // Each region distributes probability mass area-proportionally over
  // the grid cells it overlaps (degenerate regions count fully into the
  // cell containing them).
  for (const PrivateTarget& t : targets) {
    const double area = t.region.Area();
    if (area <= 0.0) {
      const int col = std::clamp(
          static_cast<int>((t.region.min.x - extent.min.x) / cell_w), 0,
          cols - 1);
      const int row = std::clamp(
          static_cast<int>((t.region.min.y - extent.min.y) / cell_h), 0,
          rows - 1);
      map.cells_[static_cast<size_t>(row) * cols + col] += 1.0;
      continue;
    }
    const int col_lo = std::clamp(
        static_cast<int>((t.region.min.x - extent.min.x) / cell_w), 0,
        cols - 1);
    const int col_hi = std::clamp(
        static_cast<int>((t.region.max.x - extent.min.x) / cell_w), 0,
        cols - 1);
    const int row_lo = std::clamp(
        static_cast<int>((t.region.min.y - extent.min.y) / cell_h), 0,
        rows - 1);
    const int row_hi = std::clamp(
        static_cast<int>((t.region.max.y - extent.min.y) / cell_h), 0,
        rows - 1);
    for (int row = row_lo; row <= row_hi; ++row) {
      for (int col = col_lo; col <= col_hi; ++col) {
        const double overlap =
            t.region.IntersectionArea(map.CellRect(col, row));
        if (overlap > 0.0) {
          map.cells_[static_cast<size_t>(row) * cols + col] +=
              overlap / area;
        }
      }
    }
  }
  return map;
}

Result<DensityMap> ExpectedDensity(const PrivateTargetStore& store,
                                   const Rect& extent, int cols, int rows) {
  std::vector<PrivateTarget> overlapping = store.Overlapping(extent);
  CanonicalizePrivateTargets(&overlapping);
  return ExpectedDensityFromTargets(overlapping, extent, cols, rows);
}

}  // namespace casper::processor
