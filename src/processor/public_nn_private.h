#ifndef CASPER_PROCESSOR_PUBLIC_NN_PRIVATE_H_
#define CASPER_PROCESSOR_PUBLIC_NN_PRIVATE_H_

#include <vector>

#include "src/common/result.h"
#include "src/processor/target_store.h"

/// \file
/// Public NN queries over *private* data — the second of the paper's
/// novel query types (§5) in its nearest-neighbor form: an
/// administrator with an exactly known point q asks "which user is
/// nearest to q?" while the server stores only cloaked regions. §5
/// treats this as the special case of private-over-private where the
/// query region collapses to a point; this module implements that
/// special case directly with the classic minimax bound:
///
///   B = min over regions of MaxDist(q, region)
///
/// The user owning the minimax region is within B of q wherever she is,
/// so the true nearest user's distance is <= B, and every region with
/// MinDist(q, region) <= B could host the answer. That candidate set is
/// inclusive, and no region outside it can ever be the answer.

namespace casper::processor {

struct PublicNNCandidates {
  /// Regions that could contain the nearest user, with their distance
  /// bounds, ascending by min_dist.
  struct Candidate {
    PrivateTarget target;
    double min_dist = 0.0;
    double max_dist = 0.0;

    friend bool operator==(const Candidate& a, const Candidate& b) {
      return a.target == b.target && a.min_dist == b.min_dist &&
             a.max_dist == b.max_dist;
    }
  };
  std::vector<Candidate> candidates;

  /// The minimax bound B: the true NN distance is certainly <= B.
  double minimax_bound = 0.0;

  friend bool operator==(const PublicNNCandidates& a,
                         const PublicNNCandidates& b) {
    return a.candidates == b.candidates && a.minimax_bound == b.minimax_bound;
  }
};

/// Computes the candidate set. NotFound on an empty store.
Result<PublicNNCandidates> PublicNearestNeighborOverPrivate(
    const PrivateTargetStore& store, const Point& query);

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_PUBLIC_NN_PRIVATE_H_
