#ifndef CASPER_PROCESSOR_EXTENDED_AREA_H_
#define CASPER_PROCESSOR_EXTENDED_AREA_H_

#include <array>

#include "src/common/geometry.h"
#include "src/processor/filter_policy.h"

/// \file
/// Steps 2 and 3 of Algorithm 2 (§5.1.1) generalized to rectangular
/// filter regions (§5.2.1): the middle-point construction per cloak
/// edge and the per-side extension distances that form A_EXT.

namespace casper::processor {

/// Extension computed for one cloak edge.
struct EdgeExtension {
  /// Largest distance from any point on the edge to its nearest filter
  /// (max of d_i, d_j, d_m in the paper) — the offset applied to this
  /// side of the cloak.
  double max_d = 0.0;

  /// The middle point m_ij, when the endpoint filters differ and the
  /// perpendicular bisector of their anchor segment crosses the edge.
  bool has_middle = false;
  Point middle;

  friend bool operator==(const EdgeExtension& a, const EdgeExtension& b) {
    return a.max_d == b.max_d && a.has_middle == b.has_middle &&
           a.middle == b.middle;
  }
};

/// The extended search region A_EXT plus per-edge detail. Edge order
/// follows Rect::Corners(): 0 = bottom (v0->v1), 1 = right (v1->v2),
/// 2 = top (v2->v3), 3 = left (v3->v0).
struct ExtendedArea {
  Rect a_ext;
  std::array<EdgeExtension, 4> edges;

  friend bool operator==(const ExtendedArea& a, const ExtendedArea& b) {
    return a.a_ext == b.a_ext && a.edges == b.edges;
  }
};

/// Builds A_EXT for `cloak` given the per-vertex filters of
/// SelectFilters(). Handles public data transparently (degenerate
/// rectangles). For each edge (v_i, v_j):
///  * d_i = MaxDist(v_i, filter_i.region) — for private targets this is
///    the distance to the furthest corner (§5.2.1 step 3);
///  * when filter_i != filter_j, the bisector anchor segment runs from
///    the corner of filter_i furthest from the *reverse* vertex v_j to
///    the corner of filter_j furthest from v_i (§5.2.1 step 2), and
///    d_m is the distance from the resulting middle point to either
///    anchor;
///  * max_d = max(d_i, d_j, d_m); if the bisector misses the edge
///    segment, every edge point is nearer to one anchor and
///    max(d_i, d_j) already bounds the required extension.
ExtendedArea ComputeExtendedArea(const Rect& cloak,
                                 const std::array<FilterTarget, 4>& filters);

/// Filter selection + extension for a given policy, in one step.
///
/// For kOneFilter and kFourFilters this is SelectFilters followed by
/// ComputeExtendedArea. For kTwoFilters the assignment of the two free
/// corners (v1, v3) to the probed anchors is a free parameter — any
/// assignment yields an inclusive area — so all four assignments are
/// evaluated and the smallest A_EXT wins.
Result<ExtendedArea> ComputeExtendedAreaForPolicy(
    const Rect& cloak, FilterPolicy policy, const NearestTargetFn& nearest);

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_EXTENDED_AREA_H_
