#ifndef CASPER_PROCESSOR_CONTINUOUS_H_
#define CASPER_PROCESSOR_CONTINUOUS_H_

#include <cstdint>
#include <unordered_map>

#include "src/common/result.h"
#include "src/processor/private_nn.h"

/// \file
/// Continuous private NN queries over public data. §5 defers continuous
/// evaluation to "any scalable and/or incremental location-based query
/// processor"; this manager supplies the incremental layer with three
/// provably-safe shortcuts derived from Theorem 1:
///
///  * Cloak shrink/containment — if the new cloaked region is contained
///    in the old one, the old candidate list is still inclusive (it
///    covered every position of the larger region), so no recompute.
///  * Target insertion — the old extension distances remain valid upper
///    bounds (a new target only shrinks true NN distances), so the list
///    is patched by appending the new target iff it falls inside the
///    stored A_EXT.
///  * Target removal — removing a *non-candidate* cannot affect the
///    answer (every bound and every possible answer lives inside A_EXT);
///    removing a candidate forces a recompute, because a filter bound
///    may have been derived from it.
///
/// Everything else falls back to a full Algorithm 2 evaluation. The
/// manager counts how many re-evaluations the shortcuts avoided.

namespace casper::processor {

using QueryId = uint64_t;

/// Statistics over the lifetime of a manager.
struct ContinuousStats {
  uint64_t evaluations = 0;        ///< Full Algorithm 2 runs.
  uint64_t reuses = 0;             ///< Cloak-containment shortcuts.
  uint64_t insert_patches = 0;     ///< Targets appended in place.
  uint64_t removal_no_ops = 0;     ///< Non-candidate removals ignored.
  uint64_t removal_recomputes = 0; ///< Candidate removals recomputed.
};

class ContinuousQueryManager {
 public:
  /// The store must outlive the manager. The manager must be told about
  /// every mutation of the store through OnTargetInserted/Removed —
  /// callers mutate the store first, then notify.
  explicit ContinuousQueryManager(PublicTargetStore* store,
                                  FilterPolicy policy =
                                      FilterPolicy::kFourFilters)
      : store_(store), policy_(policy) {}

  /// Register a continuous query for a user currently cloaked as
  /// `cloak`; evaluates it immediately.
  Result<QueryId> Register(const Rect& cloak);

  Status Unregister(QueryId qid);

  /// The user's cloak changed (movement or profile change). Returns the
  /// up-to-date candidate list (recomputed or reused).
  Result<PublicCandidateList> OnCloakChanged(QueryId qid, const Rect& cloak);

  /// A target was inserted into the store (after the fact).
  Status OnTargetInserted(const PublicTarget& target);

  /// A target was removed from the store (after the fact).
  Status OnTargetRemoved(const PublicTarget& target);

  /// Current answer of a registered query.
  Result<PublicCandidateList> Answer(QueryId qid) const;

  /// Cloaked region the stored answer was derived for (after
  /// containment shortcuts this is the latest — smaller — cloak, which
  /// the stored list still covers). Oracles re-evaluate against it.
  Result<Rect> CloakOf(QueryId qid) const;

  size_t query_count() const { return queries_.size(); }
  const ContinuousStats& stats() const { return stats_; }

 private:
  struct QueryState {
    Rect cloak;
    PublicCandidateList answer;
  };

  Result<PublicCandidateList> Evaluate(const Rect& cloak);

  PublicTargetStore* store_;
  FilterPolicy policy_;
  std::unordered_map<QueryId, QueryState> queries_;
  ContinuousStats stats_;
  QueryId next_id_ = 1;
};

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_CONTINUOUS_H_
