#ifndef CASPER_PROCESSOR_NAIVE_H_
#define CASPER_PROCESSOR_NAIVE_H_

#include <vector>

#include "src/common/result.h"
#include "src/processor/target_store.h"

/// \file
/// The two naive baselines of Figure 4 (§5.1) that Casper's candidate
/// list sits between:
///  * center-NN — answer with the single target nearest to the cloak's
///    center: minimal transfer, but frequently *wrong* for users away
///    from the center;
///  * send-all — ship every stored target to the client: always correct
///    but transfers the whole database.

namespace casper::processor {

/// Center-NN baseline (Figure 4b). NotFound on an empty store.
Result<PublicTarget> NaiveCenterNearest(const PublicTargetStore& store,
                                        const Rect& cloak);

/// Send-all baseline (Figure 4c): the full target table.
std::vector<PublicTarget> NaiveSendAll(const PublicTargetStore& store);

}  // namespace casper::processor

#endif  // CASPER_PROCESSOR_NAIVE_H_
