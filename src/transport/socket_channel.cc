#include "src/transport/socket_channel.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "src/transport/net_util.h"

namespace casper::transport {

SocketChannel::SocketChannel(std::string address,
                             SocketChannelOptions options)
    : address_(std::move(address)),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : obs::CasperMetrics::Default()),
      jitter_rng_(options.backoff_seed) {}

SocketChannel::~SocketChannel() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const int fd : pool_) close(fd);
  pool_.clear();
}

SocketChannelStats SocketChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SocketChannel::RecordDialFailureLocked() {
  ++stats_.dial_failures;
  metrics_->net_dial_failures_total->Increment();
  double backoff = options_.backoff_initial_seconds;
  for (int i = 0; i < consecutive_dial_failures_; ++i) {
    backoff *= options_.backoff_multiplier;
  }
  backoff = std::min(backoff, options_.backoff_max_seconds);
  const double jitter = options_.backoff_jitter_fraction;
  if (jitter > 0.0) {
    backoff *= 1.0 - jitter + 2.0 * jitter * jitter_rng_.NextDouble();
  }
  ++consecutive_dial_failures_;
  next_dial_seconds_ = Now() + backoff;
}

Result<int> SocketChannel::CheckoutLocked(
    std::unique_lock<std::mutex>& lock, double budget) {
  if (!pool_.empty()) {
    const int fd = pool_.back();
    pool_.pop_back();
    return fd;
  }
  if (Now() < next_dial_seconds_) {
    // Inside the reconnect-backoff window: fail fast instead of
    // re-dialing a peer that just refused us. The breaker above sees an
    // ordinary kUnavailable; the pacing lives here.
    ++stats_.backoff_fastfails;
    metrics_->net_backoff_fastfails_total->Increment();
    return Status::Unavailable("reconnect backoff");
  }
  ++stats_.dials;
  metrics_->net_dials_total->Increment();
  Result<net::ParsedAddress> parsed = net::ParseAddress(address_);
  if (!parsed.ok()) return parsed.status();
  const double timeout =
      std::min(options_.connect_timeout_seconds, budget);
  // Dial outside the lock: a slow connect must not serialize the pool.
  lock.unlock();
  Result<int> fd = net::Dial(parsed.value(), timeout);
  lock.lock();
  if (!fd.ok()) {
    RecordDialFailureLocked();
    return fd.status();
  }
  if (consecutive_dial_failures_ > 0) {
    ++stats_.reconnects;
    metrics_->net_reconnects_total->Increment();
  }
  consecutive_dial_failures_ = 0;
  next_dial_seconds_ = 0.0;
  return fd;
}

Result<std::string> SocketChannel::Call(std::string_view request,
                                        const CallContext& context) {
  // The attempt budget: the channel's own io timeout, tightened to the
  // caller's remaining deadline when one is in force.
  double budget = options_.io_timeout_seconds;
  if (context.deadline_seconds > 0.0) {
    budget = std::min(budget, context.deadline_seconds);
  }
  const double start = Now();
  const auto remaining = [&] {
    return std::max(budget - (Now() - start), 1e-3);
  };

  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.calls;
  Result<int> checkout = CheckoutLocked(lock, remaining());
  if (!checkout.ok()) return checkout.status();
  const int fd = checkout.value();
  lock.unlock();

  const std::string frame = EncodeFrame(request);
  Status written = net::WriteAll(fd, frame, remaining());
  if (!written.ok()) {
    close(fd);
    std::lock_guard<std::mutex> relock(mu_);
    if (written.message().find("timed out") != std::string_view::npos) {
      ++stats_.io_timeouts;
      metrics_->net_io_timeouts_total->Increment();
    }
    return written;
  }

  FrameDecoder decoder(options_.max_frame_bytes);
  for (;;) {
    Result<std::optional<std::string>> next = decoder.Next();
    if (!next.ok()) {
      // Framing violation: this stream lost sync and cannot be pooled.
      close(fd);
      std::lock_guard<std::mutex> relock(mu_);
      ++stats_.data_loss;
      return next.status();
    }
    if (next.value().has_value()) {
      std::string payload = *std::move(next.value());
      if (decoder.buffered() > 0) {
        // A response-per-request stream with leftover bytes is
        // desynchronized; drop the connection, keep the payload.
        close(fd);
      } else {
        std::lock_guard<std::mutex> relock(mu_);
        if (pool_.size() < options_.max_pooled_connections) {
          pool_.push_back(fd);
        } else {
          close(fd);
        }
      }
      return payload;
    }
    std::string chunk;
    Status read = net::ReadSome(fd, &chunk, 1 << 16, remaining());
    if (!read.ok()) {
      close(fd);
      std::lock_guard<std::mutex> relock(mu_);
      if (read.message().find("timed out") != std::string_view::npos) {
        ++stats_.io_timeouts;
        metrics_->net_io_timeouts_total->Increment();
      }
      return read;
    }
    decoder.Append(chunk);
  }
}

}  // namespace casper::transport
