#ifndef CASPER_TRANSPORT_SOCKET_CHANNEL_H_
#define CASPER_TRANSPORT_SOCKET_CHANNEL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/obs/casper_metrics.h"
#include "src/transport/channel.h"
#include "src/transport/framing.h"

/// \file
/// The client half of the real transport: a Channel that carries each
/// call as one framed request over a pooled TCP/Unix-domain connection
/// and reads one framed response back. It deliberately stays *below*
/// ResilientClient in the stack — no retries, no breaker, no
/// idempotency: one attempt, typed failure. What it does own is the
/// socket-shaped failure machinery the layers above cannot see:
///
///  - connection pooling (concurrent Calls each check out their own
///    connection; healthy ones are returned for reuse),
///  - reconnect with capped, jittered exponential backoff — after a
///    failed dial, calls inside the backoff window fail fast with
///    kUnavailable instead of hammering a dead peer, so breaker probes
///    are paced even when the caller retries aggressively,
///  - deadline-bounded I/O: every dial/write/read is capped by the
///    remaining per-attempt budget in CallContext::deadline_seconds (a
///    dead peer costs the caller its deadline, never the transport's
///    full io timeout),
///  - stream hygiene: a response that violates framing, or leaves
///    unexpected bytes behind, poisons that connection (closed, not
///    pooled) and surfaces as kDataLoss — retryable above.

namespace casper::transport {

struct SocketChannelOptions {
  double connect_timeout_seconds = 1.0;
  double io_timeout_seconds = 5.0;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  size_t max_pooled_connections = 8;

  /// Reconnect backoff after a failed dial: initial * multiplier^n,
  /// capped, with +/- jitter_fraction of symmetric jitter.
  double backoff_initial_seconds = 0.02;
  double backoff_max_seconds = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_jitter_fraction = 0.2;
  uint64_t backoff_seed = 0x5eedca11u;

  obs::CasperMetrics* metrics = nullptr;  ///< null -> Default().
};

/// Counters for tests and `casper_cli transport` (the obs registry gets
/// the same series as casper_net_* instruments).
struct SocketChannelStats {
  uint64_t calls = 0;
  uint64_t dials = 0;
  uint64_t dial_failures = 0;
  uint64_t reconnects = 0;          ///< Successful dials after a failure.
  uint64_t backoff_fastfails = 0;   ///< Calls refused inside the window.
  uint64_t io_timeouts = 0;
  uint64_t data_loss = 0;           ///< Responses that violated framing.
};

class SocketChannel : public Channel {
 public:
  explicit SocketChannel(std::string address,
                         SocketChannelOptions options = {});
  ~SocketChannel() override;

  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

  Result<std::string> Call(std::string_view request,
                           const CallContext& context) override;

  const std::string& address() const { return address_; }
  SocketChannelStats stats() const;

 private:
  double Now() const { return watch_.ElapsedSeconds(); }

  /// Pop a pooled connection or dial a new one within `budget` seconds.
  Result<int> CheckoutLocked(std::unique_lock<std::mutex>& lock,
                             double budget);
  void RecordDialFailureLocked();

  const std::string address_;
  const SocketChannelOptions options_;
  obs::CasperMetrics* const metrics_;
  Stopwatch watch_;

  mutable std::mutex mu_;
  std::vector<int> pool_;
  int consecutive_dial_failures_ = 0;
  double next_dial_seconds_ = 0.0;  ///< Backoff gate; 0 = open.
  Rng jitter_rng_;
  SocketChannelStats stats_;
};

}  // namespace casper::transport

#endif  // CASPER_TRANSPORT_SOCKET_CHANNEL_H_
