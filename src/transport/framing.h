#ifndef CASPER_TRANSPORT_FRAMING_H_
#define CASPER_TRANSPORT_FRAMING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/result.h"

/// \file
/// Stream framing for the socket transport: the wire messages of
/// src/casper/messages.h are already self-checksummed (`Seal`), but a
/// byte *stream* needs boundaries. Each frame is
///
///     +--------+--------+=====================+
///     | magic  | length |   sealed payload    |
///     |  u32LE |  u32LE |   `length` bytes    |
///     +--------+--------+=====================+
///
/// The magic word rejects desynchronized or non-protocol peers at the
/// first header instead of feeding garbage to the message decoders; the
/// length prefix is bounds-checked against a configured maximum *before
/// any allocation or read*, so a hostile 4 GiB announcement costs the
/// server 8 bytes, not memory. Payload integrity stays where it already
/// lives: the trailing FNV-1a-64 seal inside the payload.
///
/// FrameDecoder is the receive half: append whatever chunk the socket
/// produced (a byte, a split frame, five coalesced frames) and pop
/// complete payloads. Framing violations — bad magic, zero or oversized
/// length — poison the decoder with a typed kDataLoss: a byte stream
/// that lost sync cannot be trusted again, the connection must be torn
/// down and re-established.

namespace casper::transport {

inline constexpr uint32_t kFrameMagic = 0xCA5FE01Du;
inline constexpr size_t kFrameHeaderBytes = 8;
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;  // 4 MiB

/// Wrap one sealed message payload in a stream frame.
std::string EncodeFrame(std::string_view payload);

class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Buffer a chunk read from the stream (any split is fine).
  void Append(std::string_view bytes);

  /// Pop the next complete payload: a value when a whole frame is
  /// buffered, nullopt when more bytes are needed, kDataLoss when the
  /// stream violated framing (the decoder stays poisoned afterwards).
  Result<std::optional<std::string>> Next();

  /// Unconsumed bytes currently buffered.
  size_t buffered() const { return buf_.size() - pos_; }

  /// A frame header or body is partially received — the slow-loris
  /// signal: a peer may idle *between* frames forever, but holding a
  /// frame open is accounted against the partial-frame timeout.
  bool mid_frame() const { return buffered() > 0; }

  bool poisoned() const { return poisoned_; }

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;  // Consumed prefix of buf_, compacted opportunistically.
  bool poisoned_ = false;
};

}  // namespace casper::transport

#endif  // CASPER_TRANSPORT_FRAMING_H_
