#include "src/transport/resilient_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace casper::transport {
namespace {

/// Failures of the *transport* (retry / breaker / degradation territory),
/// as opposed to application errors the server answered with.
bool IsTransportFailure(const Status& status) {
  return status.IsRetryable() ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

ResilientClient::ResilientClient(Channel* channel,
                                 const ResilienceOptions& options)
    : channel_(channel),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : obs::CasperMetrics::Default()),
      clock_(options.clock ? options.clock
                           : [this] { return watch_.ElapsedSeconds(); }),
      sleep_(options.sleep ? options.sleep
                           : [](double seconds) {
                               std::this_thread::sleep_for(
                                   std::chrono::duration<double>(seconds));
                             }),
      jitter_rng_(options.jitter_seed) {
  CASPER_DCHECK(channel != nullptr);
  metrics_->breaker_state->Set(static_cast<double>(BreakerState::kClosed));
}

// --- Breaker ---------------------------------------------------------------

void ResilientClient::TransitionLocked(BreakerState to) {
  state_ = to;
  metrics_->breaker_state->Set(static_cast<double>(to));
  metrics_->breaker_transitions_total[static_cast<int>(to)]->Increment();
}

Status ResilientClient::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return Status::OK();
    case BreakerState::kOpen:
      if (Now() >= open_until_seconds_) {
        half_open_successes_ = 0;
        TransitionLocked(BreakerState::kHalfOpen);
        return Status::OK();  // This call is the first probe.
      }
      return Status::Unavailable("circuit breaker open");
    case BreakerState::kHalfOpen:
      return Status::OK();
  }
  return Status::OK();
}

void ResilientClient::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen &&
      ++half_open_successes_ >= options_.breaker.half_open_successes) {
    TransitionLocked(BreakerState::kClosed);
  }
}

void ResilientClient::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    open_until_seconds_ = Now() + options_.breaker.open_seconds;
    TransitionLocked(BreakerState::kOpen);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= options_.breaker.failure_threshold) {
    open_until_seconds_ = Now() + options_.breaker.open_seconds;
    TransitionLocked(BreakerState::kOpen);
  }
}

BreakerState ResilientClient::breaker_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

size_t ResilientClient::replay_depth() const {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  return replay_.size();
}

// --- Per-request pipeline --------------------------------------------------

double ResilientClient::JitteredBackoff(int completed_attempts) {
  double backoff = options_.retry.initial_backoff_seconds;
  for (int i = 1; i < completed_attempts; ++i) {
    backoff *= options_.retry.backoff_multiplier;
  }
  backoff = std::min(backoff, options_.retry.max_backoff_seconds);
  const double jitter = options_.retry.jitter_fraction;
  if (jitter > 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    backoff *= 1.0 - jitter + 2.0 * jitter * jitter_rng_.NextDouble();
  }
  return backoff;
}

Result<std::string> ResilientClient::ClassifyResponse(
    Result<std::string> response, uint64_t request_id) {
  if (!response.ok()) return response;  // Channel-level failure, as-is.
  const std::string& bytes = response.value();
  Result<MessageTag> tag = TagOf(bytes);
  if (!tag.ok()) {
    return Status::DataLoss("undecodable response");
  }
  if (tag.value() == MessageTag::kAck) {
    Result<AckMsg> ack = DecodeAck(bytes);
    if (!ack.ok()) return Status::DataLoss("undecodable response");
    if (ack->request_id != request_id) {
      return Status::DataLoss("response answers a different request");
    }
    if (!ack->ok()) return ack->ToStatus();
    return response;
  }
  if (tag.value() == MessageTag::kCandidateList) {
    // Validate via the zero-copy view: full structural acceptance check
    // (identical to the owning decoder) without materializing the
    // candidate vectors that Execute() is about to decode for real.
    Result<CandidateListView> answer = DecodeCandidateListView(bytes);
    if (!answer.ok()) return Status::DataLoss("undecodable response");
    if (answer->request_id != request_id) {
      return Status::DataLoss("response answers a different request");
    }
    return response;
  }
  return Status::DataLoss("unexpected response message type");
}

Result<std::string> ResilientClient::CallResilient(const std::string& request,
                                                   uint64_t request_id,
                                                   const CallContext& context) {
  metrics_->transport_requests_total->Increment();
  const double start = Now();
  const double deadline = options_.retry.deadline_seconds;
  int attempts = 0;
  Status last = Status::Unavailable("no attempt admitted");
  std::optional<Result<std::string>> success;

  for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
    // The deadline outranks the breaker: once the budget is spent the
    // caller-facing truth is kDeadlineExceeded, whatever state the
    // breaker reached while the peer was down.
    if (deadline > 0.0 && Now() - start >= deadline) {
      last = Status::DeadlineExceeded("request deadline spent");
      break;
    }
    Status admitted = Admit();
    if (!admitted.ok()) {
      // Fail fast against an open breaker — backing off here would just
      // serialize rejections; the cool-down clock, not the retry loop,
      // decides when the channel is probed again.
      last = admitted;
      break;
    }
    if (attempt > 0) metrics_->transport_retries_total->Increment();
    ++attempts;

    // Each attempt carries what is left of the end-to-end budget, so a
    // blocking transport (socket dial/read against a dead peer) cannot
    // spend past the deadline inside a single Call.
    CallContext attempt_context = context;
    if (deadline > 0.0) {
      attempt_context.deadline_seconds =
          std::max(deadline - (Now() - start), 1e-3);
    }
    Result<std::string> outcome = ClassifyResponse(
        channel_->Call(request, attempt_context), request_id);
    if (outcome.ok()) {
      RecordSuccess();
      success = std::move(outcome);
      break;
    }
    last = outcome.status();
    if (!last.IsRetryable()) {
      // Application error in a well-formed ack: the server answered, so
      // the channel is healthy. Terminal for the retry loop too.
      RecordSuccess();
      break;
    }
    RecordFailure();
    metrics_->transport_failures_total->Increment();
    if (attempt + 1 < options_.retry.max_attempts) {
      double backoff = JitteredBackoff(attempt + 1);
      if (deadline > 0.0) {
        const double remaining = deadline - (Now() - start);
        backoff = std::min(backoff, std::max(remaining, 0.0));
      }
      if (backoff > 0.0) sleep_(backoff);
    }
  }

  metrics_->transport_retries_per_request->Observe(
      static_cast<double>(attempts > 0 ? attempts - 1 : 0));
  if (success.has_value()) return *std::move(success);
  if (deadline > 0.0 && last.IsRetryable() && Now() - start >= deadline) {
    // The last attempt spent the rest of the budget: the binding
    // constraint was the deadline, not the retry cap.
    last = Status::DeadlineExceeded("request deadline spent");
  }
  if (last.code() == StatusCode::kDataLoss) {
    // Retries exhausted on corrupted / misdirected replies: to the caller
    // the server is simply unreachable through this channel right now, so
    // surface the transport failure as kUnavailable (the caller-facing
    // contract is a trichotomy: answer, degraded answer, or
    // kUnavailable / kDeadlineExceeded).
    last = Status::Unavailable("retries exhausted: " +
                               std::string(last.message()));
  }
  if (last.code() == StatusCode::kDeadlineExceeded) {
    metrics_->transport_deadline_exceeded_total->Increment();
  } else if (last.code() == StatusCode::kUnavailable) {
    metrics_->transport_unavailable_total->Increment();
  }
  return last;
}

// --- Queries ---------------------------------------------------------------

Result<CandidateListMsg> ResilientClient::Execute(
    const CloakedQueryMsg& query, processor::ConcurrentQueryCache* cache) {
  CloakedQueryMsg stamped = query;
  stamped.request_id = NextRequestId();
  CallContext context;
  context.cache = cache;
  Result<std::string> bytes =
      CallResilient(Encode(stamped), stamped.request_id, context);
  if (bytes.ok()) {
    return DecodeCandidateList(bytes.value());  // Validated by classify.
  }

  const Status& failure = bytes.status();
  // Graceful degradation: only when the *transport* failed (never for an
  // application error), only for the cached query kind, and only from a
  // current-epoch entry — which is what makes the answer still inclusive:
  // the candidate list was computed for this exact cloak against the very
  // store the unreachable server is still holding.
  if (IsTransportFailure(failure) &&
      options_.degradation.serve_degraded_from_cache && cache != nullptr &&
      stamped.kind == QueryKind::kNearestPublic) {
    std::optional<processor::PublicCandidateList> hit =
        cache->Peek(stamped.cloak);
    if (hit.has_value()) {
      metrics_->transport_degraded_total->Increment();
      CandidateListMsg degraded;
      degraded.kind = stamped.kind;
      degraded.request_id = stamped.request_id;
      degraded.degraded = true;
      degraded.payload = *std::move(hit);
      return degraded;
    }
  }
  return failure;
}

// --- Maintenance -----------------------------------------------------------

Status ResilientClient::EnqueueLocked(std::string bytes, uint64_t request_id) {
  if (replay_.size() >= options_.degradation.replay_buffer_capacity) {
    metrics_->replay_dropped_total->Increment();
    return Status::Unavailable("replay buffer full");
  }
  replay_.push_back(ReplayEntry{request_id, std::move(bytes)});
  metrics_->replay_enqueued_total->Increment();
  metrics_->replay_depth->Set(static_cast<double>(replay_.size()));
  return Status::OK();
}

Status ResilientClient::DrainLocked() {
  while (!replay_.empty()) {
    const ReplayEntry& entry = replay_.front();
    Result<std::string> outcome =
        CallResilient(entry.bytes, entry.request_id, CallContext{});
    if (!outcome.ok() && IsTransportFailure(outcome.status())) {
      return outcome.status();  // Still down; keep the backlog, in order.
    }
    // Applied — or rejected by the server with an application error,
    // which replay cannot surface to the original (long-returned)
    // caller; either way the entry's journey is over.
    replay_.pop_front();
    metrics_->replay_drained_total->Increment();
    metrics_->replay_depth->Set(static_cast<double>(replay_.size()));
  }
  return Status::OK();
}

Status ResilientClient::ApplyMaintenanceLocked(std::string bytes,
                                               uint64_t request_id) {
  // Older queued changes must land first — the stream is ordered (an
  // upsert may replace a handle published by an earlier one).
  Status drained = DrainLocked();
  if (!drained.ok()) {
    if (options_.degradation.replay_buffer_capacity == 0) return drained;
    return EnqueueLocked(std::move(bytes), request_id);
  }
  Result<std::string> outcome =
      CallResilient(bytes, request_id, CallContext{});
  if (outcome.ok()) return Status::OK();
  Status failure = outcome.status();
  if (IsTransportFailure(failure) &&
      options_.degradation.replay_buffer_capacity > 0) {
    return EnqueueLocked(std::move(bytes), request_id);
  }
  return failure;
}

Status ResilientClient::Apply(const RegionUpsertMsg& msg) {
  RegionUpsertMsg stamped = msg;
  stamped.request_id = NextRequestId();
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  return ApplyMaintenanceLocked(Encode(stamped), stamped.request_id);
}

Status ResilientClient::Apply(const RegionRemoveMsg& msg) {
  RegionRemoveMsg stamped = msg;
  stamped.request_id = NextRequestId();
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  return ApplyMaintenanceLocked(Encode(stamped), stamped.request_id);
}

Status ResilientClient::Load(const SnapshotMsg& snapshot) {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  // Snapshot acks echo id 0 (whole-store replacement is naturally
  // idempotent, so snapshots are unkeyed).
  Result<std::string> outcome =
      CallResilient(Encode(snapshot), 0, CallContext{});
  if (!outcome.ok()) return outcome.status();
  // The snapshot supersedes every queued incremental change: the
  // anonymizer built it from the same state those changes led up to.
  replay_.clear();
  metrics_->replay_depth->Set(0.0);
  return Status::OK();
}

Status ResilientClient::Flush() {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  return DrainLocked();
}

}  // namespace casper::transport
