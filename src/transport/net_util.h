#ifndef CASPER_TRANSPORT_NET_UTIL_H_
#define CASPER_TRANSPORT_NET_UTIL_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"

/// \file
/// POSIX socket plumbing shared by SocketChannel and SocketListener:
/// address parsing, listen/dial, and poll-bounded non-blocking I/O.
/// Addresses are strings in two forms:
///
///   unix:/path/to/socket    Unix-domain stream socket
///   host:port               TCP (host is a numeric IP or "localhost";
///                           port 0 asks the kernel for an ephemeral
///                           port, reported back by ListenOn)
///
/// Every fd handed out is non-blocking and close-on-exec; all waiting
/// happens through poll() with caller-supplied deadlines, so no thread
/// is ever parked on a socket it cannot abandon.

namespace casper::transport::net {

struct ParsedAddress {
  bool is_unix = false;
  std::string path;  // unix form
  std::string host;  // tcp form
  uint16_t port = 0;
};

Result<ParsedAddress> ParseAddress(const std::string& address);

/// Create, bind, and listen. For TCP with port 0, the kernel-assigned
/// port is resolved and reflected in `bound_address` (the canonical
/// string clients should dial). For unix sockets a stale path from a
/// crashed predecessor is unlinked first.
Result<int> ListenOn(const ParsedAddress& address, int backlog,
                     std::string* bound_address);

/// Connect with a deadline. The returned fd is non-blocking and fully
/// connected (SO_ERROR checked after the poll wait).
Result<int> Dial(const ParsedAddress& address, double timeout_seconds);

/// Write all of `bytes`, polling for writability up to the deadline.
Status WriteAll(int fd, std::string_view bytes, double timeout_seconds);

/// Read at least one byte (up to `cap`) into `out`, polling up to the
/// deadline. Returns kUnavailable on timeout, peer close, or error.
Status ReadSome(int fd, std::string* out, size_t cap,
                double timeout_seconds);

/// Identity string used for rate-limit / ban bookkeeping: the source IP
/// for TCP peers; unix-domain peers have no address, so each connection
/// gets a distinct synthetic identity ("uds#<conn_id>").
std::string PeerKey(int fd, bool is_unix, uint64_t conn_id);

Status SetNonBlocking(int fd);

}  // namespace casper::transport::net

#endif  // CASPER_TRANSPORT_NET_UTIL_H_
