#include "src/transport/framing.h"

#include "src/common/codec.h"

namespace casper::transport {

std::string EncodeFrame(std::string_view payload) {
  wire::Writer header;
  header.U32(kFrameMagic);
  header.U32(static_cast<uint32_t>(payload.size()));
  std::string frame = header.Take();
  frame.append(payload);
  return frame;
}

FrameDecoder::FrameDecoder(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::Append(std::string_view bytes) {
  if (poisoned_) return;  // The stream is already condemned.
  // Compact once the consumed prefix dominates, so a long-lived
  // connection doesn't grow its buffer without bound.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

Result<std::optional<std::string>> FrameDecoder::Next() {
  if (poisoned_) return Status::DataLoss("frame stream lost sync");
  if (buffered() < kFrameHeaderBytes) return std::optional<std::string>();
  wire::Reader header(std::string_view(buf_).substr(pos_, kFrameHeaderBytes));
  const uint32_t magic = header.U32();
  const uint32_t length = header.U32();
  if (magic != kFrameMagic) {
    poisoned_ = true;
    return Status::DataLoss("bad frame magic");
  }
  // Reject a hostile announcement from the 8-byte header alone — before
  // buffering the announced body, and before any allocation sized by it.
  if (length == 0 || length > max_frame_bytes_) {
    poisoned_ = true;
    return Status::DataLoss("frame length outside protocol bounds");
  }
  if (buffered() < kFrameHeaderBytes + length) {
    return std::optional<std::string>();  // Body still in flight.
  }
  std::string payload = buf_.substr(pos_ + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;
  return std::optional<std::string>(std::move(payload));
}

}  // namespace casper::transport
