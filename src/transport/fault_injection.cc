#include "src/transport/fault_injection.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/casper/messages.h"

namespace casper::transport {
namespace {

/// Late delivery applies to queries only: a deferred *maintenance*
/// message would be flushed from whichever call comes next — possibly a
/// query running on a batch worker thread, where a store mutation would
/// race the read-only fan-out. Real transports reorder queries just as
/// readily, and the maintenance path exercises its own out-of-order
/// machinery (idempotent retries + the replay buffer).
bool LateDeliverable(std::string_view request) {
  Result<MessageTag> tag = TagOf(request);
  return tag.ok() && tag.value() == MessageTag::kCloakedQuery;
}

}  // namespace

FaultInjectingChannel::FaultInjectingChannel(Channel* inner,
                                             const FaultProfile& profile,
                                             uint64_t seed)
    : inner_(inner), profile_(profile), rng_(seed) {
  CASPER_DCHECK(inner != nullptr);
}

void FaultInjectingChannel::FailRequests(uint64_t first, uint64_t last) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_windows_.emplace_back(first, last);
}

void FaultInjectingChannel::BlackoutForMillis(double millis) {
  std::lock_guard<std::mutex> lock(mu_);
  blackout_until_seconds_ = clock_.ElapsedSeconds() + millis / 1e3;
}

void FaultInjectingChannel::SetProfile(const FaultProfile& profile) {
  std::lock_guard<std::mutex> lock(mu_);
  profile_ = profile;
}

FaultStats FaultInjectingChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t FaultInjectingChannel::calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return call_index_;
}

std::string FaultInjectingChannel::Corrupt(std::string bytes) {
  // Caller holds mu_ (rng_ access).
  if (bytes.size() < 2) return bytes;
  const size_t pos = 1 + static_cast<size_t>(
                             rng_.UniformInt(0, bytes.size() - 2));
  const auto flip =
      static_cast<uint8_t>(rng_.UniformInt(1, 255));  // Never a no-op.
  bytes[pos] = static_cast<char>(static_cast<uint8_t>(bytes[pos]) ^ flip);
  return bytes;
}

Result<std::string> FaultInjectingChannel::Call(std::string_view request,
                                                const CallContext& context) {
  // Phase 1 (under the lock): draw this call's fate from the seeded
  // stream and snapshot everything the delivery phase needs, so the
  // inner call itself can run lock-free and concurrent.
  std::string to_send(request);
  std::optional<std::string> flush_first;
  uint64_t delay_micros = 0;
  bool duplicate = false;
  bool drop_response = false;
  bool corrupt_response = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t index = ++call_index_;
    ++stats_.calls;
    flush_first = std::move(late_request_);
    late_request_.reset();

    for (const auto& [first, last] : fail_windows_) {
      if (index >= first && index <= last) {
        ++stats_.scripted_failures;
        return Status::Unavailable("scripted fault window");
      }
    }
    if (blackout_until_seconds_ >= 0.0 &&
        clock_.ElapsedSeconds() < blackout_until_seconds_) {
      ++stats_.blackout_failures;
      return Status::Unavailable("channel blackout");
    }
    if (rng_.Bernoulli(profile_.late_delivery_rate) &&
        LateDeliverable(to_send)) {
      ++stats_.late_deliveries;
      late_request_ = std::move(to_send);
      return Status::Unavailable("delivery deferred (reordered)");
    }
    if (rng_.Bernoulli(profile_.drop_request_rate)) {
      ++stats_.dropped_requests;
      return Status::Unavailable("request dropped");
    }
    if (rng_.Bernoulli(profile_.corrupt_request_rate)) {
      ++stats_.corrupted_requests;
      to_send = Corrupt(std::move(to_send));
    }
    if (rng_.Bernoulli(profile_.delay_rate)) {
      ++stats_.delayed;
      delay_micros = profile_.delay_micros;
    }
    duplicate = rng_.Bernoulli(profile_.duplicate_rate);
    if (duplicate) ++stats_.duplicated;
    drop_response = rng_.Bernoulli(profile_.drop_response_rate);
    if (drop_response) ++stats_.dropped_responses;
    corrupt_response = rng_.Bernoulli(profile_.corrupt_response_rate);
    if (corrupt_response) ++stats_.corrupted_responses;
  }

  // Phase 2 (lock-free): deliver. A request deferred by an earlier
  // late-delivery fault lands now, *before* this call's own request —
  // its response is long since unclaimed, so it is discarded.
  if (flush_first.has_value()) {
    (void)inner_->Call(*flush_first, context);
  }
  if (delay_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
  }
  if (duplicate) {
    (void)inner_->Call(to_send, context);
  }
  Result<std::string> response = inner_->Call(to_send, context);
  if (!response.ok()) return response;
  if (drop_response) {
    return Status::Unavailable("response dropped");
  }
  if (corrupt_response) {
    std::lock_guard<std::mutex> lock(mu_);
    return Corrupt(std::move(response).value());
  }
  return response;
}

}  // namespace casper::transport
