#ifndef CASPER_TRANSPORT_CHANNEL_H_
#define CASPER_TRANSPORT_CHANNEL_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/processor/concurrent_query_cache.h"

/// \file
/// The byte-level seam between the trusted anonymizer tier and the
/// untrusted query server (Figure 1's middle arrow). Everything that
/// crosses it is an *encoded* wire message from src/casper/messages.h;
/// a Channel moves request bytes one way and response bytes back, and
/// knows nothing about what they mean. DirectChannel is today's
/// in-process deployment (lossless, synchronous); FaultInjectingChannel
/// (fault_injection.h) wraps any channel with deterministic drops,
/// delays, duplication, reordering, and corruption so the resilience
/// machinery above it (resilient_client.h) can be tested — and so the
/// failure modes of a real two-process deployment are representable at
/// all.

namespace casper::transport {

/// Per-call context that travels *next to* the wire bytes, not on them.
/// The candidate-list cache is a co-located-deployment optimization: in
/// process, the batch engine's shard-locked cache sits on the server
/// side of the seam and must reach QueryServer::Execute by pointer. A
/// multi-process deployment would hold the cache inside the server
/// process and this struct would be empty.
struct CallContext {
  processor::ConcurrentQueryCache* cache = nullptr;

  /// Remaining end-to-end budget for this attempt, in seconds; 0 means
  /// unbounded. ResilientClient stamps each attempt with what is left of
  /// the request deadline so a transport that blocks — dialing, writing,
  /// waiting on a dead peer — gives up in time for the caller to see
  /// kDeadlineExceeded *at* the deadline, not after the socket layer's
  /// own (much longer) I/O timeouts.
  double deadline_seconds = 0.0;
};

/// One round trip: encoded request bytes in, encoded response bytes
/// out. Implementations may fail with kUnavailable (delivery failed,
/// nothing reached the server — or the response was lost after the
/// server acted; the caller cannot tell, which is exactly why requests
/// carry idempotency keys). Thread safety is implementation-defined;
/// every channel in this subsystem is safe for concurrent Call().
class Channel {
 public:
  virtual ~Channel() = default;
  virtual Result<std::string> Call(std::string_view request,
                                   const CallContext& context) = 0;
};

class ServerEndpoint;

/// The in-process deployment: hands the bytes straight to the server
/// endpoint, perfectly and synchronously (today's pre-transport
/// behavior, now explicit).
class DirectChannel : public Channel {
 public:
  /// The endpoint must outlive the channel.
  explicit DirectChannel(ServerEndpoint* endpoint);

  Result<std::string> Call(std::string_view request,
                           const CallContext& context) override;

 private:
  ServerEndpoint* endpoint_;
};

}  // namespace casper::transport

#endif  // CASPER_TRANSPORT_CHANNEL_H_
