#ifndef CASPER_TRANSPORT_RESILIENT_CLIENT_H_
#define CASPER_TRANSPORT_RESILIENT_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>

#include "src/casper/messages.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/obs/casper_metrics.h"
#include "src/processor/concurrent_query_cache.h"
#include "src/transport/channel.h"

/// \file
/// The anonymizer-side client of the tier channel, and the home of every
/// resilience mechanism in the transport:
///
///  - **Deadlines** — each logical request gets a wall-clock budget; once
///    it is spent the call fails kDeadlineExceeded (terminal: the budget
///    cannot be un-spent, so deadline failures are never retried).
///  - **Retries** — kUnavailable and kDataLoss are retried with capped
///    exponential backoff and deterministic jitter (seeded Rng), re-sending
///    the *same* request id so the server's idempotency window can replay
///    the original outcome of a duplicated delivery.
///  - **Circuit breaking** — consecutive transport failures open a
///    three-state breaker (closed -> open -> half-open); while open, calls
///    fail fast without touching the channel, and after a cool-down a few
///    probe requests decide between re-closing and re-opening. The state is
///    exported as the `casper_transport_breaker_state` gauge.
///  - **Graceful degradation** — see Execute() and Apply(): unreachable-
///    server failures fall back to cache-served degraded answers (queries)
///    or a bounded replay buffer (maintenance). Degradation never weakens
///    privacy: everything that crosses the channel is already cloaked, and
///    the fallbacks only ever *reuse* previously-cloaked artifacts.
///
/// Application-level errors carried in an AckMsg (kNotFound,
/// kInvalidArgument, ...) are *successes* for the breaker — the server
/// answered; the channel is healthy — and are returned to the caller
/// unchanged and unretried.

namespace casper::transport {

/// Breaker states, in wire/gauge order (obs::kBreakerStateLabels).
enum class BreakerState : int {
  kClosed = 0,    ///< Healthy: calls flow, failures are counted.
  kOpen = 1,      ///< Tripped: calls fail fast until the cool-down ends.
  kHalfOpen = 2,  ///< Probing: a few successes re-close, one failure
                  ///< re-opens.
};

/// Deadline / retry / backoff knobs. Defaults are sized for the
/// in-process channel (microsecond round trips): tests override them.
struct RetryPolicy {
  /// Total attempts per logical request (first try + retries).
  int max_attempts = 3;
  double initial_backoff_seconds = 0.0005;
  double max_backoff_seconds = 0.01;
  double backoff_multiplier = 2.0;
  /// Each backoff is scaled by a uniform factor in
  /// [1 - jitter_fraction, 1 + jitter_fraction], drawn from the seeded
  /// jitter Rng — deterministic for a fixed seed.
  double jitter_fraction = 0.2;
  /// Wall-clock budget per logical request, spanning all attempts and
  /// backoffs; <= 0 disables the deadline.
  double deadline_seconds = 0.05;
};

struct BreakerPolicy {
  /// Consecutive transport failures that trip the breaker open.
  int failure_threshold = 5;
  /// Cool-down before an open breaker admits its first probe.
  double open_seconds = 0.05;
  /// Probe successes required to re-close from half-open.
  int half_open_successes = 2;
};

struct DegradationPolicy {
  /// Serve breaker-open / retries-exhausted private NN queries from the
  /// candidate-list cache, flagged degraded=true (inclusive, possibly
  /// non-minimal). Never serves stale-epoch entries.
  bool serve_degraded_from_cache = true;
  /// Maintenance messages queued while the server is unreachable; 0
  /// disables the replay buffer (failures surface immediately).
  size_t replay_buffer_capacity = 1024;
};

struct ResilienceOptions {
  RetryPolicy retry;
  BreakerPolicy breaker;
  DegradationPolicy degradation;

  /// Seed of the backoff-jitter stream.
  uint64_t jitter_seed = 0xCA59E12;

  /// Monotonic clock in seconds; null uses a steady-clock stopwatch.
  /// Injected by tests to drive deadlines and breaker cool-downs
  /// deterministically.
  std::function<double()> clock;

  /// Backoff sleeper; null uses std::this_thread::sleep_for. Tests
  /// inject a recorder so retries take zero wall time.
  std::function<void(double seconds)> sleep;

  /// Instrument bundle; null resolves to obs::CasperMetrics::Default().
  obs::CasperMetrics* metrics = nullptr;
};

/// The resilient anonymizer->server client. Thread-safe: Execute() may be
/// called from many threads at once (the batch engine does); maintenance
/// (Apply / Load / Flush) keeps the store contract of QueryServer —
/// single-threaded, never concurrent with queries — and the replay buffer
/// is only drained from maintenance calls for the same reason.
class ResilientClient : public PrivateStoreSink {
 public:
  /// The channel must outlive the client.
  ResilientClient(Channel* channel, const ResilienceOptions& options);

  /// Send one cloaked query. Stamps a fresh request id, retries
  /// transport failures within the deadline, and validates that the
  /// response answers *this* request (id echo) before returning it.
  /// When the server is unreachable (breaker open, retries exhausted,
  /// or deadline spent) and the query is a private NN with a live
  /// cache entry for the same cloak, returns that entry flagged
  /// degraded=true instead of failing — inclusiveness holds because
  /// the entry was computed for the same cloak in the current store
  /// epoch; minimality may not.
  Result<CandidateListMsg> Execute(const CloakedQueryMsg& query,
                                   processor::ConcurrentQueryCache* cache);

  /// Maintenance stream (PrivateStoreSink). On transport failure the
  /// message is queued in the bounded replay buffer and OK is returned
  /// — the upsert is durable in the client and will be drained, in
  /// order, by the next maintenance call that finds the channel
  /// healthy (or an explicit Flush()). kUnavailable is returned only
  /// when the buffer is full (the message is truly lost; counted in
  /// `casper_transport_replay_dropped_total`).
  Status Apply(const RegionUpsertMsg& msg) override;
  Status Apply(const RegionRemoveMsg& msg) override;

  /// Bulk snapshot. On success the replay buffer is cleared — the
  /// snapshot supersedes every queued incremental change.
  Status Load(const SnapshotMsg& snapshot);

  /// Drain the replay buffer now. OK when it empties (or was empty);
  /// otherwise the transport error that stopped the drain.
  Status Flush();

  BreakerState breaker_state() const;
  size_t replay_depth() const;

 private:
  struct ReplayEntry {
    uint64_t request_id = 0;
    std::string bytes;
  };

  uint64_t NextRequestId() { return next_id_.fetch_add(1); }

  /// The full resilience pipeline for one logical request: breaker
  /// admission, deadline, attempts with backoff, response validation
  /// (id echo + decode). Returns the raw valid response bytes, or the
  /// final classified Status.
  Result<std::string> CallResilient(const std::string& request,
                                    uint64_t request_id,
                                    const CallContext& context);

  /// One attempt's response, classified: OK bytes for a valid answer
  /// (matching CandidateListMsg or OK AckMsg), the ack's status for an
  /// application error, kDataLoss for anything undecodable or answering
  /// the wrong request.
  Result<std::string> ClassifyResponse(Result<std::string> response,
                                       uint64_t request_id);

  /// Shared maintenance path: drain the backlog, send, queue on
  /// transport failure. Caller must hold maintenance_mu_.
  Status ApplyMaintenanceLocked(std::string bytes, uint64_t request_id);
  Status DrainLocked();
  Status EnqueueLocked(std::string bytes, uint64_t request_id);

  // Breaker (guarded by mu_).
  Status Admit();
  void RecordSuccess();
  void RecordFailure();
  void TransitionLocked(BreakerState to);

  double Now() const { return clock_(); }
  double JitteredBackoff(int completed_attempts);

  Channel* channel_;
  ResilienceOptions options_;
  obs::CasperMetrics* metrics_;
  Stopwatch watch_;  ///< Backs the default clock.
  std::function<double()> clock_;
  std::function<void(double)> sleep_;

  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex mu_;  ///< Breaker state + jitter Rng.
  Rng jitter_rng_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  double open_until_seconds_ = 0.0;

  mutable std::mutex maintenance_mu_;  ///< Replay buffer.
  std::deque<ReplayEntry> replay_;
};

}  // namespace casper::transport

#endif  // CASPER_TRANSPORT_RESILIENT_CLIENT_H_
