#ifndef CASPER_TRANSPORT_SERVER_ENDPOINT_H_
#define CASPER_TRANSPORT_SERVER_ENDPOINT_H_

#include <string>
#include <string_view>

#include "src/casper/messages.h"
#include "src/server/query_server.h"
#include "src/transport/channel.h"

/// \file
/// The server side of the transport seam: decodes whatever bytes arrive,
/// dispatches to the QueryServer, and encodes the reply. Queries answer
/// with a CandidateListMsg (request id echoed so the client can match
/// responses to requests); maintenance messages and *every* failure
/// answer with an AckMsg, so errors travel the wire as typed statuses
/// instead of being implied by silence. Bytes that do not decode are
/// acknowledged kDataLoss — the one status that tells the client "resend
/// the same request" rather than "your request is wrong".

namespace casper::transport {

class ServerEndpoint {
 public:
  /// The server must outlive the endpoint. Concurrent Handle() calls are
  /// safe exactly when the underlying server call is: queries are
  /// read-only and fan out; maintenance is single-threaded by contract.
  explicit ServerEndpoint(server::QueryServer* server);

  /// Decode, dispatch, encode. Always returns response bytes — failures
  /// become encoded AckMsgs, not error statuses; a non-OK return means
  /// the *endpoint* could not even form a reply (never happens today,
  /// but the seam allows it for a future remote deployment).
  Result<std::string> Handle(std::string_view request,
                             const CallContext& context);

 private:
  server::QueryServer* server_;
};

}  // namespace casper::transport

#endif  // CASPER_TRANSPORT_SERVER_ENDPOINT_H_
