#include "src/transport/net_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>

namespace casper::transport::net {
namespace {

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

/// Fill a sockaddr for `address`. Returns the length, or 0 on error.
socklen_t FillSockaddr(const ParsedAddress& address,
                       sockaddr_storage* storage, Status* error) {
  std::memset(storage, 0, sizeof(*storage));
  if (address.is_unix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(storage);
    sun->sun_family = AF_UNIX;
    if (address.path.size() + 1 > sizeof(sun->sun_path)) {
      *error = Status::InvalidArgument("unix socket path too long");
      return 0;
    }
    std::memcpy(sun->sun_path, address.path.c_str(),
                address.path.size() + 1);
    return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  address.path.size() + 1);
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(address.port);
  const std::string host =
      address.host == "localhost" ? "127.0.0.1" : address.host;
  if (inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
    *error = Status::InvalidArgument("unresolvable host '" + address.host +
                                     "' (numeric IPv4 or localhost)");
    return 0;
  }
  return sizeof(sockaddr_in);
}

int PollOne(int fd, short events, double timeout_seconds) {
  pollfd p{fd, events, 0};
  const int millis =
      timeout_seconds <= 0.0
          ? 0
          : static_cast<int>(std::min(timeout_seconds * 1e3 + 1.0, 2.0e9));
  return poll(&p, 1, millis);
}

}  // namespace

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress parsed;
  if (address.rfind("unix:", 0) == 0) {
    parsed.is_unix = true;
    parsed.path = address.substr(5);
    if (parsed.path.empty()) {
      return Status::InvalidArgument("empty unix socket path");
    }
    return parsed;
  }
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument(
        "address must be unix:/path or host:port, got '" + address + "'");
  }
  parsed.host = address.substr(0, colon);
  long port = 0;
  for (size_t i = colon + 1; i < address.size(); ++i) {
    const char c = address[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-numeric port in '" + address +
                                     "'");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in '" + address +
                                     "'");
    }
  }
  parsed.port = static_cast<uint16_t>(port);
  return parsed;
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Result<int> ListenOn(const ParsedAddress& address, int backlog,
                     std::string* bound_address) {
  const int fd = socket(address.is_unix ? AF_UNIX : AF_INET,
                        SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  if (address.is_unix) {
    unlink(address.path.c_str());  // Stale path from a crashed server.
  } else {
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  sockaddr_storage storage;
  Status error = Status::OK();
  const socklen_t len = FillSockaddr(address, &storage, &error);
  if (len == 0) {
    close(fd);
    return error;
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&storage), len) < 0) {
    const Status status = Errno("bind");
    close(fd);
    return status;
  }
  if (listen(fd, backlog) < 0) {
    const Status status = Errno("listen");
    close(fd);
    return status;
  }
  if (Status status = SetNonBlocking(fd); !status.ok()) {
    close(fd);
    return status;
  }
  if (bound_address != nullptr) {
    if (address.is_unix) {
      *bound_address = "unix:" + address.path;
    } else {
      sockaddr_in resolved;
      socklen_t resolved_len = sizeof(resolved);
      uint16_t port = address.port;
      if (getsockname(fd, reinterpret_cast<sockaddr*>(&resolved),
                      &resolved_len) == 0) {
        port = ntohs(resolved.sin_port);
      }
      *bound_address = address.host + ":" + std::to_string(port);
    }
  }
  return fd;
}

Result<int> Dial(const ParsedAddress& address, double timeout_seconds) {
  const int fd = socket(address.is_unix ? AF_UNIX : AF_INET,
                        SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  if (Status status = SetNonBlocking(fd); !status.ok()) {
    close(fd);
    return status;
  }
  sockaddr_storage storage;
  Status error = Status::OK();
  const socklen_t len = FillSockaddr(address, &storage, &error);
  if (len == 0) {
    close(fd);
    return error;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&storage), len) < 0) {
    if (errno != EINPROGRESS) {
      const Status status = Errno("connect");
      close(fd);
      return status;
    }
    if (PollOne(fd, POLLOUT, timeout_seconds) <= 0) {
      close(fd);
      return Status::Unavailable("connect timed out");
    }
    int soerr = 0;
    socklen_t soerr_len = sizeof(soerr);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len) < 0 ||
        soerr != 0) {
      close(fd);
      return Status::Unavailable(std::string("connect: ") +
                                 std::strerror(soerr != 0 ? soerr : errno));
    }
  }
  if (!address.is_unix) {
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

Status WriteAll(int fd, std::string_view bytes, double timeout_seconds) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = send(fd, bytes.data() + sent, bytes.size() - sent,
                           MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (PollOne(fd, POLLOUT, timeout_seconds) <= 0) {
        return Status::Unavailable("socket write timed out");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status ReadSome(int fd, std::string* out, size_t cap,
                double timeout_seconds) {
  char chunk[16384];
  const size_t want = std::min(cap, sizeof(chunk));
  for (;;) {
    const ssize_t n = recv(fd, chunk, want, 0);
    if (n > 0) {
      out->append(chunk, static_cast<size_t>(n));
      return Status::OK();
    }
    if (n == 0) return Status::Unavailable("peer closed connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (PollOne(fd, POLLIN, timeout_seconds) <= 0) {
        return Status::Unavailable("socket read timed out");
      }
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

std::string PeerKey(int fd, bool is_unix, uint64_t conn_id) {
  if (!is_unix) {
    sockaddr_in peer;
    socklen_t peer_len = sizeof(peer);
    if (getpeername(fd, reinterpret_cast<sockaddr*>(&peer), &peer_len) ==
            0 &&
        peer.sin_family == AF_INET) {
      char text[INET_ADDRSTRLEN] = {0};
      if (inet_ntop(AF_INET, &peer.sin_addr, text, sizeof(text)) !=
          nullptr) {
        return text;
      }
    }
  }
  return "uds#" + std::to_string(conn_id);
}

}  // namespace casper::transport::net
