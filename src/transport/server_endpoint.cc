#include "src/transport/server_endpoint.h"

namespace casper::transport {

ServerEndpoint::ServerEndpoint(server::QueryServer* server)
    : server_(server) {
  CASPER_DCHECK(server != nullptr);
}

Result<std::string> ServerEndpoint::Handle(std::string_view request,
                                           const CallContext& context) {
  Result<MessageTag> tag = TagOf(request);
  if (!tag.ok()) {
    return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
  }
  switch (tag.value()) {
    case MessageTag::kCloakedQuery: {
      Result<CloakedQueryView> query = DecodeCloakedQueryView(request);
      if (!query.ok()) {
        return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
      }
      Result<CandidateListMsg> answer =
          server_->Execute(query.value(), context.cache);
      if (!answer.ok()) {
        return Encode(AckMsg::For(query->request_id, answer.status()));
      }
      CandidateListMsg response = std::move(answer).value();
      response.request_id = query->request_id;
      return Encode(response);
    }
    case MessageTag::kRegionUpsert: {
      Result<RegionUpsertMsg> msg = DecodeRegionUpsert(request);
      if (!msg.ok()) {
        return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
      }
      return Encode(AckMsg::For(msg->request_id, server_->Apply(msg.value())));
    }
    case MessageTag::kRegionRemove: {
      Result<RegionRemoveMsg> msg = DecodeRegionRemove(request);
      if (!msg.ok()) {
        return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
      }
      return Encode(AckMsg::For(msg->request_id, server_->Apply(msg.value())));
    }
    case MessageTag::kSnapshot: {
      // Zero-copy: the (handle, region) records flow from the frame
      // straight into the store's bulk-load vector.
      Result<SnapshotView> msg = DecodeSnapshotView(request);
      if (!msg.ok()) {
        return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
      }
      // Snapshots carry no request id (the whole-store replacement is
      // naturally idempotent); acks for them always echo 0.
      return Encode(AckMsg::For(0, server_->Load(msg.value())));
    }
    case MessageTag::kCandidateList:
    case MessageTag::kAck:
      return Encode(AckMsg::For(
          0, Status::InvalidArgument("response message sent as request")));
  }
  return Encode(AckMsg::For(0, Status::DataLoss("undecodable request")));
}

DirectChannel::DirectChannel(ServerEndpoint* endpoint) : endpoint_(endpoint) {
  CASPER_DCHECK(endpoint != nullptr);
}

Result<std::string> DirectChannel::Call(std::string_view request,
                                        const CallContext& context) {
  return endpoint_->Handle(request, context);
}

}  // namespace casper::transport
