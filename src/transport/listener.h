#ifndef CASPER_TRANSPORT_LISTENER_H_
#define CASPER_TRANSPORT_LISTENER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/stopwatch.h"
#include "src/obs/casper_metrics.h"
#include "src/transport/channel.h"
#include "src/transport/framing.h"

/// \file
/// The server half of the real transport: a poll()-driven event loop
/// that accepts N client connections on one TCP/Unix-domain address,
/// reassembles length-prefixed frames, and dispatches each request
/// payload to a handler (a ServerEndpoint, a ShardEndpoint fronting a
/// fleet, or anything else with the bytes-in/bytes-out contract) on a
/// bounded worker pool.
///
/// Admission control and supervision, in the order a frame meets them:
///
///   accept  -> connection cap (close, `cap`), ban check (close,
///              `banned` + casper_net_ban_rejects_total)
///   stream  -> framing violation poisons the connection (close,
///              `frame_error`); oversized length prefixes are rejected
///              from the 8-byte header, before any allocation
///   frame   -> per-peer rate/byte window; a violation is answered with
///              a typed kUnavailable ack and counts a strike — at the
///              strike threshold the peer is banned for ban_seconds
///   queue   -> per-connection in-flight watermark; above it the frame
///              is shed with a typed kUnavailable ack
///              (casper_net_shed_total) instead of queueing unboundedly
///   time    -> idle connections are closed at idle_timeout; a peer
///              holding a frame *open* (slow loris) is closed at the
///              much shorter partial_frame_timeout
///
/// Shutdown drains gracefully: stop accepting, shed new frames, finish
/// in-flight work, flush responses, then close — bounded by
/// drain_timeout_seconds.
///
/// Peer identity for rate/ban bookkeeping is the source IP for TCP.
/// Unix-domain sockets carry no address, so each connection is its own
/// peer: banning a UDS flooder closes its connection and clears its
/// strikes — a fresh connection starts clean, which is the honest
/// semantics available on that transport.

namespace casper::transport {

/// The application seam: one request payload in, one response payload
/// out. Must be thread-safe — the listener invokes it from its worker
/// pool. A failed Result is converted to a typed AckMsg addressed to
/// the request's idempotency key.
using SocketHandler =
    std::function<Result<std::string>(std::string_view, const CallContext&)>;

struct ListenerOptions {
  int worker_threads = 4;
  size_t max_connections = 256;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Per-connection admitted-but-unanswered frames above which new
  /// frames are shed with a typed kUnavailable ack.
  size_t inbound_queue_watermark = 64;

  double idle_timeout_seconds = 300.0;
  double partial_frame_timeout_seconds = 10.0;  ///< Slow-loris bound.

  /// Per-peer DoS limits over a sliding window; 0 disables a limit.
  double rate_window_seconds = 1.0;
  size_t max_requests_per_window = 0;
  size_t max_bytes_per_window = 0;
  int strike_threshold = 3;  ///< Violations before a ban.
  double ban_seconds = 30.0;

  double drain_timeout_seconds = 5.0;

  /// Server-side candidate-list cache handed to the handler (the
  /// socket deployment's home for what CallContext carried in-process).
  processor::ConcurrentQueryCache* cache = nullptr;
  obs::CasperMetrics* metrics = nullptr;  ///< null -> Default().
};

struct ListenerStats {
  uint64_t accepted = 0;
  uint64_t active = 0;
  uint64_t frames = 0;
  uint64_t frame_errors = 0;
  uint64_t shed = 0;
  uint64_t rate_limited = 0;
  uint64_t bans = 0;
  uint64_t ban_rejects = 0;
  uint64_t cap_rejects = 0;
  uint64_t idle_closed = 0;
  uint64_t slowloris_closed = 0;
};

class SocketListener {
 public:
  /// Bind, listen, and start the event loop + workers. `address` is
  /// `unix:/path` or `host:port` (port 0 = ephemeral; the actual port
  /// is visible in bound_address()).
  static Result<std::unique_ptr<SocketListener>> Start(
      const std::string& address, SocketHandler handler,
      ListenerOptions options = {});

  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Graceful drain: stop accepting, shed new frames, finish in-flight
  /// work and flush responses (bounded by drain_timeout_seconds), then
  /// close every connection. Idempotent.
  void Shutdown();

  const std::string& bound_address() const { return bound_address_; }
  ListenerStats stats() const;

 private:
  struct Conn;
  struct WorkItem {
    uint64_t conn_id;
    std::string payload;
  };
  enum class CloseReason : size_t {
    kEof = 0,
    kError = 1,
    kIdle = 2,
    kSlowLoris = 3,
    kFrameError = 4,
    kBanned = 5,
    kCap = 6,
    kDrain = 7,
  };

  SocketListener(int listen_fd, std::string bound_address, bool is_unix,
                 SocketHandler handler, ListenerOptions options);

  double Now() const { return watch_.ElapsedSeconds(); }
  void Wake();
  void LoopMain();
  void WorkerMain();
  void AcceptPending();
  void ReadFrom(const std::shared_ptr<Conn>& conn);
  void FlushTo(const std::shared_ptr<Conn>& conn);
  void HandleTick();
  void CloseConn(const std::shared_ptr<Conn>& conn, CloseReason reason);
  void QueueAck(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                const Status& status);
  void QueuePayload(const std::shared_ptr<Conn>& conn,
                    std::string_view payload);
  /// True when the frame was admitted; false when it was shed, rate
  /// limited, or got the peer banned (the conn may be gone after this).
  bool AdmitFrame(const std::shared_ptr<Conn>& conn, std::string payload);
  void BanPeer(const std::shared_ptr<Conn>& conn);
  bool DrainComplete();

  const int listen_fd_;
  const std::string bound_address_;
  const bool is_unix_;
  const SocketHandler handler_;
  const ListenerOptions options_;
  obs::CasperMetrics* const metrics_;
  Stopwatch watch_;

  int wake_fds_[2] = {-1, -1};
  std::thread loop_;
  std::vector<std::thread> workers_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> loop_done_{false};
  double drain_deadline_seconds_ = 0.0;  // Loop-thread only.

  // Connection registry: mutated by the loop thread only; workers take
  // the lock to look up a conn and append its response.
  mutable std::mutex conns_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;

  // Loop-thread-only peer bookkeeping (strike/ban state survives the
  // offending connection for addressable peers).
  std::unordered_map<std::string, int> strikes_;
  std::unordered_map<std::string, double> bans_;  // key -> banned until

  // Bounded handoff to the worker pool.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  bool stop_workers_ = false;
  std::atomic<size_t> pending_{0};  ///< Admitted, not yet answered.

  mutable std::mutex stats_mu_;
  ListenerStats stats_;
  std::atomic<bool> shut_down_{false};
};

/// Wraps a handler with the concurrency contract the in-process
/// deployment got from the facade's locking: maintenance messages
/// (upserts, removes, snapshots) run exclusively, queries run shared.
/// A real multi-client listener cannot rely on its *clients* to
/// serialize writes, so the boundary enforces it. Copyable into a
/// SocketHandler.
class SerializedHandler {
 public:
  explicit SerializedHandler(SocketHandler inner)
      : mu_(std::make_shared<std::shared_mutex>()),
        inner_(std::move(inner)) {}

  Result<std::string> operator()(std::string_view request,
                                 const CallContext& context) const;

 private:
  std::shared_ptr<std::shared_mutex> mu_;
  SocketHandler inner_;
};

}  // namespace casper::transport

#endif  // CASPER_TRANSPORT_LISTENER_H_
