#include "src/transport/listener.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "src/casper/messages.h"
#include "src/transport/net_util.h"

namespace casper::transport {
namespace {

/// One poll tick: timers (idle / slow-loris / ban expiry) are checked
/// at this cadence, so timeouts are accurate to ~this granularity.
constexpr int kTickMillis = 50;

}  // namespace

/// Per-connection state. Field ownership:
///  - loop-thread only: decoder, timers, rate window (no lock),
///  - loop + workers:   `out`, `close_after_flush` (under out_mu),
///                      `in_flight` (atomic).
/// The fd is closed by the loop thread alone; workers never touch it.
struct SocketListener::Conn {
  int fd = -1;
  uint64_t id = 0;
  std::string peer_key;

  FrameDecoder decoder;
  double last_activity = 0.0;
  double partial_since = -1.0;  ///< >= 0 while a frame is held open.
  double window_start = 0.0;
  size_t window_requests = 0;
  size_t window_bytes = 0;

  std::atomic<size_t> in_flight{0};
  std::mutex out_mu;
  std::string out;
  bool close_after_flush = false;

  explicit Conn(size_t max_frame_bytes) : decoder(max_frame_bytes) {}
};

Result<std::unique_ptr<SocketListener>> SocketListener::Start(
    const std::string& address, SocketHandler handler,
    ListenerOptions options) {
  Result<net::ParsedAddress> parsed = net::ParseAddress(address);
  if (!parsed.ok()) return parsed.status();
  std::string bound;
  Result<int> fd = net::ListenOn(parsed.value(), /*backlog=*/128, &bound);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<SocketListener>(
      new SocketListener(fd.value(), std::move(bound),
                         parsed->is_unix, std::move(handler), options));
}

SocketListener::SocketListener(int listen_fd, std::string bound_address,
                               bool is_unix, SocketHandler handler,
                               ListenerOptions options)
    : listen_fd_(listen_fd),
      bound_address_(std::move(bound_address)),
      is_unix_(is_unix),
      handler_(std::move(handler)),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : obs::CasperMetrics::Default()) {
  if (pipe(wake_fds_) == 0) {
    net::SetNonBlocking(wake_fds_[0]);
    net::SetNonBlocking(wake_fds_[1]);
  }
  const int workers = std::max(1, options_.worker_threads);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  loop_ = std::thread([this] { LoopMain(); });
}

SocketListener::~SocketListener() { Shutdown(); }

ListenerStats SocketListener::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void SocketListener::Wake() {
  if (wake_fds_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = write(wake_fds_[1], &byte, 1);
  }
}

void SocketListener::Shutdown() {
  if (shut_down_.exchange(true)) return;
  draining_.store(true);
  Wake();
  if (loop_.joinable()) loop_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_workers_ = true;
    queue_.clear();  // Past the drain deadline nothing is owed answers.
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
}

// --- Worker pool -----------------------------------------------------------

void SocketListener::WorkerMain() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    CallContext context;
    context.cache = options_.cache;
    Result<std::string> response = handler_(item.payload, context);
    std::string bytes =
        response.ok()
            ? *std::move(response)
            : Encode(AckMsg::For(RequestIdOf(item.payload),
                                 response.status()));
    std::shared_ptr<Conn> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      auto it = conns_.find(item.conn_id);
      if (it != conns_.end()) conn = it->second;
    }
    if (conn != nullptr) {
      QueuePayload(conn, bytes);
      conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    }
    const size_t left = pending_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    metrics_->net_inbound_queue_depth->Set(static_cast<double>(left));
    Wake();  // The loop must notice the fresh response bytes.
  }
}

// --- Outbound --------------------------------------------------------------

void SocketListener::QueuePayload(const std::shared_ptr<Conn>& conn,
                                  std::string_view payload) {
  std::string frame = EncodeFrame(payload);
  std::lock_guard<std::mutex> lock(conn->out_mu);
  conn->out.append(frame);
  metrics_->net_frames_written_total->Increment();
}

void SocketListener::QueueAck(const std::shared_ptr<Conn>& conn,
                              uint64_t request_id, const Status& status) {
  QueuePayload(conn, Encode(AckMsg::For(request_id, status)));
}

void SocketListener::FlushTo(const std::shared_ptr<Conn>& conn) {
  bool close_when_done = false;
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    while (!conn->out.empty()) {
      const ssize_t n = send(conn->fd, conn->out.data(), conn->out.size(),
                             MSG_NOSIGNAL);
      if (n > 0) {
        metrics_->net_bytes_written_total->Increment(
            static_cast<uint64_t>(n));
        conn->out.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      conn->out.clear();
      conn->close_after_flush = true;  // Unwritable peer: give up.
      break;
    }
    drained = conn->out.empty();
    close_when_done = conn->close_after_flush;
  }
  if (drained && close_when_done) CloseConn(conn, CloseReason::kError);
}

// --- Close / ban -----------------------------------------------------------

void SocketListener::CloseConn(const std::shared_ptr<Conn>& conn,
                               CloseReason reason) {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (conns_.erase(conn->id) == 0) return;  // Already closed.
  }
  // Book-keeping strictly before close(): the close is the only signal
  // some peers get, and a peer reacting to its EOF must already see the
  // matching counters.
  metrics_->net_connections_closed_total[static_cast<size_t>(reason)]
      ->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    --stats_.active;
    metrics_->net_connections_active->Set(
        static_cast<double>(stats_.active));
    switch (reason) {
      case CloseReason::kIdle:
        ++stats_.idle_closed;
        break;
      case CloseReason::kSlowLoris:
        ++stats_.slowloris_closed;
        break;
      case CloseReason::kFrameError:
        ++stats_.frame_errors;
        break;
      default:
        break;
    }
  }
  close(conn->fd);
}

void SocketListener::BanPeer(const std::shared_ptr<Conn>& conn) {
  bans_[conn->peer_key] = Now() + options_.ban_seconds;
  strikes_.erase(conn->peer_key);
  metrics_->net_bans_total->Increment();
  metrics_->net_banned_peers->Set(static_cast<double>(bans_.size()));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.bans;
  }
  CloseConn(conn, CloseReason::kBanned);
}

// --- Inbound ---------------------------------------------------------------

bool SocketListener::AdmitFrame(const std::shared_ptr<Conn>& conn,
                                std::string payload) {
  const uint64_t request_id = RequestIdOf(payload);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.frames;
  }
  metrics_->net_frames_read_total->Increment();

  // Per-peer rate limits, oldest gate first: a flooder's frames are
  // refused with a typed ack so a well-behaved retry layer backs off,
  // and repeat offenders lose the connection (and, where the transport
  // names peers, the right to reconnect for ban_seconds).
  ++conn->window_requests;
  const bool over_rate = options_.max_requests_per_window > 0 &&
                         conn->window_requests >
                             options_.max_requests_per_window;
  const bool over_bytes =
      options_.max_bytes_per_window > 0 &&
      conn->window_bytes > options_.max_bytes_per_window;
  if (over_rate || over_bytes) {
    metrics_->net_rate_limited_total->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rate_limited;
    }
    QueueAck(conn, request_id,
             Status::Unavailable(over_rate ? "rate limit exceeded"
                                           : "byte limit exceeded"));
    if (++strikes_[conn->peer_key] >= options_.strike_threshold) {
      BanPeer(conn);
    }
    return false;
  }

  if (draining_.load(std::memory_order_relaxed)) {
    QueueAck(conn, request_id, Status::Unavailable("server draining"));
    return false;
  }

  // Bounded inbound queue: above the watermark the frame is shed, not
  // buffered — overload degrades into typed kUnavailable acks instead
  // of unbounded memory and latency.
  if (conn->in_flight.load(std::memory_order_acquire) >=
      options_.inbound_queue_watermark) {
    metrics_->net_shed_total->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed;
    }
    QueueAck(conn, request_id,
             Status::Unavailable("server overloaded; request shed"));
    return false;
  }

  conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
  const size_t depth = pending_.fetch_add(1, std::memory_order_acq_rel) + 1;
  metrics_->net_inbound_queue_depth->Set(static_cast<double>(depth));
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(WorkItem{conn->id, std::move(payload)});
  }
  queue_cv_.notify_one();
  return true;
}

void SocketListener::ReadFrom(const std::shared_ptr<Conn>& conn) {
  char chunk[1 << 16];
  const ssize_t n = recv(conn->fd, chunk, sizeof(chunk), 0);
  if (n == 0) {
    CloseConn(conn, CloseReason::kEof);
    return;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    CloseConn(conn, CloseReason::kError);
    return;
  }
  const double now = Now();
  conn->last_activity = now;
  metrics_->net_bytes_read_total->Increment(static_cast<uint64_t>(n));
  if (now - conn->window_start > options_.rate_window_seconds) {
    conn->window_start = now;
    conn->window_requests = 0;
    conn->window_bytes = 0;
  }
  conn->window_bytes += static_cast<size_t>(n);
  conn->decoder.Append(std::string_view(chunk, static_cast<size_t>(n)));
  for (;;) {
    Result<std::optional<std::string>> next = conn->decoder.Next();
    if (!next.ok()) {
      // Framing violation: the stream cannot be resynchronized. No ack
      // can be addressed (there is no trustworthy request id); the
      // close itself is the signal.
      CloseConn(conn, CloseReason::kFrameError);
      return;
    }
    if (!next.value().has_value()) break;
    if (!AdmitFrame(conn, *std::move(next.value()))) {
      // The frame was refused; the conn may have been banned away.
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.count(conn->id) == 0) return;
    }
  }
  if (!conn->decoder.mid_frame()) {
    conn->partial_since = -1.0;
  } else if (conn->partial_since < 0.0) {
    conn->partial_since = now;
  }
}

void SocketListener::AcceptPending() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN, or a transient accept error.
    net::SetNonBlocking(fd);
    if (draining_.load()) {
      close(fd);
      continue;
    }
    size_t active;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      active = conns_.size();
    }
    if (active >= options_.max_connections) {
      metrics_
          ->net_connections_closed_total[static_cast<size_t>(
              CloseReason::kCap)]
          ->Increment();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.cap_rejects;
      }
      close(fd);  // After the counters: the close is the peer's signal.
      continue;
    }
    auto conn = std::make_shared<Conn>(options_.max_frame_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->peer_key = net::PeerKey(fd, is_unix_, conn->id);
    const auto ban = bans_.find(conn->peer_key);
    if (ban != bans_.end() && Now() < ban->second) {
      metrics_->net_ban_rejects_total->Increment();
      metrics_
          ->net_connections_closed_total[static_cast<size_t>(
              CloseReason::kBanned)]
          ->Increment();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.ban_rejects;
      }
      close(fd);  // After the counters: the close is the peer's signal.
      continue;
    }
    conn->last_activity = Now();
    conn->window_start = conn->last_activity;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_[conn->id] = conn;
    }
    metrics_->net_connections_accepted_total->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
    ++stats_.active;
    metrics_->net_connections_active->Set(
        static_cast<double>(stats_.active));
  }
}

// --- Timers ----------------------------------------------------------------

void SocketListener::HandleTick() {
  const double now = Now();
  for (auto it = bans_.begin(); it != bans_.end();) {
    it = now >= it->second ? bans_.erase(it) : std::next(it);
  }
  metrics_->net_banned_peers->Set(static_cast<double>(bans_.size()));

  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) conns.push_back(conn);
  }
  for (const std::shared_ptr<Conn>& conn : conns) {
    if (conn->partial_since >= 0.0 &&
        now - conn->partial_since >
            options_.partial_frame_timeout_seconds) {
      // Slow loris: the peer is holding a frame open. Idle *between*
      // frames is legitimate; idle *inside* one is hostage-taking.
      CloseConn(conn, CloseReason::kSlowLoris);
      continue;
    }
    if (options_.idle_timeout_seconds > 0.0 &&
        conn->in_flight.load(std::memory_order_acquire) == 0 &&
        now - conn->last_activity > options_.idle_timeout_seconds) {
      CloseConn(conn, CloseReason::kIdle);
    }
  }
}

// --- Event loop ------------------------------------------------------------

bool SocketListener::DrainComplete() {
  if (pending_.load(std::memory_order_acquire) > 0) return false;
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& [id, conn] : conns_) {
    std::lock_guard<std::mutex> out_lock(conn->out_mu);
    if (!conn->out.empty()) return false;
  }
  return true;
}

void SocketListener::LoopMain() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Conn>> polled;
  while (true) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining) {
      if (drain_deadline_seconds_ == 0.0) {
        drain_deadline_seconds_ = Now() + options_.drain_timeout_seconds;
      }
      if (DrainComplete() || Now() >= drain_deadline_seconds_) break;
    }

    fds.clear();
    polled.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& [id, conn] : conns_) {
        short events = POLLIN;
        {
          std::lock_guard<std::mutex> out_lock(conn->out_mu);
          if (!conn->out.empty()) events |= POLLOUT;
        }
        fds.push_back(pollfd{conn->fd, events, 0});
        polled.push_back(conn);
      }
    }
    poll(fds.data(), fds.size(), kTickMillis);

    if (fds[1].revents & POLLIN) {
      char sink[256];
      while (read(wake_fds_[0], sink, sizeof(sink)) > 0) {
      }
    }
    for (size_t i = 0; i < polled.size(); ++i) {
      const short revents = fds[i + 2].revents;
      const std::shared_ptr<Conn>& conn = polled[i];
      if (revents & (POLLERR | POLLNVAL)) {
        CloseConn(conn, CloseReason::kError);
        continue;
      }
      if (revents & POLLOUT) FlushTo(conn);
      if (revents & (POLLIN | POLLHUP)) ReadFrom(conn);
    }
    // Responses may have landed on connections poll() reported idle;
    // flush whatever is writable now rather than next tick.
    for (const std::shared_ptr<Conn>& conn : polled) {
      bool has_out;
      {
        std::lock_guard<std::mutex> out_lock(conn->out_mu);
        has_out = !conn->out.empty();
      }
      bool still_open;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        still_open = conns_.count(conn->id) > 0;
      }
      if (has_out && still_open) FlushTo(conn);
    }
    if (!draining && (fds[0].revents & POLLIN)) AcceptPending();
    HandleTick();
  }

  // Past the drain point: everything still open goes down together.
  std::vector<std::shared_ptr<Conn>> leftovers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, conn] : conns_) leftovers.push_back(conn);
  }
  for (const std::shared_ptr<Conn>& conn : leftovers) {
    FlushTo(conn);
    CloseConn(conn, CloseReason::kDrain);
  }
  loop_done_.store(true);
}

// --- SerializedHandler -----------------------------------------------------

Result<std::string> SerializedHandler::operator()(
    std::string_view request, const CallContext& context) const {
  Result<MessageTag> tag = TagOf(request);
  const bool maintenance =
      tag.ok() && (tag.value() == MessageTag::kRegionUpsert ||
                   tag.value() == MessageTag::kRegionRemove ||
                   tag.value() == MessageTag::kSnapshot);
  if (maintenance) {
    std::unique_lock<std::shared_mutex> lock(*mu_);
    return inner_(request, context);
  }
  std::shared_lock<std::shared_mutex> lock(*mu_);
  return inner_(request, context);
}

}  // namespace casper::transport
