#ifndef CASPER_TRANSPORT_FAULT_INJECTION_H_
#define CASPER_TRANSPORT_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/transport/channel.h"

/// \file
/// Deterministic chaos for the tier transport: wraps any Channel and
/// injects the failure modes a real network has — dropped requests,
/// dropped responses, duplicated deliveries, byte corruption in either
/// direction, added latency, and "late delivery" reordering — each at a
/// configurable rate drawn from a seeded common::Rng, so every chaos run
/// is reproducible bit for bit. On top of the random profile sit
/// scripted faults for targeted tests: fail exactly requests [m, n], or
/// black out the channel for a wall-clock window.
///
/// Semantics of each fault (all surfaced as kUnavailable to the caller,
/// matching what a real client could observe):
///  - drop_request:   the server never sees the call.
///  - drop_response:  the server *acts*, then the reply is lost — the
///    case that makes idempotency keys necessary.
///  - duplicate:      the request reaches the server twice (an
///    at-least-once transport re-sending on a timeout it misjudged).
///  - corrupt_*:      one byte of the request/response is flipped; the
///    codecs must reject it, the client must treat it as data loss.
///  - delay:          the call succeeds after `delay_micros` of added
///    latency (drives deadline-exceeded paths).
///  - late_delivery:  the request is buffered and delivered to the
///    server just *before* the next call — the closest a synchronous
///    seam gets to reordering, and a second road to duplicates when the
///    caller retries the "failed" original.

namespace casper::transport {

/// Independent per-call fault probabilities (each in [0, 1]).
struct FaultProfile {
  double drop_request_rate = 0.0;
  double drop_response_rate = 0.0;
  double duplicate_rate = 0.0;
  double corrupt_request_rate = 0.0;
  double corrupt_response_rate = 0.0;
  double delay_rate = 0.0;
  double late_delivery_rate = 0.0;

  /// Added latency when a delay fires.
  uint64_t delay_micros = 200;

  /// Probability that a call is disturbed at all (union bound; the
  /// chaos acceptance test asserts this is >= 10%).
  double CombinedRate() const {
    return drop_request_rate + drop_response_rate + duplicate_rate +
           corrupt_request_rate + corrupt_response_rate + delay_rate +
           late_delivery_rate;
  }
};

/// What the channel actually did, for test assertions and debugging.
struct FaultStats {
  uint64_t calls = 0;
  uint64_t dropped_requests = 0;
  uint64_t dropped_responses = 0;
  uint64_t duplicated = 0;
  uint64_t corrupted_requests = 0;
  uint64_t corrupted_responses = 0;
  uint64_t delayed = 0;
  uint64_t late_deliveries = 0;
  uint64_t scripted_failures = 0;
  uint64_t blackout_failures = 0;

  uint64_t TotalInjected() const {
    return dropped_requests + dropped_responses + duplicated +
           corrupted_requests + corrupted_responses + delayed +
           late_deliveries + scripted_failures + blackout_failures;
  }
};

/// Thread-safe (one internal mutex; the inner call runs outside it so
/// concurrent healthy calls still overlap).
class FaultInjectingChannel : public Channel {
 public:
  /// The inner channel must outlive this one.
  FaultInjectingChannel(Channel* inner, const FaultProfile& profile,
                        uint64_t seed);

  Result<std::string> Call(std::string_view request,
                           const CallContext& context) override;

  /// Scripted schedule: fail every call whose 1-based arrival index
  /// falls in [first, last] (inclusive), regardless of the profile.
  void FailRequests(uint64_t first, uint64_t last);

  /// Fail every call for the next `millis` of wall time.
  void BlackoutForMillis(double millis);

  /// Swap the random profile (e.g. to end the chaos phase of a test).
  void SetProfile(const FaultProfile& profile);

  FaultStats stats() const;

  /// Calls observed so far (the index FailRequests() schedules against).
  uint64_t calls() const;

 private:
  /// Flip one random byte (never the leading type tag — a wrong tag is
  /// rejected trivially and would under-test the field codecs).
  std::string Corrupt(std::string bytes);

  Channel* inner_;
  mutable std::mutex mu_;
  FaultProfile profile_;
  Rng rng_;
  FaultStats stats_;
  uint64_t call_index_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> fail_windows_;
  double blackout_until_seconds_ = -1.0;
  Stopwatch clock_;
  /// Request buffered by a late-delivery fault, flushed to the inner
  /// channel at the head of the next call.
  std::optional<std::string> late_request_;
};

}  // namespace casper::transport

#endif  // CASPER_TRANSPORT_FAULT_INJECTION_H_
