#include "src/casper/workload.h"

#include <algorithm>

#include "src/casper/casper.h"

namespace casper::workload {

anonymizer::PrivacyProfile SampleProfile(const ProfileDistribution& dist,
                                         double space_area, Rng* rng) {
  CASPER_DCHECK(dist.k_min >= 1 && dist.k_min <= dist.k_max);
  CASPER_DCHECK(dist.area_fraction_min >= 0.0 &&
                dist.area_fraction_min <= dist.area_fraction_max);
  anonymizer::PrivacyProfile profile;
  profile.k = static_cast<uint32_t>(rng->UniformInt(dist.k_min, dist.k_max));
  profile.a_min =
      space_area * rng->Uniform(dist.area_fraction_min, dist.area_fraction_max);
  return profile;
}

std::vector<processor::PublicTarget> UniformPublicTargets(size_t n,
                                                          const Rect& space,
                                                          Rng* rng) {
  std::vector<processor::PublicTarget> targets;
  targets.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    targets.push_back(processor::PublicTarget{i, rng->PointIn(space)});
  }
  return targets;
}

std::vector<processor::PrivateTarget> RandomPrivateTargets(
    size_t n, const anonymizer::PyramidConfig& pyramid, int max_side,
    Rng* rng) {
  CASPER_DCHECK(max_side >= 1);
  const double cell_w =
      pyramid.space.width() / (1u << pyramid.height);
  const double cell_h =
      pyramid.space.height() / (1u << pyramid.height);

  std::vector<processor::PrivateTarget> targets;
  targets.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double w =
        cell_w * static_cast<double>(
                     rng->UniformInt(1, static_cast<uint64_t>(max_side)));
    const double h =
        cell_h * static_cast<double>(
                     rng->UniformInt(1, static_cast<uint64_t>(max_side)));
    const Point corner = rng->PointIn(
        Rect(pyramid.space.min.x, pyramid.space.min.y,
             std::max(pyramid.space.max.x - w, pyramid.space.min.x),
             std::max(pyramid.space.max.y - h, pyramid.space.min.y)));
    Rect region(corner.x, corner.y,
                std::min(corner.x + w, pyramid.space.max.x),
                std::min(corner.y + h, pyramid.space.max.y));
    targets.push_back(processor::PrivateTarget{i, region});
  }
  return targets;
}

Rect RandomCellAlignedRegion(const anonymizer::PyramidConfig& pyramid,
                             int cells_wide, int cells_high, Rng* rng) {
  CASPER_DCHECK(cells_wide >= 1 && cells_high >= 1);
  const uint32_t dim = 1u << pyramid.height;
  CASPER_DCHECK(static_cast<uint32_t>(cells_wide) <= dim &&
                static_cast<uint32_t>(cells_high) <= dim);
  const double cell_w = pyramid.space.width() / dim;
  const double cell_h = pyramid.space.height() / dim;
  const uint32_t max_x = dim - static_cast<uint32_t>(cells_wide);
  const uint32_t max_y = dim - static_cast<uint32_t>(cells_high);
  const uint32_t cx = static_cast<uint32_t>(rng->UniformInt(0, max_x));
  const uint32_t cy = static_cast<uint32_t>(rng->UniformInt(0, max_y));
  const double x0 = pyramid.space.min.x + cx * cell_w;
  const double y0 = pyramid.space.min.y + cy * cell_h;
  return Rect(x0, y0, x0 + cells_wide * cell_w, y0 + cells_high * cell_h);
}

Status RegisterSimulatedUsers(const network::MovingObjectSimulator& sim,
                              size_t count, const ProfileDistribution& dist,
                              anonymizer::LocationAnonymizer* anonymizer,
                              Rng* rng) {
  if (count > sim.object_count()) {
    return Status::InvalidArgument(
        "more users requested than simulated objects");
  }
  const double space_area = anonymizer->config().space.Area();
  for (size_t uid = 0; uid < count; ++uid) {
    const auto profile = SampleProfile(dist, space_area, rng);
    const Point pos =
        ClampToRect(sim.PositionOf(uid), anonymizer->config().space);
    CASPER_RETURN_IF_ERROR(anonymizer->RegisterUser(uid, profile, pos));
  }
  return Status::OK();
}

Status ApplyTick(const std::vector<network::LocationUpdate>& updates,
                 anonymizer::LocationAnonymizer* anonymizer,
                 ApplyTickStats* stats, obs::CasperMetrics* metrics) {
  if (metrics == nullptr) metrics = obs::CasperMetrics::Default();
  const Rect& space = anonymizer->config().space;
  size_t dropped = 0;
  size_t applied = 0;
  for (const network::LocationUpdate& u : updates) {
    const Status status =
        anonymizer->UpdateLocation(u.uid, ClampToRect(u.position, space));
    if (status.ok()) {
      ++applied;
      continue;
    }
    // Unregistered uid (never registered, or deregistered mid-run): a
    // counted drop, not an error — the simulator keeps reporting every
    // object regardless of who is subscribed.
    if (status.code() == StatusCode::kNotFound) {
      ++dropped;
      continue;
    }
    return status;
  }
  if (dropped > 0) metrics->workload_dropped_updates_total->Increment(dropped);
  if (stats != nullptr) {
    stats->applied += applied;
    stats->dropped += dropped;
  }
  return Status::OK();
}

Status ApplyTick(const std::vector<network::LocationUpdate>& updates,
                 CasperService* service, ApplyTickStats* stats,
                 obs::CasperMetrics* metrics) {
  if (metrics == nullptr) metrics = obs::CasperMetrics::Default();
  const Rect& space = service->options().pyramid.space;
  size_t dropped = 0;
  size_t applied = 0;
  for (const network::LocationUpdate& u : updates) {
    const Status status =
        service->UpdateUserLocation(u.uid, ClampToRect(u.position, space));
    if (status.ok()) {
      ++applied;
      continue;
    }
    if (status.code() == StatusCode::kNotFound) {
      ++dropped;
      continue;
    }
    return status;
  }
  if (dropped > 0) metrics->workload_dropped_updates_total->Increment(dropped);
  if (stats != nullptr) {
    stats->applied += applied;
    stats->dropped += dropped;
  }
  return Status::OK();
}

}  // namespace casper::workload
