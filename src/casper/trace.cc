#include "src/casper/trace.h"

#include <cinttypes>
#include <cstdio>

namespace casper::workload {

std::vector<std::vector<network::LocationUpdate>> Trace::UpdatesByTick()
    const {
  std::vector<std::vector<network::LocationUpdate>> ticks;
  for (const network::LocationUpdate& u : updates) {
    CASPER_DCHECK(u.tick >= 1);
    if (u.tick > ticks.size()) ticks.resize(u.tick);
    ticks[u.tick - 1].push_back(u);
  }
  return ticks;
}

Status WriteTrace(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file for writing: " + path);
  }
  std::fprintf(f, "# casper trace: %zu registrations, %zu updates\n",
               trace.registrations.size(), trace.updates.size());
  for (const TraceRegistration& r : trace.registrations) {
    std::fprintf(f, "U,%" PRIu64 ",%u,%.17g,%.17g,%.17g\n", r.uid,
                 r.profile.k, r.profile.a_min, r.position.x, r.position.y);
  }
  for (const network::LocationUpdate& u : trace.updates) {
    std::fprintf(f, "L,%" PRIu64 ",%" PRIu64 ",%.17g,%.17g\n", u.tick, u.uid,
                 u.position.x, u.position.y);
  }
  if (std::fclose(f) != 0) {
    return Status::Internal("error closing trace file: " + path);
  }
  return Status::OK();
}

Result<Trace> ReadTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open trace: " + path);

  Trace trace;
  char line[512];
  int line_no = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') continue;
    if (line[0] == 'U') {
      TraceRegistration r;
      if (std::sscanf(line, "U,%" SCNu64 ",%u,%lg,%lg,%lg", &r.uid,
                      &r.profile.k, &r.profile.a_min, &r.position.x,
                      &r.position.y) != 5) {
        std::fclose(f);
        return Status::InvalidArgument("malformed registration at line " +
                                       std::to_string(line_no));
      }
      trace.registrations.push_back(r);
    } else if (line[0] == 'L') {
      network::LocationUpdate u;
      if (std::sscanf(line, "L,%" SCNu64 ",%" SCNu64 ",%lg,%lg", &u.tick,
                      &u.uid, &u.position.x, &u.position.y) != 4) {
        std::fclose(f);
        return Status::InvalidArgument("malformed update at line " +
                                       std::to_string(line_no));
      }
      trace.updates.push_back(u);
    } else {
      std::fclose(f);
      return Status::InvalidArgument("unknown record type at line " +
                                     std::to_string(line_no));
    }
  }
  std::fclose(f);
  return trace;
}

Trace RecordTrace(network::MovingObjectSimulator* simulator, size_t users,
                  const ProfileDistribution& dist, size_t ticks, Rng* rng) {
  CASPER_DCHECK(users <= simulator->object_count());
  Trace trace;
  const Rect space = simulator->network().bounds();
  for (anonymizer::UserId uid = 0; uid < users; ++uid) {
    TraceRegistration r;
    r.uid = uid;
    r.profile = SampleProfile(dist, space.Area(), rng);
    r.position = simulator->PositionOf(uid);
    trace.registrations.push_back(r);
  }
  for (size_t t = 0; t < ticks; ++t) {
    for (const network::LocationUpdate& u : simulator->Tick()) {
      if (u.uid < users) trace.updates.push_back(u);
    }
  }
  return trace;
}

}  // namespace casper::workload
