#include "src/casper/messages.h"

#include "src/common/codec.h"

namespace casper {
namespace {

// Leading message tags: a decoder handed the wrong message type (or
// arbitrary bytes) fails fast instead of misinterpreting the payload.
constexpr uint8_t kTagCloakedQuery = 0xC1;
constexpr uint8_t kTagRegionUpsert = 0xC2;
constexpr uint8_t kTagRegionRemove = 0xC3;
constexpr uint8_t kTagSnapshot = 0xC4;
constexpr uint8_t kTagCandidateList = 0xC5;
constexpr uint8_t kTagAck = 0xC6;

// --- Frame integrity -------------------------------------------------------
//
// Every encoded message carries a trailing FNV-1a-64 checksum of the
// frame body (wire::Seal / wire::Unseal, shared with the storage tier
// via src/common/codec.h). Without it, a transport-corrupted byte
// inside a raw double (a coordinate, a distance) is indistinguishable
// from a different valid measurement and would decode as a *different
// valid message* — the one class of corruption field validation cannot
// catch. With it, a corrupted frame fails decode, the endpoint acks
// kDataLoss, and the resilient client re-sends: corruption is converted
// into a retryable transport failure instead of a silent wrong answer.

using wire::Reader;
using wire::Seal;
using wire::Unseal;
using wire::Writer;

bool ValidKind(uint8_t kind) {
  return kind <= static_cast<uint8_t>(QueryKind::kDensity);
}

bool ValidStatusCode(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kDataLoss);
}

bool ValidPolicy(uint8_t policy) {
  return policy == 1 || policy == 2 || policy == 4;
}

void Put(Writer& w, const processor::PublicTarget& t) {
  w.U64(t.id);
  w.P(t.position);
}

void Put(Writer& w, const processor::PrivateTarget& t) {
  w.U64(t.id);
  w.R(t.region);
}

processor::PublicTarget GetPublicTarget(Reader& r) {
  processor::PublicTarget t;
  t.id = r.U64();
  t.position = r.P();
  return t;
}

processor::PrivateTarget GetPrivateTarget(Reader& r) {
  processor::PrivateTarget t;
  t.id = r.U64();
  t.region = r.R();
  return t;
}

void Put(Writer& w, const processor::ExtendedArea& area) {
  w.R(area.a_ext);
  for (const processor::EdgeExtension& e : area.edges) {
    w.F64(e.max_d);
    w.Bool(e.has_middle);
    w.P(e.middle);
  }
}

processor::ExtendedArea GetExtendedArea(Reader& r) {
  processor::ExtendedArea area;
  area.a_ext = r.R();
  for (processor::EdgeExtension& e : area.edges) {
    e.max_d = r.F64();
    e.has_middle = r.Bool();
    e.middle = r.P();
  }
  return area;
}

constexpr size_t kPublicTargetBytes = 8 + 16;
constexpr size_t kPrivateTargetBytes = 8 + 32;

void PutPayload(Writer& w, const ServerPayload& payload) {
  w.U8(static_cast<uint8_t>(payload.index()));
  if (const auto* p = std::get_if<processor::PublicCandidateList>(&payload)) {
    w.Count(p->candidates.size());
    for (const auto& t : p->candidates) Put(w, t);
    Put(w, p->area);
    w.U8(static_cast<uint8_t>(p->policy));
  } else if (const auto* p =
                 std::get_if<processor::KnnCandidateList>(&payload)) {
    w.Count(p->candidates.size());
    for (const auto& t : p->candidates) Put(w, t);
    w.R(p->a_ext);
    w.U64(p->k);
  } else if (const auto* p =
                 std::get_if<processor::PublicRangeCandidates>(&payload)) {
    w.Count(p->candidates.size());
    for (const auto& t : p->candidates) Put(w, t);
    w.R(p->search_window);
  } else if (const auto* p =
                 std::get_if<processor::PrivateCandidateList>(&payload)) {
    w.Count(p->candidates.size());
    for (const auto& t : p->candidates) Put(w, t);
    Put(w, p->area);
    w.U8(static_cast<uint8_t>(p->policy));
  } else if (const auto* p =
                 std::get_if<processor::PublicNNCandidates>(&payload)) {
    w.Count(p->candidates.size());
    for (const auto& c : p->candidates) {
      Put(w, c.target);
      w.F64(c.min_dist);
      w.F64(c.max_dist);
    }
    w.F64(p->minimax_bound);
  } else if (const auto* p =
                 std::get_if<processor::RangeCountResult>(&payload)) {
    w.U64(p->certain);
    w.U64(p->possible);
    w.F64(p->expected);
    w.Count(p->overlapping.size());
    for (const auto& t : p->overlapping) Put(w, t);
  } else if (const auto* p = std::get_if<processor::DensityMap>(&payload)) {
    w.R(p->extent());
    w.I32(p->cols());
    w.I32(p->rows());
    for (int row = 0; row < p->rows(); ++row) {
      for (int col = 0; col < p->cols(); ++col) {
        w.F64(p->At(col, row));
      }
    }
  }
}

Result<ServerPayload> GetPayload(Reader& r) {
  const uint8_t index = r.U8();
  if (r.failed()) return Status::InvalidArgument("truncated payload");
  switch (index) {
    case 0: {
      processor::PublicCandidateList list;
      const size_t n = r.Count(kPublicTargetBytes);
      list.candidates.reserve(n);
      for (size_t i = 0; i < n; ++i) list.candidates.push_back(GetPublicTarget(r));
      list.area = GetExtendedArea(r);
      const uint8_t policy = r.U8();
      if (!ValidPolicy(policy)) {
        return Status::InvalidArgument("bad filter policy");
      }
      list.policy = static_cast<processor::FilterPolicy>(policy);
      return ServerPayload(std::move(list));
    }
    case 1: {
      processor::KnnCandidateList list;
      const size_t n = r.Count(kPublicTargetBytes);
      list.candidates.reserve(n);
      for (size_t i = 0; i < n; ++i) list.candidates.push_back(GetPublicTarget(r));
      list.a_ext = r.R();
      list.k = static_cast<size_t>(r.U64());
      return ServerPayload(std::move(list));
    }
    case 2: {
      processor::PublicRangeCandidates list;
      const size_t n = r.Count(kPublicTargetBytes);
      list.candidates.reserve(n);
      for (size_t i = 0; i < n; ++i) list.candidates.push_back(GetPublicTarget(r));
      list.search_window = r.R();
      return ServerPayload(std::move(list));
    }
    case 3: {
      processor::PrivateCandidateList list;
      const size_t n = r.Count(kPrivateTargetBytes);
      list.candidates.reserve(n);
      for (size_t i = 0; i < n; ++i) list.candidates.push_back(GetPrivateTarget(r));
      list.area = GetExtendedArea(r);
      const uint8_t policy = r.U8();
      if (!ValidPolicy(policy)) {
        return Status::InvalidArgument("bad filter policy");
      }
      list.policy = static_cast<processor::FilterPolicy>(policy);
      return ServerPayload(std::move(list));
    }
    case 4: {
      processor::PublicNNCandidates list;
      const size_t n = r.Count(kPrivateTargetBytes + 16);
      list.candidates.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        processor::PublicNNCandidates::Candidate c;
        c.target = GetPrivateTarget(r);
        c.min_dist = r.F64();
        c.max_dist = r.F64();
        list.candidates.push_back(c);
      }
      list.minimax_bound = r.F64();
      return ServerPayload(std::move(list));
    }
    case 5: {
      processor::RangeCountResult result;
      result.certain = static_cast<size_t>(r.U64());
      result.possible = static_cast<size_t>(r.U64());
      result.expected = r.F64();
      const size_t n = r.Count(kPrivateTargetBytes);
      result.overlapping.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        result.overlapping.push_back(GetPrivateTarget(r));
      }
      return ServerPayload(std::move(result));
    }
    case 6: {
      const Rect extent = r.R();
      const int32_t cols = r.I32();
      const int32_t rows = r.I32();
      if (r.failed() || cols < 1 || rows < 1 ||
          static_cast<uint64_t>(cols) * static_cast<uint64_t>(rows) >
              r.Remaining() / 8) {
        return Status::InvalidArgument("bad density grid");
      }
      std::vector<double> cells;
      cells.reserve(static_cast<size_t>(cols) * static_cast<size_t>(rows));
      for (int64_t i = 0; i < int64_t{cols} * rows; ++i) cells.push_back(r.F64());
      CASPER_ASSIGN_OR_RETURN(
          map, processor::DensityMap::FromCells(extent, cols, rows,
                                                std::move(cells)));
      return ServerPayload(std::move(map));
    }
    default:
      return Status::InvalidArgument("unknown payload kind");
  }
}

/// Zero-copy mirror of GetPayload: identical validation order and
/// identical failure conditions (the codec fuzz test asserts acceptance
/// parity between the two), but the record blocks are skipped in place
/// and wrapped in WireSpans instead of being copied out.
Result<ServerPayloadView> GetPayloadView(Reader& r) {
  const uint8_t index = r.U8();
  if (r.failed()) return Status::InvalidArgument("truncated payload");
  switch (index) {
    case 0: {
      PublicCandidateListView view;
      const size_t n = r.Count(kPublicTargetBytes);
      const char* data = r.Skip(n * kPublicTargetBytes);
      view.candidates = WireSpan<processor::PublicTarget>(data, n);
      view.area = GetExtendedArea(r);
      const uint8_t policy = r.U8();
      if (r.failed()) return Status::InvalidArgument("truncated payload");
      if (!ValidPolicy(policy)) {
        return Status::InvalidArgument("bad filter policy");
      }
      view.policy = static_cast<processor::FilterPolicy>(policy);
      return ServerPayloadView(view);
    }
    case 1: {
      KnnCandidateListView view;
      const size_t n = r.Count(kPublicTargetBytes);
      const char* data = r.Skip(n * kPublicTargetBytes);
      view.candidates = WireSpan<processor::PublicTarget>(data, n);
      view.a_ext = r.R();
      view.k = r.U64();
      return ServerPayloadView(view);
    }
    case 2: {
      PublicRangeCandidatesView view;
      const size_t n = r.Count(kPublicTargetBytes);
      const char* data = r.Skip(n * kPublicTargetBytes);
      view.candidates = WireSpan<processor::PublicTarget>(data, n);
      view.search_window = r.R();
      return ServerPayloadView(view);
    }
    case 3: {
      PrivateCandidateListView view;
      const size_t n = r.Count(kPrivateTargetBytes);
      const char* data = r.Skip(n * kPrivateTargetBytes);
      view.candidates = WireSpan<processor::PrivateTarget>(data, n);
      view.area = GetExtendedArea(r);
      const uint8_t policy = r.U8();
      if (r.failed()) return Status::InvalidArgument("truncated payload");
      if (!ValidPolicy(policy)) {
        return Status::InvalidArgument("bad filter policy");
      }
      view.policy = static_cast<processor::FilterPolicy>(policy);
      return ServerPayloadView(view);
    }
    case 4: {
      PublicNNCandidatesView view;
      const size_t n = r.Count(kPrivateTargetBytes + 16);
      const char* data = r.Skip(n * (kPrivateTargetBytes + 16));
      view.candidates =
          WireSpan<processor::PublicNNCandidates::Candidate>(data, n);
      view.minimax_bound = r.F64();
      return ServerPayloadView(view);
    }
    case 5: {
      RangeCountResultView view;
      view.certain = r.U64();
      view.possible = r.U64();
      view.expected = r.F64();
      const size_t n = r.Count(kPrivateTargetBytes);
      const char* data = r.Skip(n * kPrivateTargetBytes);
      view.overlapping = WireSpan<processor::PrivateTarget>(data, n);
      return ServerPayloadView(view);
    }
    case 6: {
      DensityMapView view;
      view.extent = r.R();
      view.cols = r.I32();
      view.rows = r.I32();
      if (r.failed() || view.cols < 1 || view.rows < 1 ||
          static_cast<uint64_t>(view.cols) * static_cast<uint64_t>(view.rows) >
              r.Remaining() / 8) {
        return Status::InvalidArgument("bad density grid");
      }
      const size_t n =
          static_cast<size_t>(view.cols) * static_cast<size_t>(view.rows);
      const char* data = r.Skip(n * 8);
      view.cells = WireSpan<double>(data, n);
      return ServerPayloadView(view);
    }
    default:
      return Status::InvalidArgument("unknown payload kind");
  }
}

}  // namespace

size_t RecordCount(const ServerPayload& payload) {
  return std::visit(
      [](const auto& p) -> size_t {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, processor::PublicRangeCandidates>) {
          return p.candidates.size();
        } else if constexpr (std::is_same_v<T,
                                            processor::PublicNNCandidates>) {
          return p.candidates.size();
        } else if constexpr (std::is_same_v<T, processor::RangeCountResult>) {
          return p.overlapping.size();
        } else if constexpr (std::is_same_v<T, processor::DensityMap>) {
          return static_cast<size_t>(p.cols()) * static_cast<size_t>(p.rows());
        } else {
          return p.size();
        }
      },
      payload);
}

std::string Encode(const CloakedQueryMsg& msg) {
  Writer w;
  w.U8(kTagCloakedQuery);
  w.U8(static_cast<uint8_t>(msg.kind));
  w.U64(msg.request_id);
  w.R(msg.cloak);
  w.U64(msg.k);
  w.F64(msg.radius);
  w.Bool(msg.has_exclude);
  w.U64(msg.exclude_handle);
  w.P(msg.point);
  w.R(msg.region);
  w.I32(msg.cols);
  w.I32(msg.rows);
  return Seal(w.Take());
}

Result<CloakedQueryMsg> DecodeCloakedQuery(std::string_view bytes) {
  CASPER_ASSIGN_OR_RETURN(body, Unseal(bytes, "CloakedQuery"));
  Reader r(body);
  if (!r.Tag(kTagCloakedQuery)) {
    return Status::InvalidArgument("not a CloakedQueryMsg");
  }
  CloakedQueryMsg msg;
  const uint8_t kind = r.U8();
  if (r.failed() || !ValidKind(kind)) {
    return Status::InvalidArgument("bad query kind");
  }
  msg.kind = static_cast<QueryKind>(kind);
  msg.request_id = r.U64();
  msg.cloak = r.R();
  msg.k = r.U64();
  msg.radius = r.F64();
  msg.has_exclude = r.Bool();
  msg.exclude_handle = r.U64();
  msg.point = r.P();
  msg.region = r.R();
  msg.cols = r.I32();
  msg.rows = r.I32();
  CASPER_RETURN_IF_ERROR(r.Finish("CloakedQuery"));
  return msg;
}

std::string Encode(const RegionUpsertMsg& msg) {
  Writer w;
  w.U8(kTagRegionUpsert);
  w.U64(msg.request_id);
  w.U64(msg.handle);
  w.Bool(msg.has_replaces);
  w.U64(msg.replaces);
  w.R(msg.region);
  return Seal(w.Take());
}

Result<RegionUpsertMsg> DecodeRegionUpsert(std::string_view bytes) {
  CASPER_ASSIGN_OR_RETURN(body, Unseal(bytes, "RegionUpsert"));
  Reader r(body);
  if (!r.Tag(kTagRegionUpsert)) {
    return Status::InvalidArgument("not a RegionUpsertMsg");
  }
  RegionUpsertMsg msg;
  msg.request_id = r.U64();
  msg.handle = r.U64();
  msg.has_replaces = r.Bool();
  msg.replaces = r.U64();
  msg.region = r.R();
  CASPER_RETURN_IF_ERROR(r.Finish("RegionUpsert"));
  return msg;
}

std::string Encode(const RegionRemoveMsg& msg) {
  Writer w;
  w.U8(kTagRegionRemove);
  w.U64(msg.request_id);
  w.U64(msg.handle);
  return Seal(w.Take());
}

Result<RegionRemoveMsg> DecodeRegionRemove(std::string_view bytes) {
  CASPER_ASSIGN_OR_RETURN(body, Unseal(bytes, "RegionRemove"));
  Reader r(body);
  if (!r.Tag(kTagRegionRemove)) {
    return Status::InvalidArgument("not a RegionRemoveMsg");
  }
  RegionRemoveMsg msg;
  msg.request_id = r.U64();
  msg.handle = r.U64();
  CASPER_RETURN_IF_ERROR(r.Finish("RegionRemove"));
  return msg;
}

std::string Encode(const SnapshotMsg& msg) {
  Writer w;
  w.U8(kTagSnapshot);
  w.Count(msg.regions.size());
  for (const auto& t : msg.regions) Put(w, t);
  return Seal(w.Take());
}

Result<SnapshotMsg> DecodeSnapshot(std::string_view bytes) {
  CASPER_ASSIGN_OR_RETURN(body, Unseal(bytes, "Snapshot"));
  Reader r(body);
  if (!r.Tag(kTagSnapshot)) {
    return Status::InvalidArgument("not a SnapshotMsg");
  }
  SnapshotMsg msg;
  const size_t n = r.Count(kPrivateTargetBytes);
  msg.regions.reserve(n);
  for (size_t i = 0; i < n; ++i) msg.regions.push_back(GetPrivateTarget(r));
  CASPER_RETURN_IF_ERROR(r.Finish("Snapshot"));
  return msg;
}

std::string Encode(const CandidateListMsg& msg) {
  Writer w;
  w.U8(kTagCandidateList);
  w.U8(static_cast<uint8_t>(msg.kind));
  w.U64(msg.request_id);
  w.Bool(msg.degraded);
  w.F64(msg.processor_seconds);
  PutPayload(w, msg.payload);
  return Seal(w.Take());
}

Result<CandidateListMsg> DecodeCandidateList(std::string_view bytes) {
  CASPER_ASSIGN_OR_RETURN(body, Unseal(bytes, "CandidateList"));
  Reader r(body);
  if (!r.Tag(kTagCandidateList)) {
    return Status::InvalidArgument("not a CandidateListMsg");
  }
  const uint8_t kind = r.U8();
  if (r.failed() || !ValidKind(kind)) {
    return Status::InvalidArgument("bad query kind");
  }
  const uint64_t request_id = r.U64();
  const bool degraded = r.Bool();
  const double processor_seconds = r.F64();
  CASPER_ASSIGN_OR_RETURN(payload, GetPayload(r));
  CASPER_RETURN_IF_ERROR(r.Finish("CandidateList"));
  CandidateListMsg msg;
  msg.kind = static_cast<QueryKind>(kind);
  msg.request_id = request_id;
  msg.degraded = degraded;
  msg.processor_seconds = processor_seconds;
  msg.payload = std::move(payload);
  return msg;
}

Status AckMsg::ToStatus() const {
  switch (code) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kInvalidArgument: return Status::InvalidArgument(message);
    case StatusCode::kNotFound: return Status::NotFound(message);
    case StatusCode::kAlreadyExists: return Status::AlreadyExists(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kOutOfRange: return Status::OutOfRange(message);
    case StatusCode::kInternal: return Status::Internal(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case StatusCode::kUnavailable: return Status::Unavailable(message);
    case StatusCode::kDataLoss: return Status::DataLoss(message);
  }
  return Status::Internal("unknown status code in ack");
}

AckMsg AckMsg::For(uint64_t request_id, const Status& status) {
  AckMsg ack;
  ack.request_id = request_id;
  ack.code = status.code();
  ack.message = status.message();
  return ack;
}

std::string Encode(const AckMsg& msg) {
  Writer w;
  w.U8(kTagAck);
  w.U64(msg.request_id);
  w.U8(static_cast<uint8_t>(msg.code));
  w.Str(msg.message);
  return Seal(w.Take());
}

Result<AckMsg> DecodeAck(std::string_view bytes) {
  CASPER_ASSIGN_OR_RETURN(body, Unseal(bytes, "Ack"));
  Reader r(body);
  if (!r.Tag(kTagAck)) {
    return Status::InvalidArgument("not an AckMsg");
  }
  AckMsg msg;
  msg.request_id = r.U64();
  const uint8_t code = r.U8();
  if (r.failed() || !ValidStatusCode(code)) {
    return Status::InvalidArgument("bad status code");
  }
  msg.code = static_cast<StatusCode>(code);
  msg.message = r.Str();
  CASPER_RETURN_IF_ERROR(r.Finish("Ack"));
  return msg;
}

size_t RecordCount(const ServerPayloadView& payload) {
  return std::visit(
      [](const auto& p) -> size_t {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, RangeCountResultView>) {
          return p.overlapping.size();
        } else if constexpr (std::is_same_v<T, DensityMapView>) {
          return static_cast<size_t>(p.cols) * static_cast<size_t>(p.rows);
        } else {
          return p.candidates.size();
        }
      },
      payload);
}

processor::PublicCandidateList PublicCandidateListView::Materialize() const {
  return {candidates.Materialize(), area, policy};
}

processor::KnnCandidateList KnnCandidateListView::Materialize() const {
  return {candidates.Materialize(), a_ext, static_cast<size_t>(k)};
}

processor::PublicRangeCandidates PublicRangeCandidatesView::Materialize()
    const {
  return {candidates.Materialize(), search_window};
}

processor::PrivateCandidateList PrivateCandidateListView::Materialize() const {
  return {candidates.Materialize(), area, policy};
}

processor::PublicNNCandidates PublicNNCandidatesView::Materialize() const {
  return {candidates.Materialize(), minimax_bound};
}

processor::RangeCountResult RangeCountResultView::Materialize() const {
  return {static_cast<size_t>(certain), static_cast<size_t>(possible),
          expected, overlapping.Materialize()};
}

processor::DensityMap DensityMapView::Materialize() const {
  // The view decoder already enforced FromCells' preconditions
  // (cols >= 1, rows >= 1, cells.size() == cols * rows), so this
  // cannot fail.
  return processor::DensityMap::FromCells(extent, cols, rows,
                                          cells.Materialize())
      .value();
}

CandidateListMsg CandidateListView::Materialize() const {
  CandidateListMsg msg;
  msg.kind = kind;
  msg.request_id = request_id;
  msg.degraded = degraded;
  msg.processor_seconds = processor_seconds;
  msg.payload = std::visit(
      [](const auto& p) -> ServerPayload { return p.Materialize(); }, payload);
  return msg;
}

SnapshotMsg SnapshotView::Materialize() const {
  SnapshotMsg msg;
  msg.regions = regions.Materialize();
  return msg;
}

Result<CandidateListView> DecodeCandidateListView(std::string_view frame) {
  CASPER_ASSIGN_OR_RETURN(body, Unseal(frame, "CandidateList"));
  Reader r(body);
  if (!r.Tag(kTagCandidateList)) {
    return Status::InvalidArgument("not a CandidateListMsg");
  }
  const uint8_t kind = r.U8();
  if (r.failed() || !ValidKind(kind)) {
    return Status::InvalidArgument("bad query kind");
  }
  CandidateListView view;
  view.kind = static_cast<QueryKind>(kind);
  view.request_id = r.U64();
  view.degraded = r.Bool();
  view.processor_seconds = r.F64();
  CASPER_ASSIGN_OR_RETURN(payload, GetPayloadView(r));
  CASPER_RETURN_IF_ERROR(r.Finish("CandidateList"));
  view.payload = payload;
  return view;
}

Result<SnapshotView> DecodeSnapshotView(std::string_view frame) {
  CASPER_ASSIGN_OR_RETURN(body, Unseal(frame, "Snapshot"));
  Reader r(body);
  if (!r.Tag(kTagSnapshot)) {
    return Status::InvalidArgument("not a SnapshotMsg");
  }
  SnapshotView view;
  const size_t n = r.Count(kPrivateTargetBytes);
  const char* data = r.Skip(n * kPrivateTargetBytes);
  view.regions = WireSpan<processor::PrivateTarget>(data, n);
  CASPER_RETURN_IF_ERROR(r.Finish("Snapshot"));
  return view;
}

Result<MessageTag> TagOf(std::string_view bytes) {
  if (bytes.empty()) return Status::InvalidArgument("empty message");
  const auto tag = static_cast<uint8_t>(bytes[0]);
  switch (tag) {
    case kTagCloakedQuery: return MessageTag::kCloakedQuery;
    case kTagRegionUpsert: return MessageTag::kRegionUpsert;
    case kTagRegionRemove: return MessageTag::kRegionRemove;
    case kTagSnapshot: return MessageTag::kSnapshot;
    case kTagCandidateList: return MessageTag::kCandidateList;
    case kTagAck: return MessageTag::kAck;
  }
  return Status::InvalidArgument("unknown message tag");
}

uint64_t RequestIdOf(std::string_view bytes) {
  Result<MessageTag> tag = TagOf(bytes);
  if (!tag.ok()) return 0;
  size_t offset = 0;
  switch (tag.value()) {
    case MessageTag::kCloakedQuery:
      offset = 2;  // tag u8, kind u8
      break;
    case MessageTag::kRegionUpsert:
    case MessageTag::kRegionRemove:
      offset = 1;  // tag u8
      break;
    default:
      return 0;  // Snapshots and responses are unkeyed.
  }
  if (bytes.size() < offset + 8) return 0;
  uint64_t id = 0;
  for (size_t i = 0; i < 8; ++i) {
    id |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[offset + i]))
          << (8 * i);
  }
  return id;
}

}  // namespace casper
