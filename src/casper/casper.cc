#include "src/casper/casper.h"

#include "src/common/stopwatch.h"
#include "src/processor/concurrent_query_cache.h"

namespace casper {

CasperService::CasperService(const CasperOptions& options)
    : options_(options), pseudonyms_(options.pseudonym_seed) {
  // With auto-sync every mutation maintains the store, so the snapshot
  // is never stale; batch mode starts stale until the first sync.
  private_data_dirty_ = !options_.auto_sync_private_data;
  if (options_.use_adaptive_anonymizer) {
    anonymizer_ =
        std::make_unique<anonymizer::AdaptiveAnonymizer>(options_.pyramid);
  } else {
    anonymizer_ =
        std::make_unique<anonymizer::BasicAnonymizer>(options_.pyramid);
  }
}

Status CasperService::RegisterUser(anonymizer::UserId uid,
                                   const anonymizer::PrivacyProfile& profile,
                                   const Point& position) {
  CASPER_RETURN_IF_ERROR(anonymizer_->RegisterUser(uid, profile, position));
  client_positions_[uid] = position;
  if (options_.auto_sync_private_data) {
    CASPER_RETURN_IF_ERROR(UpsertPrivateRegion(uid));
    // A larger population can make previously unsatisfiable profiles
    // publishable.
    return RetryPendingPublications();
  }
  private_data_dirty_ = true;
  return Status::OK();
}

Status CasperService::RetryPendingPublications() {
  if (pending_publication_.empty()) return Status::OK();
  const std::vector<anonymizer::UserId> pending(pending_publication_.begin(),
                                                pending_publication_.end());
  for (anonymizer::UserId uid : pending) {
    CASPER_RETURN_IF_ERROR(UpsertPrivateRegion(uid));
  }
  return Status::OK();
}

Status CasperService::UpdateUserLocation(anonymizer::UserId uid,
                                         const Point& position) {
  CASPER_RETURN_IF_ERROR(anonymizer_->UpdateLocation(uid, position));
  client_positions_[uid] = position;
  if (options_.auto_sync_private_data) {
    return UpsertPrivateRegion(uid);
  }
  private_data_dirty_ = true;
  return Status::OK();
}

Status CasperService::UpdateUserProfile(
    anonymizer::UserId uid, const anonymizer::PrivacyProfile& profile) {
  CASPER_RETURN_IF_ERROR(anonymizer_->UpdateProfile(uid, profile));
  if (options_.auto_sync_private_data) {
    return UpsertPrivateRegion(uid);
  }
  private_data_dirty_ = true;
  return Status::OK();
}

Status CasperService::DeregisterUser(anonymizer::UserId uid) {
  CASPER_RETURN_IF_ERROR(anonymizer_->DeregisterUser(uid));
  client_positions_.erase(uid);
  pending_publication_.erase(uid);
  CASPER_RETURN_IF_ERROR(RemovePrivateRegion(uid));
  if (current_pseudonym_.erase(uid) > 0) {
    CASPER_RETURN_IF_ERROR(pseudonyms_.Forget(uid));
  }
  if (!options_.auto_sync_private_data) private_data_dirty_ = true;
  return Status::OK();
}

void CasperService::AddPublicTarget(const processor::PublicTarget& target) {
  public_store_.Insert(target);
}

void CasperService::SetPublicTargets(
    const std::vector<processor::PublicTarget>& targets) {
  public_store_ = processor::PublicTargetStore(targets);
}

Status CasperService::UpsertPrivateRegion(anonymizer::UserId uid) {
  CASPER_RETURN_IF_ERROR(RemovePrivateRegion(uid));
  auto cloak = anonymizer_->Cloak(uid);
  if (cloak.status().code() == StatusCode::kFailedPrecondition) {
    // The profile cannot be satisfied yet (k exceeds the current
    // population). Publishing nothing is the only safe choice; the
    // user is retried once the population grows.
    pending_publication_.insert(uid);
    return Status::OK();
  }
  if (!cloak.ok()) return cloak.status();
  pending_publication_.erase(uid);
  anonymizer::Pseudonym pseudonym;
  if (current_pseudonym_.count(uid) > 0) {
    CASPER_ASSIGN_OR_RETURN(rotated, pseudonyms_.Rotate(uid));
    pseudonym = rotated;
  } else {
    pseudonym = pseudonyms_.PseudonymFor(uid);
  }
  current_pseudonym_[uid] = pseudonym;
  stored_regions_[uid] = cloak.value().region;
  private_store_.Insert(
      processor::PrivateTarget{pseudonym, cloak.value().region});
  return Status::OK();
}

Status CasperService::RemovePrivateRegion(anonymizer::UserId uid) {
  auto region = stored_regions_.find(uid);
  auto pseudonym = current_pseudonym_.find(uid);
  if (region == stored_regions_.end() ||
      pseudonym == current_pseudonym_.end()) {
    return Status::OK();  // Nothing stored yet.
  }
  if (!private_store_.Remove(processor::PrivateTarget{pseudonym->second,
                                                      region->second})) {
    return Status::Internal("stored region missing from private store");
  }
  stored_regions_.erase(region);
  return Status::OK();
}

Status CasperService::SyncPrivateData() {
  std::vector<processor::PrivateTarget> regions;
  regions.reserve(client_positions_.size());
  stored_regions_.clear();
  for (const auto& [uid, pos] : client_positions_) {
    (void)pos;
    auto cloak = anonymizer_->Cloak(uid);
    if (cloak.status().code() == StatusCode::kFailedPrecondition) {
      // Unsatisfiable profile (k above the population): never publish a
      // weaker region; the user simply stays out of this snapshot.
      pending_publication_.insert(uid);
      continue;
    }
    if (!cloak.ok()) return cloak.status();
    pending_publication_.erase(uid);
    stored_regions_[uid] = cloak.value().region;
    // Strip the identity: the server sees a fresh pseudonym per
    // snapshot, so regions cannot be linked across syncs.
    anonymizer::Pseudonym pseudonym;
    if (current_pseudonym_.count(uid) > 0) {
      CASPER_ASSIGN_OR_RETURN(rotated, pseudonyms_.Rotate(uid));
      pseudonym = rotated;
    } else {
      pseudonym = pseudonyms_.PseudonymFor(uid);
    }
    current_pseudonym_[uid] = pseudonym;
    regions.push_back(
        processor::PrivateTarget{pseudonym, cloak.value().region});
  }
  private_store_ = processor::PrivateTargetStore(regions);
  private_data_dirty_ = false;
  return Status::OK();
}

Result<PublicNNResponse> CasperService::QueryNearestPublic(
    anonymizer::UserId uid) {
  // 1. The trusted anonymizer blurs the query location.
  Stopwatch watch;
  CASPER_ASSIGN_OR_RETURN(cloak, anonymizer_->Cloak(uid));
  const double anonymizer_seconds = watch.ElapsedSeconds();

  // 2+3. Server-side candidate list + client-side refinement.
  CASPER_ASSIGN_OR_RETURN(response, EvaluateNearestPublic(uid, cloak));
  response.timing.anonymizer_seconds = anonymizer_seconds;
  return response;
}

Result<PublicNNResponse> CasperService::EvaluateNearestPublic(
    anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
    processor::ConcurrentQueryCache* cache) const {
  PublicNNResponse response;
  response.cloak = cloak;

  // The privacy-aware processor builds the candidate list (Algorithm 2,
  // possibly memoized by cloak rectangle).
  Stopwatch watch;
  Result<processor::PublicCandidateList> answer =
      cache != nullptr
          ? cache->Query(cloak.region)
          : processor::PrivateNearestNeighbor(public_store_, cloak.region,
                                              options_.filter_policy);
  if (!answer.ok()) return answer.status();
  response.timing.processor_seconds = watch.ElapsedSeconds();
  response.timing.transmission_seconds =
      options_.transmission.SecondsFor(answer.value().size());
  response.server_answer = std::move(answer).value();

  // The client refines locally with its exact position.
  CASPER_ASSIGN_OR_RETURN(position, ClientPosition(uid));
  CASPER_ASSIGN_OR_RETURN(
      exact,
      processor::RefineNearest(response.server_answer.candidates, position));
  response.exact = exact;
  return response;
}

Result<PublicKnnResponse> CasperService::QueryKNearestPublic(
    anonymizer::UserId uid, size_t k) {
  Stopwatch watch;
  CASPER_ASSIGN_OR_RETURN(cloak, anonymizer_->Cloak(uid));
  const double anonymizer_seconds = watch.ElapsedSeconds();

  CASPER_ASSIGN_OR_RETURN(response, EvaluateKNearestPublic(uid, cloak, k));
  response.timing.anonymizer_seconds = anonymizer_seconds;
  return response;
}

Result<PublicKnnResponse> CasperService::EvaluateKNearestPublic(
    anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
    size_t k) const {
  PublicKnnResponse response;
  response.cloak = cloak;

  Stopwatch watch;
  CASPER_ASSIGN_OR_RETURN(
      answer, processor::PrivateKNearestNeighbors(public_store_, cloak.region,
                                                  k));
  response.timing.processor_seconds = watch.ElapsedSeconds();
  response.timing.transmission_seconds =
      options_.transmission.SecondsFor(answer.size());
  response.server_answer = std::move(answer);

  CASPER_ASSIGN_OR_RETURN(position, ClientPosition(uid));
  response.exact = processor::RefineKNearest(
      response.server_answer.candidates, position, k);
  return response;
}

Result<processor::PublicNNCandidates> CasperService::QueryPublicNearest(
    const Point& q) {
  if (private_data_dirty_) {
    return Status::FailedPrecondition(
        "private data snapshot is stale; call SyncPrivateData() first");
  }
  return processor::PublicNearestNeighborOverPrivate(private_store_, q);
}

Result<processor::DensityMap> CasperService::QueryDensity(int cols,
                                                          int rows) {
  if (private_data_dirty_) {
    return Status::FailedPrecondition(
        "private data snapshot is stale; call SyncPrivateData() first");
  }
  return processor::ExpectedDensity(private_store_, options_.pyramid.space,
                                    cols, rows);
}

Result<PrivateNNResponse> CasperService::QueryNearestPrivate(
    anonymizer::UserId uid) {
  if (private_data_dirty_) {
    return Status::FailedPrecondition(
        "private data snapshot is stale; call SyncPrivateData() first");
  }
  Stopwatch watch;
  CASPER_ASSIGN_OR_RETURN(cloak, anonymizer_->Cloak(uid));
  const double anonymizer_seconds = watch.ElapsedSeconds();

  CASPER_ASSIGN_OR_RETURN(response, EvaluateNearestPrivate(uid, cloak));
  response.timing.anonymizer_seconds = anonymizer_seconds;
  return response;
}

Result<PrivateNNResponse> CasperService::EvaluateNearestPrivate(
    anonymizer::UserId uid, const anonymizer::CloakingResult& cloak) const {
  if (private_data_dirty_) {
    return Status::FailedPrecondition(
        "private data snapshot is stale; call SyncPrivateData() first");
  }
  PrivateNNResponse response;
  response.cloak = cloak;

  Stopwatch watch;
  processor::PrivateNNOptions nn_options;
  nn_options.policy = options_.filter_policy;
  // The querying user's own region is stored too (under her current
  // pseudonym); exclude it from the whole computation — left eligible
  // it would win every filter probe and starve the actual buddies.
  const auto self = current_pseudonym_.find(uid);
  if (self != current_pseudonym_.end()) {
    nn_options.exclude_id = self->second;
  }
  CASPER_ASSIGN_OR_RETURN(answer,
                          processor::PrivateNearestNeighborOverPrivate(
                              private_store_, cloak.region, nn_options));
  response.timing.processor_seconds = watch.ElapsedSeconds();
  response.timing.transmission_seconds =
      options_.transmission.SecondsFor(answer.size());
  response.server_answer = std::move(answer);

  if (response.server_answer.candidates.empty()) {
    return Status::NotFound("no other users available as buddies");
  }
  CASPER_ASSIGN_OR_RETURN(position, ClientPosition(uid));
  CASPER_ASSIGN_OR_RETURN(
      best, processor::RefineNearestRegion(response.server_answer.candidates,
                                           position));
  response.best = best;
  return response;
}

Result<processor::RangeCountResult> CasperService::QueryPublicRange(
    const Rect& region) {
  if (private_data_dirty_) {
    return Status::FailedPrecondition(
        "private data snapshot is stale; call SyncPrivateData() first");
  }
  return processor::PublicRangeCount(private_store_, region);
}

Result<processor::PublicRangeCandidates> CasperService::QueryRangePublic(
    anonymizer::UserId uid, double radius) {
  CASPER_ASSIGN_OR_RETURN(cloak, anonymizer_->Cloak(uid));
  CASPER_ASSIGN_OR_RETURN(response, EvaluateRangePublic(uid, cloak, radius));
  return std::move(response.server_answer);
}

Result<PublicRangeResponse> CasperService::EvaluateRangePublic(
    anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
    double radius) const {
  PublicRangeResponse response;
  response.cloak = cloak;

  Stopwatch watch;
  CASPER_ASSIGN_OR_RETURN(answer, processor::PrivateRangeOverPublic(
                                      public_store_, cloak.region, radius));
  response.timing.processor_seconds = watch.ElapsedSeconds();
  response.timing.transmission_seconds =
      options_.transmission.SecondsFor(answer.candidates.size());
  response.server_answer = std::move(answer);

  CASPER_ASSIGN_OR_RETURN(position, ClientPosition(uid));
  response.exact = processor::RefineRange(response.server_answer.candidates,
                                          position, radius);
  return response;
}

Result<Point> CasperService::ClientPosition(anonymizer::UserId uid) const {
  auto it = client_positions_.find(uid);
  if (it == client_positions_.end()) return Status::NotFound("unknown user");
  return it->second;
}

}  // namespace casper
