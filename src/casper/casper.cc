#include "src/casper/casper.h"

#include "src/common/stopwatch.h"
#include "src/processor/concurrent_query_cache.h"

namespace casper {

// src/obs/ duplicates the kind labels as strings so it can stay on both
// sides of the trust boundary without seeing the protocol headers; this
// is the one place that sees both, so pin the wire order here.
static_assert(obs::kQueryKindCount ==
                  static_cast<size_t>(QueryKind::kDensity) + 1,
              "obs::kQueryKindLabels must cover every QueryKind");
static_assert(static_cast<size_t>(QueryKind::kNearestPublic) == 0 &&
                  static_cast<size_t>(QueryKind::kKNearestPublic) == 1 &&
                  static_cast<size_t>(QueryKind::kRangePublic) == 2 &&
                  static_cast<size_t>(QueryKind::kNearestPrivate) == 3 &&
                  static_cast<size_t>(QueryKind::kPublicNearest) == 4 &&
                  static_cast<size_t>(QueryKind::kPublicRange) == 5 &&
                  static_cast<size_t>(QueryKind::kDensity) == 6,
              "obs::kQueryKindLabels is indexed by QueryKind wire value");

namespace {

server::QueryServerOptions ServerOptionsFrom(const CasperOptions& options,
                                             obs::CasperMetrics* metrics) {
  server::QueryServerOptions server_options;
  server_options.filter_policy = options.filter_policy;
  server_options.density_extent = options.pyramid.space;
  server_options.metrics = metrics;
  server_options.idempotency_window = options.server_idempotency_window;
  return server_options;
}

anonymizer::AnonymizerTierOptions TierOptionsFrom(
    const CasperOptions& options, obs::CasperMetrics* metrics) {
  anonymizer::AnonymizerTierOptions tier_options;
  tier_options.pyramid = options.pyramid;
  tier_options.use_adaptive_anonymizer = options.use_adaptive_anonymizer;
  tier_options.pseudonym_seed = options.pseudonym_seed;
  tier_options.publish_on_event = options.auto_sync_private_data;
  tier_options.metrics = metrics;
  return tier_options;
}

Status StaleSnapshotError() {
  return Status::FailedPrecondition(
      "private data snapshot is stale; call SyncPrivateData() first");
}

}  // namespace

CasperService::CasperService(const CasperOptions& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : obs::CasperMetrics::Default()),
      server_(ServerOptionsFrom(options, metrics_)),
      endpoint_(&server_),
      direct_channel_(&endpoint_),
      tier_(TierOptionsFrom(options, metrics_)) {
  transport::Channel* channel = &direct_channel_;
  if (options_.channel_decorator) {
    decorated_ = options_.channel_decorator(&direct_channel_);
    if (decorated_) channel = decorated_.get();
  }
  transport::ResilienceOptions resilience = options_.resilience;
  if (resilience.metrics == nullptr) resilience.metrics = metrics_;
  client_ = std::make_unique<transport::ResilientClient>(channel, resilience);
  // With auto-sync every mutation maintains the store, so the snapshot
  // is never stale; batch mode starts stale until the first sync.
  private_data_dirty_ = !options_.auto_sync_private_data;
}

Status CasperService::RegisterUser(anonymizer::UserId uid,
                                   const anonymizer::PrivacyProfile& profile,
                                   const Point& position) {
  CASPER_RETURN_IF_ERROR(
      tier_.RegisterUser(uid, profile, position, client_.get()));
  if (!options_.auto_sync_private_data) private_data_dirty_ = true;
  return Status::OK();
}

Status CasperService::UpdateUserLocation(anonymizer::UserId uid,
                                         const Point& position) {
  CASPER_RETURN_IF_ERROR(tier_.UpdateLocation(uid, position, client_.get()));
  if (!options_.auto_sync_private_data) private_data_dirty_ = true;
  return Status::OK();
}

Status CasperService::UpdateUserProfile(
    anonymizer::UserId uid, const anonymizer::PrivacyProfile& profile) {
  CASPER_RETURN_IF_ERROR(tier_.UpdateProfile(uid, profile, client_.get()));
  if (!options_.auto_sync_private_data) private_data_dirty_ = true;
  return Status::OK();
}

Status CasperService::DeregisterUser(anonymizer::UserId uid) {
  CASPER_RETURN_IF_ERROR(tier_.DeregisterUser(uid, client_.get()));
  if (!options_.auto_sync_private_data) private_data_dirty_ = true;
  return Status::OK();
}

void CasperService::AddPublicTarget(const processor::PublicTarget& target) {
  server_.AddPublicTarget(target);
}

void CasperService::SetPublicTargets(
    const std::vector<processor::PublicTarget>& targets) {
  server_.SetPublicTargets(targets);
}

Status CasperService::SyncPrivateData() {
  CASPER_ASSIGN_OR_RETURN(snapshot, tier_.BuildSnapshot());
  CASPER_RETURN_IF_ERROR(client_->Load(snapshot));
  private_data_dirty_ = false;
  return Status::OK();
}

Result<QueryResponse> CasperService::Execute(const QueryRequest& request) {
  const QueryKind kind = KindOf(request);
  if (UsesPrivateData(kind) && private_data_dirty_) {
    return StaleSnapshotError();
  }
  if (!IsCloakedKind(kind)) {
    return Evaluate(request, anonymizer::CloakingResult{});
  }

  // 1. The trusted anonymizer blurs the query location.
  Stopwatch watch;
  CASPER_ASSIGN_OR_RETURN(cloak, tier_.Cloak(UidOf(request)));
  const double anonymizer_seconds = watch.ElapsedSeconds();

  // 2+3. Server-side candidate list + client-side refinement.
  CASPER_ASSIGN_OR_RETURN(
      response, Evaluate(request, cloak, nullptr, anonymizer_seconds));
  SetAnonymizerSeconds(response, anonymizer_seconds);
  return response;
}

Result<QueryResponse> CasperService::Evaluate(
    const QueryRequest& request, const anonymizer::CloakingResult& cloak,
    processor::ConcurrentQueryCache* cache, double cloak_seconds) const {
  if (UsesPrivateData(KindOf(request)) && private_data_dirty_) {
    return StaleSnapshotError();
  }
  obs::QuerySpan span = metrics_->tracer.Start(
      obs::kQueryKindLabels[static_cast<size_t>(KindOf(request))]);
  span.phase_seconds[static_cast<size_t>(obs::Phase::kCloak)] = cloak_seconds;
  Result<QueryResponse> result = EvaluateTraced(request, cloak, cache, &span);
  metrics_->tracer.Finish(span);
  return result;
}

Result<QueryResponse> CasperService::EvaluateTraced(
    const QueryRequest& request, const anonymizer::CloakingResult& cloak,
    processor::ConcurrentQueryCache* cache, obs::QuerySpan* span) const {
  // Anonymizer tier: strip the identity; server tier: evaluate the
  // candidate list; anonymizer/client tier: refine with the exact
  // position. The three steps speak only wire messages.
  Result<CloakedQueryMsg> stripped = [&] {
    obs::ScopedPhase phase(span, obs::Phase::kWireEncode);
    return tier_.StripIdentity(request, cloak);
  }();
  if (!stripped.ok()) return stripped.status();
  Result<CandidateListMsg> answer = [&] {
    obs::ScopedPhase phase(span, obs::Phase::kEvaluate);
    return client_->Execute(stripped.value(), cache);
  }();
  if (!answer.ok()) return answer.status();
  obs::ScopedPhase phase(span, obs::Phase::kRefine);
  return tier_.RefineForClient(request, cloak, std::move(answer).value(),
                               options_.transmission);
}

Result<PublicNNResponse> CasperService::QueryNearestPublic(
    anonymizer::UserId uid) {
  CASPER_ASSIGN_OR_RETURN(response, Execute(QueryRequest(NearestPublicQ{uid})));
  return std::get<PublicNNResponse>(std::move(response));
}

Result<PublicNNResponse> CasperService::EvaluateNearestPublic(
    anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
    processor::ConcurrentQueryCache* cache) const {
  CASPER_ASSIGN_OR_RETURN(
      response, Evaluate(QueryRequest(NearestPublicQ{uid}), cloak, cache));
  return std::get<PublicNNResponse>(std::move(response));
}

Result<PublicKnnResponse> CasperService::QueryKNearestPublic(
    anonymizer::UserId uid, size_t k) {
  CASPER_ASSIGN_OR_RETURN(response,
                          Execute(QueryRequest(KNearestPublicQ{uid, k})));
  return std::get<PublicKnnResponse>(std::move(response));
}

Result<PublicKnnResponse> CasperService::EvaluateKNearestPublic(
    anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
    size_t k) const {
  CASPER_ASSIGN_OR_RETURN(
      response, Evaluate(QueryRequest(KNearestPublicQ{uid, k}), cloak));
  return std::get<PublicKnnResponse>(std::move(response));
}

Result<processor::PublicNNCandidates> CasperService::QueryPublicNearest(
    const Point& q) {
  CASPER_ASSIGN_OR_RETURN(response, Execute(QueryRequest(PublicNearestQ{q})));
  return std::get<processor::PublicNNCandidates>(std::move(response));
}

Result<processor::DensityMap> CasperService::QueryDensity(int cols,
                                                          int rows) {
  CASPER_ASSIGN_OR_RETURN(response,
                          Execute(QueryRequest(DensityQ{cols, rows})));
  return std::get<processor::DensityMap>(std::move(response));
}

Result<PrivateNNResponse> CasperService::QueryNearestPrivate(
    anonymizer::UserId uid) {
  CASPER_ASSIGN_OR_RETURN(response,
                          Execute(QueryRequest(NearestPrivateQ{uid})));
  return std::get<PrivateNNResponse>(std::move(response));
}

Result<PrivateNNResponse> CasperService::EvaluateNearestPrivate(
    anonymizer::UserId uid, const anonymizer::CloakingResult& cloak) const {
  CASPER_ASSIGN_OR_RETURN(response,
                          Evaluate(QueryRequest(NearestPrivateQ{uid}), cloak));
  return std::get<PrivateNNResponse>(std::move(response));
}

Result<processor::RangeCountResult> CasperService::QueryPublicRange(
    const Rect& region) {
  CASPER_ASSIGN_OR_RETURN(response, Execute(QueryRequest(PublicRangeQ{region})));
  return std::get<processor::RangeCountResult>(std::move(response));
}

Result<processor::PublicRangeCandidates> CasperService::QueryRangePublic(
    anonymizer::UserId uid, double radius) {
  CASPER_ASSIGN_OR_RETURN(response,
                          Execute(QueryRequest(RangePublicQ{uid, radius})));
  return std::move(std::get<PublicRangeResponse>(response).server_answer);
}

Result<PublicRangeResponse> CasperService::EvaluateRangePublic(
    anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
    double radius) const {
  CASPER_ASSIGN_OR_RETURN(
      response, Evaluate(QueryRequest(RangePublicQ{uid, radius}), cloak));
  return std::get<PublicRangeResponse>(std::move(response));
}

}  // namespace casper
