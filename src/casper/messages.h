#ifndef CASPER_CASPER_MESSAGES_H_
#define CASPER_CASPER_MESSAGES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/result.h"
#include "src/processor/density.h"
#include "src/processor/private_knn.h"
#include "src/processor/private_nn.h"
#include "src/processor/private_nn_private.h"
#include "src/processor/private_range.h"
#include "src/processor/public_nn_private.h"
#include "src/processor/public_range.h"
#include "src/processor/target_store.h"

/// \file
/// The wire-message protocol between the paper's three trust domains
/// (Figure 1): mobile clients, the trusted location anonymizer, and the
/// privacy-aware database server. Everything that crosses the
/// anonymizer/server boundary is one of the message types below — the
/// server tier never receives a user id, an exact position, or a
/// privacy profile; only cloaked regions and opaque pseudonym handles.
///
/// Every message has a lossless binary encoding (little-endian,
/// length-prefixed containers, leading type tag), so an in-process
/// deployment and a future multi-process/multi-shard deployment speak
/// the same protocol. In-process, the tiers hand the decoded structs to
/// each other directly; the byte codec is exercised by a round-trip
/// property test and by the facade parity test.

namespace casper {

// ---------------------------------------------------------------------------
// Query taxonomy
// ---------------------------------------------------------------------------

/// Every query kind the framework answers. The first four are *private*
/// queries (the querying user is cloaked); the last three are *public*
/// queries over the private (cloaked-region) data.
enum class QueryKind : uint8_t {
  kNearestPublic = 0,   ///< Private NN over public data (Algorithm 2).
  kKNearestPublic = 1,  ///< Private k-NN over public data.
  kRangePublic = 2,     ///< Private circular range over public data.
  kNearestPrivate = 3,  ///< Private NN over private data (buddies).
  kPublicNearest = 4,   ///< Public NN over private data (known point).
  kPublicRange = 5,     ///< Public range count over private data.
  kDensity = 6,         ///< Expected-density map over private data.
};

// --- Client -> anonymizer: one query, any kind -----------------------------
//
// The per-kind parameter structs make "exactly the parameters this kind
// needs" hold by construction; the eight former Query*/Evaluate* entry
// points all collapse into this one variant plus a single dispatch.

struct NearestPublicQ {
  uint64_t uid = 0;
};
struct KNearestPublicQ {
  uint64_t uid = 0;
  uint64_t k = 1;
};
struct RangePublicQ {
  uint64_t uid = 0;
  double radius = 0.0;
};
struct NearestPrivateQ {
  uint64_t uid = 0;
};
struct PublicNearestQ {
  Point q;
};
struct PublicRangeQ {
  Rect region;
};
struct DensityQ {
  int32_t cols = 0;
  int32_t rows = 0;
};

/// The unified query request. Alternative order matches QueryKind.
using QueryRequest =
    std::variant<NearestPublicQ, KNearestPublicQ, RangePublicQ,
                 NearestPrivateQ, PublicNearestQ, PublicRangeQ, DensityQ>;

inline QueryKind KindOf(const QueryRequest& request) {
  return static_cast<QueryKind>(request.index());
}

/// True for the kinds that cloak a querying user (and therefore carry a
/// uid that must never leave the trusted tier).
inline bool IsCloakedKind(QueryKind kind) {
  return kind == QueryKind::kNearestPublic ||
         kind == QueryKind::kKNearestPublic ||
         kind == QueryKind::kRangePublic ||
         kind == QueryKind::kNearestPrivate;
}

/// True for the kinds evaluated against the private-data snapshot
/// (which the facade guards with its staleness precondition).
inline bool UsesPrivateData(QueryKind kind) {
  return kind == QueryKind::kNearestPrivate ||
         kind == QueryKind::kPublicNearest ||
         kind == QueryKind::kPublicRange || kind == QueryKind::kDensity;
}

/// The querying user of a private-kind request; 0 for public kinds.
inline uint64_t UidOf(const QueryRequest& request) {
  if (const auto* q = std::get_if<NearestPublicQ>(&request)) return q->uid;
  if (const auto* q = std::get_if<KNearestPublicQ>(&request)) return q->uid;
  if (const auto* q = std::get_if<RangePublicQ>(&request)) return q->uid;
  if (const auto* q = std::get_if<NearestPrivateQ>(&request)) return q->uid;
  return 0;
}

// ---------------------------------------------------------------------------
// Anonymizer -> server: queries with identity stripped
// ---------------------------------------------------------------------------

/// A query as the database server sees it: for private kinds the exact
/// location is replaced by the cloaked region and the user id by
/// nothing at all — only for buddy queries does the requester's
/// *current pseudonym handle* ride along, so the server can exclude the
/// requester's own stored region from the answer (it can still not link
/// the handle to any identity). Public kinds carry their exact
/// parameters unchanged.
struct CloakedQueryMsg {
  QueryKind kind = QueryKind::kNearestPublic;

  /// Transport-level idempotency key (0 = unkeyed). A retry re-sends the
  /// same id; the server echoes it in the CandidateListMsg so a client
  /// can reject responses that belong to a different request. Carries no
  /// identity: ids are per-connection sequence numbers, not user data.
  uint64_t request_id = 0;

  Rect cloak;                   ///< Private kinds: the cloaked region.
  uint64_t k = 1;               ///< kKNearestPublic.
  double radius = 0.0;          ///< kRangePublic.
  bool has_exclude = false;     ///< kNearestPrivate: exclude handle set?
  uint64_t exclude_handle = 0;  ///< Requester's stored-region handle.

  Point point;       ///< kPublicNearest.
  Rect region;       ///< kPublicRange.
  int32_t cols = 0;  ///< kDensity.
  int32_t rows = 0;  ///< kDensity.

  friend bool operator==(const CloakedQueryMsg& a, const CloakedQueryMsg& b) {
    return a.kind == b.kind && a.request_id == b.request_id &&
           a.cloak == b.cloak && a.k == b.k &&
           a.radius == b.radius && a.has_exclude == b.has_exclude &&
           a.exclude_handle == b.exclude_handle && a.point == b.point &&
           a.region == b.region && a.cols == b.cols && a.rows == b.rows;
  }
};

/// Private-store maintenance: store `region` under the opaque handle
/// `handle` (a pseudonym — the server cannot resolve it). When
/// `has_replaces` is set, the region previously stored under `replaces`
/// is dropped first (pseudonyms rotate on every re-publication, so the
/// new handle is always fresh).
struct RegionUpsertMsg {
  /// Idempotency key (0 = unkeyed): a duplicated delivery with the same
  /// id replays the original outcome instead of double-applying.
  uint64_t request_id = 0;
  uint64_t handle = 0;
  bool has_replaces = false;
  uint64_t replaces = 0;
  Rect region;

  friend bool operator==(const RegionUpsertMsg& a, const RegionUpsertMsg& b) {
    return a.request_id == b.request_id && a.handle == b.handle &&
           a.has_replaces == b.has_replaces &&
           a.replaces == b.replaces && a.region == b.region;
  }
};

/// Drop the region stored under `handle` (deregistration).
struct RegionRemoveMsg {
  /// Idempotency key (0 = unkeyed); see RegionUpsertMsg::request_id.
  uint64_t request_id = 0;
  uint64_t handle = 0;

  friend bool operator==(const RegionRemoveMsg& a, const RegionRemoveMsg& b) {
    return a.request_id == b.request_id && a.handle == b.handle;
  }
};

/// Bulk snapshot replacing the server's whole private store (the batch
/// SyncPrivateData model): (handle, region) pairs, identities already
/// stripped and rotated by the anonymizer.
struct SnapshotMsg {
  std::vector<processor::PrivateTarget> regions;

  friend bool operator==(const SnapshotMsg& a, const SnapshotMsg& b) {
    return a.regions == b.regions;
  }
};

// ---------------------------------------------------------------------------
// Server -> client (via the anonymizer): candidate lists
// ---------------------------------------------------------------------------

/// The server-side answer payload, one alternative per QueryKind (same
/// order).
using ServerPayload =
    std::variant<processor::PublicCandidateList, processor::KnnCandidateList,
                 processor::PublicRangeCandidates,
                 processor::PrivateCandidateList, processor::PublicNNCandidates,
                 processor::RangeCountResult, processor::DensityMap>;

/// The candidate list (or aggregate answer) for one CloakedQueryMsg,
/// plus the server-side processing cost for the Figure-17 breakdown.
struct CandidateListMsg {
  QueryKind kind = QueryKind::kNearestPublic;
  /// Echo of CloakedQueryMsg::request_id (0 = unkeyed), so a resilient
  /// client can reject a response that answers a different request.
  uint64_t request_id = 0;
  /// Served from a possibly-stale cache while the server tier was
  /// unreachable: inclusiveness still holds (the candidate list was
  /// computed for the same cloak under the same privacy profile), but
  /// minimality may not. Never set on the healthy path.
  bool degraded = false;
  ServerPayload payload;
  double processor_seconds = 0.0;

  friend bool operator==(const CandidateListMsg& a, const CandidateListMsg& b) {
    return a.kind == b.kind && a.request_id == b.request_id &&
           a.degraded == b.degraded &&
           a.processor_seconds == b.processor_seconds &&
           a.payload == b.payload;
  }
};

/// Number of candidate-list records shipped to the client — the input
/// of the §6.3 transmission-cost model.
size_t RecordCount(const ServerPayload& payload);

// --- Server -> anonymizer: maintenance acknowledgements --------------------

/// Outcome of a maintenance message (RegionUpsert / RegionRemove /
/// Snapshot) or a failed query, echoed back over the channel so errors
/// travel the wire as typed statuses instead of being implied by
/// silence. `request_id` echoes the request's idempotency key.
struct AckMsg {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }

  /// The Status this ack transports (OK when `code` is kOk).
  Status ToStatus() const;

  /// Build the ack for `status` (any code, including kOk).
  static AckMsg For(uint64_t request_id, const Status& status);

  friend bool operator==(const AckMsg& a, const AckMsg& b) {
    return a.request_id == b.request_id && a.code == b.code &&
           a.message == b.message;
  }
};

// ---------------------------------------------------------------------------
// Tier plumbing
// ---------------------------------------------------------------------------

/// Receiving end of the anonymizer's private-store maintenance stream.
/// The server tier implements this; the anonymizer tier publishes into
/// it without ever knowing the concrete server type.
class PrivateStoreSink {
 public:
  virtual ~PrivateStoreSink() = default;
  virtual Status Apply(const RegionUpsertMsg& msg) = 0;
  virtual Status Apply(const RegionRemoveMsg& msg) = 0;
};

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------
//
// Each Encode() emits a self-describing byte string (leading message
// tag); each Decode*() validates the tag, every length prefix, and that
// the buffer is fully consumed, so truncated or mistyped buffers fail
// with InvalidArgument instead of crashing.

std::string Encode(const CloakedQueryMsg& msg);
std::string Encode(const RegionUpsertMsg& msg);
std::string Encode(const RegionRemoveMsg& msg);
std::string Encode(const SnapshotMsg& msg);
std::string Encode(const CandidateListMsg& msg);
std::string Encode(const AckMsg& msg);

Result<CloakedQueryMsg> DecodeCloakedQuery(std::string_view bytes);
Result<RegionUpsertMsg> DecodeRegionUpsert(std::string_view bytes);
Result<RegionRemoveMsg> DecodeRegionRemove(std::string_view bytes);
Result<SnapshotMsg> DecodeSnapshot(std::string_view bytes);
Result<CandidateListMsg> DecodeCandidateList(std::string_view bytes);
Result<AckMsg> DecodeAck(std::string_view bytes);

/// Leading type tag of an encoded message, or kInvalidArgument for an
/// empty/unknown buffer — the transport's dispatch key.
enum class MessageTag : uint8_t {
  kCloakedQuery = 0xC1,
  kRegionUpsert = 0xC2,
  kRegionRemove = 0xC3,
  kSnapshot = 0xC4,
  kCandidateList = 0xC5,
  kAck = 0xC6,
};

Result<MessageTag> TagOf(std::string_view bytes);

/// Idempotency key of an encoded request, without a full decode: the
/// request_id sits at a fixed offset behind the tag in every keyed
/// request message (queries and maintenance); snapshots are unkeyed and
/// answer 0. The transport's admission layer uses this to address a
/// typed shed/reject ack to the request it is refusing — for a buffer
/// too short to carry the field, 0 (the "unkeyed" id) is returned, and
/// the real decoder will produce the typed error.
uint64_t RequestIdOf(std::string_view bytes);

// ---------------------------------------------------------------------------
// Zero-copy decode views
// ---------------------------------------------------------------------------
//
// The owning Decode*() functions above copy every repeated record into
// std::vectors. On the query hot path that is wasted work: the
// resilient client validates each response frame before using it, and
// the server endpoint re-materializes snapshot regions it immediately
// bulk-loads into the store. The *View decoders below validate a frame
// exactly as strictly as the owning decoders (checksum, tag, length
// prefixes, enum ranges, full consumption — the codec fuzz test asserts
// acceptance parity) but materialize no vectors: a WireSpan addresses
// the repeated records inside the caller's frame buffer and decodes one
// record per access. Views borrow the frame — the frame must outlive
// the view — while any value read *out* of a view is an independent
// copy that survives later frame mutation or destruction.

namespace wire {

/// Little-endian loads assembled byte by byte (never reinterpret_cast:
/// record offsets inside a frame carry no alignment guarantee, and an
/// unaligned typed load would be UB).
inline uint64_t LoadU64LE(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

inline double LoadF64LE(const char* p) {
  const uint64_t bits = LoadU64LE(p);
  double v;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace wire

/// Wire layout of one repeated record type: fixed stride plus the
/// per-field decode. Specialized for every record that appears inside a
/// length-prefixed container.
template <typename T>
struct WireRecord;

template <>
struct WireRecord<double> {
  static constexpr size_t kBytes = 8;
  static double Read(const char* p) { return wire::LoadF64LE(p); }
};

template <>
struct WireRecord<processor::PublicTarget> {
  static constexpr size_t kBytes = 24;
  static processor::PublicTarget Read(const char* p) {
    processor::PublicTarget t;
    t.id = wire::LoadU64LE(p);
    t.position = Point{wire::LoadF64LE(p + 8), wire::LoadF64LE(p + 16)};
    return t;
  }
};

template <>
struct WireRecord<processor::PrivateTarget> {
  static constexpr size_t kBytes = 40;
  static processor::PrivateTarget Read(const char* p) {
    processor::PrivateTarget t;
    t.id = wire::LoadU64LE(p);
    t.region = Rect(wire::LoadF64LE(p + 8), wire::LoadF64LE(p + 16),
                    wire::LoadF64LE(p + 24), wire::LoadF64LE(p + 32));
    return t;
  }
};

template <>
struct WireRecord<processor::PublicNNCandidates::Candidate> {
  static constexpr size_t kBytes = WireRecord<processor::PrivateTarget>::kBytes + 16;
  static processor::PublicNNCandidates::Candidate Read(const char* p) {
    processor::PublicNNCandidates::Candidate c;
    c.target = WireRecord<processor::PrivateTarget>::Read(p);
    c.min_dist = wire::LoadF64LE(p + 40);
    c.max_dist = wire::LoadF64LE(p + 48);
    return c;
  }
};

/// Lazily-decoded span of fixed-stride records inside a validated
/// frame. Indexing decodes record i on the fly; nothing is copied until
/// the caller asks for it.
template <typename T>
class WireSpan {
 public:
  WireSpan() = default;
  WireSpan(const char* data, size_t count) : data_(data), count_(count) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Decode record i out of the frame (an independent copy).
  T operator[](size_t i) const {
    return WireRecord<T>::Read(data_ + i * WireRecord<T>::kBytes);
  }

  /// Copy every record into an owning vector.
  std::vector<T> Materialize() const {
    std::vector<T> out;
    out.reserve(count_);
    for (size_t i = 0; i < count_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  const char* data_ = nullptr;
  size_t count_ = 0;
};

// One view per ServerPayload alternative (same order). The small
// fixed-size trailers (extended area, policy, bounds) are decoded
// eagerly — they are a few dozen bytes; only the repeated records stay
// lazy.

struct PublicCandidateListView {
  WireSpan<processor::PublicTarget> candidates;
  processor::ExtendedArea area;
  processor::FilterPolicy policy = processor::FilterPolicy::kFourFilters;
  processor::PublicCandidateList Materialize() const;
};

struct KnnCandidateListView {
  WireSpan<processor::PublicTarget> candidates;
  Rect a_ext;
  uint64_t k = 1;
  processor::KnnCandidateList Materialize() const;
};

struct PublicRangeCandidatesView {
  WireSpan<processor::PublicTarget> candidates;
  Rect search_window;
  processor::PublicRangeCandidates Materialize() const;
};

struct PrivateCandidateListView {
  WireSpan<processor::PrivateTarget> candidates;
  processor::ExtendedArea area;
  processor::FilterPolicy policy = processor::FilterPolicy::kFourFilters;
  processor::PrivateCandidateList Materialize() const;
};

struct PublicNNCandidatesView {
  WireSpan<processor::PublicNNCandidates::Candidate> candidates;
  double minimax_bound = 0.0;
  processor::PublicNNCandidates Materialize() const;
};

struct RangeCountResultView {
  uint64_t certain = 0;
  uint64_t possible = 0;
  double expected = 0.0;
  WireSpan<processor::PrivateTarget> overlapping;
  processor::RangeCountResult Materialize() const;
};

struct DensityMapView {
  Rect extent;
  int32_t cols = 0;
  int32_t rows = 0;
  WireSpan<double> cells;  ///< Row-major, rows * cols records.
  processor::DensityMap Materialize() const;
};

using ServerPayloadView =
    std::variant<PublicCandidateListView, KnnCandidateListView,
                 PublicRangeCandidatesView, PrivateCandidateListView,
                 PublicNNCandidatesView, RangeCountResultView, DensityMapView>;

/// Shipped record count of a payload view — identical to RecordCount on
/// the materialized payload, without materializing it.
size_t RecordCount(const ServerPayloadView& payload);

/// Zero-copy counterpart of CandidateListMsg. Scalar header fields are
/// decoded eagerly; the payload's candidate records stay in the frame.
struct CandidateListView {
  QueryKind kind = QueryKind::kNearestPublic;
  uint64_t request_id = 0;
  bool degraded = false;
  double processor_seconds = 0.0;
  ServerPayloadView payload;
  CandidateListMsg Materialize() const;
};

/// Zero-copy counterpart of SnapshotMsg: the (handle, region) records
/// stay in the frame until consumed (the server bulk-loads them straight
/// into the store without an intermediate vector).
struct SnapshotView {
  WireSpan<processor::PrivateTarget> regions;
  SnapshotMsg Materialize() const;
};

/// CloakedQueryMsg is all fixed-width scalars, so its eager decode
/// already allocates nothing: the message doubles as its own view.
using CloakedQueryView = CloakedQueryMsg;

Result<CandidateListView> DecodeCandidateListView(std::string_view frame);
Result<SnapshotView> DecodeSnapshotView(std::string_view frame);
inline Result<CloakedQueryView> DecodeCloakedQueryView(
    std::string_view frame) {
  return DecodeCloakedQuery(frame);
}

}  // namespace casper

#endif  // CASPER_CASPER_MESSAGES_H_
