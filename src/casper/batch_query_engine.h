#ifndef CASPER_CASPER_BATCH_QUERY_ENGINE_H_
#define CASPER_CASPER_BATCH_QUERY_ENGINE_H_

#include <memory>
#include <variant>
#include <vector>

#include "src/casper/casper.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/processor/concurrent_query_cache.h"

/// \file
/// Parallel batch query engine: answers a heterogeneous batch of
/// queries by splitting each one along the paper's own architectural
/// seam. Cloaking runs sequentially on the calling thread — the
/// anonymizer is the paper's single trusted middleware process and its
/// structures are not thread-safe — while the expensive server-side
/// evaluation plus client-side refinement, which are read-only over the
/// target stores, fan out across a fixed ThreadPool through the unified
/// CasperService::Evaluate dispatch. The only shared mutable state
/// during the parallel phase is the shard-locked candidate-list cache.
///
/// Responses come back in request order regardless of completion order,
/// and the engine aggregates the per-query TimingBreakdowns into
/// throughput and latency percentiles — the axis the scaling
/// experiments (and the related LBS-performance literature) measure.
///
/// The engine lives with the facade (not under src/server/) because it
/// orchestrates all three tiers; the namespace is kept for source
/// compatibility with its original home.

namespace casper::server {

/// The tier-level query taxonomy, re-exported under the engine's
/// original spelling (server::QueryKind).
using QueryKind = casper::QueryKind;

/// One batch slot's input: a flat, copyable superset of every kind's
/// parameters plus factories per kind. ToRequest() lowers it onto the
/// unified QueryRequest variant the facade dispatches on.
struct BatchQueryRequest {
  QueryKind kind = QueryKind::kNearestPublic;
  uint64_t uid = 0;     ///< Private (cloaked) kinds only.
  size_t k = 1;         ///< kKNearestPublic only.
  double radius = 0.0;  ///< kRangePublic only.
  Point point;          ///< kPublicNearest only.
  Rect region;          ///< kPublicRange only.
  int cols = 0;         ///< kDensity only.
  int rows = 0;         ///< kDensity only.

  static BatchQueryRequest NearestPublic(uint64_t uid) {
    BatchQueryRequest request;
    request.kind = QueryKind::kNearestPublic;
    request.uid = uid;
    return request;
  }
  static BatchQueryRequest KNearestPublic(uint64_t uid, size_t k) {
    BatchQueryRequest request;
    request.kind = QueryKind::kKNearestPublic;
    request.uid = uid;
    request.k = k;
    return request;
  }
  static BatchQueryRequest RangePublic(uint64_t uid, double radius) {
    BatchQueryRequest request;
    request.kind = QueryKind::kRangePublic;
    request.uid = uid;
    request.radius = radius;
    return request;
  }
  static BatchQueryRequest NearestPrivate(uint64_t uid) {
    BatchQueryRequest request;
    request.kind = QueryKind::kNearestPrivate;
    request.uid = uid;
    return request;
  }
  static BatchQueryRequest PublicNearest(const Point& q) {
    BatchQueryRequest request;
    request.kind = QueryKind::kPublicNearest;
    request.point = q;
    return request;
  }
  static BatchQueryRequest PublicRange(const Rect& region) {
    BatchQueryRequest request;
    request.kind = QueryKind::kPublicRange;
    request.region = region;
    return request;
  }
  static BatchQueryRequest Density(int cols, int rows) {
    BatchQueryRequest request;
    request.kind = QueryKind::kDensity;
    request.cols = cols;
    request.rows = rows;
    return request;
  }

  QueryRequest ToRequest() const;
};

/// The answer payload of one slot: exactly one alternative is engaged
/// when `status.ok()`, monostate otherwise — by construction, not by
/// convention (and a fraction of the footprint of the four parallel
/// optionals it replaced).
using BatchPayload =
    std::variant<std::monostate, PublicNNResponse, PublicKnnResponse,
                 PublicRangeResponse, PrivateNNResponse,
                 processor::PublicNNCandidates, processor::RangeCountResult,
                 processor::DensityMap>;

/// One slot per request, in request order.
struct BatchQueryResponse {
  QueryKind kind = QueryKind::kNearestPublic;
  Status status;
  BatchPayload payload;

  bool ok() const { return status.ok(); }

  const PublicNNResponse* nearest_public() const {
    return std::get_if<PublicNNResponse>(&payload);
  }
  const PublicKnnResponse* k_nearest_public() const {
    return std::get_if<PublicKnnResponse>(&payload);
  }
  const PublicRangeResponse* range_public() const {
    return std::get_if<PublicRangeResponse>(&payload);
  }
  const PrivateNNResponse* nearest_private() const {
    return std::get_if<PrivateNNResponse>(&payload);
  }
  const processor::PublicNNCandidates* public_nearest() const {
    return std::get_if<processor::PublicNNCandidates>(&payload);
  }
  const processor::RangeCountResult* public_range() const {
    return std::get_if<processor::RangeCountResult>(&payload);
  }
  const processor::DensityMap* density() const {
    return std::get_if<processor::DensityMap>(&payload);
  }

  /// Timing of the payload; nullptr on error slots and on the
  /// public-over-private kinds (which have always been untimed).
  const TimingBreakdown* timing() const {
    if (const auto* r = nearest_public()) return &r->timing;
    if (const auto* r = k_nearest_public()) return &r->timing;
    if (const auto* r = range_public()) return &r->timing;
    if (const auto* r = nearest_private()) return &r->timing;
    return nullptr;
  }
};

struct BatchEngineOptions {
  /// Worker threads evaluating queries (the cloaking phase is always
  /// sequential).
  size_t threads = 4;

  /// Memoize NN candidate lists by cloak rectangle across the batch
  /// (and across batches, until the target set changes).
  bool use_cache = true;
  size_t cache_capacity = 1024;
  size_t cache_shards = processor::ConcurrentQueryCache::kDefaultShards;

  /// Instrument bundle; null resolves to obs::CasperMetrics::Default().
  /// Feeds the batch gauges (queue depth, pool utilization) and routes
  /// the cache's hit/miss counts into the registry.
  obs::CasperMetrics* metrics = nullptr;

  /// Load-shedding watermark: each worker's chunk queue may hold at
  /// most this many queries, so a batch admits the first
  /// `shed_queue_depth * threads` ready slots and fails the rest fast
  /// with kUnavailable (counted in `casper_batch_shed_total`). 0
  /// disables shedding (the default — batches are admitted whole).
  size_t shed_queue_depth = 0;

  /// Queries per work-stealing chunk in the parallel phase; 0 picks
  /// ~4 chunks per worker capped at 64 queries (see
  /// common/chunked_dispatch.h). Tests pin this to exercise stealing.
  size_t dispatch_chunk = 0;
};

/// Aggregate cost of one Execute() call.
struct BatchSummary {
  size_t batch_size = 0;
  size_t ok_count = 0;
  size_t error_count = 0;

  double wall_seconds = 0.0;        ///< Whole batch, cloaking included.
  double cloak_seconds = 0.0;       ///< Sequential anonymizer phase.
  double queries_per_second = 0.0;  ///< batch_size / wall_seconds.

  /// Per-query processor (server evaluation) latency percentiles, in
  /// microseconds, over the successful timed slots.
  double processor_p50_micros = 0.0;
  double processor_p95_micros = 0.0;
  double processor_p99_micros = 0.0;
  double processor_mean_micros = 0.0;

  /// Summed per-query breakdown (Figure 17's decomposition, batch-wide).
  TimingBreakdown totals;

  /// Cache counters accumulated over this engine's lifetime.
  processor::QueryCacheStats cache;
};

struct BatchResult {
  std::vector<BatchQueryResponse> responses;  ///< Request order.
  BatchSummary summary;
};

/// The engine borrows the service; the service must outlive it. One
/// Execute() call runs at a time per engine (callers serialize), and no
/// mutating CasperService call may run concurrently with Execute() —
/// the same external-synchronization contract as the underlying stores.
class BatchQueryEngine {
 public:
  explicit BatchQueryEngine(CasperService* service,
                            const BatchEngineOptions& options = {});

  /// Answer the whole batch; responses[i] corresponds to requests[i].
  /// Per-query failures (unknown uid, unsynced private data, ...) land
  /// in the slot's status and never abort the rest of the batch.
  BatchResult Execute(const std::vector<BatchQueryRequest>& requests);

  /// Must be called after any public-target mutation when the cache is
  /// enabled (mirrors CachingQueryProcessor::InvalidateAll).
  void InvalidatePublicCache();

  const BatchEngineOptions& options() const { return options_; }
  const processor::ConcurrentQueryCache* cache() const {
    return cache_.get();
  }

 private:
  void EvaluateOne(const BatchQueryRequest& request,
                   const anonymizer::CloakingResult& cloak,
                   double anonymizer_seconds, BatchQueryResponse* out) const;

  CasperService* service_;
  BatchEngineOptions options_;
  obs::CasperMetrics* metrics_;
  ThreadPool pool_;
  std::unique_ptr<processor::ConcurrentQueryCache> cache_;
};

}  // namespace casper::server

#endif  // CASPER_CASPER_BATCH_QUERY_ENGINE_H_
