#ifndef CASPER_CASPER_CASPER_H_
#define CASPER_CASPER_CASPER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/anonymizer/adaptive_anonymizer.h"
#include "src/anonymizer/anonymizer_tier.h"
#include "src/anonymizer/basic_anonymizer.h"
#include "src/anonymizer/pseudonyms.h"
#include "src/casper/messages.h"
#include "src/casper/responses.h"
#include "src/casper/transmission.h"
#include "src/obs/casper_metrics.h"
#include "src/processor/density.h"
#include "src/processor/naive.h"
#include "src/processor/private_knn.h"
#include "src/processor/private_nn.h"
#include "src/processor/private_nn_private.h"
#include "src/processor/private_range.h"
#include "src/processor/public_nn_private.h"
#include "src/processor/public_range.h"
#include "src/server/query_server.h"
#include "src/transport/channel.h"
#include "src/transport/resilient_client.h"
#include "src/transport/server_endpoint.h"

/// \file
/// The end-to-end Casper framework (Figure 1): mobile users register
/// with privacy profiles, the location anonymizer blurs their positions
/// into cloaked regions, and the privacy-aware query processor answers
/// queries over those regions with candidate lists that the client
/// refines locally.
///
/// `CasperService` is a thin facade over the two tier objects that now
/// implement the paper's trust domains — `anonymizer::AnonymizerTier`
/// (identities, exact positions, pseudonyms) and `server::QueryServer`
/// (target stores, cloaked regions, query evaluation) — wired together
/// through the wire-message protocol of src/casper/messages.h. The
/// facade preserves the original single-object API and the per-query
/// timing breakdown the paper's end-to-end experiment reports (§6.3):
/// anonymizer time + query-processing time + candidate-list
/// transmission time.

namespace casper {

struct CasperOptions {
  anonymizer::PyramidConfig pyramid;

  /// Which anonymizer variant backs the service (§4.1 vs §4.2).
  bool use_adaptive_anonymizer = true;

  processor::FilterPolicy filter_policy =
      processor::FilterPolicy::kFourFilters;

  /// Server-side idempotency window (see
  /// server::QueryServerOptions::idempotency_window).
  size_t server_idempotency_window = 8192;

  TransmissionModel transmission;

  /// Seed of the pseudonym stream used to strip user identities before
  /// cloaked regions reach the database server (§3 pseudonymity).
  uint64_t pseudonym_seed = 0xCA5;

  /// When true, the anonymizer pushes a fresh cloaked region to the
  /// server on every user event (register / move / profile change), so
  /// private-data queries never require an explicit SyncPrivateData().
  /// Each stored region reflects the pyramid state at its user's last
  /// event — the same snapshot semantics as periodic syncing, at a
  /// finer grain. Off by default (the paper's batch model).
  bool auto_sync_private_data = false;

  /// Instrument bundle shared by both tiers and the facade's query
  /// spans; null resolves to obs::CasperMetrics::Default() (the
  /// registry `casper_cli metrics` scrapes). Tests inject a fresh
  /// bundle to observe a single service in isolation.
  obs::CasperMetrics* metrics = nullptr;

  /// Decorates the anonymizer->server channel, e.g. wrapping the direct
  /// channel in a transport::FaultInjectingChannel for chaos runs.
  /// Receives the in-process DirectChannel (which the service keeps
  /// alive); the returned channel carries all tier traffic. Null leaves
  /// the direct channel in place.
  std::function<std::unique_ptr<transport::Channel>(transport::Channel*)>
      channel_decorator;

  /// Deadlines, retries, circuit breaking, and degradation for the tier
  /// channel (see transport::ResilientClient). The defaults are
  /// invisible on the lossless direct channel — every call succeeds on
  /// the first attempt.
  transport::ResilienceOptions resilience;
};

/// The full framework behind the original one-object API. Mutations are
/// single-threaded by design, mirroring the paper's single middleware
/// process; query *evaluation* is read-only and may be fanned across
/// threads via Evaluate() / the Evaluate* wrappers (see
/// server::BatchQueryEngine).
class CasperService {
 public:
  explicit CasperService(const CasperOptions& options);

  // --- User lifecycle (mobile clients -> anonymizer tier) -------------

  Status RegisterUser(anonymizer::UserId uid,
                      const anonymizer::PrivacyProfile& profile,
                      const Point& position);
  Status UpdateUserLocation(anonymizer::UserId uid, const Point& position);
  Status UpdateUserProfile(anonymizer::UserId uid,
                           const anonymizer::PrivacyProfile& profile);
  Status DeregisterUser(anonymizer::UserId uid);

  // --- Public data (stored directly at the server tier) ---------------

  void AddPublicTarget(const processor::PublicTarget& target);
  void SetPublicTargets(const std::vector<processor::PublicTarget>& targets);

  // --- Private-data snapshot ------------------------------------------
  //
  // The anonymizer tier builds an identity-stripped SnapshotMsg (each
  // user freshly cloaked under a *rotated* pseudonym — §3: the
  // anonymizer "removes any user identity to ensure pseudonymity";
  // rotation makes snapshots unlinkable) and the server tier bulk-loads
  // it. Call after a batch of movement.

  Status SyncPrivateData();

  /// Trusted-side translation of a pseudonym from a query answer back
  /// to the user id (only the anonymizer side can do this; the database
  /// server never can).
  Result<anonymizer::UserId> ResolvePseudonym(
      anonymizer::Pseudonym pseudonym) const {
    return tier_.ResolvePseudonym(pseudonym);
  }

  // --- Unified query dispatch -------------------------------------------
  //
  // One entry point for every query kind: build a QueryRequest (the
  // variant in src/casper/messages.h) and Execute() it. The sequential
  // path, server::BatchQueryEngine, the CLI, and the benches all funnel
  // through this dispatch; the legacy Query*/Evaluate* methods below
  // are thin wrappers that unwrap the matching response alternative.

  /// Cloak (for the private kinds) and answer one request end to end.
  Result<QueryResponse> Execute(const QueryRequest& request);

  /// The read-only half: identity stripping, server evaluation, and
  /// client-side refinement over a pre-computed cloak. Const and safe
  /// to call from many threads concurrently provided no mutating
  /// service call runs during the batch (the cloaking half stays on the
  /// single-threaded anonymizer, as in the paper). `cache`, when
  /// non-null, memoizes kNearestPublic candidate lists by cloak
  /// rectangle (answers identical to the direct evaluation).
  /// `cloak_seconds`, when the caller timed the cloak itself (Execute,
  /// the batch engine's phase 1), lands on the span's cloak phase so
  /// the trace covers all four pipeline phases.
  Result<QueryResponse> Evaluate(const QueryRequest& request,
                                 const anonymizer::CloakingResult& cloak,
                                 processor::ConcurrentQueryCache* cache = nullptr,
                                 double cloak_seconds = 0.0) const;

  // --- Queries (legacy wrappers) ----------------------------------------

  /// Private NN over public data: "my nearest gas station" for `uid`.
  Result<PublicNNResponse> QueryNearestPublic(anonymizer::UserId uid);

  /// Private k-NN over public data: "my k nearest gas stations".
  Result<PublicKnnResponse> QueryKNearestPublic(anonymizer::UserId uid,
                                                size_t k);

  /// Public NN over private data: the administrator's "which user is
  /// nearest to this point?" (requires SyncPrivateData).
  Result<processor::PublicNNCandidates> QueryPublicNearest(const Point& q);

  /// Expected-density map of the cloaked user population over a grid
  /// spanning the whole managed space (requires SyncPrivateData).
  Result<processor::DensityMap> QueryDensity(int cols, int rows);

  /// Private NN over private data: "my nearest buddy" — the stored
  /// cloaked regions of every *other* user (requires SyncPrivateData).
  Result<PrivateNNResponse> QueryNearestPrivate(anonymizer::UserId uid);

  /// Public query over private data: expected/possible user counts in
  /// an exactly-known region (requires SyncPrivateData).
  Result<processor::RangeCountResult> QueryPublicRange(const Rect& region);

  /// Private range query over public data for `uid`.
  Result<processor::PublicRangeCandidates> QueryRangePublic(
      anonymizer::UserId uid, double radius);

  // --- Read-only evaluation over a pre-computed cloak (legacy) ----------

  Result<PublicNNResponse> EvaluateNearestPublic(
      anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
      processor::ConcurrentQueryCache* cache = nullptr) const;

  Result<PublicKnnResponse> EvaluateKNearestPublic(
      anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
      size_t k) const;

  Result<PublicRangeResponse> EvaluateRangePublic(
      anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
      double radius) const;

  Result<PrivateNNResponse> EvaluateNearestPrivate(
      anonymizer::UserId uid, const anonymizer::CloakingResult& cloak) const;

  // --- Persistence ------------------------------------------------------

  /// Checkpoint the server tier (public targets + stored cloaked
  /// regions) to `sm` and commit. Anonymizer state — the pyramid, user
  /// registrations, pseudonyms — is deliberately not persisted: exact
  /// locations never leave the trusted tier, on disk or off.
  Status SaveServerState(storage::IStorageManager* sm) const {
    return server_.Save(sm);
  }

  /// Replace the server tier's state with the checkpoint on `sm`.
  Status OpenServerState(storage::IStorageManager* sm) {
    return server_.Open(sm);
  }

  // --- Introspection ----------------------------------------------------

  anonymizer::LocationAnonymizer& anonymizer() { return tier_.anonymizer(); }
  const processor::PublicTargetStore& public_store() const {
    return server_.public_store();
  }
  const processor::PrivateTargetStore& private_store() const {
    return server_.private_store();
  }
  const CasperOptions& options() const { return options_; }
  size_t user_count() const { return tier_.user_count(); }

  /// The client's own exact position (known only to the client and the
  /// trusted anonymizer; used for local refinement and quality checks).
  Result<Point> ClientPosition(anonymizer::UserId uid) const {
    return tier_.ClientPosition(uid);
  }

  /// Direct access to the tier objects, for callers that work at the
  /// wire-message level.
  anonymizer::AnonymizerTier& anonymizer_tier() { return tier_; }
  const anonymizer::AnonymizerTier& anonymizer_tier() const { return tier_; }
  server::QueryServer& query_server() { return server_; }
  const server::QueryServer& query_server() const { return server_; }

  /// The resilient client all anonymizer->server traffic flows through
  /// (breaker state, replay depth, Flush() for tests and the CLI).
  transport::ResilientClient& transport_client() { return *client_; }
  const transport::ResilientClient& transport_client() const {
    return *client_;
  }

 private:
  /// Evaluate() body with the span threaded through, structured so the
  /// span is always Finish()ed regardless of which step fails.
  Result<QueryResponse> EvaluateTraced(const QueryRequest& request,
                                       const anonymizer::CloakingResult& cloak,
                                       processor::ConcurrentQueryCache* cache,
                                       obs::QuerySpan* span) const;

  CasperOptions options_;
  obs::CasperMetrics* metrics_;
  server::QueryServer server_;
  // The transport stack between the tiers, bottom-up: the endpoint
  // decodes bytes into server_, the direct channel delivers bytes
  // in-process, an optional decorator (chaos, future remoting) wraps
  // it, and the resilient client — the only thing the facade and the
  // anonymizer's publications ever talk to — adds deadlines, retries,
  // circuit breaking, and degradation on top.
  transport::ServerEndpoint endpoint_;
  transport::DirectChannel direct_channel_;
  std::unique_ptr<transport::Channel> decorated_;
  std::unique_ptr<transport::ResilientClient> client_;
  anonymizer::AnonymizerTier tier_;
  bool private_data_dirty_ = true;
};

}  // namespace casper

#endif  // CASPER_CASPER_CASPER_H_
