#ifndef CASPER_CASPER_CASPER_H_
#define CASPER_CASPER_CASPER_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/anonymizer/adaptive_anonymizer.h"
#include "src/anonymizer/basic_anonymizer.h"
#include "src/anonymizer/pseudonyms.h"
#include "src/casper/transmission.h"
#include "src/processor/density.h"
#include "src/processor/naive.h"
#include "src/processor/private_knn.h"
#include "src/processor/private_nn.h"
#include "src/processor/private_nn_private.h"
#include "src/processor/private_range.h"
#include "src/processor/public_nn_private.h"
#include "src/processor/public_range.h"

/// \file
/// The end-to-end Casper framework (Figure 1): mobile users register
/// with privacy profiles, the location anonymizer blurs their positions
/// into cloaked regions, and the privacy-aware query processor answers
/// queries over those regions with candidate lists that the client
/// refines locally.
///
/// `CasperService` wires the pieces together and keeps the per-query
/// timing breakdown the paper's end-to-end experiment reports (§6.3):
/// anonymizer time + query-processing time + candidate-list
/// transmission time.

namespace casper {

namespace processor {
class ConcurrentQueryCache;
}  // namespace processor

struct CasperOptions {
  anonymizer::PyramidConfig pyramid;

  /// Which anonymizer variant backs the service (§4.1 vs §4.2).
  bool use_adaptive_anonymizer = true;

  processor::FilterPolicy filter_policy =
      processor::FilterPolicy::kFourFilters;

  TransmissionModel transmission;

  /// Seed of the pseudonym stream used to strip user identities before
  /// cloaked regions reach the database server (§3 pseudonymity).
  uint64_t pseudonym_seed = 0xCA5;

  /// When true, the anonymizer pushes a fresh cloaked region to the
  /// server on every user event (register / move / profile change), so
  /// private-data queries never require an explicit SyncPrivateData().
  /// Each stored region reflects the pyramid state at its user's last
  /// event — the same snapshot semantics as periodic syncing, at a
  /// finer grain. Off by default (the paper's batch model).
  bool auto_sync_private_data = false;
};

/// Per-query cost decomposition (Figure 17).
struct TimingBreakdown {
  double anonymizer_seconds = 0.0;
  double processor_seconds = 0.0;
  double transmission_seconds = 0.0;

  double Total() const {
    return anonymizer_seconds + processor_seconds + transmission_seconds;
  }
};

/// Response to a private NN query over public data, as seen by the
/// mobile client: candidate list plus the exact answer after local
/// refinement.
struct PublicNNResponse {
  processor::PublicCandidateList server_answer;
  processor::PublicTarget exact;  ///< After client-side refinement.
  anonymizer::CloakingResult cloak;
  TimingBreakdown timing;
};

/// Response to a private k-NN query over public data.
struct PublicKnnResponse {
  processor::KnnCandidateList server_answer;
  std::vector<processor::PublicTarget> exact;  ///< k refined answers.
  anonymizer::CloakingResult cloak;
  TimingBreakdown timing;
};

/// Response to a private NN query over private data (buddies).
struct PrivateNNResponse {
  processor::PrivateCandidateList server_answer;
  processor::PrivateTarget best;  ///< Client-side minimax refinement.
  anonymizer::CloakingResult cloak;
  TimingBreakdown timing;
};

/// Response to a private range query over public data, with the
/// client-side refinement and timing the other response types carry.
struct PublicRangeResponse {
  processor::PublicRangeCandidates server_answer;
  std::vector<processor::PublicTarget> exact;  ///< Truly within radius.
  anonymizer::CloakingResult cloak;
  TimingBreakdown timing;
};

/// The full framework: one anonymizer (trusted middleware), one
/// privacy-aware database server holding public targets and the cloaked
/// user regions, plus the client-side refinement logic. Mutations are
/// single-threaded by design, mirroring the paper's single middleware
/// process; query *evaluation* is read-only and may be fanned across
/// threads via the Evaluate* methods (see server::BatchQueryEngine).
class CasperService {
 public:
  explicit CasperService(const CasperOptions& options);

  // --- User lifecycle (mobile clients -> anonymizer) ------------------

  Status RegisterUser(anonymizer::UserId uid,
                      const anonymizer::PrivacyProfile& profile,
                      const Point& position);
  Status UpdateUserLocation(anonymizer::UserId uid, const Point& position);
  Status UpdateUserProfile(anonymizer::UserId uid,
                           const anonymizer::PrivacyProfile& profile);
  Status DeregisterUser(anonymizer::UserId uid);

  // --- Public data (stored directly at the server) --------------------

  void AddPublicTarget(const processor::PublicTarget& target);
  void SetPublicTargets(const std::vector<processor::PublicTarget>& targets);

  // --- Private-data snapshot ------------------------------------------
  //
  // The anonymizer pushes cloaked regions to the server. This facade
  // refreshes the snapshot on demand: each registered user is cloaked,
  // her identity is replaced by a *fresh pseudonym* (§3: the anonymizer
  // "removes any user identity to ensure pseudonymity"; rotation makes
  // snapshots unlinkable), and the regions are bulk-loaded into the
  // server's private store. Call after a batch of movement.

  Status SyncPrivateData();

  /// Trusted-side translation of a pseudonym from a query answer back
  /// to the user id (only the anonymizer side can do this; the database
  /// server never can).
  Result<anonymizer::UserId> ResolvePseudonym(
      anonymizer::Pseudonym pseudonym) const {
    return pseudonyms_.Resolve(pseudonym);
  }

  // --- Queries ----------------------------------------------------------

  /// Private NN over public data: "my nearest gas station" for `uid`.
  Result<PublicNNResponse> QueryNearestPublic(anonymizer::UserId uid);

  /// Private k-NN over public data: "my k nearest gas stations".
  Result<PublicKnnResponse> QueryKNearestPublic(anonymizer::UserId uid,
                                                size_t k);

  /// Public NN over private data: the administrator's "which user is
  /// nearest to this point?" (requires SyncPrivateData).
  Result<processor::PublicNNCandidates> QueryPublicNearest(const Point& q);

  /// Expected-density map of the cloaked user population over a grid
  /// spanning the whole managed space (requires SyncPrivateData).
  Result<processor::DensityMap> QueryDensity(int cols, int rows);

  /// Private NN over private data: "my nearest buddy" — the stored
  /// cloaked regions of every *other* user (requires SyncPrivateData).
  Result<PrivateNNResponse> QueryNearestPrivate(anonymizer::UserId uid);

  /// Public query over private data: expected/possible user counts in
  /// an exactly-known region (requires SyncPrivateData).
  Result<processor::RangeCountResult> QueryPublicRange(const Rect& region);

  /// Private range query over public data for `uid`.
  Result<processor::PublicRangeCandidates> QueryRangePublic(
      anonymizer::UserId uid, double radius);

  // --- Read-only evaluation over a pre-computed cloak -------------------
  //
  // The server + client half of each private query, factored out of the
  // Query* methods so the sequential path and the parallel
  // server::BatchQueryEngine execute the *same* code. Each method is
  // const and reads only the target stores, options, and per-user
  // bookkeeping: safe to call from many threads concurrently provided
  // no mutating service call runs during the batch. The cloaking half
  // stays on the anonymizer (single middleware process, as in the
  // paper); pass its result in.
  //
  // `cache`, when non-null, memoizes the NN candidate list by cloak
  // rectangle (answers are identical to the direct evaluation).

  Result<PublicNNResponse> EvaluateNearestPublic(
      anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
      processor::ConcurrentQueryCache* cache = nullptr) const;

  Result<PublicKnnResponse> EvaluateKNearestPublic(
      anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
      size_t k) const;

  Result<PublicRangeResponse> EvaluateRangePublic(
      anonymizer::UserId uid, const anonymizer::CloakingResult& cloak,
      double radius) const;

  Result<PrivateNNResponse> EvaluateNearestPrivate(
      anonymizer::UserId uid, const anonymizer::CloakingResult& cloak) const;

  // --- Introspection ----------------------------------------------------

  anonymizer::LocationAnonymizer& anonymizer() { return *anonymizer_; }
  const processor::PublicTargetStore& public_store() const {
    return public_store_;
  }
  const processor::PrivateTargetStore& private_store() const {
    return private_store_;
  }
  const CasperOptions& options() const { return options_; }
  size_t user_count() const { return anonymizer_->user_count(); }

  /// The client's own exact position (known only to the client and the
  /// trusted anonymizer; used for local refinement and quality checks).
  Result<Point> ClientPosition(anonymizer::UserId uid) const;

 private:
  /// Incremental private-store maintenance for auto-sync mode: re-cloak
  /// one user and replace her stored region (rotating the pseudonym).
  Status UpsertPrivateRegion(anonymizer::UserId uid);
  Status RemovePrivateRegion(anonymizer::UserId uid);

  /// Users whose profiles could not be satisfied yet (k above the
  /// population at their last event) are retried as the population
  /// grows.
  Status RetryPendingPublications();

  CasperOptions options_;
  std::unique_ptr<anonymizer::LocationAnonymizer> anonymizer_;
  processor::PublicTargetStore public_store_;
  processor::PrivateTargetStore private_store_;
  /// uid -> cloaked region currently stored at the server.
  std::unordered_map<anonymizer::UserId, Rect> stored_regions_;
  /// Identity stripping for server-side private data.
  anonymizer::PseudonymRegistry pseudonyms_;
  /// The querying user's own pseudonym must be excluded from buddy
  /// answers; track the current one per user.
  std::unordered_map<anonymizer::UserId, anonymizer::Pseudonym>
      current_pseudonym_;
  /// Auto-sync users awaiting a satisfiable profile (see
  /// RetryPendingPublications).
  std::unordered_set<anonymizer::UserId> pending_publication_;
  /// Client-side knowledge: each client knows its own exact position.
  std::unordered_map<anonymizer::UserId, Point> client_positions_;
  bool private_data_dirty_ = true;
};

}  // namespace casper

#endif  // CASPER_CASPER_CASPER_H_
