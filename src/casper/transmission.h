#ifndef CASPER_CASPER_TRANSMISSION_H_
#define CASPER_CASPER_TRANSMISSION_H_

#include <cstddef>

/// \file
/// The analytical downlink-cost model of §6.3: candidate-list records of
/// 64 bytes shipped over a 100 Mbps channel. The paper's end-to-end
/// experiment adds this transmission time to the anonymizer and
/// query-processor times.

namespace casper {

class TransmissionModel {
 public:
  /// Defaults are the paper's parameters.
  explicit TransmissionModel(size_t record_bytes = 64,
                             double bandwidth_bits_per_second = 100e6)
      : record_bytes_(record_bytes), bandwidth_bps_(bandwidth_bits_per_second) {}

  /// Seconds to transmit `records` candidate-list entries.
  double SecondsFor(size_t records) const {
    return static_cast<double>(records * record_bytes_) * 8.0 /
           bandwidth_bps_;
  }

  size_t BytesFor(size_t records) const { return records * record_bytes_; }

  size_t record_bytes() const { return record_bytes_; }
  double bandwidth_bps() const { return bandwidth_bps_; }

 private:
  size_t record_bytes_;
  double bandwidth_bps_;
};

}  // namespace casper

#endif  // CASPER_CASPER_TRANSMISSION_H_
