#ifndef CASPER_CASPER_WORKLOAD_H_
#define CASPER_CASPER_WORKLOAD_H_

#include <vector>

#include "src/anonymizer/anonymizer.h"
#include "src/anonymizer/privacy_profile.h"
#include "src/anonymizer/pyramid_config.h"
#include "src/common/rng.h"
#include "src/network/moving_objects.h"
#include "src/obs/casper_metrics.h"
#include "src/processor/target_store.h"

/// \file
/// Workload builders shared by the experiments, examples, and tests.
/// They reproduce the paper's setup (§6): privacy profiles uniform in a
/// k range and an A_min range given as a fraction of the space, target
/// objects uniform in space, private target regions of 1..64
/// lowest-level cells, and user populations driven by the road-network
/// simulator.

namespace casper {
class CasperService;
}

namespace casper::workload {

struct ProfileDistribution {
  /// k drawn uniformly from [k_min, k_max].
  uint32_t k_min = 1;
  uint32_t k_max = 50;

  /// A_min drawn uniformly from [area_fraction_min, area_fraction_max]
  /// of the total space area (paper default: 0.005%..0.01%).
  double area_fraction_min = 0.00005;
  double area_fraction_max = 0.0001;
};

/// One random profile from the distribution.
anonymizer::PrivacyProfile SampleProfile(const ProfileDistribution& dist,
                                         double space_area, Rng* rng);

/// `n` uniformly placed public targets with ids 0..n-1.
std::vector<processor::PublicTarget> UniformPublicTargets(size_t n,
                                                          const Rect& space,
                                                          Rng* rng);

/// `n` private target regions whose side lengths are 1..max_side cells
/// of the pyramid's lowest level (max_side = 8 gives the paper's 1-64
/// cell areas), placed uniformly, clipped to the space.
std::vector<processor::PrivateTarget> RandomPrivateTargets(
    size_t n, const anonymizer::PyramidConfig& pyramid, int max_side,
    Rng* rng);

/// A cloaked query region spanning `cells_wide` x `cells_high` cells of
/// the pyramid's lowest level, placed uniformly at random.
Rect RandomCellAlignedRegion(const anonymizer::PyramidConfig& pyramid,
                             int cells_wide, int cells_high, Rng* rng);

/// Registers `count` users into `anonymizer`, placed at the simulator's
/// current object positions (uids 0..count-1 match simulator object
/// ids) with profiles from `dist`. `count` must not exceed the
/// simulator's object count.
Status RegisterSimulatedUsers(const network::MovingObjectSimulator& sim,
                              size_t count, const ProfileDistribution& dist,
                              anonymizer::LocationAnonymizer* anonymizer,
                              Rng* rng);

/// Per-call accounting for ApplyTick.
struct ApplyTickStats {
  size_t applied = 0;  ///< Updates delivered to the anonymizer.
  size_t dropped = 0;  ///< Updates for uids not registered there.
};

/// Applies one simulator tick's location updates to the anonymizer.
/// Updates for uids the anonymizer does not know (never registered, or
/// deregistered mid-simulation) are dropped, counted in `stats` and in
/// the `casper_workload_dropped_updates_total` counter of `metrics`
/// (resolved to CasperMetrics::Default() when null) — routing is by
/// actual registration, not by uid range, so a deregistered mid-range
/// uid never silences later registered uids. Any anonymizer error other
/// than NotFound propagates.
Status ApplyTick(const std::vector<network::LocationUpdate>& updates,
                 anonymizer::LocationAnonymizer* anonymizer,
                 ApplyTickStats* stats = nullptr,
                 obs::CasperMetrics* metrics = nullptr);

/// Facade-routed variant: moves users through CasperService so BOTH the
/// pyramid and the tier's client-position table advance together. The
/// raw-anonymizer overload above silently leaves the tier's refinement
/// positions (ClientPosition, RefineForClient) at their registered
/// values — fine for tier-less benches that drive a bare anonymizer,
/// wrong for anything that later refines or audits against exact
/// positions. Same drop accounting as above.
Status ApplyTick(const std::vector<network::LocationUpdate>& updates,
                 CasperService* service, ApplyTickStats* stats = nullptr,
                 obs::CasperMetrics* metrics = nullptr);

}  // namespace casper::workload

#endif  // CASPER_CASPER_WORKLOAD_H_
