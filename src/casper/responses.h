#ifndef CASPER_CASPER_RESPONSES_H_
#define CASPER_CASPER_RESPONSES_H_

#include <variant>
#include <vector>

#include "src/anonymizer/cloaking.h"
#include "src/processor/density.h"
#include "src/processor/private_knn.h"
#include "src/processor/private_nn.h"
#include "src/processor/private_nn_private.h"
#include "src/processor/private_range.h"
#include "src/processor/public_nn_private.h"
#include "src/processor/public_range.h"

/// \file
/// Client-visible query responses of the Casper framework, shared by the
/// sequential facade path, the parallel batch engine, the CLI, and the
/// benches. Each response to a *private* (cloaked) query carries the
/// server's candidate list, the client-side refinement, the cloak it was
/// computed from, and the per-query timing breakdown the paper's
/// end-to-end experiment reports (§6.3). This header deliberately stays
/// free of any user-identity or pseudonym-registry dependency so the
/// database-server tier can include it.

namespace casper {

/// Per-query cost decomposition (Figure 17).
struct TimingBreakdown {
  double anonymizer_seconds = 0.0;
  double processor_seconds = 0.0;
  double transmission_seconds = 0.0;

  double Total() const {
    return anonymizer_seconds + processor_seconds + transmission_seconds;
  }
};

/// Response to a private NN query over public data, as seen by the
/// mobile client: candidate list plus the exact answer after local
/// refinement.
struct PublicNNResponse {
  processor::PublicCandidateList server_answer;
  processor::PublicTarget exact;  ///< After client-side refinement.
  anonymizer::CloakingResult cloak;
  TimingBreakdown timing;
  /// Served from a possibly-stale cache during a server outage:
  /// inclusiveness still holds, minimality may not (see
  /// CandidateListMsg::degraded).
  bool degraded = false;
};

/// Response to a private k-NN query over public data.
struct PublicKnnResponse {
  processor::KnnCandidateList server_answer;
  std::vector<processor::PublicTarget> exact;  ///< k refined answers.
  anonymizer::CloakingResult cloak;
  TimingBreakdown timing;
  bool degraded = false;  ///< See PublicNNResponse::degraded.
};

/// Response to a private NN query over private data (buddies).
struct PrivateNNResponse {
  processor::PrivateCandidateList server_answer;
  processor::PrivateTarget best;  ///< Client-side minimax refinement.
  anonymizer::CloakingResult cloak;
  TimingBreakdown timing;
  bool degraded = false;  ///< See PublicNNResponse::degraded.
};

/// Response to a private range query over public data, with the
/// client-side refinement and timing the other response types carry.
struct PublicRangeResponse {
  processor::PublicRangeCandidates server_answer;
  std::vector<processor::PublicTarget> exact;  ///< Truly within radius.
  anonymizer::CloakingResult cloak;
  TimingBreakdown timing;
  bool degraded = false;  ///< See PublicNNResponse::degraded.
};

/// The one response type of the unified query dispatch: every Query*
/// entry point is a thin wrapper that unwraps the matching alternative.
using QueryResponse =
    std::variant<PublicNNResponse, PublicKnnResponse, PublicRangeResponse,
                 PrivateNNResponse, processor::PublicNNCandidates,
                 processor::RangeCountResult, processor::DensityMap>;

/// Timing of the response, or nullptr for the public-over-private
/// alternatives (which the facade has always returned untimed).
inline const TimingBreakdown* TimingOf(const QueryResponse& response) {
  if (const auto* r = std::get_if<PublicNNResponse>(&response))
    return &r->timing;
  if (const auto* r = std::get_if<PublicKnnResponse>(&response))
    return &r->timing;
  if (const auto* r = std::get_if<PublicRangeResponse>(&response))
    return &r->timing;
  if (const auto* r = std::get_if<PrivateNNResponse>(&response))
    return &r->timing;
  return nullptr;
}

/// Whether the response was served degraded (always false for the
/// public-over-private alternatives, which are never cache-served).
inline bool IsDegraded(const QueryResponse& response) {
  if (const auto* r = std::get_if<PublicNNResponse>(&response))
    return r->degraded;
  if (const auto* r = std::get_if<PublicKnnResponse>(&response))
    return r->degraded;
  if (const auto* r = std::get_if<PublicRangeResponse>(&response))
    return r->degraded;
  if (const auto* r = std::get_if<PrivateNNResponse>(&response))
    return r->degraded;
  return false;
}

inline void SetAnonymizerSeconds(QueryResponse& response, double seconds) {
  if (auto* r = std::get_if<PublicNNResponse>(&response))
    r->timing.anonymizer_seconds = seconds;
  else if (auto* r = std::get_if<PublicKnnResponse>(&response))
    r->timing.anonymizer_seconds = seconds;
  else if (auto* r = std::get_if<PublicRangeResponse>(&response))
    r->timing.anonymizer_seconds = seconds;
  else if (auto* r = std::get_if<PrivateNNResponse>(&response))
    r->timing.anonymizer_seconds = seconds;
}

}  // namespace casper

#endif  // CASPER_CASPER_RESPONSES_H_
