#include "src/casper/batch_query_engine.h"

#include <future>
#include <optional>
#include <utility>

#include "src/common/stopwatch.h"

namespace casper::server {

QueryRequest BatchQueryRequest::ToRequest() const {
  switch (kind) {
    case QueryKind::kNearestPublic:
      return NearestPublicQ{uid};
    case QueryKind::kKNearestPublic:
      return KNearestPublicQ{uid, k};
    case QueryKind::kRangePublic:
      return RangePublicQ{uid, radius};
    case QueryKind::kNearestPrivate:
      return NearestPrivateQ{uid};
    case QueryKind::kPublicNearest:
      return PublicNearestQ{point};
    case QueryKind::kPublicRange:
      return PublicRangeQ{region};
    case QueryKind::kDensity:
      return DensityQ{cols, rows};
  }
  return NearestPublicQ{uid};
}

BatchQueryEngine::BatchQueryEngine(CasperService* service,
                                   const BatchEngineOptions& options)
    : service_(service), options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : obs::CasperMetrics::Default()),
      pool_(options.threads > 0 ? options.threads : 1) {
  CASPER_DCHECK(service != nullptr);
  metrics_->pool_threads->Set(
      static_cast<double>(options_.threads > 0 ? options_.threads : 1));
  if (options_.use_cache) {
    cache_ = std::make_unique<processor::ConcurrentQueryCache>(
        &service_->public_store(), options_.cache_capacity,
        service_->options().filter_policy, options_.cache_shards);
    cache_->AttachMetrics(metrics_->cache_hits_total,
                          metrics_->cache_misses_total);
  }
}

void BatchQueryEngine::InvalidatePublicCache() {
  if (cache_) cache_->InvalidateAll();
}

void BatchQueryEngine::EvaluateOne(const BatchQueryRequest& request,
                                   const anonymizer::CloakingResult& cloak,
                                   double anonymizer_seconds,
                                   BatchQueryResponse* out) const {
  auto result = service_->Evaluate(request.ToRequest(), cloak, cache_.get(),
                                   anonymizer_seconds);
  out->status = result.status();
  if (!result.ok()) return;
  QueryResponse response = std::move(result).value();
  SetAnonymizerSeconds(response, anonymizer_seconds);
  std::visit([out](auto&& payload) { out->payload = std::move(payload); },
             std::move(response));
}

BatchResult BatchQueryEngine::Execute(
    const std::vector<BatchQueryRequest>& requests) {
  const size_t n = requests.size();
  BatchResult result;
  result.responses.resize(n);
  result.summary.batch_size = n;
  const double busy_before = pool_.busy_seconds();
  Stopwatch wall;

  // Phase 1 — sequential cloaking of the private kinds. The anonymizer
  // mutates bookkeeping (stats, adaptive structure on other entry
  // points), so this phase stays on the calling thread; it is also the
  // cheap half (Figure 17: anonymizer time is negligible next to
  // processor time). Public kinds carry exact parameters and skip it.
  std::vector<std::optional<anonymizer::CloakingResult>> cloaks(n);
  std::vector<double> anonymizer_seconds(n, 0.0);
  std::vector<char> ready(n, 0);
  Stopwatch cloak_watch;
  for (size_t i = 0; i < n; ++i) {
    result.responses[i].kind = requests[i].kind;
    if (!IsCloakedKind(requests[i].kind)) {
      ready[i] = 1;
      continue;
    }
    Stopwatch watch;
    auto cloak = service_->anonymizer_tier().Cloak(requests[i].uid);
    anonymizer_seconds[i] = watch.ElapsedSeconds();
    if (!cloak.ok()) {
      result.responses[i].status = cloak.status();
      continue;
    }
    cloaks[i] = std::move(cloak).value();
    ready[i] = 1;
  }
  result.summary.cloak_seconds = cloak_watch.ElapsedSeconds();

  // Phase 2 — parallel read-only evaluation through the unified
  // dispatch. Each task owns exactly its response slot; the futures'
  // completion orders the writes before the aggregation below, and the
  // shard-locked cache is the only shared mutable state.
  std::vector<std::future<void>> done;
  done.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!ready[i]) continue;
    if (options_.shed_queue_depth > 0 &&
        pool_.pending() >= options_.shed_queue_depth) {
      // Overload degradation: fail the slot fast instead of letting the
      // queue (and every queued query's latency) grow without bound.
      result.responses[i].status =
          Status::Unavailable("batch engine overloaded; query shed");
      metrics_->batch_shed_total->Increment();
      continue;
    }
    auto submitted = pool_.Submit([this, &requests, &cloaks,
                                   &anonymizer_seconds, &result, i] {
      EvaluateOne(requests[i],
                  cloaks[i].has_value() ? *cloaks[i]
                                        : anonymizer::CloakingResult{},
                  anonymizer_seconds[i], &result.responses[i]);
    });
    if (!submitted.ok()) {
      result.responses[i].status = submitted.status();
      continue;
    }
    done.push_back(std::move(submitted).value());
  }
  // High-water queue depth of this batch: everything is enqueued before
  // the first join, so the submitted count is the depth the pool saw.
  metrics_->batch_queue_depth->Set(static_cast<double>(done.size()));
  for (std::future<void>& f : done) f.get();
  metrics_->batch_queue_depth->Set(0.0);

  // Aggregate: throughput, latency percentiles, Figure-17 totals.
  result.summary.wall_seconds = wall.ElapsedSeconds();
  if (result.summary.wall_seconds > 0.0) {
    result.summary.queries_per_second =
        static_cast<double>(n) / result.summary.wall_seconds;
  }
  SummaryStats processor_micros;
  for (const BatchQueryResponse& response : result.responses) {
    if (!response.ok()) {
      ++result.summary.error_count;
      continue;
    }
    ++result.summary.ok_count;
    const TimingBreakdown* timing = response.timing();
    if (timing == nullptr) continue;  // Untimed public-over-private kind.
    processor_micros.Add(timing->processor_seconds * 1e6);
    result.summary.totals.anonymizer_seconds += timing->anonymizer_seconds;
    result.summary.totals.processor_seconds += timing->processor_seconds;
    result.summary.totals.transmission_seconds +=
        timing->transmission_seconds;
  }
  result.summary.processor_p50_micros = processor_micros.Quantile(0.50);
  result.summary.processor_p95_micros = processor_micros.Quantile(0.95);
  result.summary.processor_p99_micros = processor_micros.Quantile(0.99);
  result.summary.processor_mean_micros =
      processor_micros.count() > 0 ? processor_micros.mean() : 0.0;
  if (cache_) result.summary.cache = cache_->stats();

  metrics_->batches_total->Increment();
  metrics_->batch_queries_total->Increment(n);
  metrics_->batch_errors_total->Increment(result.summary.error_count);
  metrics_->batch_wall_seconds->Observe(result.summary.wall_seconds);
  const size_t threads = options_.threads > 0 ? options_.threads : 1;
  if (result.summary.wall_seconds > 0.0) {
    metrics_->pool_utilization->Set(
        (pool_.busy_seconds() - busy_before) /
        (result.summary.wall_seconds * static_cast<double>(threads)));
  }
  return result;
}

}  // namespace casper::server
