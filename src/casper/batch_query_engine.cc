#include "src/casper/batch_query_engine.h"

#include <optional>
#include <utility>

#include "src/common/chunked_dispatch.h"
#include "src/common/stopwatch.h"

namespace casper::server {

QueryRequest BatchQueryRequest::ToRequest() const {
  switch (kind) {
    case QueryKind::kNearestPublic:
      return NearestPublicQ{uid};
    case QueryKind::kKNearestPublic:
      return KNearestPublicQ{uid, k};
    case QueryKind::kRangePublic:
      return RangePublicQ{uid, radius};
    case QueryKind::kNearestPrivate:
      return NearestPrivateQ{uid};
    case QueryKind::kPublicNearest:
      return PublicNearestQ{point};
    case QueryKind::kPublicRange:
      return PublicRangeQ{region};
    case QueryKind::kDensity:
      return DensityQ{cols, rows};
  }
  return NearestPublicQ{uid};
}

BatchQueryEngine::BatchQueryEngine(CasperService* service,
                                   const BatchEngineOptions& options)
    : service_(service), options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : obs::CasperMetrics::Default()),
      pool_(options.threads > 0 ? options.threads : 1) {
  CASPER_DCHECK(service != nullptr);
  metrics_->pool_threads->Set(
      static_cast<double>(options_.threads > 0 ? options_.threads : 1));
  if (options_.use_cache) {
    cache_ = std::make_unique<processor::ConcurrentQueryCache>(
        &service_->public_store(), options_.cache_capacity,
        service_->options().filter_policy, options_.cache_shards);
    cache_->AttachMetrics(metrics_->cache_hits_total,
                          metrics_->cache_misses_total);
  }
}

void BatchQueryEngine::InvalidatePublicCache() {
  if (cache_) cache_->InvalidateAll();
}

void BatchQueryEngine::EvaluateOne(const BatchQueryRequest& request,
                                   const anonymizer::CloakingResult& cloak,
                                   double anonymizer_seconds,
                                   BatchQueryResponse* out) const {
  auto result = service_->Evaluate(request.ToRequest(), cloak, cache_.get(),
                                   anonymizer_seconds);
  out->status = result.status();
  if (!result.ok()) return;
  QueryResponse response = std::move(result).value();
  SetAnonymizerSeconds(response, anonymizer_seconds);
  std::visit([out](auto&& payload) { out->payload = std::move(payload); },
             std::move(response));
}

BatchResult BatchQueryEngine::Execute(
    const std::vector<BatchQueryRequest>& requests) {
  const size_t n = requests.size();
  BatchResult result;
  result.responses.resize(n);
  result.summary.batch_size = n;
  const double busy_before = pool_.busy_seconds();
  Stopwatch wall;

  // Phase 1 — sequential cloaking of the private kinds. The anonymizer
  // mutates bookkeeping (stats, adaptive structure on other entry
  // points), so this phase stays on the calling thread; it is also the
  // cheap half (Figure 17: anonymizer time is negligible next to
  // processor time). Public kinds carry exact parameters and skip it.
  std::vector<std::optional<anonymizer::CloakingResult>> cloaks(n);
  std::vector<double> anonymizer_seconds(n, 0.0);
  std::vector<char> ready(n, 0);
  Stopwatch cloak_watch;
  for (size_t i = 0; i < n; ++i) {
    result.responses[i].kind = requests[i].kind;
    if (!IsCloakedKind(requests[i].kind)) {
      ready[i] = 1;
      continue;
    }
    Stopwatch watch;
    auto cloak = service_->anonymizer_tier().Cloak(requests[i].uid);
    anonymizer_seconds[i] = watch.ElapsedSeconds();
    if (!cloak.ok()) {
      result.responses[i].status = cloak.status();
      continue;
    }
    cloaks[i] = std::move(cloak).value();
    ready[i] = 1;
  }
  result.summary.cloak_seconds = cloak_watch.ElapsedSeconds();

  // Phase 2 — parallel read-only evaluation through the unified
  // dispatch, fanned out in ~64-query work-stealing chunks (one role
  // task per worker instead of one future per query; see
  // common/chunked_dispatch.h). Each chunk owns exactly its response
  // slots, so request order is preserved by construction, and the
  // shard-locked cache is the only shared mutable state.
  std::vector<size_t> ready_idx;
  ready_idx.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (ready[i]) ready_idx.push_back(i);
  }
  const size_t threads = options_.threads > 0 ? options_.threads : 1;
  if (options_.shed_queue_depth > 0) {
    // Overload degradation: bound every worker's queue at the watermark
    // and fail the overflow fast instead of letting queued latency grow
    // without bound.
    const size_t admit_cap = options_.shed_queue_depth * threads;
    for (size_t j = admit_cap; j < ready_idx.size(); ++j) {
      result.responses[ready_idx[j]].status =
          Status::Unavailable("batch engine overloaded; query shed");
      metrics_->batch_shed_total->Increment();
    }
    if (ready_idx.size() > admit_cap) ready_idx.resize(admit_cap);
  }
  // High-water queue depth of this batch: everything admitted is
  // distributed across the worker deques before execution starts.
  metrics_->batch_queue_depth->Set(static_cast<double>(ready_idx.size()));
  ParallelForChunked(
      pool_, ready_idx.size(),
      [this, &requests, &cloaks, &anonymizer_seconds, &result,
       &ready_idx](size_t begin, size_t end) {
        for (size_t j = begin; j < end; ++j) {
          const size_t i = ready_idx[j];
          EvaluateOne(requests[i],
                      cloaks[i].has_value() ? *cloaks[i]
                                            : anonymizer::CloakingResult{},
                      anonymizer_seconds[i], &result.responses[i]);
        }
      },
      options_.dispatch_chunk);
  metrics_->batch_queue_depth->Set(0.0);

  // Aggregate: throughput, latency percentiles, Figure-17 totals.
  result.summary.wall_seconds = wall.ElapsedSeconds();
  if (result.summary.wall_seconds > 0.0) {
    result.summary.queries_per_second =
        static_cast<double>(n) / result.summary.wall_seconds;
  }
  SummaryStats processor_micros;
  for (const BatchQueryResponse& response : result.responses) {
    if (!response.ok()) {
      ++result.summary.error_count;
      continue;
    }
    ++result.summary.ok_count;
    const TimingBreakdown* timing = response.timing();
    if (timing == nullptr) continue;  // Untimed public-over-private kind.
    processor_micros.Add(timing->processor_seconds * 1e6);
    result.summary.totals.anonymizer_seconds += timing->anonymizer_seconds;
    result.summary.totals.processor_seconds += timing->processor_seconds;
    result.summary.totals.transmission_seconds +=
        timing->transmission_seconds;
  }
  result.summary.processor_p50_micros = processor_micros.Quantile(0.50);
  result.summary.processor_p95_micros = processor_micros.Quantile(0.95);
  result.summary.processor_p99_micros = processor_micros.Quantile(0.99);
  result.summary.processor_mean_micros =
      processor_micros.count() > 0 ? processor_micros.mean() : 0.0;
  if (cache_) result.summary.cache = cache_->stats();

  metrics_->batches_total->Increment();
  metrics_->batch_queries_total->Increment(n);
  metrics_->batch_errors_total->Increment(result.summary.error_count);
  metrics_->batch_wall_seconds->Observe(result.summary.wall_seconds);
  if (result.summary.wall_seconds > 0.0) {
    metrics_->pool_utilization->Set(
        (pool_.busy_seconds() - busy_before) /
        (result.summary.wall_seconds * static_cast<double>(threads)));
  }
  return result;
}

}  // namespace casper::server
