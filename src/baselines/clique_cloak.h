#ifndef CASPER_BASELINES_CLIQUE_CLOAK_H_
#define CASPER_BASELINES_CLIQUE_CLOAK_H_

#include <vector>

#include "src/anonymizer/privacy_profile.h"
#include "src/common/geometry.h"
#include "src/common/result.h"

/// \file
/// The CliqueCloak baseline of Gedik & Liu [ICDCS 2005], as
/// characterized in the paper's §2: per-user k-anonymity; cloaking
/// requests wait in a pool; a request is answered when it can be
/// grouped with enough *mutually compatible* pending requests (each
/// inside every other's spatial tolerance box — a clique in the
/// constraint graph); all clique members share the minimum bounding
/// rectangle of their positions as the cloak.
///
/// The paper's criticisms are observable here by construction: members
/// lie on the MBR boundary (an information leak Casper's cell-aligned
/// regions avoid), requests can starve, and the clique search limits
/// the approach to small k.

namespace casper::baselines {

/// A pending cloaking request.
struct CliqueRequest {
  anonymizer::UserId uid = 0;
  Point position;
  uint32_t k = 1;
  /// Half-width of the spatial tolerance box centered on `position`;
  /// other members must fall inside it (and vice versa).
  double tolerance = 0.1;
};

/// A fulfilled request: the shared MBR cloak.
struct CloakedRequest {
  anonymizer::UserId uid = 0;
  Rect region;
  size_t group_size = 0;
};

class CliqueCloak {
 public:
  explicit CliqueCloak(const Rect& space) : space_(space) {}

  /// Submit a request. If the arrival completes a clique whose size
  /// covers every member's k, all members are cloaked and returned
  /// (the submitter included); otherwise the request parks in the pool
  /// and the returned vector is empty.
  /// Fails on duplicate pending uid, invalid k, or a position outside
  /// the managed space.
  Result<std::vector<CloakedRequest>> Submit(const CliqueRequest& request);

  /// Abandon a pending request (a user giving up; also how callers
  /// model the paper's starvation criticism).
  Status Cancel(anonymizer::UserId uid);

  size_t pending_count() const { return pending_.size(); }
  const Rect& space() const { return space_; }

 private:
  /// Mutual-compatibility test: each inside the other's tolerance box.
  static bool Compatible(const CliqueRequest& a, const CliqueRequest& b);

  Rect space_;
  std::vector<CliqueRequest> pending_;
};

}  // namespace casper::baselines

#endif  // CASPER_BASELINES_CLIQUE_CLOAK_H_
