#ifndef CASPER_BASELINES_GG_CLOAK_H_
#define CASPER_BASELINES_GG_CLOAK_H_

#include <unordered_map>

#include "src/anonymizer/anonymizer.h"

/// \file
/// The spatio-temporal cloaking baseline of Gruteser & Grunwald
/// [MobiSys 2003], as characterized in the paper's §2/§4: a single
/// system-wide k-anonymity level (no per-user profiles, no A_min), and
/// for each cloaking request the space is recursively subdivided
/// quadtree-style ("KD-tree-like") until the quadrant containing the
/// requesting user would drop below k users; the last quadrant with
/// >= k users is the cloak. Every request touches each level's live
/// population, which is why the paper calls it unscalable — this
/// implementation exists as the comparison baseline.

namespace casper::baselines {

/// Gruteser-Grunwald anonymizer: uniform k for every user.
class GGCloak {
 public:
  /// `k` is the system-wide anonymity level; `height` bounds recursion.
  GGCloak(const anonymizer::PyramidConfig& config, uint32_t k);

  Status RegisterUser(anonymizer::UserId uid, const Point& position);
  Status UpdateLocation(anonymizer::UserId uid, const Point& position);
  Status DeregisterUser(anonymizer::UserId uid);

  /// Cloak by recursive subdivision from the root. Unlike the pyramid
  /// anonymizers there is no precomputed structure: each call counts
  /// the population of candidate quadrants by scanning (the baseline's
  /// scalability weakness, kept deliberately).
  Result<anonymizer::CloakingResult> Cloak(anonymizer::UserId uid) const;

  size_t user_count() const { return positions_.size(); }
  uint32_t k() const { return k_; }
  const anonymizer::PyramidConfig& config() const { return config_; }

 private:
  /// Number of users inside `cell`'s rectangle (linear scan).
  uint64_t CountIn(const Rect& rect) const;

  anonymizer::PyramidConfig config_;
  uint32_t k_;
  std::unordered_map<anonymizer::UserId, Point> positions_;
};

}  // namespace casper::baselines

#endif  // CASPER_BASELINES_GG_CLOAK_H_
