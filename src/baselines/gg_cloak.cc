#include "src/baselines/gg_cloak.h"

namespace casper::baselines {

GGCloak::GGCloak(const anonymizer::PyramidConfig& config, uint32_t k)
    : config_(config), k_(k) {
  CASPER_DCHECK(k >= 1);
}

Status GGCloak::RegisterUser(anonymizer::UserId uid, const Point& position) {
  if (positions_.count(uid) > 0) {
    return Status::AlreadyExists("user already registered");
  }
  if (!config_.space.Contains(position)) {
    return Status::OutOfRange("position outside the managed space");
  }
  positions_[uid] = position;
  return Status::OK();
}

Status GGCloak::UpdateLocation(anonymizer::UserId uid,
                               const Point& position) {
  auto it = positions_.find(uid);
  if (it == positions_.end()) return Status::NotFound("unknown user");
  if (!config_.space.Contains(position)) {
    return Status::OutOfRange("position outside the managed space");
  }
  it->second = position;
  return Status::OK();
}

Status GGCloak::DeregisterUser(anonymizer::UserId uid) {
  if (positions_.erase(uid) == 0) return Status::NotFound("unknown user");
  return Status::OK();
}

uint64_t GGCloak::CountIn(const Rect& rect) const {
  uint64_t n = 0;
  for (const auto& [uid, p] : positions_) {
    (void)uid;
    if (rect.Contains(p)) ++n;
  }
  return n;
}

Result<anonymizer::CloakingResult> GGCloak::Cloak(
    anonymizer::UserId uid) const {
  auto it = positions_.find(uid);
  if (it == positions_.end()) return Status::NotFound("unknown user");
  if (positions_.size() < k_) {
    return Status::FailedPrecondition("population below the global k");
  }
  const Point& p = it->second;

  anonymizer::CloakingResult result;
  anonymizer::CellId cell = anonymizer::CellId::Root();
  Rect region = config_.space;
  uint64_t count = positions_.size();
  result.levels_visited = 1;

  // Descend while the child quadrant containing the user still holds at
  // least k users.
  while (static_cast<int>(cell.level) < config_.height) {
    const anonymizer::CellId child =
        config_.CellAt(static_cast<int>(cell.level) + 1, p);
    const Rect child_rect = config_.CellRect(child);
    const uint64_t child_count = CountIn(child_rect);
    if (child_count < k_) break;
    cell = child;
    region = child_rect;
    count = child_count;
    ++result.levels_visited;
  }

  result.region = region;
  result.users_in_region = count;
  return result;
}

}  // namespace casper::baselines
