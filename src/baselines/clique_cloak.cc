#include "src/baselines/clique_cloak.h"

#include <algorithm>
#include <cstddef>

namespace casper::baselines {

bool CliqueCloak::Compatible(const CliqueRequest& a, const CliqueRequest& b) {
  const Rect box_a = Rect(a.position.x - a.tolerance,
                          a.position.y - a.tolerance,
                          a.position.x + a.tolerance,
                          a.position.y + a.tolerance);
  const Rect box_b = Rect(b.position.x - b.tolerance,
                          b.position.y - b.tolerance,
                          b.position.x + b.tolerance,
                          b.position.y + b.tolerance);
  return box_a.Contains(b.position) && box_b.Contains(a.position);
}

Result<std::vector<CloakedRequest>> CliqueCloak::Submit(
    const CliqueRequest& request) {
  if (request.k == 0) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (!space_.Contains(request.position)) {
    return Status::OutOfRange("position outside the managed space");
  }
  for (const CliqueRequest& p : pending_) {
    if (p.uid == request.uid) {
      return Status::AlreadyExists("request already pending for this user");
    }
  }

  // Greedy local clique search seeded at the new request: consider
  // compatible pending requests nearest-first and add each one that is
  // compatible with every member so far. Accept once the group covers
  // the largest k among its members.
  std::vector<const CliqueRequest*> candidates;
  for (const CliqueRequest& p : pending_) {
    if (Compatible(request, p)) candidates.push_back(&p);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const CliqueRequest* a, const CliqueRequest* b) {
              return SquaredDistance(a->position, request.position) <
                     SquaredDistance(b->position, request.position);
            });

  std::vector<const CliqueRequest*> group{&request};
  uint32_t needed = request.k;
  for (const CliqueRequest* c : candidates) {
    if (group.size() >= needed) {
      // Group already satisfies every member; growing it would only
      // enlarge the MBR (and a high-k addition could un-complete it).
      break;
    }
    bool clique = true;
    for (const CliqueRequest* m : group) {
      if (m != &request && !Compatible(*m, *c)) {
        clique = false;
        break;
      }
    }
    if (!clique) continue;
    group.push_back(c);
    needed = std::max(needed, c->k);
  }

  std::vector<CloakedRequest> fulfilled;
  if (group.size() < needed) {
    pending_.push_back(request);
    return fulfilled;  // Parked; maybe a later arrival completes it.
  }

  // Success: the shared cloak is the members' MBR (the boundary leak
  // the paper criticizes is inherent to this construction).
  Rect mbr;
  for (const CliqueRequest* m : group) {
    mbr = mbr.Union(Rect::FromPoint(m->position));
  }
  for (const CliqueRequest* m : group) {
    fulfilled.push_back(CloakedRequest{m->uid, mbr, group.size()});
  }
  // Remove fulfilled members from the pool (the submitter never
  // joined). Collect the uids first: erasing invalidates the pointers
  // in `group`.
  std::vector<anonymizer::UserId> done;
  for (const CliqueRequest* m : group) {
    if (m != &request) done.push_back(m->uid);
  }
  for (anonymizer::UserId uid : done) {
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].uid == uid) {
        pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  return fulfilled;
}

Status CliqueCloak::Cancel(anonymizer::UserId uid) {
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].uid == uid) {
      pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
      return Status::OK();
    }
  }
  return Status::NotFound("no pending request for this user");
}

}  // namespace casper::baselines
