#ifndef CASPER_SPATIAL_EPOCH_INDEX_H_
#define CASPER_SPATIAL_EPOCH_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/result.h"
#include "src/spatial/flat_rtree.h"
#include "src/spatial/rtree.h"
#include "src/storage/storage_manager.h"

/// \file
/// Epoch-published read snapshots over a mutable R-tree. The writer
/// keeps the authoritative Guttman RTree for upserts; every mutation
/// publishes a new immutable Snapshot into an atomically swapped
/// shared_ptr slot, and readers grab the current snapshot with one
/// pointer copy (a few-instruction spin slot — see PublishedSlot).
/// Readers never block on a query in flight, and a reader holds its
/// snapshot alive for as long as it wants regardless of later writes
/// (RCU-style reclamation via shared_ptr: the last holder frees the
/// epoch, counted in Stats::reclaimed).
///
/// A snapshot is a packed FlatRTree base (cache-friendly, built with
/// STR) plus a small delta: entries inserted since the base was packed
/// and tombstones for base entries removed since. When the delta grows
/// past `rebuild_threshold`, the writer repacks a fresh base from the
/// authoritative tree and the delta resets to empty.
///
/// Threading contract: mutations are single-writer (same as the target
/// stores); Acquire() and all Snapshot queries are safe from any number
/// of concurrent reader threads.

namespace casper::spatial {

class EpochIndex {
 public:
  using Entry = RTree::Entry;
  using Metric = RTree::Metric;
  using Neighbor = RTree::Neighbor;
  using NNResult = RTree::NNResult;

  /// Writer-side counters, exported through obs by the owning tier.
  struct Stats {
    uint64_t published = 0;  ///< Snapshots published so far.
    uint64_t reclaimed = 0;  ///< Snapshots fully released by readers.
    uint64_t rebuilds = 0;   ///< Flat-base repacks.
    size_t delta_entries = 0;
    size_t tombstones = 0;
  };

  /// One immutable epoch. Queries return exactly what the authoritative
  /// tree would have returned at publication time.
  class Snapshot {
   public:
    ~Snapshot();
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    void RangeQuery(const Rect& window, std::vector<Entry>* out) const;
    void RangeQuery(const Rect& window,
                    const std::function<bool(const Entry&)>& visit) const;
    size_t RangeCount(const Rect& window) const;
    std::vector<Neighbor> KNearest(const Point& q, size_t k,
                                   Metric metric = Metric::kMinDist) const;
    NNResult Nearest(const Point& q, Metric metric = Metric::kMinDist) const;

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    Rect bounds() const;
    uint64_t epoch() const { return epoch_; }

   private:
    friend class EpochIndex;
    Snapshot() = default;

    std::shared_ptr<const FlatRTree> base_;
    std::vector<Entry> delta_;  ///< Inserted since base was packed.
    std::vector<Entry> dead_;   ///< Removed base entries (tombstones).
    size_t size_ = 0;
    uint64_t epoch_ = 0;
    std::shared_ptr<std::atomic<uint64_t>> reclaimed_;
  };

  explicit EpochIndex(int max_entries = 16, size_t rebuild_threshold = 128);

  /// Build a packed index from `entries` (STR bulk load on both the
  /// authoritative tree and the flat base).
  static EpochIndex BulkLoad(std::vector<Entry> entries, int max_entries = 16,
                             size_t rebuild_threshold = 128);

  EpochIndex(EpochIndex&& other) noexcept;
  EpochIndex& operator=(EpochIndex&& other) noexcept;
  EpochIndex(const EpochIndex&) = delete;
  EpochIndex& operator=(const EpochIndex&) = delete;

  void Insert(const Rect& box, uint64_t id);
  bool Remove(const Rect& box, uint64_t id);

  /// The current epoch; one atomic acquire-load, never null.
  std::shared_ptr<const Snapshot> Acquire() const;

  size_t size() const { return tree_.size(); }
  bool empty() const { return tree_.empty(); }

  /// The authoritative mutable tree (tests, invariant checks).
  const RTree& tree() const { return tree_; }

  Stats stats() const;

  /// Checkpoint to `sm`: the packed base tree's pages (FlatRTree::
  /// SaveTo) plus the delta/tombstone overlay and the index parameters,
  /// all reachable from the returned root page. The overlay is bounded
  /// by `rebuild_threshold`, so a checkpoint right after a repack is
  /// almost entirely the packed base.
  Result<storage::PageId> Checkpoint(storage::IStorageManager* sm) const;

  /// Rebuild an index from a Checkpoint root page. The restored index
  /// publishes a snapshot with the same base/delta/tombstone overlay
  /// the checkpointed one had, so queries answer identically; the
  /// authoritative tree is re-bulk-loaded from the merged entry set.
  static Result<EpochIndex> Restore(storage::IStorageManager* sm,
                                    storage::PageId root);

 private:
  /// Publication slot: a shared_ptr behind a tiny test-and-set
  /// spinlock, held only for the pointer copy. Functionally equivalent
  /// to std::atomic<std::shared_ptr> — which libstdc++ also implements
  /// as a lock-bit spin, so this forfeits no progress guarantee — but
  /// built from plain std::atomic operations, which ThreadSanitizer
  /// models exactly (gcc 12's _Sp_atomic trips a TSan false positive
  /// inside its hand-rolled lock-bit protocol).
  class PublishedSlot {
   public:
    PublishedSlot() = default;
    explicit PublishedSlot(std::shared_ptr<const Snapshot> initial)
        : value_(std::move(initial)) {}

    void Store(std::shared_ptr<const Snapshot> next) {
      Lock();
      value_.swap(next);
      Unlock();
      // `next` (the previous epoch) is released here, outside the
      // lock, so a final Snapshot destructor never runs under it.
    }

    std::shared_ptr<const Snapshot> Load() const {
      Lock();
      std::shared_ptr<const Snapshot> copy = value_;
      Unlock();
      return copy;
    }

   private:
    void Lock() const {
      while (locked_.exchange(true, std::memory_order_acquire)) {
      }
    }
    void Unlock() const { locked_.store(false, std::memory_order_release); }

    mutable std::atomic<bool> locked_{false};
    std::shared_ptr<const Snapshot> value_;
  };

  void RebuildBase();
  void Publish();

  RTree tree_;
  int max_entries_;
  size_t rebuild_threshold_;

  std::shared_ptr<const FlatRTree> base_;
  std::vector<Entry> delta_;
  std::vector<Entry> dead_;

  PublishedSlot published_;
  std::shared_ptr<std::atomic<uint64_t>> reclaimed_;
  uint64_t published_count_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace casper::spatial

#endif  // CASPER_SPATIAL_EPOCH_INDEX_H_
