#ifndef CASPER_SPATIAL_FLAT_RTREE_H_
#define CASPER_SPATIAL_FLAT_RTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/result.h"
#include "src/spatial/rtree.h"
#include "src/storage/storage_manager.h"

/// \file
/// An immutable, cache-friendly companion of the Guttman RTree: the same
/// STR packing, but laid out as contiguous arrays instead of
/// pointer-linked nodes. Children of a node occupy a contiguous run of
/// the node array addressed by an int32 offset, and every MBR lives in
/// struct-of-arrays coordinate blocks so search scores a whole node's
/// children with the batched MinDist/MaxDist kernels in one linear pass.
///
/// Queries return exactly the results the Guttman tree returns over the
/// same entry set (the differential test in tests/flat_rtree_test.cc
/// enforces this): the tree shape differs, the answer set does not.
///
/// The intended use is a read-mostly index: mutate the authoritative
/// RTree, and rebuild a FlatRTree from RTree::AllEntries() when enough
/// deltas accumulate (see spatial::EpochIndex).

namespace casper::spatial {

class FlatRTree {
 public:
  using Entry = RTree::Entry;
  using Metric = RTree::Metric;
  using Neighbor = RTree::Neighbor;
  using NNResult = RTree::NNResult;

  /// Empty tree; all queries return nothing.
  FlatRTree() = default;

  /// Build a packed tree from `entries` with Sort-Tile-Recursive, the
  /// same packing policy as RTree::BulkLoad. `max_entries` is the
  /// fan-out M (clamped to >= 4 like RTree).
  static FlatRTree Build(std::vector<Entry> entries, int max_entries = 16);

  /// Append every entry whose rectangle intersects `window` to `*out`.
  void RangeQuery(const Rect& window, std::vector<Entry>* out) const;

  /// Visitor form; return false from the visitor to stop early.
  void RangeQuery(const Rect& window,
                  const std::function<bool(const Entry&)>& visit) const;

  /// Number of entries intersecting `window`.
  size_t RangeCount(const Rect& window) const;

  std::vector<Neighbor> KNearest(const Point& q, size_t k,
                                 Metric metric = Metric::kMinDist) const;

  /// KNearest over the subset of entries for which `keep` returns true
  /// (nullptr keeps everything). Lets snapshot readers mask tombstoned
  /// entries without rebuilding.
  std::vector<Neighbor> KNearestFiltered(
      const Point& q, size_t k, Metric metric,
      const std::function<bool(const Entry&)>& keep) const;

  NNResult Nearest(const Point& q, Metric metric = Metric::kMinDist) const;

  size_t size() const { return entry_ids_.size(); }
  bool empty() const { return entry_ids_.empty(); }
  int height() const { return height_; }

  /// Bounding box of the whole tree (empty rect when empty).
  Rect bounds() const;

  /// Entry i in storage order (for enumeration in tests).
  Entry entry(size_t i) const;

  /// Structural invariant check for tests: MBRs tight and covering,
  /// child runs in bounds, every entry reachable exactly once.
  bool CheckInvariants() const;

  /// Serialize the packed arrays to pages on `sm` — node and entry rows
  /// chunked into ~4 KB pages plus one root page listing the chunks —
  /// and return the root page id. The tree is immutable, so the pages
  /// are a complete, self-contained image.
  Result<storage::PageId> SaveTo(storage::IStorageManager* sm) const;

  /// Rebuild a tree previously written by SaveTo. Structural bounds are
  /// re-validated (child runs, row counts); a page that decodes but
  /// violates them fails kInvalidArgument rather than producing a tree
  /// that would crash on query.
  static Result<FlatRTree> LoadFrom(storage::IStorageManager* sm,
                                    storage::PageId root);

 private:
  /// One packed node. Children of an internal node are
  /// nodes_[first .. first + count); entries of a leaf are rows
  /// [first .. first + count) of the entry arrays. 32-bit offsets keep
  /// the node array dense (a node is 12 bytes + 4 doubles of MBR in the
  /// side arrays).
  struct Node {
    int32_t first = 0;
    int32_t count = 0;
    int32_t level = 0;  ///< 0 = leaf.
  };

  RectSoA NodeBoxes(int32_t first) const {
    return RectSoA{node_xlo_.data() + first, node_ylo_.data() + first,
                   node_xhi_.data() + first, node_yhi_.data() + first};
  }
  RectSoA EntryBoxes(int32_t first) const {
    return RectSoA{entry_xlo_.data() + first, entry_ylo_.data() + first,
                   entry_xhi_.data() + first, entry_yhi_.data() + first};
  }
  Rect NodeBox(int32_t i) const {
    return Rect(node_xlo_[i], node_ylo_[i], node_xhi_[i], node_yhi_[i]);
  }
  Rect EntryBox(int32_t i) const {
    return Rect(entry_xlo_[i], entry_ylo_[i], entry_xhi_[i], entry_yhi_[i]);
  }

  /// Root is nodes_[0]; children contiguous by construction (BFS
  /// flattening in Build).
  std::vector<Node> nodes_;
  std::vector<double> node_xlo_, node_ylo_, node_xhi_, node_yhi_;
  std::vector<double> entry_xlo_, entry_ylo_, entry_xhi_, entry_yhi_;
  std::vector<uint64_t> entry_ids_;
  int height_ = 0;
  int max_entries_ = 16;
};

}  // namespace casper::spatial

#endif  // CASPER_SPATIAL_FLAT_RTREE_H_
