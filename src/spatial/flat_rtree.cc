#include "src/spatial/flat_rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "src/common/codec.h"
#include "src/common/status.h"

namespace casper::spatial {

namespace {

/// One node of the in-flight STR hierarchy before flattening: an MBR
/// plus a contiguous [begin, end) run — of entry rows for leaves, of the
/// next-lower temp level for internal nodes. Runs are contiguous because
/// each level is sorted in place *before* its parents are cut, exactly
/// like RTree::BulkLoad sorts each level before packing.
struct Temp {
  Rect mbr;
  int32_t begin = 0;
  int32_t end = 0;
};

double CenterX(const Rect& r) { return (r.min.x + r.max.x) / 2.0; }
double CenterY(const Rect& r) { return (r.min.y + r.max.y) / 2.0; }

}  // namespace

FlatRTree FlatRTree::Build(std::vector<Entry> entries, int max_entries) {
  FlatRTree tree;
  tree.max_entries_ = std::max(max_entries, 4);
  if (entries.empty()) return tree;
  const size_t fanout = static_cast<size_t>(tree.max_entries_);
  const size_t n = entries.size();

  // Leaf level: the same Sort-Tile-Recursive pass as RTree::BulkLoad
  // (sort by center x, cut into sqrt(num_leaves) slabs, sort each slab
  // by center y, chunk at the fan-out).
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return CenterX(a.box) < CenterX(b.box);
            });
  const size_t num_leaves = (n + fanout - 1) / fanout;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slab_size = (n + num_slabs - 1) / num_slabs;

  std::vector<std::vector<Temp>> levels(1);
  for (size_t s = 0; s < n; s += slab_size) {
    const size_t end = std::min(s + slab_size, n);
    std::sort(entries.begin() + static_cast<ptrdiff_t>(s),
              entries.begin() + static_cast<ptrdiff_t>(end),
              [](const Entry& a, const Entry& b) {
                return CenterY(a.box) < CenterY(b.box);
              });
    for (size_t i = s; i < end; i += fanout) {
      const size_t chunk_end = std::min(i + fanout, end);
      Temp leaf;
      leaf.begin = static_cast<int32_t>(i);
      leaf.end = static_cast<int32_t>(chunk_end);
      for (size_t j = i; j < chunk_end; ++j)
        leaf.mbr = leaf.mbr.Union(entries[j].box);
      levels[0].push_back(leaf);
    }
  }

  // Entries are now in their final order; freeze them into the
  // struct-of-arrays coordinate blocks.
  tree.entry_xlo_.reserve(n);
  tree.entry_ylo_.reserve(n);
  tree.entry_xhi_.reserve(n);
  tree.entry_yhi_.reserve(n);
  tree.entry_ids_.reserve(n);
  for (const Entry& e : entries) {
    tree.entry_xlo_.push_back(e.box.min.x);
    tree.entry_ylo_.push_back(e.box.min.y);
    tree.entry_xhi_.push_back(e.box.max.x);
    tree.entry_yhi_.push_back(e.box.max.y);
    tree.entry_ids_.push_back(e.id);
  }

  // Pack upper levels until a single root remains. Sorting a level here
  // moves whole subtrees (its Temp nodes carry value ranges, not
  // pointers), so the runs recorded by the new parents stay valid.
  while (levels.back().size() > 1) {
    std::vector<Temp>& below = levels.back();
    std::sort(below.begin(), below.end(), [](const Temp& a, const Temp& b) {
      return CenterX(a.mbr) < CenterX(b.mbr);
    });
    const size_t m = below.size();
    const size_t num_parents = (m + fanout - 1) / fanout;
    const size_t parent_slabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_parents))));
    const size_t pslab = (m + parent_slabs - 1) / parent_slabs;

    std::vector<Temp> parents;
    for (size_t s = 0; s < m; s += pslab) {
      const size_t end = std::min(s + pslab, m);
      std::sort(below.begin() + static_cast<ptrdiff_t>(s),
                below.begin() + static_cast<ptrdiff_t>(end),
                [](const Temp& a, const Temp& b) {
                  return CenterY(a.mbr) < CenterY(b.mbr);
                });
      for (size_t i = s; i < end; i += fanout) {
        const size_t chunk_end = std::min(i + fanout, end);
        Temp parent;
        parent.begin = static_cast<int32_t>(i);
        parent.end = static_cast<int32_t>(chunk_end);
        for (size_t j = i; j < chunk_end; ++j)
          parent.mbr = parent.mbr.Union(below[j].mbr);
        parents.push_back(parent);
      }
    }
    levels.push_back(std::move(parents));
  }
  tree.height_ = static_cast<int>(levels.size());

  // Flatten breadth-first, root at index 0. Children are appended as a
  // block the moment their parent is visited, which is exactly what
  // makes every child run contiguous in the packed arrays.
  size_t total = 0;
  for (const auto& level : levels) total += level.size();
  tree.nodes_.resize(total);
  tree.node_xlo_.resize(total);
  tree.node_ylo_.resize(total);
  tree.node_xhi_.resize(total);
  tree.node_yhi_.resize(total);

  // order[i] = (level, position) of the temp node assigned flat index i.
  std::vector<std::pair<int, int32_t>> order;
  order.reserve(total);
  order.emplace_back(static_cast<int>(levels.size()) - 1, 0);
  for (size_t i = 0; i < order.size(); ++i) {
    const auto [lvl, pos] = order[i];
    const Temp& temp = levels[static_cast<size_t>(lvl)][static_cast<size_t>(pos)];
    Node& node = tree.nodes_[i];
    node.level = lvl;
    node.count = temp.end - temp.begin;
    tree.node_xlo_[i] = temp.mbr.min.x;
    tree.node_ylo_[i] = temp.mbr.min.y;
    tree.node_xhi_[i] = temp.mbr.max.x;
    tree.node_yhi_[i] = temp.mbr.max.y;
    if (lvl == 0) {
      node.first = temp.begin;  // Row range in the entry arrays.
    } else {
      node.first = static_cast<int32_t>(order.size());
      for (int32_t c = temp.begin; c < temp.end; ++c)
        order.emplace_back(lvl - 1, c);
    }
  }
  return tree;
}

void FlatRTree::RangeQuery(const Rect& window, std::vector<Entry>* out) const {
  RangeQuery(window, [out](const Entry& e) {
    out->push_back(e);
    return true;
  });
}

void FlatRTree::RangeQuery(
    const Rect& window, const std::function<bool(const Entry&)>& visit) const {
  if (nodes_.empty()) return;
  std::vector<int32_t> stack{0};
  while (!stack.empty()) {
    const int32_t i = stack.back();
    stack.pop_back();
    if (!NodeBox(i).Intersects(window)) continue;
    const Node& node = nodes_[i];
    const int32_t end = node.first + node.count;
    if (node.level == 0) {
      for (int32_t j = node.first; j < end; ++j) {
        const Rect box = EntryBox(j);
        if (box.Intersects(window)) {
          if (!visit(Entry{box, entry_ids_[j]})) return;
        }
      }
    } else {
      for (int32_t j = node.first; j < end; ++j) stack.push_back(j);
    }
  }
}

size_t FlatRTree::RangeCount(const Rect& window) const {
  size_t count = 0;
  RangeQuery(window, [&count](const Entry&) {
    ++count;
    return true;
  });
  return count;
}

std::vector<FlatRTree::Neighbor> FlatRTree::KNearest(const Point& q, size_t k,
                                                     Metric metric) const {
  return KNearestFiltered(q, k, metric, nullptr);
}

std::vector<FlatRTree::Neighbor> FlatRTree::KNearestFiltered(
    const Point& q, size_t k, Metric metric,
    const std::function<bool(const Entry&)>& keep) const {
  std::vector<Neighbor> result;
  if (nodes_.empty() || k == 0) return result;

  struct Item {
    double key;
    int32_t idx;
    bool is_entry;
  };
  struct Cmp {
    const FlatRTree* tree;
    bool operator()(const Item& a, const Item& b) const {
      // Min-heap on key; equal keys pop nodes before entries, then
      // entries ascending by id — the same canonical tie order as
      // RTree::KNearest, so every index (and the sharded router's
      // min-id merge) returns identical answers on distance ties.
      if (a.key != b.key) return a.key > b.key;
      if (a.is_entry != b.is_entry) return a.is_entry;
      if (a.is_entry) {
        return tree->entry_ids_[a.idx] > tree->entry_ids_[b.idx];
      }
      return false;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Cmp> heap(Cmp{this});
  heap.push(Item{MinDist(q, NodeBox(0)), 0, false});

  // Scratch for one node block's batched distances.
  std::vector<double> dist(static_cast<size_t>(max_entries_));

  while (!heap.empty() && result.size() < k) {
    const Item item = heap.top();
    heap.pop();
    if (item.is_entry) {
      result.push_back(
          Neighbor{EntryBox(item.idx), entry_ids_[item.idx], item.key});
      continue;
    }
    const Node& node = nodes_[item.idx];
    const size_t count = static_cast<size_t>(node.count);
    if (node.level == 0) {
      if (metric == Metric::kMinDist) {
        BatchedMinDist(q, EntryBoxes(node.first), count, dist.data());
      } else {
        BatchedMaxDist(q, EntryBoxes(node.first), count, dist.data());
      }
      for (size_t j = 0; j < count; ++j) {
        const int32_t row = node.first + static_cast<int32_t>(j);
        if (keep && !keep(Entry{EntryBox(row), entry_ids_[row]})) continue;
        heap.push(Item{dist[j], row, true});
      }
    } else {
      // MinDist to the child MBR lower-bounds both metrics for every
      // entry inside, so the best-first order stays admissible.
      BatchedMinDist(q, NodeBoxes(node.first), count, dist.data());
      for (size_t j = 0; j < count; ++j) {
        heap.push(Item{dist[j], node.first + static_cast<int32_t>(j), false});
      }
    }
  }
  return result;
}

FlatRTree::NNResult FlatRTree::Nearest(const Point& q, Metric metric) const {
  NNResult r;
  auto knn = KNearest(q, 1, metric);
  if (!knn.empty()) {
    r.found = true;
    r.neighbor = knn.front();
  }
  return r;
}

Rect FlatRTree::bounds() const {
  if (nodes_.empty()) return Rect();
  return NodeBox(0);
}

FlatRTree::Entry FlatRTree::entry(size_t i) const {
  CASPER_DCHECK(i < entry_ids_.size());
  const int32_t row = static_cast<int32_t>(i);
  return Entry{EntryBox(row), entry_ids_[row]};
}

bool FlatRTree::CheckInvariants() const {
  if (nodes_.empty()) return entry_ids_.empty() && height_ == 0;
  bool ok = true;
  std::vector<bool> entry_seen(entry_ids_.size(), false);
  std::vector<bool> node_seen(nodes_.size(), false);
  std::vector<int32_t> stack{0};
  node_seen[0] = true;
  if (nodes_[0].level != height_ - 1) ok = false;
  while (!stack.empty() && ok) {
    const int32_t i = stack.back();
    stack.pop_back();
    const Node& node = nodes_[i];
    if (node.count < 1 || node.count > max_entries_) ok = false;
    Rect expect;
    if (node.level == 0) {
      if (node.first < 0 ||
          node.first + node.count > static_cast<int32_t>(entry_ids_.size())) {
        ok = false;
        break;
      }
      for (int32_t j = node.first; j < node.first + node.count; ++j) {
        if (entry_seen[static_cast<size_t>(j)]) ok = false;
        entry_seen[static_cast<size_t>(j)] = true;
        expect = expect.Union(EntryBox(j));
      }
    } else {
      if (node.first < 0 ||
          node.first + node.count > static_cast<int32_t>(nodes_.size())) {
        ok = false;
        break;
      }
      for (int32_t j = node.first; j < node.first + node.count; ++j) {
        if (node_seen[static_cast<size_t>(j)]) ok = false;
        node_seen[static_cast<size_t>(j)] = true;
        if (nodes_[j].level != node.level - 1) ok = false;
        expect = expect.Union(NodeBox(j));
        stack.push_back(j);
      }
    }
    if (!(expect == NodeBox(i))) ok = false;
  }
  if (ok) {
    for (bool seen : entry_seen) ok = ok && seen;
  }
  return ok;
}

// --- Persistence -----------------------------------------------------------

namespace {

// "FRT1": rejects a page that is not a flat-rtree root.
constexpr uint32_t kTreeMagic = 0x31545246u;

// Rows per page, sized so a page lands near the disk backend's 4 KB
// slot: a node row is 12 bytes of offsets + 32 bytes of MBR, an entry
// row 8 bytes of id + 32 bytes of box. A million-entry tree therefore
// spans ~10k entry pages — enough pages for a buffer pool smaller than
// the tree to actually evict.
constexpr size_t kNodeRowBytes = 3 * 4 + 4 * 8;
constexpr size_t kEntryRowBytes = 8 + 4 * 8;
constexpr size_t kNodesPerPage = 92;
constexpr size_t kEntriesPerPage = 100;

}  // namespace

Result<storage::PageId> FlatRTree::SaveTo(storage::IStorageManager* sm) const {
  std::vector<storage::PageId> node_pages;
  std::vector<storage::PageId> entry_pages;
  for (size_t begin = 0; begin < nodes_.size(); begin += kNodesPerPage) {
    const size_t end = std::min(begin + kNodesPerPage, nodes_.size());
    wire::Writer w;
    w.Count(end - begin);
    for (size_t i = begin; i < end; ++i) {
      w.I32(nodes_[i].first);
      w.I32(nodes_[i].count);
      w.I32(nodes_[i].level);
      w.F64(node_xlo_[i]);
      w.F64(node_ylo_[i]);
      w.F64(node_xhi_[i]);
      w.F64(node_yhi_[i]);
    }
    const std::string page = w.Take();
    CASPER_ASSIGN_OR_RETURN(id, sm->Store(storage::kNoPage, page));
    node_pages.push_back(id);
  }
  for (size_t begin = 0; begin < entry_ids_.size();
       begin += kEntriesPerPage) {
    const size_t end = std::min(begin + kEntriesPerPage, entry_ids_.size());
    wire::Writer w;
    w.Count(end - begin);
    for (size_t i = begin; i < end; ++i) {
      w.U64(entry_ids_[i]);
      w.F64(entry_xlo_[i]);
      w.F64(entry_ylo_[i]);
      w.F64(entry_xhi_[i]);
      w.F64(entry_yhi_[i]);
    }
    const std::string page = w.Take();
    CASPER_ASSIGN_OR_RETURN(id, sm->Store(storage::kNoPage, page));
    entry_pages.push_back(id);
  }

  wire::Writer w;
  w.U32(kTreeMagic);
  w.I32(max_entries_);
  w.I32(height_);
  w.U64(nodes_.size());
  w.U64(entry_ids_.size());
  w.Count(node_pages.size());
  for (const storage::PageId id : node_pages) w.U64(id);
  w.Count(entry_pages.size());
  for (const storage::PageId id : entry_pages) w.U64(id);
  const std::string page = w.Take();
  return sm->Store(storage::kNoPage, page);
}

Result<FlatRTree> FlatRTree::LoadFrom(storage::IStorageManager* sm,
                                      storage::PageId root) {
  std::string bytes;
  CASPER_RETURN_IF_ERROR(sm->Load(root, &bytes));
  wire::Reader r(bytes);
  if (r.U32() != kTreeMagic || r.failed()) {
    return Status::InvalidArgument("not a flat-rtree root page");
  }
  FlatRTree tree;
  tree.max_entries_ = r.I32();
  tree.height_ = r.I32();
  const uint64_t node_count = r.U64();
  const uint64_t entry_count = r.U64();
  const size_t n_node_pages = r.Count(8);
  std::vector<storage::PageId> node_pages(n_node_pages);
  for (storage::PageId& id : node_pages) id = r.U64();
  const size_t n_entry_pages = r.Count(8);
  std::vector<storage::PageId> entry_pages(n_entry_pages);
  for (storage::PageId& id : entry_pages) id = r.U64();
  CASPER_RETURN_IF_ERROR(r.Finish("flat-rtree root page"));

  constexpr uint64_t kMaxRows = 0x7fffffffull;  // int32 offsets.
  if (node_count > kMaxRows || entry_count > kMaxRows ||
      tree.max_entries_ < 4 || tree.height_ < 0) {
    return Status::InvalidArgument("malformed flat-rtree root page");
  }
  tree.nodes_.reserve(node_count);
  tree.node_xlo_.reserve(node_count);
  tree.node_ylo_.reserve(node_count);
  tree.node_xhi_.reserve(node_count);
  tree.node_yhi_.reserve(node_count);
  for (const storage::PageId id : node_pages) {
    std::string page;
    CASPER_RETURN_IF_ERROR(sm->Load(id, &page));
    wire::Reader pr(page);
    const size_t n = pr.Count(kNodeRowBytes);
    for (size_t i = 0; i < n; ++i) {
      Node node;
      node.first = pr.I32();
      node.count = pr.I32();
      node.level = pr.I32();
      tree.nodes_.push_back(node);
      tree.node_xlo_.push_back(pr.F64());
      tree.node_ylo_.push_back(pr.F64());
      tree.node_xhi_.push_back(pr.F64());
      tree.node_yhi_.push_back(pr.F64());
    }
    CASPER_RETURN_IF_ERROR(pr.Finish("flat-rtree node page"));
  }
  tree.entry_ids_.reserve(entry_count);
  tree.entry_xlo_.reserve(entry_count);
  tree.entry_ylo_.reserve(entry_count);
  tree.entry_xhi_.reserve(entry_count);
  tree.entry_yhi_.reserve(entry_count);
  for (const storage::PageId id : entry_pages) {
    std::string page;
    CASPER_RETURN_IF_ERROR(sm->Load(id, &page));
    wire::Reader pr(page);
    const size_t n = pr.Count(kEntryRowBytes);
    for (size_t i = 0; i < n; ++i) {
      tree.entry_ids_.push_back(pr.U64());
      tree.entry_xlo_.push_back(pr.F64());
      tree.entry_ylo_.push_back(pr.F64());
      tree.entry_xhi_.push_back(pr.F64());
      tree.entry_yhi_.push_back(pr.F64());
    }
    CASPER_RETURN_IF_ERROR(pr.Finish("flat-rtree entry page"));
  }
  if (tree.nodes_.size() != node_count ||
      tree.entry_ids_.size() != entry_count) {
    return Status::InvalidArgument(
        "flat-rtree page rows disagree with root counts");
  }
  // Child runs must stay in bounds, or queries would index out of the
  // packed arrays.
  for (const Node& node : tree.nodes_) {
    const auto limit = static_cast<int64_t>(
        node.level == 0 ? tree.entry_ids_.size() : tree.nodes_.size());
    if (node.first < 0 || node.count < 0 ||
        int64_t{node.first} + node.count > limit) {
      return Status::InvalidArgument("flat-rtree node run out of bounds");
    }
  }
  if (tree.nodes_.empty() && !tree.entry_ids_.empty()) {
    return Status::InvalidArgument("flat-rtree entries without nodes");
  }
  return tree;
}

}  // namespace casper::spatial
