#ifndef CASPER_SPATIAL_GRID_INDEX_H_
#define CASPER_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/status.h"

/// \file
/// Uniform grid over point objects — the alternative "traditional"
/// spatial index (§5.1.1 allows "R-tree or any other methods"). Used in
/// tests as an oracle against the R-tree and by modules that prefer
/// O(1) point updates (e.g. nearest-road-node lookup).

namespace casper::spatial {

/// A uniform grid of `cells_per_side^2` buckets over a fixed space.
/// Entries are (point, id); ids must be unique per index.
class GridIndex {
 public:
  /// `space` must be non-empty; `cells_per_side >= 1`.
  GridIndex(const Rect& space, int cells_per_side);

  /// Insert id at `p`. Returns AlreadyExists if the id is present,
  /// OutOfRange if `p` lies outside the managed space.
  Status Insert(const Point& p, uint64_t id);

  /// Remove an id. Returns NotFound when absent.
  Status Remove(uint64_t id);

  /// Move an existing id to a new position (cheaper than remove+insert
  /// when the cell does not change).
  Status Update(const Point& p, uint64_t id);

  /// All ids whose point lies inside `window` (closed boundaries).
  void RangeQuery(const Rect& window, std::vector<uint64_t>* out) const;

  size_t RangeCount(const Rect& window) const;

  /// Nearest entry to `q` by expanding-ring search.
  struct NNResult {
    bool found = false;
    uint64_t id = 0;
    Point position;
    double distance = 0.0;
  };
  NNResult Nearest(const Point& q) const;

  /// k nearest entries, ascending by distance.
  std::vector<NNResult> KNearest(const Point& q, size_t k) const;

  size_t size() const { return positions_.size(); }
  bool empty() const { return positions_.empty(); }
  const Rect& space() const { return space_; }

  /// Current position of `id`, if present.
  bool TryGetPosition(uint64_t id, Point* out) const;

 private:
  struct CellRef {
    int cx = 0;
    int cy = 0;
  };

  int CellX(double x) const;
  int CellY(double y) const;
  size_t CellIndex(int cx, int cy) const {
    return static_cast<size_t>(cy) * static_cast<size_t>(cells_per_side_) +
           static_cast<size_t>(cx);
  }

  Rect space_;
  int cells_per_side_;
  double cell_w_;
  double cell_h_;
  std::vector<std::vector<uint64_t>> cells_;
  std::unordered_map<uint64_t, Point> positions_;
  std::unordered_map<uint64_t, CellRef> cell_of_;
};

}  // namespace casper::spatial

#endif  // CASPER_SPATIAL_GRID_INDEX_H_
