#include "src/spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "src/common/status.h"

namespace casper::spatial {

struct RTree::Node {
  Node* parent = nullptr;
  int level = 0;  ///< 0 = leaf; children live at level - 1.
  Rect mbr;
  std::vector<std::unique_ptr<Node>> children;  ///< internal nodes only
  std::vector<Entry> entries;                   ///< leaves only

  bool is_leaf() const { return level == 0; }
  size_t item_count() const {
    return is_leaf() ? entries.size() : children.size();
  }

  void RecomputeMbr() {
    Rect box;
    if (is_leaf()) {
      for (const Entry& e : entries) box = box.Union(e.box);
    } else {
      for (const auto& c : children) box = box.Union(c->mbr);
    }
    mbr = box;
  }
};

namespace {

/// Enlargement of `base` needed to also cover `add`.
double Enlargement(const Rect& base, const Rect& add) {
  return base.Union(add).Area() - base.Area();
}

/// Quadratic pick-seeds: indices of the two boxes wasting the most area
/// when paired.
std::pair<size_t, size_t> PickSeeds(const std::vector<Rect>& boxes) {
  CASPER_DCHECK(boxes.size() >= 2);
  size_t best_i = 0, best_j = 1;
  double worst = -1.0;
  for (size_t i = 0; i + 1 < boxes.size(); ++i) {
    for (size_t j = i + 1; j < boxes.size(); ++j) {
      const double waste =
          boxes[i].Union(boxes[j]).Area() - boxes[i].Area() - boxes[j].Area();
      if (waste > worst) {
        worst = waste;
        best_i = i;
        best_j = j;
      }
    }
  }
  return {best_i, best_j};
}

/// Quadratic-split group assignment: returns for each input box which
/// group (0 or 1) it belongs to, honoring the min-fill constraint.
std::vector<int> QuadraticAssign(const std::vector<Rect>& boxes,
                                 size_t min_fill) {
  const size_t n = boxes.size();
  std::vector<int> group(n, -1);
  auto [s0, s1] = PickSeeds(boxes);
  group[s0] = 0;
  group[s1] = 1;
  Rect mbr0 = boxes[s0];
  Rect mbr1 = boxes[s1];
  size_t count0 = 1, count1 = 1;
  size_t remaining = n - 2;

  while (remaining > 0) {
    // Forced assignment when one group must take all the rest to reach
    // min fill.
    if (count0 + remaining <= min_fill) {
      for (size_t i = 0; i < n; ++i)
        if (group[i] < 0) group[i] = 0;
      break;
    }
    if (count1 + remaining <= min_fill) {
      for (size_t i = 0; i < n; ++i)
        if (group[i] < 0) group[i] = 1;
      break;
    }
    // Pick-next: the unassigned box with the largest preference gap.
    size_t pick = n;
    double best_gap = -1.0;
    double pick_d0 = 0.0, pick_d1 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (group[i] >= 0) continue;
      const double d0 = Enlargement(mbr0, boxes[i]);
      const double d1 = Enlargement(mbr1, boxes[i]);
      const double gap = std::abs(d0 - d1);
      if (gap > best_gap) {
        best_gap = gap;
        pick = i;
        pick_d0 = d0;
        pick_d1 = d1;
      }
    }
    CASPER_DCHECK(pick < n);
    int g;
    if (pick_d0 < pick_d1) {
      g = 0;
    } else if (pick_d1 < pick_d0) {
      g = 1;
    } else if (mbr0.Area() != mbr1.Area()) {
      g = mbr0.Area() < mbr1.Area() ? 0 : 1;
    } else {
      g = count0 <= count1 ? 0 : 1;
    }
    group[pick] = g;
    if (g == 0) {
      mbr0 = mbr0.Union(boxes[pick]);
      ++count0;
    } else {
      mbr1 = mbr1.Union(boxes[pick]);
      ++count1;
    }
    --remaining;
  }
  return group;
}

}  // namespace

RTree::RTree(int max_entries)
    : max_entries_(std::max(max_entries, 4)),
      min_entries_(std::max(2, static_cast<int>(max_entries_ * 0.4))) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

RTree::Node* RTree::ChooseLeaf(Node* node, const Rect& box,
                               int /*target_level*/) {
  while (!node->is_leaf()) {
    Node* best = nullptr;
    double best_enlargement = 0.0;
    for (const auto& child : node->children) {
      const double e = Enlargement(child->mbr, box);
      if (best == nullptr || e < best_enlargement ||
          (e == best_enlargement && child->mbr.Area() < best->mbr.Area())) {
        best = child.get();
        best_enlargement = e;
      }
    }
    node = best;
  }
  return node;
}

void RTree::Insert(const Rect& box, uint64_t id) {
  if (!root_) {
    root_ = std::make_unique<Node>();
  }
  Node* leaf = ChooseLeaf(root_.get(), box, 0);
  leaf->entries.push_back(Entry{box, id});
  ++size_;
  AdjustUpward(leaf);
}

void RTree::AdjustUpward(Node* node) {
  node->RecomputeMbr();
  if (node->item_count() > static_cast<size_t>(max_entries_)) {
    SplitNode(node);  // Splits ancestors recursively as needed.
  }
  // Enlargement without split also propagates; splits only ever touch
  // nodes on this ancestor path, so one upward sweep refreshes all MBRs.
  for (Node* n = node->parent; n != nullptr; n = n->parent) {
    n->RecomputeMbr();
  }
}

void RTree::SplitNode(Node* node) {
  std::vector<Rect> boxes;
  if (node->is_leaf()) {
    boxes.reserve(node->entries.size());
    for (const Entry& e : node->entries) boxes.push_back(e.box);
  } else {
    boxes.reserve(node->children.size());
    for (const auto& c : node->children) boxes.push_back(c->mbr);
  }
  const std::vector<int> group =
      QuadraticAssign(boxes, static_cast<size_t>(min_entries_));

  auto sibling = std::make_unique<Node>();
  sibling->level = node->level;

  if (node->is_leaf()) {
    std::vector<Entry> keep;
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (group[i] == 0) {
        keep.push_back(node->entries[i]);
      } else {
        sibling->entries.push_back(node->entries[i]);
      }
    }
    node->entries = std::move(keep);
  } else {
    std::vector<std::unique_ptr<Node>> keep;
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (group[i] == 0) {
        keep.push_back(std::move(node->children[i]));
      } else {
        node->children[i]->parent = sibling.get();
        sibling->children.push_back(std::move(node->children[i]));
      }
    }
    node->children = std::move(keep);
  }
  node->RecomputeMbr();
  sibling->RecomputeMbr();

  if (node->parent == nullptr) {
    // Grow a new root above the split node.
    auto new_root = std::make_unique<Node>();
    new_root->level = node->level + 1;
    auto old_root = std::move(root_);
    old_root->parent = new_root.get();
    sibling->parent = new_root.get();
    new_root->children.push_back(std::move(old_root));
    new_root->children.push_back(std::move(sibling));
    new_root->RecomputeMbr();
    root_ = std::move(new_root);
  } else {
    Node* parent = node->parent;
    sibling->parent = parent;
    parent->children.push_back(std::move(sibling));
    parent->RecomputeMbr();
    if (parent->item_count() > static_cast<size_t>(max_entries_)) {
      SplitNode(parent);
    }
  }
}

bool RTree::Remove(const Rect& box, uint64_t id) {
  if (!root_) return false;
  // Depth-first search for the leaf holding (box, id).
  Node* found_leaf = nullptr;
  size_t found_idx = 0;
  std::vector<Node*> stack{root_.get()};
  while (!stack.empty() && found_leaf == nullptr) {
    Node* node = stack.back();
    stack.pop_back();
    if (!node->mbr.Contains(box)) continue;
    if (node->is_leaf()) {
      for (size_t i = 0; i < node->entries.size(); ++i) {
        if (node->entries[i].id == id && node->entries[i].box == box) {
          found_leaf = node;
          found_idx = i;
          break;
        }
      }
    } else {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
  if (found_leaf == nullptr) return false;

  found_leaf->entries.erase(found_leaf->entries.begin() +
                            static_cast<ptrdiff_t>(found_idx));
  --size_;
  CondenseTree(found_leaf);
  return true;
}

void RTree::CondenseTree(Node* leaf) {
  // Walk upward removing underfull nodes; their leaf entries are
  // collected and reinserted afterwards (Guttman's CondenseTree with
  // entry-level reinsertion).
  std::vector<Entry> orphans;
  Node* node = leaf;
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    if (node->item_count() < static_cast<size_t>(min_entries_)) {
      // Collect all leaf entries under `node`.
      std::vector<Node*> stack{node};
      while (!stack.empty()) {
        Node* n = stack.back();
        stack.pop_back();
        if (n->is_leaf()) {
          orphans.insert(orphans.end(), n->entries.begin(), n->entries.end());
        } else {
          for (const auto& c : n->children) stack.push_back(c.get());
        }
      }
      // Detach `node` from parent.
      auto& siblings = parent->children;
      for (size_t i = 0; i < siblings.size(); ++i) {
        if (siblings[i].get() == node) {
          siblings.erase(siblings.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
      }
    } else {
      node->RecomputeMbr();
    }
    node = parent;
  }
  root_->RecomputeMbr();

  // Shrink the root while it is an internal node with a single child.
  while (!root_->is_leaf() && root_->children.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->children.front());
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (!root_->is_leaf() && root_->children.empty()) {
    root_ = std::make_unique<Node>();
  }

  size_ -= orphans.size();  // Reinsert bumps it back up.
  for (const Entry& e : orphans) Insert(e.box, e.id);
}

void RTree::RangeQuery(const Rect& window, std::vector<Entry>* out) const {
  RangeQuery(window, [out](const Entry& e) {
    out->push_back(e);
    return true;
  });
}

void RTree::RangeQuery(const Rect& window,
                       const std::function<bool(const Entry&)>& visit) const {
  if (!root_) return;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->mbr.Intersects(window)) continue;
    if (node->is_leaf()) {
      for (const Entry& e : node->entries) {
        if (e.box.Intersects(window)) {
          if (!visit(e)) return;
        }
      }
    } else {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
}

std::vector<RTree::Entry> RTree::AllEntries() const {
  std::vector<Entry> out;
  out.reserve(size_);
  if (!root_) return out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      out.insert(out.end(), node->entries.begin(), node->entries.end());
    } else {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
  return out;
}

size_t RTree::RangeCount(const Rect& window) const {
  size_t count = 0;
  RangeQuery(window, [&count](const Entry&) {
    ++count;
    return true;
  });
  return count;
}

std::vector<RTree::Neighbor> RTree::KNearest(const Point& q, size_t k,
                                             Metric metric) const {
  std::vector<Neighbor> result;
  if (!root_ || k == 0 || size_ == 0) return result;

  struct QueueItem {
    double key;
    bool is_entry;
    const Node* node;  // when !is_entry
    Entry entry;       // when is_entry
  };
  struct Cmp {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      // Min-heap on key; equal keys pop nodes before entries, then
      // entries ascending by id. Ties in distance are real (e.g. two
      // users cloaked to the same grid cell), and the canonical order
      // keeps answers identical across differently-built trees — the
      // sharded router merges per-shard lists with the same min-id rule.
      if (a.key != b.key) return a.key > b.key;
      if (a.is_entry != b.is_entry) return a.is_entry;
      if (a.is_entry) return a.entry.id > b.entry.id;
      return false;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, Cmp> heap;
  heap.push(QueueItem{MinDist(q, root_->mbr), false, root_.get(), {}});

  auto entry_key = [&](const Entry& e) {
    return metric == Metric::kMinDist ? MinDist(q, e.box) : MaxDist(q, e.box);
  };

  while (!heap.empty() && result.size() < k) {
    QueueItem item = heap.top();
    heap.pop();
    if (item.is_entry) {
      result.push_back(Neighbor{item.entry.box, item.entry.id, item.key});
      continue;
    }
    const Node* node = item.node;
    if (node->is_leaf()) {
      for (const Entry& e : node->entries) {
        heap.push(QueueItem{entry_key(e), true, nullptr, e});
      }
    } else {
      for (const auto& c : node->children) {
        // MinDist to the child MBR lower-bounds both metrics for every
        // entry inside, so the best-first order stays admissible.
        heap.push(QueueItem{MinDist(q, c->mbr), false, c.get(), {}});
      }
    }
  }
  return result;
}

RTree::NNResult RTree::Nearest(const Point& q, Metric metric) const {
  NNResult r;
  auto knn = KNearest(q, 1, metric);
  if (!knn.empty()) {
    r.found = true;
    r.neighbor = knn.front();
  }
  return r;
}

int RTree::height() const {
  if (!root_) return 0;
  return root_->level + 1;
}

Rect RTree::bounds() const {
  if (!root_) return Rect();
  return root_->mbr;
}

RTree RTree::BulkLoad(std::vector<Entry> entries, int max_entries) {
  RTree tree(max_entries);
  if (entries.empty()) return tree;
  const size_t fanout = static_cast<size_t>(tree.max_entries_);

  // Build the leaf level with Sort-Tile-Recursive packing.
  auto center_x = [](const Rect& r) { return (r.min.x + r.max.x) / 2.0; };
  auto center_y = [](const Rect& r) { return (r.min.y + r.max.y) / 2.0; };

  std::sort(entries.begin(), entries.end(),
            [&](const Entry& a, const Entry& b) {
              return center_x(a.box) < center_x(b.box);
            });
  const size_t n = entries.size();
  const size_t num_leaves = (n + fanout - 1) / fanout;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slab_size = (n + num_slabs - 1) / num_slabs;

  std::vector<std::unique_ptr<Node>> level;
  for (size_t s = 0; s < n; s += slab_size) {
    const size_t end = std::min(s + slab_size, n);
    std::sort(entries.begin() + static_cast<ptrdiff_t>(s),
              entries.begin() + static_cast<ptrdiff_t>(end),
              [&](const Entry& a, const Entry& b) {
                return center_y(a.box) < center_y(b.box);
              });
    for (size_t i = s; i < end; i += fanout) {
      auto node = std::make_unique<Node>();
      const size_t chunk_end = std::min(i + fanout, end);
      node->entries.assign(entries.begin() + static_cast<ptrdiff_t>(i),
                           entries.begin() + static_cast<ptrdiff_t>(chunk_end));
      node->RecomputeMbr();
      level.push_back(std::move(node));
    }
  }

  // Pack upper levels the same way until a single root remains.
  int current_level = 0;
  while (level.size() > 1) {
    ++current_level;
    std::sort(level.begin(), level.end(),
              [&](const std::unique_ptr<Node>& a,
                  const std::unique_ptr<Node>& b) {
                return center_x(a->mbr) < center_x(b->mbr);
              });
    const size_t m = level.size();
    const size_t num_parents = (m + fanout - 1) / fanout;
    const size_t parent_slabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_parents))));
    const size_t pslab = (m + parent_slabs - 1) / parent_slabs;

    std::vector<std::unique_ptr<Node>> next;
    for (size_t s = 0; s < m; s += pslab) {
      const size_t end = std::min(s + pslab, m);
      std::sort(level.begin() + static_cast<ptrdiff_t>(s),
                level.begin() + static_cast<ptrdiff_t>(end),
                [&](const std::unique_ptr<Node>& a,
                    const std::unique_ptr<Node>& b) {
                  return center_y(a->mbr) < center_y(b->mbr);
                });
      for (size_t i = s; i < end; i += fanout) {
        auto node = std::make_unique<Node>();
        node->level = current_level;
        const size_t chunk_end = std::min(i + fanout, end);
        for (size_t j = i; j < chunk_end; ++j) {
          level[j]->parent = node.get();
          node->children.push_back(std::move(level[j]));
        }
        node->RecomputeMbr();
        next.push_back(std::move(node));
      }
    }
    level = std::move(next);
  }

  tree.root_ = std::move(level.front());
  tree.size_ = n;
  return tree;
}

bool RTree::CheckInvariants() const {
  if (!root_) return true;
  bool ok = true;
  size_t counted = 0;
  // (node, expected_level) pairs; leaves must all be level 0.
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty() && ok) {
    const Node* node = stack.back();
    stack.pop_back();
    Rect expect;
    if (node->is_leaf()) {
      counted += node->entries.size();
      for (const Entry& e : node->entries) expect = expect.Union(e.box);
      if (!node->children.empty()) ok = false;
    } else {
      if (!node->entries.empty()) ok = false;
      if (node->children.empty()) ok = false;
      for (const auto& c : node->children) {
        expect = expect.Union(c->mbr);
        if (c->parent != node) ok = false;
        if (c->level != node->level - 1) ok = false;
        stack.push_back(c.get());
      }
    }
    if (!(expect == node->mbr) && node->item_count() > 0) ok = false;
    // Fill-factor: root exempt; bulk-loaded trees satisfy >= 1.
    if (node != root_.get() && node->item_count() < 1) ok = false;
    if (node->item_count() > static_cast<size_t>(max_entries_)) ok = false;
  }
  if (counted != size_) ok = false;
  return ok;
}

}  // namespace casper::spatial
