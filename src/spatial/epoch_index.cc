#include "src/spatial/epoch_index.h"

#include <algorithm>
#include <utility>

#include "src/common/codec.h"
#include "src/common/status.h"

namespace casper::spatial {

namespace {

bool SameEntry(const RTree::Entry& a, const Rect& box, uint64_t id) {
  return a.id == id && a.box == box;
}

// "EPX1": rejects a page that is not an epoch-index checkpoint root.
constexpr uint32_t kCheckpointMagic = 0x31585045u;

constexpr size_t kEntryBytes = 4 * 8 + 8;  // Rect + id.

void PutEntries(wire::Writer& w, const std::vector<RTree::Entry>& entries) {
  w.Count(entries.size());
  for (const RTree::Entry& e : entries) {
    w.R(e.box);
    w.U64(e.id);
  }
}

std::vector<RTree::Entry> GetEntries(wire::Reader& r) {
  const size_t n = r.Count(kEntryBytes);
  std::vector<RTree::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RTree::Entry e;
    e.box = r.R();
    e.id = r.U64();
    entries.push_back(e);
  }
  return entries;
}

}  // namespace

// --- Snapshot ---------------------------------------------------------

EpochIndex::Snapshot::~Snapshot() {
  if (reclaimed_) reclaimed_->fetch_add(1, std::memory_order_relaxed);
}

void EpochIndex::Snapshot::RangeQuery(const Rect& window,
                                      std::vector<Entry>* out) const {
  RangeQuery(window, [out](const Entry& e) {
    out->push_back(e);
    return true;
  });
}

void EpochIndex::Snapshot::RangeQuery(
    const Rect& window, const std::function<bool(const Entry&)>& visit) const {
  // Tombstones form a multiset: a base entry is hidden once per matching
  // tombstone, so a duplicate (box, id) pair removed once still shows
  // its surviving twin. `used` is query-local — snapshots are shared
  // across reader threads and never mutated.
  std::vector<bool> used(dead_.size(), false);
  bool stopped = false;
  if (base_) {
    base_->RangeQuery(window, [&](const Entry& e) {
      for (size_t i = 0; i < dead_.size(); ++i) {
        if (!used[i] && SameEntry(dead_[i], e.box, e.id)) {
          used[i] = true;
          return true;  // Hidden; keep scanning.
        }
      }
      if (!visit(e)) {
        stopped = true;
        return false;
      }
      return true;
    });
  }
  if (stopped) return;
  for (const Entry& e : delta_) {
    if (e.box.Intersects(window)) {
      if (!visit(e)) return;
    }
  }
}

size_t EpochIndex::Snapshot::RangeCount(const Rect& window) const {
  size_t count = 0;
  RangeQuery(window, [&count](const Entry&) {
    ++count;
    return true;
  });
  return count;
}

std::vector<EpochIndex::Neighbor> EpochIndex::Snapshot::KNearest(
    const Point& q, size_t k, Metric metric) const {
  std::vector<Neighbor> merged;
  if (k == 0 || size_ == 0) return merged;

  if (base_ && !base_->empty()) {
    std::vector<bool> used(dead_.size(), false);
    std::function<bool(const Entry&)> keep;
    if (!dead_.empty()) {
      keep = [&](const Entry& e) {
        for (size_t i = 0; i < dead_.size(); ++i) {
          if (!used[i] && SameEntry(dead_[i], e.box, e.id)) {
            used[i] = true;
            return false;
          }
        }
        return true;
      };
    }
    merged = base_->KNearestFiltered(q, k, metric, keep);
  }
  for (const Entry& e : delta_) {
    const double d =
        metric == Metric::kMinDist ? MinDist(q, e.box) : MaxDist(q, e.box);
    merged.push_back(Neighbor{e.box, e.id, d});
  }
  std::sort(merged.begin(), merged.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;  // Deterministic tie-break.
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

EpochIndex::NNResult EpochIndex::Snapshot::Nearest(const Point& q,
                                                   Metric metric) const {
  NNResult r;
  auto knn = KNearest(q, 1, metric);
  if (!knn.empty()) {
    r.found = true;
    r.neighbor = knn.front();
  }
  return r;
}

Rect EpochIndex::Snapshot::bounds() const {
  Rect box = base_ ? base_->bounds() : Rect();
  for (const Entry& e : delta_) box = box.Union(e.box);
  return box;  // May over-cover after removals, like an R-tree root MBR
               // before condensation; callers treat bounds as a hint.
}

// --- EpochIndex -------------------------------------------------------

EpochIndex::EpochIndex(int max_entries, size_t rebuild_threshold)
    : tree_(max_entries),
      max_entries_(max_entries),
      rebuild_threshold_(std::max<size_t>(rebuild_threshold, 1)),
      reclaimed_(std::make_shared<std::atomic<uint64_t>>(0)) {
  Publish();
}

EpochIndex EpochIndex::BulkLoad(std::vector<Entry> entries, int max_entries,
                                size_t rebuild_threshold) {
  EpochIndex index(max_entries, rebuild_threshold);
  index.base_ = std::make_shared<const FlatRTree>(
      FlatRTree::Build(entries, max_entries));
  index.tree_ = RTree::BulkLoad(std::move(entries), max_entries);
  ++index.rebuilds_;
  index.Publish();
  return index;
}

EpochIndex::EpochIndex(EpochIndex&& other) noexcept
    : tree_(std::move(other.tree_)),
      max_entries_(other.max_entries_),
      rebuild_threshold_(other.rebuild_threshold_),
      base_(std::move(other.base_)),
      delta_(std::move(other.delta_)),
      dead_(std::move(other.dead_)),
      published_(other.published_.Load()),
      reclaimed_(std::move(other.reclaimed_)),
      published_count_(other.published_count_),
      rebuilds_(other.rebuilds_) {}

EpochIndex& EpochIndex::operator=(EpochIndex&& other) noexcept {
  if (this != &other) {
    tree_ = std::move(other.tree_);
    max_entries_ = other.max_entries_;
    rebuild_threshold_ = other.rebuild_threshold_;
    base_ = std::move(other.base_);
    delta_ = std::move(other.delta_);
    dead_ = std::move(other.dead_);
    published_.Store(other.published_.Load());
    reclaimed_ = std::move(other.reclaimed_);
    published_count_ = other.published_count_;
    rebuilds_ = other.rebuilds_;
  }
  return *this;
}

void EpochIndex::Insert(const Rect& box, uint64_t id) {
  tree_.Insert(box, id);
  delta_.push_back(Entry{box, id});
  if (delta_.size() + dead_.size() >= rebuild_threshold_) RebuildBase();
  Publish();
}

bool EpochIndex::Remove(const Rect& box, uint64_t id) {
  if (!tree_.Remove(box, id)) return false;
  // Prefer cancelling a pending delta insert; only entries already in
  // the packed base need a tombstone.
  auto it = std::find_if(delta_.rbegin(), delta_.rend(), [&](const Entry& e) {
    return SameEntry(e, box, id);
  });
  if (it != delta_.rend()) {
    delta_.erase(std::next(it).base());
  } else {
    dead_.push_back(Entry{box, id});
  }
  if (delta_.size() + dead_.size() >= rebuild_threshold_) RebuildBase();
  Publish();
  return true;
}

void EpochIndex::RebuildBase() {
  base_ = std::make_shared<const FlatRTree>(
      FlatRTree::Build(tree_.AllEntries(), max_entries_));
  delta_.clear();
  dead_.clear();
  ++rebuilds_;
}

void EpochIndex::Publish() {
  auto snapshot = std::shared_ptr<Snapshot>(new Snapshot());
  snapshot->base_ = base_;
  snapshot->delta_ = delta_;
  snapshot->dead_ = dead_;
  snapshot->size_ = tree_.size();
  snapshot->epoch_ = ++published_count_;
  snapshot->reclaimed_ = reclaimed_;
  published_.Store(std::shared_ptr<const Snapshot>(std::move(snapshot)));
}

std::shared_ptr<const EpochIndex::Snapshot> EpochIndex::Acquire() const {
  return published_.Load();
}

Result<storage::PageId> EpochIndex::Checkpoint(
    storage::IStorageManager* sm) const {
  storage::PageId base_root = storage::kNoPage;
  if (base_) {
    CASPER_ASSIGN_OR_RETURN(saved, base_->SaveTo(sm));
    base_root = saved;
  }
  wire::Writer w;
  w.U32(kCheckpointMagic);
  w.I32(max_entries_);
  w.U64(rebuild_threshold_);
  w.U64(base_root);
  PutEntries(w, delta_);
  PutEntries(w, dead_);
  const std::string page = w.Take();
  return sm->Store(storage::kNoPage, page);
}

Result<EpochIndex> EpochIndex::Restore(storage::IStorageManager* sm,
                                       storage::PageId root) {
  std::string bytes;
  CASPER_RETURN_IF_ERROR(sm->Load(root, &bytes));
  wire::Reader r(bytes);
  if (r.U32() != kCheckpointMagic || r.failed()) {
    return Status::InvalidArgument("not an epoch-index checkpoint page");
  }
  const int32_t max_entries = r.I32();
  const uint64_t rebuild_threshold = r.U64();
  const storage::PageId base_root = r.U64();
  std::vector<Entry> delta = GetEntries(r);
  std::vector<Entry> dead = GetEntries(r);
  CASPER_RETURN_IF_ERROR(r.Finish("epoch-index checkpoint page"));
  if (max_entries < 4) {
    return Status::InvalidArgument("malformed epoch-index checkpoint");
  }

  EpochIndex index(max_entries,
                   static_cast<size_t>(std::max<uint64_t>(
                       rebuild_threshold, 1)));
  std::vector<Entry> merged;
  if (base_root != storage::kNoPage) {
    CASPER_ASSIGN_OR_RETURN(base, FlatRTree::LoadFrom(sm, base_root));
    merged.reserve(base.size() + delta.size());
    for (size_t i = 0; i < base.size(); ++i) merged.push_back(base.entry(i));
    index.base_ = std::make_shared<const FlatRTree>(std::move(base));
  }
  // The authoritative tree holds base - tombstones + delta; tombstones
  // are a multiset, so each one cancels exactly one occurrence.
  for (const Entry& d : dead) {
    const auto it = std::find_if(merged.begin(), merged.end(),
                                 [&](const Entry& e) {
                                   return SameEntry(e, d.box, d.id);
                                 });
    if (it == merged.end()) {
      return Status::InvalidArgument(
          "epoch-index checkpoint tombstone has no base entry");
    }
    merged.erase(it);
  }
  merged.insert(merged.end(), delta.begin(), delta.end());
  index.tree_ = RTree::BulkLoad(std::move(merged), max_entries);
  index.delta_ = std::move(delta);
  index.dead_ = std::move(dead);
  if (index.base_) ++index.rebuilds_;
  index.Publish();
  return index;
}

EpochIndex::Stats EpochIndex::stats() const {
  Stats s;
  s.published = published_count_;
  s.reclaimed = reclaimed_->load(std::memory_order_relaxed);
  s.rebuilds = rebuilds_;
  s.delta_entries = delta_.size();
  s.tombstones = dead_.size();
  return s;
}

}  // namespace casper::spatial
