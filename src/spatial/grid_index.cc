#include "src/spatial/grid_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace casper::spatial {

GridIndex::GridIndex(const Rect& space, int cells_per_side)
    : space_(space), cells_per_side_(std::max(cells_per_side, 1)) {
  CASPER_DCHECK(!space.is_empty());
  cell_w_ = space_.width() / cells_per_side_;
  cell_h_ = space_.height() / cells_per_side_;
  cells_.resize(static_cast<size_t>(cells_per_side_) *
                static_cast<size_t>(cells_per_side_));
}

int GridIndex::CellX(double x) const {
  const int c = static_cast<int>((x - space_.min.x) / cell_w_);
  return std::clamp(c, 0, cells_per_side_ - 1);
}

int GridIndex::CellY(double y) const {
  const int c = static_cast<int>((y - space_.min.y) / cell_h_);
  return std::clamp(c, 0, cells_per_side_ - 1);
}

Status GridIndex::Insert(const Point& p, uint64_t id) {
  if (!space_.Contains(p)) {
    return Status::OutOfRange("point outside grid space");
  }
  if (positions_.count(id) > 0) {
    return Status::AlreadyExists("id already in grid index");
  }
  const CellRef ref{CellX(p.x), CellY(p.y)};
  cells_[CellIndex(ref.cx, ref.cy)].push_back(id);
  positions_[id] = p;
  cell_of_[id] = ref;
  return Status::OK();
}

Status GridIndex::Remove(uint64_t id) {
  auto it = cell_of_.find(id);
  if (it == cell_of_.end()) return Status::NotFound("id not in grid index");
  auto& bucket = cells_[CellIndex(it->second.cx, it->second.cy)];
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  cell_of_.erase(it);
  positions_.erase(id);
  return Status::OK();
}

Status GridIndex::Update(const Point& p, uint64_t id) {
  auto it = cell_of_.find(id);
  if (it == cell_of_.end()) return Status::NotFound("id not in grid index");
  if (!space_.Contains(p)) {
    return Status::OutOfRange("point outside grid space");
  }
  const CellRef next{CellX(p.x), CellY(p.y)};
  if (next.cx != it->second.cx || next.cy != it->second.cy) {
    auto& old_bucket = cells_[CellIndex(it->second.cx, it->second.cy)];
    old_bucket.erase(std::find(old_bucket.begin(), old_bucket.end(), id));
    cells_[CellIndex(next.cx, next.cy)].push_back(id);
    it->second = next;
  }
  positions_[id] = p;
  return Status::OK();
}

void GridIndex::RangeQuery(const Rect& window,
                           std::vector<uint64_t>* out) const {
  if (window.is_empty()) return;
  const int x0 = CellX(std::max(window.min.x, space_.min.x));
  const int x1 = CellX(std::min(window.max.x, space_.max.x));
  const int y0 = CellY(std::max(window.min.y, space_.min.y));
  const int y1 = CellY(std::min(window.max.y, space_.max.y));
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      for (uint64_t id : cells_[CellIndex(cx, cy)]) {
        if (window.Contains(positions_.at(id))) out->push_back(id);
      }
    }
  }
}

size_t GridIndex::RangeCount(const Rect& window) const {
  std::vector<uint64_t> tmp;
  RangeQuery(window, &tmp);
  return tmp.size();
}

GridIndex::NNResult GridIndex::Nearest(const Point& q) const {
  auto knn = KNearest(q, 1);
  if (knn.empty()) return NNResult{};
  return knn.front();
}

std::vector<GridIndex::NNResult> GridIndex::KNearest(const Point& q,
                                                     size_t k) const {
  std::vector<NNResult> best;
  if (positions_.empty() || k == 0) return best;

  // Max-heap of the k best candidates found so far, keyed by distance.
  auto cmp = [](const NNResult& a, const NNResult& b) {
    return a.distance < b.distance;
  };
  std::priority_queue<NNResult, std::vector<NNResult>, decltype(cmp)> heap(
      cmp);

  const int qcx = CellX(std::clamp(q.x, space_.min.x, space_.max.x));
  const int qcy = CellY(std::clamp(q.y, space_.min.y, space_.max.y));

  // Expanding rings of cells around the query cell. A ring at radius r
  // contains every cell whose Chebyshev distance (in cells) is exactly r.
  // Once we hold k candidates and the closest possible point of the next
  // ring is farther than the current k-th distance, stop.
  const int max_radius = cells_per_side_;  // Covers the full grid.
  for (int r = 0; r <= max_radius; ++r) {
    if (heap.size() >= k) {
      // Minimum distance to any unexplored cell: (r - 1) full cell spans
      // from the query cell boundary (conservative bound).
      const double ring_min =
          (r - 1) > 0 ? (r - 1) * std::min(cell_w_, cell_h_) : 0.0;
      if (ring_min > heap.top().distance) break;
    }
    for (int cy = qcy - r; cy <= qcy + r; ++cy) {
      if (cy < 0 || cy >= cells_per_side_) continue;
      for (int cx = qcx - r; cx <= qcx + r; ++cx) {
        if (cx < 0 || cx >= cells_per_side_) continue;
        // Ring only: skip interior cells already scanned.
        if (std::max(std::abs(cx - qcx), std::abs(cy - qcy)) != r) continue;
        for (uint64_t id : cells_[CellIndex(cx, cy)]) {
          const Point& p = positions_.at(id);
          const double d = Distance(q, p);
          if (heap.size() < k) {
            heap.push(NNResult{true, id, p, d});
          } else if (d < heap.top().distance) {
            heap.pop();
            heap.push(NNResult{true, id, p, d});
          }
        }
      }
    }
  }

  best.resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    best[i] = heap.top();
    heap.pop();
  }
  return best;
}

bool GridIndex::TryGetPosition(uint64_t id, Point* out) const {
  auto it = positions_.find(id);
  if (it == positions_.end()) return false;
  *out = it->second;
  return true;
}

}  // namespace casper::spatial
