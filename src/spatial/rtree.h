#ifndef CASPER_SPATIAL_RTREE_H_
#define CASPER_SPATIAL_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/geometry.h"

/// \file
/// A classic Guttman R-tree over (rectangle, id) entries. This is the
/// "traditional location-based database server" index that the paper's
/// privacy-aware query processor plugs into (§5.1.1: "it can be employed
/// using R-tree or any other methods"). Point data is stored as
/// degenerate rectangles.
///
/// Supported operations:
///  * Insert / Remove (quadratic split, Guttman condense-tree on delete)
///  * STR bulk load (Sort-Tile-Recursive) for static target sets
///  * Range query (all entries intersecting a window)
///  * Best-first nearest neighbor / k-nearest under two metrics:
///     - kMinDist: distance to the closest point of the entry rectangle
///       (ordinary NN; exact for point entries)
///     - kMaxDist: distance to the farthest corner of the entry rectangle
///       (the metric the private-data filter step needs, §5.2.1)

namespace casper::spatial {

class RTree {
 public:
  /// One stored object.
  struct Entry {
    Rect box;
    uint64_t id = 0;
  };

  /// Distance used to rank *entries* in NN search. Interior nodes are
  /// always ranked by MinDist to their MBR, which lower-bounds both
  /// metrics and keeps the search correct.
  enum class Metric { kMinDist, kMaxDist };

  /// Result of a (k-)NN probe.
  struct Neighbor {
    Rect box;
    uint64_t id = 0;
    double distance = 0.0;
  };

  /// `max_entries` is the node fan-out M (min fill is M * 0.4, >= 2).
  explicit RTree(int max_entries = 16);
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Build a packed tree from `entries` with Sort-Tile-Recursive.
  static RTree BulkLoad(std::vector<Entry> entries, int max_entries = 16);

  void Insert(const Rect& box, uint64_t id);

  /// Remove the entry matching (box, id) exactly. Returns false when no
  /// such entry exists.
  bool Remove(const Rect& box, uint64_t id);

  /// Append every entry whose rectangle intersects `window` to `*out`.
  void RangeQuery(const Rect& window, std::vector<Entry>* out) const;

  /// Visitor form; return false from the visitor to stop early.
  void RangeQuery(const Rect& window,
                  const std::function<bool(const Entry&)>& visit) const;

  /// Number of entries intersecting `window` without materializing them.
  size_t RangeCount(const Rect& window) const;

  /// Nearest entry to `q` under `metric`; empty vector when the tree is
  /// empty. Ties are broken arbitrarily but deterministically.
  std::vector<Neighbor> KNearest(const Point& q, size_t k,
                                 Metric metric = Metric::kMinDist) const;

  /// Convenience single-NN wrapper. `found` is false only on empty tree.
  struct NNResult {
    bool found = false;
    Neighbor neighbor;
  };
  NNResult Nearest(const Point& q, Metric metric = Metric::kMinDist) const;

  /// Every stored entry, in unspecified order. Used to rebuild packed
  /// companion indexes (FlatRTree) from the authoritative tree.
  std::vector<Entry> AllEntries() const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const;

  /// Bounding box of the whole tree (empty rect when empty).
  Rect bounds() const;

  /// Structural invariant check for tests: MBRs tight and covering,
  /// uniform leaf depth, fill factors respected (root exempt).
  bool CheckInvariants() const;

 private:
  struct Node;

  void InsertEntry(const Rect& box, uint64_t id, int target_level);
  Node* ChooseLeaf(Node* node, const Rect& box, int target_level);
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);
  void CondenseTree(Node* leaf);

  std::unique_ptr<Node> root_;
  int max_entries_;
  int min_entries_;
  size_t size_ = 0;
};

}  // namespace casper::spatial

#endif  // CASPER_SPATIAL_RTREE_H_
