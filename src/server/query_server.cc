#include "src/server/query_server.h"

#include <algorithm>

#include "src/common/codec.h"
#include "src/common/stopwatch.h"
#include "src/processor/density.h"
#include "src/processor/private_knn.h"
#include "src/processor/private_nn.h"
#include "src/processor/private_nn_private.h"
#include "src/processor/private_range.h"
#include "src/processor/public_nn_private.h"
#include "src/processor/public_range.h"

namespace casper::server {

QueryServer::QueryServer(const QueryServerOptions& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : obs::CasperMetrics::Default()) {}

void QueryServer::AddPublicTarget(const processor::PublicTarget& target) {
  public_store_.Insert(target);
  ExportEpochStats();
}

void QueryServer::SetPublicTargets(
    const std::vector<processor::PublicTarget>& targets) {
  public_store_ = processor::PublicTargetStore(targets);
  ExportEpochStats();
}

void QueryServer::ExportEpochStats() const {
  const spatial::EpochIndex::Stats stats[obs::kStoreCount] = {
      public_store_.epoch_stats(), private_store_.epoch_stats()};
  for (size_t s = 0; s < obs::kStoreCount; ++s) {
    metrics_->store_epoch[s]->Set(static_cast<double>(stats[s].published));
    metrics_->store_snapshots_reclaimed[s]->Set(
        static_cast<double>(stats[s].reclaimed));
    metrics_->store_rebuilds[s]->Set(static_cast<double>(stats[s].rebuilds));
    metrics_->store_delta_entries[s]->Set(
        static_cast<double>(stats[s].delta_entries));
    metrics_->store_tombstones[s]->Set(
        static_cast<double>(stats[s].tombstones));
  }
}

const Status* QueryServer::ReplayOutcome(uint64_t request_id) const {
  if (request_id == 0) return nullptr;
  auto it = applied_.find(request_id);
  return it != applied_.end() ? &it->second : nullptr;
}

void QueryServer::RecordOutcome(uint64_t request_id, const Status& outcome) {
  if (request_id == 0 || options_.idempotency_window == 0) return;
  if (applied_.emplace(request_id, outcome).second) {
    applied_order_.push_back(request_id);
    if (applied_order_.size() > options_.idempotency_window) {
      applied_.erase(applied_order_.front());
      applied_order_.pop_front();
    }
  }
}

void QueryServer::MarkRetired(uint64_t handle) {
  if (retired_.insert(handle).second) {
    retired_order_.push_back(handle);
    // At least as deep as the outcome window: a replay old enough to
    // have lost its outcome entry must still find the retirement mark.
    const size_t bound = std::max<size_t>(options_.idempotency_window, 64);
    if (retired_order_.size() > bound) {
      retired_.erase(retired_order_.front());
      retired_order_.pop_front();
    }
  }
}

void QueryServer::RetireHandle(uint64_t handle) {
  auto it = stored_regions_.find(handle);
  if (it != stored_regions_.end()) {
    private_store_.Remove(processor::PrivateTarget{handle, it->second});
    stored_regions_.erase(it);
  }
  MarkRetired(handle);
}

Status QueryServer::Apply(const RegionUpsertMsg& msg) {
  if (const Status* replay = ReplayOutcome(msg.request_id)) return *replay;
  const Status outcome = ApplyUpsert(msg);
  RecordOutcome(msg.request_id, outcome);
  ExportEpochStats();
  return outcome;
}

Status QueryServer::ApplyUpsert(const RegionUpsertMsg& msg) {
  if (retired_.count(msg.handle) > 0) {
    // A replay old enough to have fallen out of the outcome window,
    // arriving after its handle was already replaced or removed:
    // re-inserting would resurrect obsolete state next to its
    // successor, so the stale upsert converges to a no-op.
    return Status::OK();
  }
  if (msg.has_replaces) RetireHandle(msg.replaces);
  auto it = stored_regions_.find(msg.handle);
  if (it != stored_regions_.end()) {
    // Re-execution (beyond the window, or against a restarted peer):
    // converge on the message's region instead of double-inserting.
    private_store_.Remove(processor::PrivateTarget{msg.handle, it->second});
    it->second = msg.region;
  } else {
    stored_regions_[msg.handle] = msg.region;
  }
  private_store_.Insert(processor::PrivateTarget{msg.handle, msg.region});
  return Status::OK();
}

Status QueryServer::Apply(const RegionRemoveMsg& msg) {
  if (const Status* replay = ReplayOutcome(msg.request_id)) return *replay;
  const Status outcome = ApplyRemove(msg);
  RecordOutcome(msg.request_id, outcome);
  ExportEpochStats();
  return outcome;
}

Status QueryServer::ApplyRemove(const RegionRemoveMsg& msg) {
  auto it = stored_regions_.find(msg.handle);
  if (it == stored_regions_.end()) {
    // Removal is naturally idempotent: an unknown handle is a replay
    // beyond the window (or a remove that raced a snapshot). Converge
    // on "absent" and retire the handle so its upsert cannot return.
    MarkRetired(msg.handle);
    return Status::OK();
  }
  if (!private_store_.Remove(
          processor::PrivateTarget{msg.handle, it->second})) {
    return Status::Internal("stored region missing from private store");
  }
  stored_regions_.erase(it);
  MarkRetired(msg.handle);
  return Status::OK();
}

Status QueryServer::Load(const SnapshotMsg& snapshot) {
  return LoadRegions(snapshot.regions);
}

Status QueryServer::Load(const SnapshotView& snapshot) {
  return LoadRegions(snapshot.regions.Materialize());
}

Status QueryServer::LoadRegions(
    const std::vector<processor::PrivateTarget>& regions) {
  stored_regions_.clear();
  stored_regions_.reserve(regions.size());
  for (const processor::PrivateTarget& target : regions) {
    stored_regions_[target.id] = target.region;
  }
  private_store_ = processor::PrivateTargetStore(regions);
  // A snapshot replaces the whole store, so outcomes recorded for the
  // incremental stream no longer describe current state; retries of
  // pre-snapshot maintenance must re-apply against the new store.
  applied_.clear();
  applied_order_.clear();
  retired_.clear();
  retired_order_.clear();
  ExportEpochStats();
  return Status::OK();
}

namespace {

// "SRV1": rejects a page that is not a server-tier manifest.
constexpr uint32_t kManifestMagic = 0x31565253u;

constexpr size_t kRegionRecordBytes = 8 + 4 * 8;  // handle + Rect.

}  // namespace

Status QueryServer::Save(storage::IStorageManager* sm) const {
  CASPER_ASSIGN_OR_RETURN(public_root, public_store_.SaveTo(sm));
  CASPER_ASSIGN_OR_RETURN(private_root, private_store_.SaveTo(sm));

  wire::Writer rw;
  rw.Count(stored_regions_.size());
  for (const auto& [handle, region] : stored_regions_) {
    rw.U64(handle);
    rw.R(region);
  }
  const std::string regions_page = rw.Take();
  CASPER_ASSIGN_OR_RETURN(regions_id,
                          sm->Store(storage::kNoPage, regions_page));

  wire::Writer w;
  w.U32(kManifestMagic);
  w.U64(public_root);
  w.U64(private_root);
  w.U64(regions_id);
  const std::string manifest = w.Take();
  CASPER_ASSIGN_OR_RETURN(manifest_id, sm->Store(storage::kNoPage, manifest));
  CASPER_RETURN_IF_ERROR(sm->SetRoot(kManifestRootSlot, manifest_id));
  return sm->Flush();
}

Status QueryServer::Open(storage::IStorageManager* sm) {
  CASPER_ASSIGN_OR_RETURN(manifest_id, sm->Root(kManifestRootSlot));
  if (manifest_id == storage::kNoPage) {
    return Status::NotFound("no server checkpoint in storage");
  }
  std::string bytes;
  CASPER_RETURN_IF_ERROR(sm->Load(manifest_id, &bytes));
  wire::Reader r(bytes);
  if (r.U32() != kManifestMagic || r.failed()) {
    return Status::InvalidArgument("not a server manifest page");
  }
  const storage::PageId public_root = r.U64();
  const storage::PageId private_root = r.U64();
  const storage::PageId regions_id = r.U64();
  CASPER_RETURN_IF_ERROR(r.Finish("server manifest page"));

  CASPER_ASSIGN_OR_RETURN(
      public_store, processor::PublicTargetStore::LoadFrom(sm, public_root));
  CASPER_ASSIGN_OR_RETURN(
      private_store,
      processor::PrivateTargetStore::LoadFrom(sm, private_root));

  std::string region_bytes;
  CASPER_RETURN_IF_ERROR(sm->Load(regions_id, &region_bytes));
  wire::Reader rr(region_bytes);
  const size_t n = rr.Count(kRegionRecordBytes);
  std::unordered_map<uint64_t, Rect> regions;
  regions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t handle = rr.U64();
    regions[handle] = rr.R();
  }
  CASPER_RETURN_IF_ERROR(rr.Finish("server regions page"));

  // Only swap state in once every piece loaded: a failed Open leaves
  // the server untouched.
  public_store_ = std::move(public_store);
  private_store_ = std::move(private_store);
  stored_regions_ = std::move(regions);
  // A reopen is a new process lifetime; recorded maintenance outcomes
  // do not survive it (same contract as a bulk snapshot Load).
  applied_.clear();
  applied_order_.clear();
  retired_.clear();
  retired_order_.clear();
  ExportEpochStats();
  return Status::OK();
}

Result<CandidateListMsg> QueryServer::Execute(
    const CloakedQueryMsg& query,
    processor::ConcurrentQueryCache* cache) const {
  Result<CandidateListMsg> result = ExecuteImpl(query, cache);
  const auto kind = static_cast<size_t>(query.kind);
  if (kind < obs::kQueryKindCount) {
    if (!result.ok()) {
      metrics_->query_errors_total[kind]->Increment();
    } else {
      metrics_->queries_total[kind]->Increment();
      metrics_->query_seconds[kind]->Observe(result->processor_seconds);
      metrics_->candidates[kind]->Observe(
          static_cast<double>(RecordCount(result->payload)));
    }
  }
  return result;
}

Result<CandidateListMsg> QueryServer::ExecuteImpl(
    const CloakedQueryMsg& query,
    processor::ConcurrentQueryCache* cache) const {
  CandidateListMsg response;
  response.kind = query.kind;
  Stopwatch watch;
  switch (query.kind) {
    case QueryKind::kNearestPublic: {
      Result<processor::PublicCandidateList> answer =
          cache != nullptr
              ? cache->Query(query.cloak)
              : processor::PrivateNearestNeighbor(public_store_, query.cloak,
                                                  options_.filter_policy);
      if (!answer.ok()) return answer.status();
      response.processor_seconds = watch.ElapsedSeconds();
      response.payload = std::move(answer).value();
      return response;
    }
    case QueryKind::kKNearestPublic: {
      CASPER_ASSIGN_OR_RETURN(
          answer, processor::PrivateKNearestNeighbors(
                      public_store_, query.cloak, query.k));
      response.processor_seconds = watch.ElapsedSeconds();
      response.payload = std::move(answer);
      return response;
    }
    case QueryKind::kRangePublic: {
      CASPER_ASSIGN_OR_RETURN(
          answer, processor::PrivateRangeOverPublic(public_store_, query.cloak,
                                                    query.radius));
      response.processor_seconds = watch.ElapsedSeconds();
      response.payload = std::move(answer);
      return response;
    }
    case QueryKind::kNearestPrivate: {
      processor::PrivateNNOptions nn_options;
      nn_options.policy = options_.filter_policy;
      // The requester's own stored region rides along as an opaque
      // handle; left eligible it would win every filter probe and
      // starve the actual buddies.
      if (query.has_exclude) nn_options.exclude_id = query.exclude_handle;
      CASPER_ASSIGN_OR_RETURN(answer,
                              processor::PrivateNearestNeighborOverPrivate(
                                  private_store_, query.cloak, nn_options));
      response.processor_seconds = watch.ElapsedSeconds();
      response.payload = std::move(answer);
      return response;
    }
    case QueryKind::kPublicNearest: {
      CASPER_ASSIGN_OR_RETURN(answer,
                              processor::PublicNearestNeighborOverPrivate(
                                  private_store_, query.point));
      response.processor_seconds = watch.ElapsedSeconds();
      response.payload = std::move(answer);
      return response;
    }
    case QueryKind::kPublicRange: {
      CASPER_ASSIGN_OR_RETURN(
          answer, processor::PublicRangeCount(private_store_, query.region));
      response.processor_seconds = watch.ElapsedSeconds();
      response.payload = std::move(answer);
      return response;
    }
    case QueryKind::kDensity: {
      CASPER_ASSIGN_OR_RETURN(
          answer, processor::ExpectedDensity(private_store_,
                                             options_.density_extent,
                                             query.cols, query.rows));
      response.processor_seconds = watch.ElapsedSeconds();
      response.payload = std::move(answer);
      return response;
    }
  }
  return Status::InvalidArgument("unknown query kind");
}

}  // namespace casper::server
