#ifndef CASPER_SERVER_QUERY_SERVER_H_
#define CASPER_SERVER_QUERY_SERVER_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/casper/messages.h"
#include "src/obs/casper_metrics.h"
#include "src/processor/concurrent_query_cache.h"
#include "src/processor/target_store.h"
#include "src/storage/storage_manager.h"

/// \file
/// The privacy-aware database server tier (Figure 1, right box). It
/// stores the public targets and the cloaked user regions, and answers
/// every query kind of the framework — but it speaks only the wire
/// protocol of src/casper/messages.h: cloaked queries in, candidate
/// lists out, region maintenance through opaque pseudonym handles. By
/// construction (and enforced by tests/tier_boundary_test.cc) nothing
/// in this tier can name a user id or the pseudonym registry; the §3
/// pseudonymity claim holds at compile time, not by convention.

namespace casper::server {

struct QueryServerOptions {
  processor::FilterPolicy filter_policy =
      processor::FilterPolicy::kFourFilters;

  /// Extent of density maps (the managed space; public configuration,
  /// not user data).
  Rect density_extent = Rect(0.0, 0.0, 1.0, 1.0);

  /// Instrument bundle; null resolves to obs::CasperMetrics::Default().
  /// The server tier records only aggregate latencies, counts, and
  /// candidate-list sizes — nothing identity-shaped crosses into it.
  obs::CasperMetrics* metrics = nullptr;

  /// Bound of the idempotency window (FIFO eviction): maintenance
  /// request ids whose outcome is remembered for replay, and retired
  /// handles remembered so a replay arriving *after* eviction
  /// re-executes safely instead of resurrecting replaced state. Size it
  /// so a client retrying within any sane backoff horizon hits the
  /// window; memory stays O(window). 0 disables replay memory entirely
  /// (re-execution is still safe, just not answer-stable).
  size_t idempotency_window = 8192;
};

/// The server tier. Mutations (target edits, region maintenance,
/// snapshot loads) are single-threaded by design; Execute() is const
/// and read-only over the stores, so it may be fanned across threads
/// provided no mutation runs concurrently — the same contract as the
/// underlying stores.
class QueryServer : public PrivateStoreSink {
 public:
  explicit QueryServer(const QueryServerOptions& options);

  // --- Public data (stored exactly) -----------------------------------

  void AddPublicTarget(const processor::PublicTarget& target);
  void SetPublicTargets(const std::vector<processor::PublicTarget>& targets);

  // --- Private data (cloaked regions under pseudonym handles) ---------

  /// Incremental maintenance stream from the anonymizer. Messages that
  /// carry a non-zero request_id are idempotent: a duplicated delivery
  /// (an at-least-once transport retrying a request whose response was
  /// lost) replays the originally recorded outcome instead of
  /// double-applying the mutation.
  Status Apply(const RegionUpsertMsg& msg) override;
  Status Apply(const RegionRemoveMsg& msg) override;

  /// Bulk snapshot replacing the whole private store (the batch
  /// SyncPrivateData model; regions are STR bulk-loaded).
  Status Load(const SnapshotMsg& snapshot);

  /// Zero-copy variant: decodes each (handle, region) record exactly
  /// once, straight from the wire frame into the bulk-load vector —
  /// no intermediate SnapshotMsg.
  Status Load(const SnapshotView& snapshot);

  // --- Query evaluation -----------------------------------------------

  /// Answers one identity-stripped query: runs the privacy-aware
  /// processor for the message's kind and returns the candidate list
  /// plus the server-side processing cost (Figure 17's processor
  /// share). `cache`, when non-null, memoizes kNearestPublic candidate
  /// lists by cloak rectangle (answers identical to the direct path).
  Result<CandidateListMsg> Execute(
      const CloakedQueryMsg& query,
      processor::ConcurrentQueryCache* cache = nullptr) const;

  // --- Persistence ------------------------------------------------------

  /// Checkpoint the whole server tier — both target stores and the
  /// handle -> region map — to `sm`, record the manifest in root slot
  /// kManifestRootSlot, and Flush() (the durable commit point on a
  /// disk-backed manager).
  Status Save(storage::IStorageManager* sm) const;

  /// Replace this server's state with the last committed checkpoint on
  /// `sm`. The idempotency window resets: a reopen is a new process
  /// lifetime, the same contract as a bulk snapshot Load.
  Status Open(storage::IStorageManager* sm);

  /// Root slot holding the server manifest page.
  static constexpr size_t kManifestRootSlot = 0;

  // --- Introspection ----------------------------------------------------

  const processor::PublicTargetStore& public_store() const {
    return public_store_;
  }
  const processor::PrivateTargetStore& private_store() const {
    return private_store_;
  }
  const QueryServerOptions& options() const { return options_; }

  /// Maintenance request ids whose outcome is remembered for replay.
  size_t applied_request_count() const { return applied_.size(); }

 private:
  Result<CandidateListMsg> ExecuteImpl(
      const CloakedQueryMsg& query,
      processor::ConcurrentQueryCache* cache) const;

  Status ApplyUpsert(const RegionUpsertMsg& msg);
  Status ApplyRemove(const RegionRemoveMsg& msg);

  Status LoadRegions(const std::vector<processor::PrivateTarget>& regions);

  /// Mirror both stores' epoch/reclamation counters into the obs
  /// gauges. Called after every mutation (the read path never touches
  /// metrics state, keeping Execute() lock-free end to end).
  void ExportEpochStats() const;

  /// Outcome previously recorded for `request_id`, or nullptr when the
  /// id is unkeyed (0) or unseen.
  const Status* ReplayOutcome(uint64_t request_id) const;
  void RecordOutcome(uint64_t request_id, const Status& outcome);

  /// Drop `handle` from the stores if present and remember it as
  /// retired, so a stale upsert replayed after window eviction cannot
  /// resurrect it.
  void RetireHandle(uint64_t handle);
  void MarkRetired(uint64_t handle);

  QueryServerOptions options_;
  obs::CasperMetrics* metrics_;
  processor::PublicTargetStore public_store_;
  processor::PrivateTargetStore private_store_;
  /// handle -> stored region, so maintenance messages can address
  /// regions by pseudonym handle alone.
  std::unordered_map<uint64_t, Rect> stored_regions_;
  /// request_id -> recorded outcome, FIFO-bounded by the configured
  /// idempotency window.
  std::unordered_map<uint64_t, Status> applied_;
  std::deque<uint64_t> applied_order_;
  /// Handles replaced or removed, FIFO-bounded like `applied_`: the
  /// safety net for replays that outlive their window entry.
  std::unordered_set<uint64_t> retired_;
  std::deque<uint64_t> retired_order_;
};

}  // namespace casper::server

#endif  // CASPER_SERVER_QUERY_SERVER_H_
