#include "src/server/batch_query_engine.h"

#include "src/common/stopwatch.h"

namespace casper::server {

BatchQueryEngine::BatchQueryEngine(CasperService* service,
                                   const BatchEngineOptions& options)
    : service_(service), options_(options),
      pool_(options.threads > 0 ? options.threads : 1) {
  CASPER_DCHECK(service != nullptr);
  if (options_.use_cache) {
    cache_ = std::make_unique<processor::ConcurrentQueryCache>(
        &service_->public_store(), options_.cache_capacity,
        service_->options().filter_policy, options_.cache_shards);
  }
}

void BatchQueryEngine::InvalidatePublicCache() {
  if (cache_) cache_->InvalidateAll();
}

void BatchQueryEngine::EvaluateOne(const BatchQueryRequest& request,
                                   const anonymizer::CloakingResult& cloak,
                                   double anonymizer_seconds,
                                   BatchQueryResponse* out) const {
  switch (request.kind) {
    case QueryKind::kNearestPublic: {
      auto r = service_->EvaluateNearestPublic(request.uid, cloak,
                                               cache_.get());
      out->status = r.status();
      if (r.ok()) {
        out->nearest_public = std::move(r).value();
        out->nearest_public->timing.anonymizer_seconds = anonymizer_seconds;
      }
      break;
    }
    case QueryKind::kKNearestPublic: {
      auto r = service_->EvaluateKNearestPublic(request.uid, cloak,
                                                request.k);
      out->status = r.status();
      if (r.ok()) {
        out->k_nearest_public = std::move(r).value();
        out->k_nearest_public->timing.anonymizer_seconds =
            anonymizer_seconds;
      }
      break;
    }
    case QueryKind::kRangePublic: {
      auto r = service_->EvaluateRangePublic(request.uid, cloak,
                                             request.radius);
      out->status = r.status();
      if (r.ok()) {
        out->range_public = std::move(r).value();
        out->range_public->timing.anonymizer_seconds = anonymizer_seconds;
      }
      break;
    }
    case QueryKind::kNearestPrivate: {
      auto r = service_->EvaluateNearestPrivate(request.uid, cloak);
      out->status = r.status();
      if (r.ok()) {
        out->nearest_private = std::move(r).value();
        out->nearest_private->timing.anonymizer_seconds = anonymizer_seconds;
      }
      break;
    }
  }
}

BatchResult BatchQueryEngine::Execute(
    const std::vector<BatchQueryRequest>& requests) {
  const size_t n = requests.size();
  BatchResult result;
  result.responses.resize(n);
  result.summary.batch_size = n;
  Stopwatch wall;

  // Phase 1 — sequential cloaking. The anonymizer mutates bookkeeping
  // (stats, adaptive structure on other entry points), so this phase
  // stays on the calling thread; it is also the cheap half (Figure 17:
  // anonymizer time is negligible next to processor time).
  std::vector<std::optional<anonymizer::CloakingResult>> cloaks(n);
  std::vector<double> anonymizer_seconds(n, 0.0);
  Stopwatch cloak_watch;
  for (size_t i = 0; i < n; ++i) {
    result.responses[i].kind = requests[i].kind;
    Stopwatch watch;
    auto cloak = service_->anonymizer().Cloak(requests[i].uid);
    anonymizer_seconds[i] = watch.ElapsedSeconds();
    if (!cloak.ok()) {
      result.responses[i].status = cloak.status();
      continue;
    }
    cloaks[i] = std::move(cloak).value();
  }
  result.summary.cloak_seconds = cloak_watch.ElapsedSeconds();

  // Phase 2 — parallel read-only evaluation. Each task owns exactly its
  // response slot; the futures' completion orders the writes before the
  // aggregation below, and the shard-locked cache is the only shared
  // mutable state.
  std::vector<std::future<void>> done;
  done.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!cloaks[i].has_value()) continue;
    done.push_back(pool_.Submit([this, &requests, &cloaks,
                                 &anonymizer_seconds, &result, i] {
      EvaluateOne(requests[i], *cloaks[i], anonymizer_seconds[i],
                  &result.responses[i]);
    }));
  }
  for (std::future<void>& f : done) f.get();

  // Aggregate: throughput, latency percentiles, Figure-17 totals.
  result.summary.wall_seconds = wall.ElapsedSeconds();
  if (result.summary.wall_seconds > 0.0) {
    result.summary.queries_per_second =
        static_cast<double>(n) / result.summary.wall_seconds;
  }
  SummaryStats processor_micros;
  for (const BatchQueryResponse& response : result.responses) {
    if (!response.ok()) {
      ++result.summary.error_count;
      continue;
    }
    ++result.summary.ok_count;
    const TimingBreakdown* timing = response.timing();
    CASPER_DCHECK(timing != nullptr);
    processor_micros.Add(timing->processor_seconds * 1e6);
    result.summary.totals.anonymizer_seconds += timing->anonymizer_seconds;
    result.summary.totals.processor_seconds += timing->processor_seconds;
    result.summary.totals.transmission_seconds +=
        timing->transmission_seconds;
  }
  result.summary.processor_p50_micros = processor_micros.Quantile(0.50);
  result.summary.processor_p95_micros = processor_micros.Quantile(0.95);
  result.summary.processor_p99_micros = processor_micros.Quantile(0.99);
  result.summary.processor_mean_micros =
      processor_micros.count() > 0 ? processor_micros.mean() : 0.0;
  if (cache_) result.summary.cache = cache_->stats();
  return result;
}

}  // namespace casper::server
