#ifndef CASPER_SERVER_BATCH_QUERY_ENGINE_H_
#define CASPER_SERVER_BATCH_QUERY_ENGINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/casper/casper.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/processor/concurrent_query_cache.h"

/// \file
/// Parallel batch query engine: answers a heterogeneous batch of
/// private queries (NN / k-NN / range over public data, NN over private
/// data) by splitting each query along the paper's own architectural
/// seam. Cloaking runs sequentially on the calling thread — the
/// anonymizer is the paper's single trusted middleware process and its
/// structures are not thread-safe — while the expensive server-side
/// evaluation plus client-side refinement, which are read-only over the
/// target stores, fan out across a fixed ThreadPool. The only shared
/// mutable state during the parallel phase is the shard-locked
/// candidate-list cache.
///
/// Responses come back in request order regardless of completion order,
/// and the engine aggregates the per-query TimingBreakdowns into
/// throughput and latency percentiles — the axis the scaling
/// experiments (and the related LBS-performance literature) measure.

namespace casper::server {

enum class QueryKind {
  kNearestPublic,   ///< Private NN over public data (Algorithm 2).
  kKNearestPublic,  ///< Private k-NN over public data.
  kRangePublic,     ///< Private circular range over public data.
  kNearestPrivate,  ///< Private NN over private data (buddies).
};

struct BatchQueryRequest {
  QueryKind kind = QueryKind::kNearestPublic;
  anonymizer::UserId uid = 0;
  size_t k = 1;        ///< kKNearestPublic only.
  double radius = 0.0; ///< kRangePublic only.

  static BatchQueryRequest NearestPublic(anonymizer::UserId uid) {
    return {QueryKind::kNearestPublic, uid, 1, 0.0};
  }
  static BatchQueryRequest KNearestPublic(anonymizer::UserId uid, size_t k) {
    return {QueryKind::kKNearestPublic, uid, k, 0.0};
  }
  static BatchQueryRequest RangePublic(anonymizer::UserId uid,
                                       double radius) {
    return {QueryKind::kRangePublic, uid, 1, radius};
  }
  static BatchQueryRequest NearestPrivate(anonymizer::UserId uid) {
    return {QueryKind::kNearestPrivate, uid, 1, 0.0};
  }
};

/// One slot per request, in request order. Exactly one payload is set
/// when `status.ok()`; none otherwise.
struct BatchQueryResponse {
  QueryKind kind = QueryKind::kNearestPublic;
  Status status;
  std::optional<PublicNNResponse> nearest_public;
  std::optional<PublicKnnResponse> k_nearest_public;
  std::optional<PublicRangeResponse> range_public;
  std::optional<PrivateNNResponse> nearest_private;

  bool ok() const { return status.ok(); }

  /// Timing of whichever payload is set; nullptr on error slots.
  const TimingBreakdown* timing() const {
    if (nearest_public) return &nearest_public->timing;
    if (k_nearest_public) return &k_nearest_public->timing;
    if (range_public) return &range_public->timing;
    if (nearest_private) return &nearest_private->timing;
    return nullptr;
  }
};

struct BatchEngineOptions {
  /// Worker threads evaluating queries (the cloaking phase is always
  /// sequential).
  size_t threads = 4;

  /// Memoize NN candidate lists by cloak rectangle across the batch
  /// (and across batches, until the target set changes).
  bool use_cache = true;
  size_t cache_capacity = 1024;
  size_t cache_shards = processor::ConcurrentQueryCache::kDefaultShards;
};

/// Aggregate cost of one Execute() call.
struct BatchSummary {
  size_t batch_size = 0;
  size_t ok_count = 0;
  size_t error_count = 0;

  double wall_seconds = 0.0;        ///< Whole batch, cloaking included.
  double cloak_seconds = 0.0;       ///< Sequential anonymizer phase.
  double queries_per_second = 0.0;  ///< batch_size / wall_seconds.

  /// Per-query processor (server evaluation) latency percentiles, in
  /// microseconds, over the successful slots.
  double processor_p50_micros = 0.0;
  double processor_p95_micros = 0.0;
  double processor_p99_micros = 0.0;
  double processor_mean_micros = 0.0;

  /// Summed per-query breakdown (Figure 17's decomposition, batch-wide).
  TimingBreakdown totals;

  /// Cache counters accumulated over this engine's lifetime.
  processor::QueryCacheStats cache;
};

struct BatchResult {
  std::vector<BatchQueryResponse> responses;  ///< Request order.
  BatchSummary summary;
};

/// The engine borrows the service; the service must outlive it. One
/// Execute() call runs at a time per engine (callers serialize), and no
/// mutating CasperService call may run concurrently with Execute() —
/// the same external-synchronization contract as the underlying stores.
class BatchQueryEngine {
 public:
  explicit BatchQueryEngine(CasperService* service,
                            const BatchEngineOptions& options = {});

  /// Answer the whole batch; responses[i] corresponds to requests[i].
  /// Per-query failures (unknown uid, unsynced private data, ...) land
  /// in the slot's status and never abort the rest of the batch.
  BatchResult Execute(const std::vector<BatchQueryRequest>& requests);

  /// Must be called after any public-target mutation when the cache is
  /// enabled (mirrors CachingQueryProcessor::InvalidateAll).
  void InvalidatePublicCache();

  const BatchEngineOptions& options() const { return options_; }
  const processor::ConcurrentQueryCache* cache() const {
    return cache_.get();
  }

 private:
  void EvaluateOne(const BatchQueryRequest& request,
                   const anonymizer::CloakingResult& cloak,
                   double anonymizer_seconds, BatchQueryResponse* out) const;

  CasperService* service_;
  BatchEngineOptions options_;
  ThreadPool pool_;
  std::unique_ptr<processor::ConcurrentQueryCache> cache_;
};

}  // namespace casper::server

#endif  // CASPER_SERVER_BATCH_QUERY_ENGINE_H_
