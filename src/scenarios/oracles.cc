#include "src/scenarios/oracles.h"

#include <algorithm>
#include <cmath>

#include "src/casper/messages.h"
#include "src/processor/private_nn.h"

namespace casper::scenarios {
namespace {

/// Tolerance for comparing independently computed distances; geometry
/// here is a handful of flops, so anything beyond rounding noise is a
/// real violation.
constexpr double kDistanceSlack = 1e-9;

/// The stored answer on the wire, normalized for byte comparison.
CandidateListMsg WireOf(const processor::PublicCandidateList& list) {
  CandidateListMsg msg;
  msg.kind = QueryKind::kNearestPublic;
  msg.payload = list;
  return msg;
}

}  // namespace

void CheckNnInclusiveness(CasperService* service,
                          const std::vector<processor::PublicTarget>& targets,
                          uint64_t uid, OracleStats* stats) {
  if (targets.empty()) return;
  auto position = service->ClientPosition(uid);
  if (!position.ok()) {
    ++stats->skipped;  // Deregistered between sampling and checking.
    return;
  }
  auto response = service->QueryNearestPublic(uid);
  if (!response.ok()) {
    ++stats->skipped;  // Chaos: the stack refused, it did not lie.
    return;
  }
  ++stats->nn_checks;

  double best = SquaredDistance(targets.front().position, *position);
  for (const processor::PublicTarget& t : targets) {
    best = std::min(best, SquaredDistance(t.position, *position));
  }

  // Theorem 1: some true nearest target (distance == best; ties are
  // interchangeable) must be in the candidate list, and the client-side
  // refinement must land exactly on that distance.
  bool candidate_at_best = false;
  for (const processor::PublicTarget& t : response->server_answer.candidates) {
    if (SquaredDistance(t.position, *position) <= best + kDistanceSlack) {
      candidate_at_best = true;
      break;
    }
  }
  const double refined =
      SquaredDistance(response->exact.position, *position);
  if (!candidate_at_best || refined > best + kDistanceSlack) {
    ++stats->nn_violations;
  }
}

void CheckRegionPerUser(CasperService* service, OracleStats* stats) {
  auto census =
      service->QueryPublicRange(service->options().pyramid.space);
  if (!census.ok()) {
    ++stats->skipped;
    return;
  }
  ++stats->region_checks;
  if (census->possible != service->user_count()) {
    ++stats->region_violations;
  }
}

void CheckContinuousAnswer(const processor::ContinuousQueryManager& manager,
                           const processor::PublicTargetStore& store,
                           processor::QueryId qid, bool recomputed,
                           OracleStats* stats) {
  auto cloak = manager.CloakOf(qid);
  auto stored = manager.Answer(qid);
  if (!cloak.ok() || !stored.ok()) {
    ++stats->skipped;
    return;
  }
  auto fresh =
      processor::PrivateNearestNeighbor(store, *cloak, stored->policy);
  if (!fresh.ok()) {
    ++stats->skipped;
    return;
  }
  ++stats->continuous_checks;

  if (recomputed) {
    // A full evaluation just ran for this cloak: the stored answer must
    // be byte-identical to an independent fresh one on the wire.
    if (Encode(WireOf(*stored)) != Encode(WireOf(*fresh))) {
      ++stats->continuous_violations;
    }
    return;
  }

  // Shortcut path (containment reuse / insert patch): the stored list
  // is allowed to be a superset of the minimal fresh list, but it must
  // contain it, and both must refine to the same nearest target from
  // any position in the cloak.
  for (const processor::PublicTarget& t : fresh->candidates) {
    const bool held = std::any_of(
        stored->candidates.begin(), stored->candidates.end(),
        [&t](const processor::PublicTarget& s) { return s == t; });
    if (!held) {
      ++stats->continuous_violations;
      return;
    }
  }
  const Point probes[] = {
      cloak->Center(),
      cloak->min,
      cloak->max,
      Point{cloak->min.x, cloak->max.y},
      Point{cloak->max.x, cloak->min.y},
  };
  for (const Point& p : probes) {
    auto refined_stored = processor::RefineNearest(stored->candidates, p);
    auto refined_fresh = processor::RefineNearest(fresh->candidates, p);
    if (!refined_stored.ok() || !refined_fresh.ok()) {
      ++stats->continuous_violations;
      return;
    }
    const double ds = SquaredDistance(refined_stored->position, p);
    const double df = SquaredDistance(refined_fresh->position, p);
    if (std::abs(ds - df) > kDistanceSlack) {
      ++stats->continuous_violations;
      return;
    }
  }
}

}  // namespace casper::scenarios
