#ifndef CASPER_SCENARIOS_STACK_H_
#define CASPER_SCENARIOS_STACK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/casper/casper.h"
#include "src/sharding/shard_endpoint.h"
#include "src/sharding/shard_router.h"
#include "src/transport/fault_injection.h"
#include "src/transport/listener.h"
#include "src/transport/socket_channel.h"

/// \file
/// Stack configurations a scenario can run against. A scenario is a
/// workload, not a deployment: the same tick loop must drive the
/// in-process facade, a real-socket two-tier split, or a sharded fleet
/// unchanged. ScenarioStack owns whatever the chosen configuration
/// needs (listener, router, fault injectors) and exposes the one
/// CasperService the engine talks to, plus target provisioning that
/// reaches the backend the wire traffic actually lands on (the facade's
/// SetPublicTargets writes to its in-process server, which a decorated
/// channel bypasses).

namespace casper::scenarios {

enum class StackKind {
  kFacade,   ///< Classic in-process three-tier service.
  kSocket,   ///< Server tier behind an in-process SocketListener (UDS).
  kShards,   ///< ShardRouter fleet behind a ShardChannel.
  kConnect,  ///< External server reached over --connect=ADDR.
};

const char* StackKindName(StackKind kind);

struct StackOptions {
  StackKind kind = StackKind::kFacade;
  size_t shards = 4;          ///< kShards only.
  std::string connect;        ///< kConnect only: `unix:/path` or host:port.
  anonymizer::PyramidConfig pyramid;
  size_t idempotency_window = 8192;

  /// Chaos faults injected into the tier channel (per shard for
  /// kShards). Zero rates = no injection.
  transport::FaultProfile chaos;
  uint64_t chaos_seed = 0xC4A05;

  /// Instrument bundle threaded into the service (null = process
  /// default). Scenario runs inject a fresh bundle so the report's
  /// metrics snapshot covers exactly one run.
  obs::CasperMetrics* metrics = nullptr;
};

/// One assembled deployment. Everything is torn down in reverse order
/// by the destructor; the service must not be used after that.
class ScenarioStack {
 public:
  static Result<std::unique_ptr<ScenarioStack>> Create(
      const StackOptions& options);
  ~ScenarioStack();

  ScenarioStack(const ScenarioStack&) = delete;
  ScenarioStack& operator=(const ScenarioStack&) = delete;

  CasperService& service() { return *service_; }

  /// Install public targets on the backend the service's wire traffic
  /// reaches (in-process server, socket-side server, or the shard
  /// fleet). For kConnect the remote side must have been provisioned
  /// with the same (count, seed) via `casper_cli serve --targets=N
  /// --targets-seed=S`; this call only records the local oracle copy.
  void ProvisionTargets(const std::vector<processor::PublicTarget>& targets);

  /// The provisioned target list — the oracle's ground truth.
  const std::vector<processor::PublicTarget>& targets() const {
    return targets_;
  }

  StackKind kind() const { return options_.kind; }
  const StackOptions& options() const { return options_; }

  /// Human-readable stack label for reports: "facade", "socket",
  /// "shards:4", "connect".
  std::string Label() const;

 private:
  explicit ScenarioStack(const StackOptions& options) : options_(options) {}

  StackOptions options_;
  std::vector<processor::PublicTarget> targets_;

  // kSocket backend: a QueryServer behind an in-process UDS listener.
  std::unique_ptr<server::QueryServer> socket_server_;
  std::unique_ptr<transport::ServerEndpoint> socket_endpoint_;
  std::unique_ptr<transport::SocketListener> listener_;
  std::string socket_address_;

  // kShards backend.
  std::unique_ptr<sharding::ShardRouter> router_;
  std::unique_ptr<sharding::ShardEndpoint> shard_endpoint_;

  std::unique_ptr<CasperService> service_;
};

}  // namespace casper::scenarios

#endif  // CASPER_SCENARIOS_STACK_H_
