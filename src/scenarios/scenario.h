#ifndef CASPER_SCENARIOS_SCENARIO_H_
#define CASPER_SCENARIOS_SCENARIO_H_

#include <functional>
#include <string>
#include <vector>

#include "src/casper/workload.h"
#include "src/common/stats.h"
#include "src/processor/continuous.h"
#include "src/scenarios/oracles.h"
#include "src/scenarios/stack.h"

/// \file
/// The named-scenario engine (ROADMAP item 5a): seed-reproducible
/// city-scale workloads replayed tick by tick against any stack
/// configuration. Each tick drives road-network movement, cloak
/// updates (with churn), and a mixed query batch; scripts shape the
/// run over time (rush-hour congestion, a flash crowd converging, a
/// continuous-query storm, heterogeneous privacy profiles, churn under
/// injected faults). Invariant oracles run at sampled ticks, and every
/// run emits one comparable BENCH_scenario_<name>.json.

namespace casper::scenarios {

/// Runtime knobs, orthogonal to the script (the CLI scales these by
/// CASPER_BENCH_SCALE; tests pin them tiny).
struct ScenarioOptions {
  size_t users = 1200;
  size_t targets = 1500;
  size_t ticks = 30;
  size_t queries_per_tick = 140;
  size_t threads = 4;
  uint64_t seed = 42;

  bool oracles = true;
  size_t oracle_interval = 5;  ///< Run oracles every N ticks (+ last).
  size_t oracle_samples = 12;  ///< Users / queries sampled per oracle tick.

  /// Path for the JSON report; empty writes nothing.
  std::string out_path;

  StackOptions stack;
};

/// The time-varying shape of one named scenario. Each knob receives the
/// run fraction (tick / (ticks - 1), in [0, 1]); null functions mean
/// the neutral constant.
struct ScenarioScript {
  std::string name;
  std::string description;

  /// Multiplies the simulator's base tick_seconds (rush hour: speeds
  /// collapse mid-run).
  std::function<double(double)> speed_factor;

  /// Multiplies queries_per_tick (flash crowd: a query spike).
  std::function<double(double)> query_rate;

  /// Probability that a query's uid (or public query point) is drawn
  /// from the hotspot population instead of uniformly.
  std::function<double(double)> hotspot_weight;

  /// The hotspot region, as fractions of the managed space (converted
  /// at run time). Empty = none.
  Rect hotspot_fraction;

  /// At run fraction `flash_fraction` (< 0 = never), `teleport_fraction`
  /// of the population is teleported into the hotspot in one tick.
  double flash_fraction = -1.0;
  double teleport_fraction = 0.0;

  /// Fraction of the population deregistered and re-registered (fresh
  /// profile, current position) each tick.
  double churn_per_tick = 0.0;

  /// Fraction of the population whose private-NN query is tracked
  /// through a ContinuousQueryManager across every movement tick (so
  /// the storm scales with ScenarioOptions::users).
  double continuous_fraction = 0.0;

  /// Every N ticks (0 = never) one target is inserted into and one
  /// removed from the continuous manager's store, exercising the
  /// insert-patch / removal shortcut paths.
  size_t target_churn_interval = 0;

  /// Fail the run unless the manager's containment shortcuts actually
  /// avoided recomputes (continuous_storm's reason to exist).
  bool assert_shortcuts = false;

  /// Privacy-profile classes, assigned round-robin by uid.
  std::vector<workload::ProfileDistribution> profile_classes;

  /// Chaos profile applied when the caller's stack has none
  /// (churn_chaos runs faulty by default).
  transport::FaultProfile default_chaos;
};

/// Percentile summary of one observed distribution, for the report.
struct DistributionSummary {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  static DistributionSummary Of(const SummaryStats& stats);
};

/// Everything one run produced; ToJson() is the BENCH_scenario_* schema.
struct ScenarioReport {
  std::string scenario;
  std::string stack;

  // Echo of the effective configuration.
  size_t users = 0;
  size_t targets = 0;
  size_t ticks = 0;
  size_t queries_per_tick = 0;
  size_t threads = 0;
  uint64_t seed = 0;

  double wall_seconds = 0.0;
  double qps = 0.0;

  uint64_t queries_total = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_error = 0;
  uint64_t queries_degraded = 0;
  uint64_t queries_shed = 0;

  DistributionSummary latency_micros;  ///< Per-query processor latency.
  DistributionSummary cloak_area;
  DistributionSummary k_achieved;
  DistributionSummary candidates;

  workload::ApplyTickStats updates;
  uint64_t zero_progress_fallbacks = 0;

  size_t continuous_queries = 0;
  processor::ContinuousStats continuous;
  bool shortcuts_asserted = false;
  bool shortcuts_ok = true;

  bool oracles_enabled = false;
  OracleStats oracles;

  /// Scraped `casper_*` registry of this run, as the exporter's JSON.
  std::string metrics_json;

  /// True iff the run upheld every asserted invariant.
  bool Passed() const {
    return oracles.Violations() == 0 && shortcuts_ok;
  }

  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;
};

/// The named-scenario registry.
std::vector<std::string> ScenarioNames();
Result<ScenarioScript> ScriptFor(const std::string& name);

/// Run one scenario. Builds the stack from options.stack (with the
/// script's default chaos when the caller set none), replays the
/// scripted ticks, runs oracles when enabled, and writes the report to
/// options.out_path when set. Fails only on setup errors — invariant
/// violations are reported, not thrown, so callers can print the
/// report before failing.
Result<ScenarioReport> RunScenario(const ScenarioScript& script,
                                   const ScenarioOptions& options);

}  // namespace casper::scenarios

#endif  // CASPER_SCENARIOS_SCENARIO_H_
