#include "src/scenarios/stack.h"

#include <unistd.h>

#include <atomic>
#include <utility>

namespace casper::scenarios {
namespace {

/// The chaos wrapper does not own its inner channel; a Composite parks
/// both on the object the resilient client holds (same idiom as the
/// CLI's --connect + chaos path).
struct CompositeChannel : transport::Channel {
  std::unique_ptr<transport::Channel> inner;
  std::unique_ptr<transport::FaultInjectingChannel> outer;
  Result<std::string> Call(std::string_view request,
                           const transport::CallContext& context) override {
    return outer->Call(request, context);
  }
};

std::unique_ptr<transport::Channel> MaybeWrapChaos(
    std::unique_ptr<transport::Channel> inner,
    const transport::FaultProfile& profile, uint64_t seed) {
  if (profile.CombinedRate() <= 0.0) return inner;
  auto composite = std::make_unique<CompositeChannel>();
  composite->outer = std::make_unique<transport::FaultInjectingChannel>(
      inner.get(), profile, seed);
  composite->inner = std::move(inner);
  return composite;
}

std::string UniqueSocketAddress() {
  static std::atomic<uint64_t> counter{0};
  return "unix:/tmp/casper_scenario_" + std::to_string(getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

}  // namespace

const char* StackKindName(StackKind kind) {
  switch (kind) {
    case StackKind::kFacade:
      return "facade";
    case StackKind::kSocket:
      return "socket";
    case StackKind::kShards:
      return "shards";
    case StackKind::kConnect:
      return "connect";
  }
  return "unknown";
}

Result<std::unique_ptr<ScenarioStack>> ScenarioStack::Create(
    const StackOptions& options) {
  std::unique_ptr<ScenarioStack> stack(new ScenarioStack(options));

  CasperOptions service_options;
  service_options.pyramid = options.pyramid;
  service_options.server_idempotency_window = options.idempotency_window;
  service_options.metrics = options.metrics;
  const transport::FaultProfile chaos = options.chaos;
  const uint64_t chaos_seed = options.chaos_seed;

  switch (options.kind) {
    case StackKind::kFacade: {
      if (chaos.CombinedRate() > 0.0) {
        service_options.channel_decorator =
            [chaos, chaos_seed](transport::Channel* inner)
            -> std::unique_ptr<transport::Channel> {
          return std::make_unique<transport::FaultInjectingChannel>(
              inner, chaos, chaos_seed);
        };
      }
      break;
    }
    case StackKind::kSocket: {
      server::QueryServerOptions server_options;
      server_options.density_extent = options.pyramid.space;
      server_options.idempotency_window = options.idempotency_window;
      server_options.metrics = options.metrics;
      stack->socket_server_ =
          std::make_unique<server::QueryServer>(server_options);
      stack->socket_endpoint_ = std::make_unique<transport::ServerEndpoint>(
          stack->socket_server_.get());
      stack->socket_address_ = UniqueSocketAddress();
      transport::ServerEndpoint* endpoint = stack->socket_endpoint_.get();
      auto listener = transport::SocketListener::Start(
          stack->socket_address_,
          transport::SerializedHandler(
              [endpoint](std::string_view request,
                         const transport::CallContext& context) {
                return endpoint->Handle(request, context);
              }),
          transport::ListenerOptions{});
      if (!listener.ok()) return listener.status();
      stack->listener_ = std::move(listener).value();
      const std::string address = stack->socket_address_;
      service_options.channel_decorator =
          [address, chaos, chaos_seed](transport::Channel*)
          -> std::unique_ptr<transport::Channel> {
        transport::SocketChannelOptions socket_options;
        socket_options.connect_timeout_seconds = 0.5;
        socket_options.io_timeout_seconds = 5.0;
        return MaybeWrapChaos(
            std::make_unique<transport::SocketChannel>(address,
                                                       socket_options),
            chaos, chaos_seed);
      };
      break;
    }
    case StackKind::kShards: {
      sharding::ShardRouterOptions router_options;
      router_options.num_shards = options.shards;
      router_options.partition_level = 4;
      router_options.space = options.pyramid.space;
      router_options.server.density_extent = options.pyramid.space;
      router_options.server.idempotency_window = options.idempotency_window;
      router_options.server.metrics = options.metrics;
      if (chaos.CombinedRate() > 0.0) {
        router_options.channel_decorator =
            [chaos, chaos_seed](transport::Channel* inner, size_t shard)
            -> std::unique_ptr<transport::Channel> {
          return std::make_unique<transport::FaultInjectingChannel>(
              inner, chaos, chaos_seed + shard);
        };
      }
      stack->router_ = std::make_unique<sharding::ShardRouter>(router_options);
      stack->shard_endpoint_ =
          std::make_unique<sharding::ShardEndpoint>(stack->router_.get());
      sharding::ShardEndpoint* shard_endpoint = stack->shard_endpoint_.get();
      service_options.channel_decorator =
          [shard_endpoint](transport::Channel*)
          -> std::unique_ptr<transport::Channel> {
        return std::make_unique<sharding::ShardChannel>(shard_endpoint);
      };
      break;
    }
    case StackKind::kConnect: {
      if (options.connect.empty()) {
        return Status::InvalidArgument("kConnect needs an address");
      }
      const std::string address = options.connect;
      service_options.channel_decorator =
          [address, chaos, chaos_seed](transport::Channel*)
          -> std::unique_ptr<transport::Channel> {
        transport::SocketChannelOptions socket_options;
        socket_options.connect_timeout_seconds = 0.5;
        socket_options.io_timeout_seconds = 5.0;
        return MaybeWrapChaos(
            std::make_unique<transport::SocketChannel>(address,
                                                       socket_options),
            chaos, chaos_seed);
      };
      break;
    }
  }

  stack->service_ = std::make_unique<CasperService>(service_options);
  return stack;
}

ScenarioStack::~ScenarioStack() {
  // The service's resilient client holds the channel into the listener
  // or router; drop it before the backend it talks to.
  service_.reset();
  if (listener_ != nullptr) listener_->Shutdown();
}

void ScenarioStack::ProvisionTargets(
    const std::vector<processor::PublicTarget>& targets) {
  targets_ = targets;
  switch (options_.kind) {
    case StackKind::kFacade:
      service_->SetPublicTargets(targets);
      break;
    case StackKind::kSocket:
      socket_server_->SetPublicTargets(targets);
      break;
    case StackKind::kShards:
      router_->SetPublicTargets(targets);
      break;
    case StackKind::kConnect:
      // Server-side provisioning happened at `casper_cli serve
      // --targets=N --targets-seed=S`; the local copy is the oracle's
      // ground truth only.
      break;
  }
}

std::string ScenarioStack::Label() const {
  if (options_.kind == StackKind::kShards) {
    return std::string(StackKindName(options_.kind)) + ":" +
           std::to_string(options_.shards);
  }
  return StackKindName(options_.kind);
}

}  // namespace casper::scenarios
