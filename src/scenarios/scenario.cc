#include "src/scenarios/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "src/casper/batch_query_engine.h"
#include "src/common/stopwatch.h"
#include "src/network/network_generator.h"
#include "src/obs/exporters.h"

namespace casper::scenarios {
namespace {

double Shape(const std::function<double(double)>& f, double frac,
             double neutral) {
  if (!f) return neutral;
  return f(frac);
}

/// Converts a unit-square fraction rect onto the managed space; an
/// empty fraction rect stays empty.
Rect ScaleToSpace(const Rect& fraction, const Rect& space) {
  if (fraction.is_empty()) return fraction;
  const double w = space.width();
  const double h = space.height();
  return Rect(space.min.x + fraction.min.x * w,
              space.min.y + fraction.min.y * h,
              space.min.x + fraction.max.x * w,
              space.min.y + fraction.max.y * h);
}

/// Profiles must stay satisfiable at any population scale: a cloak for
/// k > population can never close, and every unsatisfiable profile
/// silently shrinks the published snapshot (breaking the census
/// oracle for the wrong reason).
workload::ProfileDistribution ClampProfile(
    const workload::ProfileDistribution& dist, size_t users) {
  workload::ProfileDistribution clamped = dist;
  const uint32_t cap =
      static_cast<uint32_t>(std::max<size_t>(1, users / 2));
  clamped.k_max = std::min(clamped.k_max, cap);
  clamped.k_min = std::min(clamped.k_min, clamped.k_max);
  return clamped;
}

struct TrackedQuery {
  processor::QueryId qid = 0;
  uint64_t uid = 0;
  bool last_recomputed = true;  ///< Register() is a full evaluation.
};

void AppendJson(std::string* out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  out->append(buffer);
}

void AppendDistribution(std::string* out, const char* key,
                        const DistributionSummary& d, bool trailing_comma) {
  AppendJson(out,
             "  \"%s\": {\"count\": %llu, \"mean\": %.6f, \"p50\": %.6f, "
             "\"p95\": %.6f, \"p99\": %.6f, \"max\": %.6f}%s\n",
             key, static_cast<unsigned long long>(d.count), d.mean, d.p50,
             d.p95, d.p99, d.max, trailing_comma ? "," : "");
}

}  // namespace

DistributionSummary DistributionSummary::Of(const SummaryStats& stats) {
  DistributionSummary d;
  d.count = stats.count();
  d.mean = stats.mean();
  d.p50 = stats.Quantile(0.5);
  d.p95 = stats.Quantile(0.95);
  d.p99 = stats.Quantile(0.99);
  d.max = stats.max();
  return d;
}

std::vector<std::string> ScenarioNames() {
  return {"rush_hour", "flash_crowd", "continuous_storm", "mixed_profiles",
          "churn_chaos"};
}

Result<ScenarioScript> ScriptFor(const std::string& name) {
  ScenarioScript script;
  script.name = name;
  script.profile_classes = {workload::ProfileDistribution{}};

  if (name == "rush_hour") {
    script.description =
        "Road-network commute: speeds collapse and queries concentrate "
        "on the downtown hotspot mid-run, then recover.";
    script.speed_factor = [](double frac) {
      return 1.0 - 0.7 * std::sin(frac * M_PI);
    };
    script.query_rate = [](double frac) {
      return 1.0 + 0.5 * std::sin(frac * M_PI);
    };
    script.hotspot_weight = [](double frac) {
      return 0.1 + 0.7 * std::sin(frac * M_PI);
    };
    script.hotspot_fraction = Rect(0.35, 0.35, 0.65, 0.65);
    return script;
  }
  if (name == "flash_crowd") {
    script.description =
        "A third of the population teleports into one block mid-run and "
        "the query rate triples for the following quarter of the run.";
    script.hotspot_fraction = Rect(0.40, 0.40, 0.60, 0.60);
    script.flash_fraction = 0.5;
    script.teleport_fraction = 0.35;
    script.query_rate = [](double frac) {
      return (frac >= 0.5 && frac < 0.75) ? 3.0 : 1.0;
    };
    script.hotspot_weight = [](double frac) {
      return (frac >= 0.5 && frac < 0.75) ? 0.7 : 0.0;
    };
    return script;
  }
  if (name == "continuous_storm") {
    script.description =
        "Most of the population keeps a continuous NN query registered; "
        "every movement tick re-evaluates all of them, with periodic "
        "target churn, asserting the Theorem-1 shortcuts avoid "
        "recomputes.";
    script.continuous_fraction = 0.8;
    script.target_churn_interval = 3;
    script.assert_shortcuts = true;
    script.query_rate = [](double) { return 0.5; };
    return script;
  }
  if (name == "mixed_profiles") {
    script.description =
        "Three privacy-profile classes — nearly-exact, paper-default, "
        "and highly private — interleaved across the population.";
    workload::ProfileDistribution nearly_exact;
    nearly_exact.k_min = 1;
    nearly_exact.k_max = 2;
    nearly_exact.area_fraction_min = 0.00001;
    nearly_exact.area_fraction_max = 0.00005;
    workload::ProfileDistribution paper_default;
    paper_default.k_min = 4;
    paper_default.k_max = 8;
    workload::ProfileDistribution highly_private;
    highly_private.k_min = 16;
    highly_private.k_max = 32;
    highly_private.area_fraction_min = 0.001;
    highly_private.area_fraction_max = 0.005;
    script.profile_classes = {nearly_exact, paper_default, highly_private};
    return script;
  }
  if (name == "churn_chaos") {
    script.description =
        "Users join and leave every tick while the tier channel drops, "
        "duplicates, and delays calls.";
    script.churn_per_tick = 0.05;
    script.default_chaos.drop_request_rate = 0.02;
    script.default_chaos.drop_response_rate = 0.02;
    script.default_chaos.duplicate_rate = 0.02;
    script.default_chaos.delay_rate = 0.05;
    script.default_chaos.delay_micros = 200;
    return script;
  }
  return Status::NotFound("unknown scenario '" + name +
                          "' (see ScenarioNames())");
}

Result<ScenarioReport> RunScenario(const ScenarioScript& script,
                                   const ScenarioOptions& options) {
  if (options.users == 0 || options.ticks == 0) {
    return Status::InvalidArgument("scenario needs users > 0 and ticks > 0");
  }
  Stopwatch run_watch;

  // A fresh registry per run: the report's metrics snapshot covers
  // exactly this scenario, not whatever else the process did.
  obs::MetricsRegistry registry;
  obs::CasperMetrics metrics(&registry);

  StackOptions stack_options = options.stack;
  stack_options.metrics = &metrics;
  if (stack_options.chaos.CombinedRate() <= 0.0) {
    stack_options.chaos = script.default_chaos;
  }
  CASPER_ASSIGN_OR_RETURN(stack, ScenarioStack::Create(stack_options));
  CasperService& service = stack->service();
  const Rect space = service.options().pyramid.space;
  const Rect hotspot = ScaleToSpace(script.hotspot_fraction, space);

  // --- The city: a synthetic road network and its moving population.
  network::NetworkGeneratorOptions net_options;
  net_options.rows = 24;
  net_options.cols = 24;
  net_options.space = space;
  CASPER_ASSIGN_OR_RETURN(
      road_network, network::NetworkGenerator(net_options).Generate(
                        options.seed));
  network::SimulatorOptions sim_options;
  sim_options.object_count = options.users;
  const double base_tick_seconds = sim_options.tick_seconds;
  network::MovingObjectSimulator simulator(&road_network, sim_options,
                                           options.seed ^ 0x9e3779b9);
  // Spread objects off their starting nodes, as the benches do.
  for (int i = 0; i < 20; ++i) simulator.Tick();

  // --- Population: register through the facade so pseudonyms, counters,
  // and the dirty flag all see the events.
  Rng rng(options.seed);
  std::vector<workload::ProfileDistribution> classes;
  classes.reserve(script.profile_classes.size());
  for (const auto& dist : script.profile_classes) {
    classes.push_back(ClampProfile(dist, options.users));
  }
  if (classes.empty()) classes.push_back(ClampProfile({}, options.users));
  const double space_area = space.Area();
  for (uint64_t uid = 0; uid < options.users; ++uid) {
    const auto profile = workload::SampleProfile(
        classes[uid % classes.size()], space_area, &rng);
    const Point position =
        ClampToRect(simulator.PositionOf(uid), space);
    CASPER_RETURN_IF_ERROR(service.RegisterUser(uid, profile, position));
  }

  // --- Targets, provisioned where the wire traffic lands; the same
  // list is the oracle's brute-force ground truth.
  Rng target_rng(options.seed + 1);
  stack->ProvisionTargets(
      workload::UniformPublicTargets(options.targets, space, &target_rng));

  // --- Continuous layer: its own store + manager (the incremental
  // processor of §5), fed by this run's cloak stream.
  processor::PublicTargetStore continuous_store(stack->targets());
  processor::ContinuousQueryManager continuous_manager(&continuous_store);
  const size_t continuous_count = std::min<size_t>(
      options.users,
      static_cast<size_t>(script.continuous_fraction *
                          static_cast<double>(options.users)));
  std::vector<TrackedQuery> tracked;
  tracked.reserve(continuous_count);
  for (uint64_t uid = 0; uid < continuous_count; ++uid) {
    auto cloak = service.anonymizer().Cloak(uid);
    if (!cloak.ok()) continue;
    auto qid = continuous_manager.Register(cloak->region);
    if (!qid.ok()) continue;
    tracked.push_back(TrackedQuery{*qid, uid, true});
  }
  std::vector<processor::PublicTarget> churned_targets;
  uint64_t next_churn_target_id = 1u << 30;

  server::BatchEngineOptions engine_options;
  engine_options.threads = options.threads;
  engine_options.metrics = &metrics;
  server::BatchQueryEngine engine(&service, engine_options);

  ScenarioReport report;
  report.scenario = script.name;
  report.stack = stack->Label();
  report.users = options.users;
  report.targets = options.targets;
  report.ticks = options.ticks;
  report.queries_per_tick = options.queries_per_tick;
  report.threads = options.threads;
  report.seed = options.seed;
  report.continuous_queries = tracked.size();
  report.oracles_enabled = options.oracles;
  report.shortcuts_asserted = script.assert_shortcuts;

  SummaryStats latency_micros;
  SummaryStats cloak_area;
  SummaryStats k_achieved;
  SummaryStats candidates;
  double query_wall_seconds = 0.0;

  const size_t churn_per_tick = static_cast<size_t>(
      script.churn_per_tick * static_cast<double>(options.users));
  // Churn cycles through the population but never a tracked uid: a
  // tracked query whose user vanished would just be noise.
  const uint64_t churn_low = tracked.size();
  uint64_t churn_cursor = churn_low;

  const size_t flash_tick =
      script.flash_fraction >= 0.0 && script.flash_fraction <= 1.0
          ? static_cast<size_t>(script.flash_fraction *
                                static_cast<double>(options.ticks - 1))
          : options.ticks;  // Never.

  Rng query_rng(options.seed + 2);
  Rng oracle_rng(options.seed + 3);
  std::vector<uint64_t> hotspot_uids;

  for (size_t tick = 0; tick < options.ticks; ++tick) {
    const double frac =
        options.ticks > 1
            ? static_cast<double>(tick) /
                  static_cast<double>(options.ticks - 1)
            : 0.0;

    // 1. Movement, at the scripted congestion level.
    const double speed = Shape(script.speed_factor, frac, 1.0);
    simulator.set_tick_seconds(base_tick_seconds *
                               std::max(0.05, speed));
    std::vector<network::LocationUpdate> updates = simulator.Tick();

    // 2. Flash crowd: part of the population converges on the hotspot
    // for this tick's update (the simulator's own positions resume
    // next tick — the crowd disperses again).
    if (tick == flash_tick && !hotspot.is_empty() &&
        script.teleport_fraction > 0.0) {
      const size_t teleported = static_cast<size_t>(
          script.teleport_fraction * static_cast<double>(updates.size()));
      for (size_t i = 0; i < teleported && i < updates.size(); ++i) {
        updates[i].position = query_rng.PointIn(hotspot);
      }
    }

    // 3. Churn: deregister a slice, apply the tick (their updates are
    // counted drops), then re-register them where they stand.
    std::vector<uint64_t> churned;
    if (churn_per_tick > 0 && churn_low < options.users) {
      for (size_t i = 0; i < churn_per_tick; ++i) {
        const uint64_t uid = churn_cursor;
        churn_cursor = churn_cursor + 1 < options.users ? churn_cursor + 1
                                                        : churn_low;
        if (service.DeregisterUser(uid).ok()) churned.push_back(uid);
      }
    }
    // Through the facade, not the raw anonymizer: the tier's
    // client-position table must advance with the pyramid or every
    // refinement (and the NN oracle) would run against stale positions.
    CASPER_RETURN_IF_ERROR(
        workload::ApplyTick(updates, &service, &report.updates, &metrics));
    for (uint64_t uid : churned) {
      const auto profile = workload::SampleProfile(
          classes[uid % classes.size()], space_area, &rng);
      CASPER_RETURN_IF_ERROR(service.RegisterUser(
          uid, profile, ClampToRect(simulator.PositionOf(uid), space)));
    }

    // 4. Publish the tick's cloaks to the server tier. Under chaos the
    // sync may fail; private-data queries then error (and are counted),
    // and the census oracle skips its stale tick.
    const bool synced = service.SyncPrivateData().ok();

    // 5. The tick's query mix, hotspot-weighted per the script.
    hotspot_uids.clear();
    if (!hotspot.is_empty()) {
      for (const auto& u : updates) {
        if (hotspot.Contains(u.position)) hotspot_uids.push_back(u.uid);
      }
    }
    const double rate = Shape(script.query_rate, frac, 1.0);
    const double hot = Shape(script.hotspot_weight, frac, 0.0);
    const size_t query_count = static_cast<size_t>(
        std::max(0.0, rate) * static_cast<double>(options.queries_per_tick));
    const double radius = space.width() * 0.01;
    std::vector<server::BatchQueryRequest> requests;
    requests.reserve(query_count);
    for (size_t i = 0; i < query_count; ++i) {
      const bool from_hotspot =
          hot > 0.0 && !hotspot_uids.empty() &&
          query_rng.Uniform(0.0, 1.0) < hot;
      const uint64_t uid =
          from_hotspot
              ? hotspot_uids[query_rng.UniformInt(0, hotspot_uids.size() - 1)]
              : query_rng.UniformInt(0, options.users - 1);
      switch (i % 7) {
        case 0:
          requests.push_back(server::BatchQueryRequest::NearestPublic(uid));
          break;
        case 1:
          requests.push_back(
              server::BatchQueryRequest::KNearestPublic(uid, 5));
          break;
        case 2:
          requests.push_back(
              server::BatchQueryRequest::RangePublic(uid, radius));
          break;
        case 3:
          requests.push_back(server::BatchQueryRequest::NearestPrivate(uid));
          break;
        case 4: {
          const Point q = from_hotspot ? query_rng.PointIn(hotspot)
                                       : query_rng.PointIn(space);
          requests.push_back(server::BatchQueryRequest::PublicNearest(q));
          break;
        }
        case 5: {
          const Point corner = query_rng.PointIn(space);
          requests.push_back(server::BatchQueryRequest::PublicRange(
              Rect(corner.x, corner.y,
                   std::min(space.max.x, corner.x + radius * 4),
                   std::min(space.max.y, corner.y + radius * 4))));
          break;
        }
        case 6:
          requests.push_back(server::BatchQueryRequest::Density(4, 4));
          break;
      }
    }
    if (!requests.empty()) {
      const server::BatchResult batch = engine.Execute(requests);
      query_wall_seconds += batch.summary.wall_seconds;
      report.queries_total += batch.summary.batch_size;
      report.queries_ok += batch.summary.ok_count;
      report.queries_error += batch.summary.error_count;
      for (const server::BatchQueryResponse& response : batch.responses) {
        if (!response.ok()) continue;
        if (const TimingBreakdown* timing = response.timing()) {
          latency_micros.Add(timing->processor_seconds * 1e6);
        }
        const anonymizer::CloakingResult* cloak = nullptr;
        size_t candidate_count = 0;
        bool degraded = false;
        if (const auto* r = response.nearest_public()) {
          cloak = &r->cloak;
          candidate_count = r->server_answer.size();
          degraded = r->degraded;
        } else if (const auto* r = response.k_nearest_public()) {
          cloak = &r->cloak;
          candidate_count = r->server_answer.candidates.size();
          degraded = r->degraded;
        } else if (const auto* r = response.range_public()) {
          cloak = &r->cloak;
          candidate_count = r->server_answer.candidates.size();
          degraded = r->degraded;
        } else if (const auto* r = response.nearest_private()) {
          cloak = &r->cloak;
          candidate_count = r->server_answer.candidates.size();
          degraded = r->degraded;
        } else if (const auto* r = response.public_nearest()) {
          candidate_count = r->candidates.size();
        }
        if (cloak != nullptr) {
          cloak_area.Add(cloak->region.Area());
          k_achieved.Add(static_cast<double>(cloak->users_in_region));
        }
        if (candidate_count > 0) {
          candidates.Add(static_cast<double>(candidate_count));
        }
        if (degraded) ++report.queries_degraded;
      }
    }

    // 6. The continuous storm: every tracked query sees its user's
    // fresh cloak; the manager decides shortcut vs recompute.
    for (TrackedQuery& t : tracked) {
      auto cloak = service.anonymizer().Cloak(t.uid);
      if (!cloak.ok()) continue;
      const uint64_t evals_before =
          continuous_manager.stats().evaluations;
      if (!continuous_manager.OnCloakChanged(t.qid, cloak->region).ok()) {
        continue;
      }
      t.last_recomputed =
          continuous_manager.stats().evaluations > evals_before;
    }
    if (script.target_churn_interval > 0 && !tracked.empty() &&
        tick % script.target_churn_interval == 0) {
      // Mutate the store first, then notify — the manager's contract.
      const processor::PublicTarget inserted{
          next_churn_target_id++, query_rng.PointIn(space)};
      continuous_store.Insert(inserted);
      CASPER_RETURN_IF_ERROR(
          continuous_manager.OnTargetInserted(inserted));
      churned_targets.push_back(inserted);
      if (churned_targets.size() > 4) {
        const processor::PublicTarget removed = churned_targets.front();
        churned_targets.erase(churned_targets.begin());
        continuous_store.Remove(removed);
        CASPER_RETURN_IF_ERROR(
            continuous_manager.OnTargetRemoved(removed));
      }
    }

    // 7. Oracles at sampled ticks.
    const bool oracle_tick =
        options.oracles && (tick % std::max<size_t>(1, options.oracle_interval)
                                == 0 ||
                            tick + 1 == options.ticks);
    if (oracle_tick) {
      for (size_t i = 0; i < options.oracle_samples; ++i) {
        const uint64_t uid = oracle_rng.UniformInt(0, options.users - 1);
        CheckNnInclusiveness(&service, stack->targets(), uid,
                             &report.oracles);
      }
      if (synced) CheckRegionPerUser(&service, &report.oracles);
      if (!tracked.empty()) {
        for (size_t i = 0;
             i < std::min(options.oracle_samples, tracked.size()); ++i) {
          const TrackedQuery& t =
              tracked[oracle_rng.UniformInt(0, tracked.size() - 1)];
          CheckContinuousAnswer(continuous_manager, continuous_store, t.qid,
                                t.last_recomputed, &report.oracles);
        }
      }
    }
  }

  report.wall_seconds = run_watch.ElapsedSeconds();
  report.qps = query_wall_seconds > 0.0
                   ? static_cast<double>(report.queries_total) /
                         query_wall_seconds
                   : 0.0;
  report.latency_micros = DistributionSummary::Of(latency_micros);
  report.cloak_area = DistributionSummary::Of(cloak_area);
  report.k_achieved = DistributionSummary::Of(k_achieved);
  report.candidates = DistributionSummary::Of(candidates);
  report.zero_progress_fallbacks =
      simulator.stats().zero_progress_fallbacks;
  report.continuous = continuous_manager.stats();
  report.queries_shed = metrics.batch_shed_total->Value();
  report.shortcuts_ok =
      !script.assert_shortcuts || report.continuous.reuses > 0;
  report.metrics_json = obs::ExportJson(registry.Scrape());

  if (!options.out_path.empty()) {
    CASPER_RETURN_IF_ERROR(report.WriteJson(options.out_path));
  }
  return report;
}

std::string ScenarioReport::ToJson() const {
  std::string out;
  out.reserve(4096 + metrics_json.size());
  out += "{\n";
  AppendJson(&out, "  \"scenario\": \"%s\",\n", scenario.c_str());
  AppendJson(&out, "  \"stack\": \"%s\",\n", stack.c_str());
  AppendJson(&out,
             "  \"config\": {\"users\": %zu, \"targets\": %zu, "
             "\"ticks\": %zu, \"queries_per_tick\": %zu, \"threads\": %zu, "
             "\"seed\": %llu},\n",
             users, targets, ticks, queries_per_tick, threads,
             static_cast<unsigned long long>(seed));
  AppendJson(&out, "  \"wall_seconds\": %.6f,\n", wall_seconds);
  AppendJson(&out, "  \"qps\": %.2f,\n", qps);
  AppendJson(&out,
             "  \"queries\": {\"total\": %llu, \"ok\": %llu, "
             "\"errors\": %llu, \"degraded\": %llu, \"shed\": %llu},\n",
             static_cast<unsigned long long>(queries_total),
             static_cast<unsigned long long>(queries_ok),
             static_cast<unsigned long long>(queries_error),
             static_cast<unsigned long long>(queries_degraded),
             static_cast<unsigned long long>(queries_shed));
  AppendDistribution(&out, "latency_micros", latency_micros, true);
  AppendDistribution(&out, "cloak_area", cloak_area, true);
  AppendDistribution(&out, "k_achieved", k_achieved, true);
  AppendDistribution(&out, "candidates", candidates, true);
  AppendJson(&out,
             "  \"updates\": {\"applied\": %zu, \"dropped\": %zu},\n",
             updates.applied, updates.dropped);
  AppendJson(&out, "  \"zero_progress_fallbacks\": %llu,\n",
             static_cast<unsigned long long>(zero_progress_fallbacks));
  AppendJson(&out,
             "  \"continuous\": {\"queries\": %zu, \"evaluations\": %llu, "
             "\"reuses\": %llu, \"insert_patches\": %llu, "
             "\"removal_no_ops\": %llu, \"removal_recomputes\": %llu, "
             "\"shortcuts_asserted\": %s, \"shortcuts_ok\": %s},\n",
             continuous_queries,
             static_cast<unsigned long long>(continuous.evaluations),
             static_cast<unsigned long long>(continuous.reuses),
             static_cast<unsigned long long>(continuous.insert_patches),
             static_cast<unsigned long long>(continuous.removal_no_ops),
             static_cast<unsigned long long>(continuous.removal_recomputes),
             shortcuts_asserted ? "true" : "false",
             shortcuts_ok ? "true" : "false");
  AppendJson(&out,
             "  \"oracles\": {\"enabled\": %s, \"nn_checks\": %llu, "
             "\"nn_violations\": %llu, \"region_checks\": %llu, "
             "\"region_violations\": %llu, \"continuous_checks\": %llu, "
             "\"continuous_violations\": %llu, \"skipped\": %llu},\n",
             oracles_enabled ? "true" : "false",
             static_cast<unsigned long long>(oracles.nn_checks),
             static_cast<unsigned long long>(oracles.nn_violations),
             static_cast<unsigned long long>(oracles.region_checks),
             static_cast<unsigned long long>(oracles.region_violations),
             static_cast<unsigned long long>(oracles.continuous_checks),
             static_cast<unsigned long long>(oracles.continuous_violations),
             static_cast<unsigned long long>(oracles.skipped));
  AppendJson(&out, "  \"passed\": %s,\n", Passed() ? "true" : "false");
  out += "  \"metrics\": ";
  out += metrics_json.empty() ? "{}" : metrics_json;
  out += "\n}\n";
  return out;
}

Status ScenarioReport::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace casper::scenarios
