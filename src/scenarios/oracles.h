#ifndef CASPER_SCENARIOS_ORACLES_H_
#define CASPER_SCENARIOS_ORACLES_H_

#include <cstdint>
#include <vector>

#include "src/casper/casper.h"
#include "src/processor/continuous.h"

/// \file
/// Embedded invariant oracles a scenario runs at sampled ticks. Each
/// check is a ground-truth recomputation — brute force over the
/// provisioned target list, a fresh Algorithm-2 evaluation, a
/// whole-space census — compared against what the serving stack
/// actually answered. A violation means the stack returned something
/// the paper's theorems forbid; scenarios exit non-zero on any.

namespace casper::scenarios {

struct OracleStats {
  // Brute-force NN inclusiveness (Theorem 1): the user's true nearest
  // public target must appear in the served candidate list — degraded
  // answers included (degradation may lose minimality, never
  // inclusiveness).
  uint64_t nn_checks = 0;
  uint64_t nn_violations = 0;

  // Exactly one stored cloaked region per registered user: a
  // whole-space public range query's `possible` count equals the
  // registered population.
  uint64_t region_checks = 0;
  uint64_t region_violations = 0;

  // Continuous answers: byte-equal to a fresh Algorithm-2 evaluation
  // when the manager recomputed; on shortcut paths, the fresh list must
  // be contained in the stored one and refine to the same nearest
  // target at sampled in-cloak positions.
  uint64_t continuous_checks = 0;
  uint64_t continuous_violations = 0;

  // Checks skipped because the stack errored under injected faults
  // (chaos scenarios); not violations.
  uint64_t skipped = 0;

  uint64_t Violations() const {
    return nn_violations + region_violations + continuous_violations;
  }
};

/// Checks NN inclusiveness for `uid` against the brute-force nearest of
/// `targets` from the user's exact position. Mutates the service
/// (cloaking); call between ticks, never during a parallel batch.
void CheckNnInclusiveness(CasperService* service,
                          const std::vector<processor::PublicTarget>& targets,
                          uint64_t uid, OracleStats* stats);

/// Checks the one-region-per-user census over the whole managed space.
/// Valid right after SyncPrivateData with no interleaved user events.
void CheckRegionPerUser(CasperService* service, OracleStats* stats);

/// Checks a continuous query's stored answer against a fresh
/// Algorithm-2 evaluation over `store`. `recomputed` is whether the
/// manager's last OnCloakChanged for this query ran a full evaluation
/// (byte-equality applies) or took a shortcut (containment +
/// refinement equivalence applies).
void CheckContinuousAnswer(const processor::ContinuousQueryManager& manager,
                           const processor::PublicTargetStore& store,
                           processor::QueryId qid, bool recomputed,
                           OracleStats* stats);

}  // namespace casper::scenarios

#endif  // CASPER_SCENARIOS_ORACLES_H_
