#include "src/obs/exporters.h"

#include <cstdio>

namespace casper::obs {
namespace {

/// Shortest %g rendering with enough digits to round-trip metric
/// values; both exporters share it so they can never disagree.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

/// Escapes a Prometheus label value / JSON string body (the escape set
/// of the two formats coincides for what label values may contain).
std::string Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}`, or empty when there are no labels; `extra`
/// (e.g. `le="0.5"`) is appended last.
std::string PromLabels(const LabelSet& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  for (const auto& [name, value] : labels) {
    out += name + "=\"" + Escape(value) + "\",";
  }
  if (!extra.empty()) {
    out += extra;
  } else {
    out.pop_back();  // Trailing comma.
  }
  out += "}";
  return out;
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricFamily& family : snapshot.families) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " " + std::string(TypeName(family.type)) +
           "\n";
    for (const MetricSample& sample : family.samples) {
      if (family.type != MetricType::kHistogram) {
        out += family.name + PromLabels(sample.labels) + " " +
               FormatDouble(sample.value) + "\n";
        continue;
      }
      const HistogramData& hist = sample.histogram;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < hist.bounds.size(); ++i) {
        cumulative += hist.buckets[i];
        out += family.name + "_bucket" +
               PromLabels(sample.labels,
                          "le=\"" + FormatDouble(hist.bounds[i]) + "\"") +
               " " + std::to_string(cumulative) + "\n";
      }
      out += family.name + "_bucket" + PromLabels(sample.labels, "le=\"+Inf\"") +
             " " + std::to_string(hist.count) + "\n";
      out += family.name + "_sum" + PromLabels(sample.labels) + " " +
             FormatDouble(hist.sum) + "\n";
      out += family.name + "_count" + PromLabels(sample.labels) + " " +
             std::to_string(hist.count) + "\n";
    }
  }
  return out;
}

std::string ExportJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\": [\n";
  bool first_family = true;
  for (const MetricFamily& family : snapshot.families) {
    if (!first_family) out += ",\n";
    first_family = false;
    out += "  {\"name\": \"" + Escape(family.name) + "\", \"type\": \"" +
           TypeName(family.type) + "\", \"help\": \"" + Escape(family.help) +
           "\", \"samples\": [";
    bool first_sample = true;
    for (const MetricSample& sample : family.samples) {
      if (!first_sample) out += ", ";
      first_sample = false;
      out += "{\"labels\": {";
      bool first_label = true;
      for (const auto& [name, value] : sample.labels) {
        if (!first_label) out += ", ";
        first_label = false;
        out += "\"" + Escape(name) + "\": \"" + Escape(value) + "\"";
      }
      out += "}";
      if (family.type != MetricType::kHistogram) {
        out += ", \"value\": " + FormatDouble(sample.value) + "}";
        continue;
      }
      const HistogramData& hist = sample.histogram;
      out += ", \"count\": " + std::to_string(hist.count) +
             ", \"sum\": " + FormatDouble(hist.sum) + ", \"buckets\": [";
      for (size_t i = 0; i < hist.bounds.size(); ++i) {
        out += "{\"le\": " + FormatDouble(hist.bounds[i]) +
               ", \"count\": " + std::to_string(hist.buckets[i]) + "}, ";
      }
      out += "{\"le\": \"+Inf\", \"count\": " +
             std::to_string(hist.buckets.empty() ? 0 : hist.buckets.back()) +
             "}]}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace casper::obs
