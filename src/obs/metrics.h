#ifndef CASPER_OBS_METRICS_H_
#define CASPER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file
/// Lock-cheap metrics registry for the three-tier serving path:
/// counters, gauges, and fixed-bucket histograms. The hot operations
/// (Increment / Observe / Set) touch only relaxed atomics — the same
/// pattern ConcurrentQueryCache uses for its hit/miss accounting — and
/// counters/histograms are additionally striped across a fixed number
/// of cache-line-padded shards selected by thread id, so concurrent
/// writers on different cores almost never share a line. Scrape()
/// merges the shards into a point-in-time snapshot that is exact once
/// all in-flight updates have completed (the ConcurrentQueryCache
/// stats() contract).
///
/// Registration (GetCounter / GetGauge / GetHistogram) takes a mutex
/// and is idempotent on (name, labels): callers register once at
/// construction and keep the returned pointer, which stays valid for
/// the registry's lifetime. Instruments live outside the trusted
/// perimeter's concern — this directory depends only on the standard
/// library, so both tiers may use it without widening any include
/// closure.

namespace casper::obs {

/// Ordered (key, value) label pairs; part of a metric's identity.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Write-side striping factor for counters and histograms.
inline constexpr size_t kMetricShards = 16;

/// Stable shard index for the calling thread.
size_t CurrentShard();

/// Monotonic event counter (export name should end in `_total`).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    cells_[CurrentShard()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Merged value across shards (relaxed reads).
  uint64_t Value() const;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kMetricShards];
};

/// Last-write-wins instantaneous value (queue depth, utilization, ...).
/// A single atomic: Set() has no meaningful sharded merge.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged read-side view of one histogram (see Histogram::Snapshot).
struct HistogramData {
  std::vector<double> bounds;     ///< Ascending inclusive upper bounds.
  std::vector<uint64_t> buckets;  ///< Per-bucket counts; last = overflow.
  uint64_t count = 0;
  double sum = 0.0;
};

/// Fixed-bucket histogram. Observe() is lock-free: a binary search over
/// the (immutable) bounds plus three relaxed atomic adds on the calling
/// thread's shard.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds (Prometheus `le` semantics),
  /// strictly ascending; an implicit +Inf bucket is always appended.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }

  /// Merged snapshot across shards (relaxed reads).
  HistogramData Snapshot() const;

 private:
  struct alignas(64) Cell {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;  ///< bounds + overflow.
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Cell> cells_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One labeled series within a family.
struct MetricSample {
  LabelSet labels;
  double value = 0.0;       ///< Counter / gauge.
  HistogramData histogram;  ///< Histogram only.
};

/// All series sharing one metric name.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<MetricSample> samples;  ///< Sorted by rendered label set.
};

/// Point-in-time scrape, sorted by family name — the exporters' input.
struct MetricsSnapshot {
  std::vector<MetricFamily> families;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent on (name, labels): a second registration returns the
  /// same instrument. Registering an existing name as a different type
  /// is a programming error (checked). Returned pointers stay valid for
  /// the registry's lifetime.
  Counter* GetCounter(std::string_view name, std::string_view help,
                      LabelSet labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  LabelSet labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds, LabelSet labels = {});

  /// Merged snapshot of every registered instrument, deterministically
  /// ordered (families by name, samples by label set).
  MetricsSnapshot Scrape() const;

  /// The process-wide registry (what `casper_cli metrics` scrapes).
  static MetricsRegistry* Default();

 private:
  template <typename M>
  struct Entry {
    Entry(std::string n, std::string h, LabelSet l)
        : name(std::move(n)), help(std::move(h)), labels(std::move(l)) {}
    Entry(std::string n, std::string h, LabelSet l, std::vector<double> b)
        : name(std::move(n)), help(std::move(h)), labels(std::move(l)),
          metric(std::move(b)) {}
    std::string name;
    std::string help;
    LabelSet labels;
    M metric;
  };

  MetricType TypeOf(std::string_view name) const;

  mutable std::mutex mu_;  ///< Guards registration and family assembly.
  // Deques: growth never relocates handed-out instrument pointers.
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
};

}  // namespace casper::obs

#endif  // CASPER_OBS_METRICS_H_
