#ifndef CASPER_OBS_SHARD_METRICS_H_
#define CASPER_OBS_SHARD_METRICS_H_

#include <vector>

#include "src/obs/metrics.h"

/// \file
/// Instrument bundle of the sharded server tier (`casper_shard_*`).
/// Deliberately separate from CasperMetrics: the shard count is a
/// runtime parameter, so the per-shard label sets cannot be registered
/// by a fixed constructor — and keeping the family out of CasperMetrics
/// leaves the golden-file exporter tests byte-stable for deployments
/// that never instantiate a router.

namespace casper::obs {

class ShardMetrics {
 public:
  /// Registers every casper_shard_* instrument for `num_shards` shards.
  /// Idempotent per registry (re-registration returns the same
  /// instruments). Null registry resolves to MetricsRegistry::Default().
  ShardMetrics(MetricsRegistry* registry, size_t num_shards);

  size_t num_shards() const { return requests_total.size(); }

  // Per-shard families, indexed by shard and labeled {shard="i"}.
  std::vector<Counter*> requests_total;  ///< Fan-out calls sent to the shard.
  std::vector<Counter*> errors_total;    ///< Calls that failed after retries.
  std::vector<Gauge*> stored_objects;    ///< Targets + regions owned now.

  // Router-level families.
  Counter* degraded_answers_total;  ///< Merged answers flagged degraded.
  Counter* unavailable_total;       ///< Queries failed: every shard down.
  Counter* probe_calls_total;       ///< Filter-probe sub-queries issued.
  Counter* rebalances_total;        ///< Partition recomputations applied.
  Counter* handoff_objects_total;   ///< Objects moved during rebalances.
  Histogram* fanout_shards;         ///< Shards touched per query.

 private:
  MetricsRegistry* registry_;
};

}  // namespace casper::obs

#endif  // CASPER_OBS_SHARD_METRICS_H_
