#ifndef CASPER_OBS_SPAN_H_
#define CASPER_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/obs/metrics.h"

/// \file
/// Span-based tracing of the query path. Every query owns one QuerySpan
/// tagged with the four phases of the three-tier pipeline —
///
///   cloak        trusted anonymizer, Algorithm 1
///   wire_encode  identity stripping into the CloakedQueryMsg
///   evaluate     server-tier candidate-list evaluation
///   refine       client-side refinement of the candidate list
///
/// — and the tracer folds finished spans into per-phase latency
/// histograms (`casper_query_phase_seconds{phase=...}`) plus a small
/// ring of recent spans for inspection. A span is built on whichever
/// threads run its phases (the batch engine cloaks on the caller and
/// evaluates on a worker); it is handed off by value, never shared, so
/// only Start() and Finish() touch tracer state.

namespace casper::obs {

enum class Phase : uint8_t {
  kCloak = 0,
  kWireEncode = 1,
  kEvaluate = 2,
  kRefine = 3,
};

inline constexpr size_t kPhaseCount = 4;

/// Stable label value for a phase ("cloak", "wire_encode", ...).
const char* PhaseName(Phase phase);

/// One query's trace: a monotonically assigned id, the query-kind label
/// it was started with, and the measured duration of each phase (zero =
/// phase not run, e.g. public kinds never cloak).
struct QuerySpan {
  uint64_t trace_id = 0;
  const char* kind = "";
  double phase_seconds[kPhaseCount] = {};

  double TotalSeconds() const {
    double total = 0.0;
    for (double seconds : phase_seconds) total += seconds;
    return total;
  }
};

/// RAII phase timer: adds the scope's wall time onto the span's phase.
class ScopedPhase {
 public:
  ScopedPhase(QuerySpan* span, Phase phase)
      : span_(span), phase_(phase),
        start_(std::chrono::steady_clock::now()) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() {
    span_->phase_seconds[static_cast<size_t>(phase_)] +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
  }

 private:
  QuerySpan* span_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

class QueryTracer {
 public:
  /// Registers the phase histograms and trace counter on `registry`.
  /// `ring_capacity` bounds the recent-span buffer.
  explicit QueryTracer(MetricsRegistry* registry, size_t ring_capacity = 256);
  QueryTracer(const QueryTracer&) = delete;
  QueryTracer& operator=(const QueryTracer&) = delete;

  /// Opens a span for one query; `kind` must outlive the tracer (use a
  /// string literal / static label).
  QuerySpan Start(const char* kind);

  /// Records an out-of-span phase measurement directly (used when a
  /// phase is timed before its span exists, e.g. standalone cloaks).
  void RecordPhase(Phase phase, double seconds);

  /// Folds a finished span into the phase histograms and the ring.
  void Finish(const QuerySpan& span);

  /// Copy of the recent-span ring, oldest first.
  std::vector<QuerySpan> Recent() const;

  uint64_t finished_count() const;

 private:
  Histogram* phase_seconds_[kPhaseCount];
  Counter* traces_total_;
  std::atomic<uint64_t> next_id_{1};

  const size_t capacity_;
  mutable std::mutex mu_;  ///< Ring only.
  std::vector<QuerySpan> ring_;
  size_t next_slot_ = 0;
  bool wrapped_ = false;
};

}  // namespace casper::obs

#endif  // CASPER_OBS_SPAN_H_
