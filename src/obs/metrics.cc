#include "src/obs/metrics.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "src/common/status.h"

namespace casper::obs {
namespace {

/// Renders labels as `k1="v1",k2="v2"` — the sample sort key, so scrape
/// order (and therefore exporter output) is deterministic.
std::string LabelKey(const LabelSet& labels) {
  std::string key;
  for (const auto& [name, value] : labels) {
    key += name;
    key += "=\"";
    key += value;
    key += "\",";
  }
  return key;
}

/// Labels are part of a series' identity irrespective of the order the
/// caller listed them in; sorting by key makes the identity canonical.
LabelSet Normalized(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

size_t CurrentShard() {
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kMetricShards;
  return shard;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), cells_(kMetricShards) {
  CASPER_DCHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (Cell& cell : cells_) {
    cell.buckets =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  // First bound >= value — Prometheus `le` buckets are inclusive; past
  // the last bound the observation lands in the overflow (+Inf) bucket.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Cell& cell = cells_[CurrentShard()];
  cell.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  data.bounds = bounds_;
  data.buckets.assign(bounds_.size() + 1, 0);
  for (const Cell& cell : cells_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      data.buckets[i] += cell.buckets[i].load(std::memory_order_relaxed);
    }
    data.count += cell.count.load(std::memory_order_relaxed);
    data.sum += cell.sum.load(std::memory_order_relaxed);
  }
  return data;
}

MetricType MetricsRegistry::TypeOf(std::string_view name) const {
  for (const auto& entry : gauges_) {
    if (entry.name == name) return MetricType::kGauge;
  }
  for (const auto& entry : histograms_) {
    if (entry.name == name) return MetricType::kHistogram;
  }
  return MetricType::kCounter;  // Also the "unused name" default.
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     LabelSet labels) {
  labels = Normalized(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : counters_) {
    if (entry.name == name && entry.labels == labels) return &entry.metric;
  }
  CASPER_DCHECK(TypeOf(name) == MetricType::kCounter);
  return &counters_
              .emplace_back(std::string(name), std::string(help),
                            std::move(labels))
              .metric;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help, LabelSet labels) {
  labels = Normalized(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : gauges_) {
    if (entry.name == name && entry.labels == labels) return &entry.metric;
  }
  return &gauges_
              .emplace_back(std::string(name), std::string(help),
                            std::move(labels))
              .metric;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> bounds,
                                         LabelSet labels) {
  labels = Normalized(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : histograms_) {
    if (entry.name == name && entry.labels == labels) return &entry.metric;
  }
  return &histograms_
              .emplace_back(std::string(name), std::string(help),
                            std::move(labels), std::move(bounds))
              .metric;
}

MetricsSnapshot MetricsRegistry::Scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  auto family_for = [&snapshot](const std::string& name,
                                const std::string& help,
                                MetricType type) -> MetricFamily& {
    for (MetricFamily& family : snapshot.families) {
      if (family.name == name) return family;
    }
    snapshot.families.push_back(MetricFamily{name, help, type, {}});
    return snapshot.families.back();
  };
  for (const auto& entry : counters_) {
    MetricSample sample;
    sample.labels = entry.labels;
    sample.value = static_cast<double>(entry.metric.Value());
    family_for(entry.name, entry.help, MetricType::kCounter)
        .samples.push_back(std::move(sample));
  }
  for (const auto& entry : gauges_) {
    MetricSample sample;
    sample.labels = entry.labels;
    sample.value = entry.metric.Value();
    family_for(entry.name, entry.help, MetricType::kGauge)
        .samples.push_back(std::move(sample));
  }
  for (const auto& entry : histograms_) {
    MetricSample sample;
    sample.labels = entry.labels;
    sample.histogram = entry.metric.Snapshot();
    family_for(entry.name, entry.help, MetricType::kHistogram)
        .samples.push_back(std::move(sample));
  }
  std::sort(snapshot.families.begin(), snapshot.families.end(),
            [](const MetricFamily& a, const MetricFamily& b) {
              return a.name < b.name;
            });
  for (MetricFamily& family : snapshot.families) {
    std::sort(family.samples.begin(), family.samples.end(),
              [](const MetricSample& a, const MetricSample& b) {
                return LabelKey(a.labels) < LabelKey(b.labels);
              });
  }
  return snapshot;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return registry;
}

}  // namespace casper::obs
