#ifndef CASPER_OBS_CASPER_METRICS_H_
#define CASPER_OBS_CASPER_METRICS_H_

#include "src/obs/metrics.h"
#include "src/obs/span.h"

/// \file
/// The named instruments of the serving path, registered once and
/// shared by the three tiers. Naming scheme (see DESIGN.md §2c):
/// `casper_<tier>_<what>[_<unit>][_total]` with `kind=`, `event=`, and
/// `phase=` labels; the seven `kind` label values follow the QueryKind
/// wire order, mirrored here as strings so this directory stays
/// dependency-free of the protocol headers (and therefore usable from
/// both sides of the trust boundary).
///
/// Components resolve a null options pointer to Default(), which hangs
/// off MetricsRegistry::Default() — the registry `casper_cli metrics`
/// scrapes. Tests inject a fresh registry instead.

namespace casper::obs {

/// Mirror of the QueryKind count/order (static_assert'd at the one
/// include site that sees both, src/casper/casper.cc).
inline constexpr size_t kQueryKindCount = 7;
inline constexpr const char* kQueryKindLabels[kQueryKindCount] = {
    "nearest_public", "k_nearest_public", "range_public", "nearest_private",
    "public_nearest", "public_range",     "density",
};

struct CasperMetrics {
  explicit CasperMetrics(MetricsRegistry* registry);

  /// The process-wide bundle over MetricsRegistry::Default().
  static CasperMetrics* Default();

  MetricsRegistry* registry;

  // --- Anonymizer tier (trusted) --------------------------------------
  Counter* cloaks_total;
  Counter* cloak_failures_total;
  Histogram* cloak_seconds;     ///< Algorithm-1 latency.
  Histogram* cloak_area;        ///< Cloaked-region area (space units²).
  Histogram* cloak_k_achieved;  ///< Users inside the region (k').
  Counter* pyramid_splits_total;
  Counter* pyramid_merges_total;
  Counter* pyramid_counter_updates_total;
  Counter* user_events_total[4];  ///< register / move / profile / deregister.
  Gauge* users;
  Gauge* pending_publications;
  Counter* snapshots_total;
  Counter* regions_published_total;
  Counter* regions_retracted_total;
  Counter* workload_dropped_updates_total;  ///< Simulator updates for
                                            ///< unregistered uids.

  // --- Server tier (untrusted), per query kind ------------------------
  Counter* queries_total[kQueryKindCount];
  Counter* query_errors_total[kQueryKindCount];
  Histogram* query_seconds[kQueryKindCount];  ///< Processor latency.
  Histogram* candidates[kQueryKindCount];     ///< Candidate-list size.
  Counter* cache_hits_total;
  Counter* cache_misses_total;

  /// Epoch-published store snapshots (spatial::EpochIndex), per store
  /// population (`store=` label, kStoreLabels order). Absolute values
  /// mirrored from the index's own counters after every mutation, so
  /// they are gauges: scrape-to-scrape deltas recover the rates.
  Gauge* store_epoch[2];                ///< Snapshots published so far.
  Gauge* store_snapshots_reclaimed[2];  ///< Retired snapshots freed.
  Gauge* store_rebuilds[2];             ///< Flat-base STR rebuilds.
  Gauge* store_delta_entries[2];        ///< Entries in the current delta.
  Gauge* store_tombstones[2];           ///< Tombstones in the current delta.

  // --- Batch engine ----------------------------------------------------
  Counter* batches_total;
  Counter* batch_queries_total;
  Counter* batch_errors_total;
  Counter* batch_shed_total;  ///< Slots shed at the queue-depth watermark.
  Gauge* batch_queue_depth;
  Gauge* pool_utilization;  ///< Busy-time share of the last batch.
  Gauge* pool_threads;
  Histogram* batch_wall_seconds;

  // --- Transport (anonymizer <-> server channel) ------------------------
  Gauge* breaker_state;  ///< BreakerState wire value: 0 closed, 1 open,
                         ///< 2 half-open.
  Counter* breaker_transitions_total[3];  ///< By target state (`to=`).
  Counter* transport_requests_total;      ///< Calls entering the client.
  Counter* transport_retries_total;       ///< Re-sent attempts.
  Counter* transport_failures_total;      ///< Failed channel attempts.
  Counter* transport_deadline_exceeded_total;
  Counter* transport_unavailable_total;   ///< Calls failed kUnavailable.
  Counter* transport_degraded_total;      ///< Cache-served answers.
  Histogram* transport_retries_per_request;
  Counter* replay_enqueued_total;  ///< Upserts queued during an outage.
  Counter* replay_drained_total;   ///< Queued upserts applied on recovery.
  Counter* replay_dropped_total;   ///< Queued upserts lost to the bound.
  Gauge* replay_depth;

  // --- Socket transport (framed TCP/UDS, listener + client) -------------
  Counter* net_connections_accepted_total;
  Gauge* net_connections_active;
  Counter* net_connections_closed_total[8];  ///< By `reason=`
                                             ///< (kNetCloseReasonLabels).
  Counter* net_frames_read_total;
  Counter* net_frames_written_total;
  Counter* net_bytes_read_total;
  Counter* net_bytes_written_total;
  Counter* net_shed_total;  ///< Frames answered kUnavailable at the
                            ///< inbound-queue watermark.
  Counter* net_rate_limited_total;  ///< Frames rejected by per-peer
                                    ///< rate/byte limits.
  Counter* net_bans_total;          ///< Peers banned for repeat abuse.
  Counter* net_ban_rejects_total;   ///< Connections refused while banned.
  Gauge* net_banned_peers;
  Gauge* net_inbound_queue_depth;  ///< Admitted frames awaiting a worker.
  Counter* net_dials_total;        ///< Client connection attempts.
  Counter* net_dial_failures_total;
  Counter* net_reconnects_total;  ///< Successful dials after a failure.
  Counter* net_backoff_fastfails_total;  ///< Calls failed fast inside the
                                         ///< reconnect-backoff window.
  Counter* net_io_timeouts_total;  ///< Client reads/writes abandoned at
                                   ///< their deadline.

  // --- Storage tier (page store + buffer pool) --------------------------
  Counter* storage_pool_hits_total;    ///< Page loads served from cache.
  Counter* storage_pool_misses_total;  ///< Page loads that went to disk.
  Counter* storage_pool_evictions_total;
  Counter* storage_pool_writebacks_total;  ///< Dirty pages flushed down.
  Gauge* storage_pool_resident_pages;
  Gauge* storage_pool_pinned_pages;
  Gauge* storage_pool_capacity_pages;
  Counter* storage_pages_read_total;     ///< Pages read by the disk backend.
  Counter* storage_pages_written_total;  ///< Pages written by the disk
                                         ///< backend.
  Counter* storage_checksum_failures_total;  ///< Torn/corrupt pages detected.

  // --- Query-path spans -------------------------------------------------
  QueryTracer tracer;
};

/// Index of a lifecycle event in `user_events_total`.
enum class UserEvent : size_t {
  kRegister = 0,
  kMove = 1,
  kProfile = 2,
  kDeregister = 3
};

/// Store populations, in `store_*` instrument label order.
inline constexpr size_t kStoreCount = 2;
inline constexpr const char* kStoreLabels[kStoreCount] = {"public",
                                                          "private"};

/// Socket-connection close reasons, in `net_connections_closed_total`
/// label order (mirrors transport::SocketListener without a header
/// dependency).
inline constexpr size_t kNetCloseReasonCount = 8;
inline constexpr const char* kNetCloseReasonLabels[kNetCloseReasonCount] = {
    "eof",    "error", "idle", "slow_loris",
    "frame_error", "banned", "cap",  "drain"};

/// Circuit-breaker states, in `breaker_state` gauge / transition-label
/// order (mirrors transport::BreakerState without a header dependency —
/// obs stays includable from both sides of the trust boundary).
inline constexpr size_t kBreakerStateCount = 3;
inline constexpr const char* kBreakerStateLabels[kBreakerStateCount] = {
    "closed", "open", "half_open"};

}  // namespace casper::obs

#endif  // CASPER_OBS_CASPER_METRICS_H_
