#ifndef CASPER_OBS_CASPER_METRICS_H_
#define CASPER_OBS_CASPER_METRICS_H_

#include "src/obs/metrics.h"
#include "src/obs/span.h"

/// \file
/// The named instruments of the serving path, registered once and
/// shared by the three tiers. Naming scheme (see DESIGN.md §2c):
/// `casper_<tier>_<what>[_<unit>][_total]` with `kind=`, `event=`, and
/// `phase=` labels; the seven `kind` label values follow the QueryKind
/// wire order, mirrored here as strings so this directory stays
/// dependency-free of the protocol headers (and therefore usable from
/// both sides of the trust boundary).
///
/// Components resolve a null options pointer to Default(), which hangs
/// off MetricsRegistry::Default() — the registry `casper_cli metrics`
/// scrapes. Tests inject a fresh registry instead.

namespace casper::obs {

/// Mirror of the QueryKind count/order (static_assert'd at the one
/// include site that sees both, src/casper/casper.cc).
inline constexpr size_t kQueryKindCount = 7;
inline constexpr const char* kQueryKindLabels[kQueryKindCount] = {
    "nearest_public", "k_nearest_public", "range_public", "nearest_private",
    "public_nearest", "public_range",     "density",
};

struct CasperMetrics {
  explicit CasperMetrics(MetricsRegistry* registry);

  /// The process-wide bundle over MetricsRegistry::Default().
  static CasperMetrics* Default();

  MetricsRegistry* registry;

  // --- Anonymizer tier (trusted) --------------------------------------
  Counter* cloaks_total;
  Counter* cloak_failures_total;
  Histogram* cloak_seconds;     ///< Algorithm-1 latency.
  Histogram* cloak_area;        ///< Cloaked-region area (space units²).
  Histogram* cloak_k_achieved;  ///< Users inside the region (k').
  Counter* pyramid_splits_total;
  Counter* pyramid_merges_total;
  Counter* pyramid_counter_updates_total;
  Counter* user_events_total[4];  ///< register / move / profile / deregister.
  Gauge* users;
  Gauge* pending_publications;
  Counter* snapshots_total;
  Counter* regions_published_total;
  Counter* regions_retracted_total;

  // --- Server tier (untrusted), per query kind ------------------------
  Counter* queries_total[kQueryKindCount];
  Counter* query_errors_total[kQueryKindCount];
  Histogram* query_seconds[kQueryKindCount];  ///< Processor latency.
  Histogram* candidates[kQueryKindCount];     ///< Candidate-list size.
  Counter* cache_hits_total;
  Counter* cache_misses_total;

  // --- Batch engine ----------------------------------------------------
  Counter* batches_total;
  Counter* batch_queries_total;
  Counter* batch_errors_total;
  Gauge* batch_queue_depth;
  Gauge* pool_utilization;  ///< Busy-time share of the last batch.
  Gauge* pool_threads;
  Histogram* batch_wall_seconds;

  // --- Query-path spans -------------------------------------------------
  QueryTracer tracer;
};

/// Index of a lifecycle event in `user_events_total`.
enum class UserEvent : size_t {
  kRegister = 0,
  kMove = 1,
  kProfile = 2,
  kDeregister = 3
};

}  // namespace casper::obs

#endif  // CASPER_OBS_CASPER_METRICS_H_
