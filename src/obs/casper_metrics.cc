#include "src/obs/casper_metrics.h"

namespace casper::obs {
namespace {

/// Latency bounds shared by cloak / query-processing histograms:
/// 1µs .. 1s, roughly logarithmic.
std::vector<double> LatencyBounds() {
  return {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
          5e-4, 1e-3,   5e-3, 1e-2, 5e-2,   0.1,  0.5,  1.0};
}

/// Candidate-list size / k-achieved bounds (counts).
std::vector<double> CountBounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096};
}

/// Cloak-area bounds as absolute area in space units² (the managed
/// space is 1×1 by default, so these read as fractions of it).
std::vector<double> AreaBounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0};
}

std::vector<double> BatchWallBounds() {
  return {1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0};
}

/// Retries-per-request bounds (small integers; the retry cap is single
/// digits in any sane policy).
std::vector<double> RetryBounds() {
  return {0, 1, 2, 3, 4, 6, 8, 16};
}

constexpr const char* kEventLabels[4] = {"register", "move", "profile",
                                         "deregister"};

}  // namespace

CasperMetrics::CasperMetrics(MetricsRegistry* r)
    : registry(r),
      cloaks_total(r->GetCounter("casper_anonymizer_cloaks_total",
                                 "Successful Algorithm-1 cloaks.")),
      cloak_failures_total(
          r->GetCounter("casper_anonymizer_cloak_failures_total",
                        "Cloak attempts that failed (unknown user, "
                        "unsatisfiable profile, ...).")),
      cloak_seconds(r->GetHistogram("casper_anonymizer_cloak_seconds",
                                    "Algorithm-1 cloaking latency.",
                                    LatencyBounds())),
      cloak_area(r->GetHistogram(
          "casper_anonymizer_cloak_area",
          "Cloaked-region area in space units squared.", AreaBounds())),
      cloak_k_achieved(r->GetHistogram(
          "casper_anonymizer_cloak_k_achieved",
          "Users inside the returned cloaked region (k').", CountBounds())),
      pyramid_splits_total(r->GetCounter(
          "casper_anonymizer_pyramid_splits_total",
          "Adaptive-pyramid cell splits during maintenance.")),
      pyramid_merges_total(r->GetCounter(
          "casper_anonymizer_pyramid_merges_total",
          "Adaptive-pyramid cell merges during maintenance.")),
      pyramid_counter_updates_total(r->GetCounter(
          "casper_anonymizer_pyramid_counter_updates_total",
          "Pyramid cell-counter mutations (the paper's update-cost "
          "metric).")),
      users(r->GetGauge("casper_anonymizer_users",
                        "Currently registered users.")),
      pending_publications(r->GetGauge(
          "casper_anonymizer_pending_publications",
          "Users whose profile cannot be satisfied yet (awaiting "
          "re-publication).")),
      snapshots_total(r->GetCounter("casper_anonymizer_snapshots_total",
                                    "Identity-stripped snapshots built.")),
      regions_published_total(r->GetCounter(
          "casper_anonymizer_regions_published_total",
          "Cloaked regions published to the server tier.")),
      regions_retracted_total(r->GetCounter(
          "casper_anonymizer_regions_retracted_total",
          "Stored regions retracted from the server tier.")),
      workload_dropped_updates_total(r->GetCounter(
          "casper_workload_dropped_updates_total",
          "Simulator location updates dropped because the uid is not "
          "registered with the anonymizer.")),
      cache_hits_total(r->GetCounter(
          "casper_server_cache_hits_total",
          "Candidate-list cache hits (shared cloak evaluations).")),
      cache_misses_total(r->GetCounter("casper_server_cache_misses_total",
                                       "Candidate-list cache misses.")),
      batches_total(r->GetCounter("casper_batch_batches_total",
                                  "BatchQueryEngine::Execute calls.")),
      batch_queries_total(r->GetCounter("casper_batch_queries_total",
                                        "Queries submitted in batches.")),
      batch_errors_total(r->GetCounter(
          "casper_batch_errors_total", "Batch slots that ended in error.")),
      batch_shed_total(r->GetCounter(
          "casper_batch_shed_total",
          "Batch slots shed with kUnavailable at the queue-depth "
          "watermark.")),
      batch_queue_depth(r->GetGauge(
          "casper_batch_queue_depth",
          "Tasks waiting in the engine's pool after fan-out.")),
      pool_utilization(r->GetGauge(
          "casper_batch_pool_utilization",
          "Worker busy-time share of the last batch (busy / threads x "
          "wall).")),
      pool_threads(r->GetGauge("casper_batch_pool_threads",
                               "Worker threads in the engine's pool.")),
      batch_wall_seconds(r->GetHistogram("casper_batch_wall_seconds",
                                         "Whole-batch wall time.",
                                         BatchWallBounds())),
      breaker_state(r->GetGauge(
          "casper_transport_breaker_state",
          "Circuit-breaker state: 0 closed, 1 open, 2 half-open.")),
      transport_requests_total(r->GetCounter(
          "casper_transport_requests_total",
          "Requests entering the resilient client.")),
      transport_retries_total(r->GetCounter(
          "casper_transport_retries_total",
          "Attempts re-sent after a retryable transport failure.")),
      transport_failures_total(r->GetCounter(
          "casper_transport_failures_total",
          "Channel attempts that failed (dropped, corrupted, rejected).")),
      transport_deadline_exceeded_total(r->GetCounter(
          "casper_transport_deadline_exceeded_total",
          "Requests abandoned at their deadline.")),
      transport_unavailable_total(r->GetCounter(
          "casper_transport_unavailable_total",
          "Requests that ultimately failed kUnavailable.")),
      transport_degraded_total(r->GetCounter(
          "casper_transport_degraded_total",
          "Private queries answered degraded from the candidate-list "
          "cache during an outage.")),
      transport_retries_per_request(r->GetHistogram(
          "casper_transport_retries_per_request",
          "Retries spent per request (0 = first attempt succeeded).",
          RetryBounds())),
      replay_enqueued_total(r->GetCounter(
          "casper_transport_replay_enqueued_total",
          "Maintenance messages queued while the server was "
          "unreachable.")),
      replay_drained_total(r->GetCounter(
          "casper_transport_replay_drained_total",
          "Queued maintenance messages applied on recovery.")),
      replay_dropped_total(r->GetCounter(
          "casper_transport_replay_dropped_total",
          "Maintenance messages rejected because the replay buffer was "
          "full.")),
      replay_depth(r->GetGauge(
          "casper_transport_replay_depth",
          "Maintenance messages currently queued for replay.")),
      net_connections_accepted_total(r->GetCounter(
          "casper_net_connections_accepted_total",
          "Socket connections accepted by the listener.")),
      net_connections_active(r->GetGauge(
          "casper_net_connections_active",
          "Socket connections currently open on the listener.")),
      net_frames_read_total(r->GetCounter(
          "casper_net_frames_read_total",
          "Complete request frames read off sockets.")),
      net_frames_written_total(r->GetCounter(
          "casper_net_frames_written_total",
          "Response frames written to sockets.")),
      net_bytes_read_total(r->GetCounter(
          "casper_net_bytes_read_total",
          "Bytes read off accepted sockets.")),
      net_bytes_written_total(r->GetCounter(
          "casper_net_bytes_written_total",
          "Bytes written to accepted sockets.")),
      net_shed_total(r->GetCounter(
          "casper_net_shed_total",
          "Frames answered kUnavailable at the inbound-queue "
          "watermark.")),
      net_rate_limited_total(r->GetCounter(
          "casper_net_rate_limited_total",
          "Frames rejected by per-peer rate or byte limits.")),
      net_bans_total(r->GetCounter(
          "casper_net_bans_total",
          "Peers temporarily banned for repeated abuse.")),
      net_ban_rejects_total(r->GetCounter(
          "casper_net_ban_rejects_total",
          "Connections refused because the peer is banned.")),
      net_banned_peers(r->GetGauge("casper_net_banned_peers",
                                   "Peers currently banned.")),
      net_inbound_queue_depth(r->GetGauge(
          "casper_net_inbound_queue_depth",
          "Admitted frames waiting for a listener worker.")),
      net_dials_total(r->GetCounter(
          "casper_net_dials_total",
          "Client socket connection attempts.")),
      net_dial_failures_total(r->GetCounter(
          "casper_net_dial_failures_total",
          "Client socket connection attempts that failed.")),
      net_reconnects_total(r->GetCounter(
          "casper_net_reconnects_total",
          "Successful client dials after at least one failure.")),
      net_backoff_fastfails_total(r->GetCounter(
          "casper_net_backoff_fastfails_total",
          "Client calls failed fast inside the reconnect-backoff "
          "window.")),
      net_io_timeouts_total(r->GetCounter(
          "casper_net_io_timeouts_total",
          "Client socket reads/writes abandoned at their deadline.")),
      storage_pool_hits_total(r->GetCounter(
          "casper_storage_pool_hits_total",
          "Buffer-pool page loads served from the cache.")),
      storage_pool_misses_total(r->GetCounter(
          "casper_storage_pool_misses_total",
          "Buffer-pool page loads that fell through to the backend.")),
      storage_pool_evictions_total(r->GetCounter(
          "casper_storage_pool_evictions_total",
          "Pages evicted from the buffer pool (LRU).")),
      storage_pool_writebacks_total(r->GetCounter(
          "casper_storage_pool_writebacks_total",
          "Dirty pages written back to the backend on eviction or "
          "flush.")),
      storage_pool_resident_pages(r->GetGauge(
          "casper_storage_pool_resident_pages",
          "Pages currently cached in the buffer pool.")),
      storage_pool_pinned_pages(r->GetGauge(
          "casper_storage_pool_pinned_pages",
          "Cached pages currently pinned against eviction.")),
      storage_pool_capacity_pages(r->GetGauge(
          "casper_storage_pool_capacity_pages",
          "Configured buffer-pool capacity in pages.")),
      storage_pages_read_total(r->GetCounter(
          "casper_storage_pages_read_total",
          "Logical pages read by the disk storage manager.")),
      storage_pages_written_total(r->GetCounter(
          "casper_storage_pages_written_total",
          "Logical pages written by the disk storage manager.")),
      storage_checksum_failures_total(r->GetCounter(
          "casper_storage_checksum_failures_total",
          "Pages whose checksum failed verification on load (torn or "
          "corrupt writes).")),
      tracer(r) {
  for (size_t i = 0; i < kBreakerStateCount; ++i) {
    breaker_transitions_total[i] =
        r->GetCounter("casper_transport_breaker_transitions_total",
                      "Circuit-breaker transitions by target state.",
                      {{"to", kBreakerStateLabels[i]}});
  }
  for (size_t i = 0; i < kNetCloseReasonCount; ++i) {
    net_connections_closed_total[i] =
        r->GetCounter("casper_net_connections_closed_total",
                      "Socket connections closed, by reason.",
                      {{"reason", kNetCloseReasonLabels[i]}});
  }
  for (size_t i = 0; i < 4; ++i) {
    user_events_total[i] =
        r->GetCounter("casper_anonymizer_events_total",
                      "User lifecycle events by type.",
                      {{"event", kEventLabels[i]}});
  }
  for (size_t s = 0; s < kStoreCount; ++s) {
    const LabelSet labels = {{"store", kStoreLabels[s]}};
    store_epoch[s] = r->GetGauge(
        "casper_server_store_epoch",
        "Read snapshots published by the epoch index so far.", labels);
    store_snapshots_reclaimed[s] = r->GetGauge(
        "casper_server_store_snapshots_reclaimed",
        "Retired read snapshots whose memory was reclaimed.", labels);
    store_rebuilds[s] = r->GetGauge(
        "casper_server_store_rebuilds",
        "Flat-base STR rebuilds triggered by the delta threshold.", labels);
    store_delta_entries[s] = r->GetGauge(
        "casper_server_store_delta_entries",
        "Entries in the published snapshot's unmerged delta.", labels);
    store_tombstones[s] = r->GetGauge(
        "casper_server_store_tombstones",
        "Tombstones in the published snapshot's unmerged delta.", labels);
  }
  for (size_t k = 0; k < kQueryKindCount; ++k) {
    const LabelSet labels = {{"kind", kQueryKindLabels[k]}};
    queries_total[k] =
        r->GetCounter("casper_server_queries_total",
                      "Queries answered by the server tier.", labels);
    query_errors_total[k] =
        r->GetCounter("casper_server_query_errors_total",
                      "Server-tier evaluations that failed.", labels);
    query_seconds[k] = r->GetHistogram(
        "casper_server_query_seconds",
        "Server-side processing latency per query.", LatencyBounds(), labels);
    candidates[k] = r->GetHistogram(
        "casper_server_candidates",
        "Candidate-list records returned per query.", CountBounds(), labels);
  }
}

CasperMetrics* CasperMetrics::Default() {
  static CasperMetrics* const metrics =
      new CasperMetrics(MetricsRegistry::Default());
  return metrics;
}

}  // namespace casper::obs
