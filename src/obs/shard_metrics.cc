#include "src/obs/shard_metrics.h"

#include <string>

namespace casper::obs {

ShardMetrics::ShardMetrics(MetricsRegistry* registry, size_t num_shards)
    : registry_(registry ? registry : MetricsRegistry::Default()) {
  MetricsRegistry* r = registry_;
  requests_total.reserve(num_shards);
  errors_total.reserve(num_shards);
  stored_objects.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    const LabelSet labels = {{"shard", std::to_string(i)}};
    requests_total.push_back(
        r->GetCounter("casper_shard_requests_total",
                      "Fan-out calls sent to this shard.", labels));
    errors_total.push_back(r->GetCounter(
        "casper_shard_errors_total",
        "Shard calls that failed after the client's retries.", labels));
    stored_objects.push_back(
        r->GetGauge("casper_shard_stored_objects",
                    "Public targets plus private regions owned by this "
                    "shard under the current partition.",
                    labels));
  }
  degraded_answers_total = r->GetCounter(
      "casper_shard_degraded_answers_total",
      "Merged answers served with degraded=true because at least one "
      "relevant shard was unreachable.");
  unavailable_total = r->GetCounter(
      "casper_shard_unavailable_total",
      "Queries failed kUnavailable because every relevant shard was down.");
  probe_calls_total = r->GetCounter(
      "casper_shard_probe_calls_total",
      "Filter-probe sub-queries issued while deriving cross-shard "
      "NN/k-NN bounds.");
  rebalances_total =
      r->GetCounter("casper_shard_rebalances_total",
                    "Partition recomputations applied by Rebalance().");
  handoff_objects_total = r->GetCounter(
      "casper_shard_handoff_objects_total",
      "Targets and regions that changed owning shard during rebalances.");
  fanout_shards = r->GetHistogram(
      "casper_shard_fanout_shards",
      "Number of shards touched by one routed query.",
      {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0});
}

}  // namespace casper::obs
