#include "src/obs/span.h"

namespace casper::obs {
namespace {

/// Shared bounds for all phase histograms: 1µs .. 1s, roughly
/// logarithmic — cloaking sits in the low microseconds, Algorithm 2
/// evaluations in the tens to hundreds.
std::vector<double> PhaseBounds() {
  return {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
          5e-4, 1e-3,   5e-3, 1e-2, 5e-2,   0.1,  0.5,  1.0};
}

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kCloak:
      return "cloak";
    case Phase::kWireEncode:
      return "wire_encode";
    case Phase::kEvaluate:
      return "evaluate";
    case Phase::kRefine:
      return "refine";
  }
  return "unknown";
}

QueryTracer::QueryTracer(MetricsRegistry* registry, size_t ring_capacity)
    : capacity_(ring_capacity > 0 ? ring_capacity : 1) {
  for (size_t i = 0; i < kPhaseCount; ++i) {
    phase_seconds_[i] = registry->GetHistogram(
        "casper_query_phase_seconds",
        "Wall time of one query-pipeline phase.", PhaseBounds(),
        {{"phase", PhaseName(static_cast<Phase>(i))}});
  }
  traces_total_ = registry->GetCounter("casper_query_traces_total",
                                       "Query spans finished.");
  ring_.reserve(capacity_);
}

QuerySpan QueryTracer::Start(const char* kind) {
  QuerySpan span;
  span.trace_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.kind = kind;
  return span;
}

void QueryTracer::RecordPhase(Phase phase, double seconds) {
  phase_seconds_[static_cast<size_t>(phase)]->Observe(seconds);
}

void QueryTracer::Finish(const QuerySpan& span) {
  for (size_t i = 0; i < kPhaseCount; ++i) {
    if (span.phase_seconds[i] > 0.0) {
      phase_seconds_[i]->Observe(span.phase_seconds[i]);
    }
  }
  traces_total_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[next_slot_] = span;
    wrapped_ = true;
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
}

std::vector<QuerySpan> QueryTracer::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) return ring_;
  std::vector<QuerySpan> ordered;
  ordered.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    ordered.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return ordered;
}

uint64_t QueryTracer::finished_count() const { return traces_total_->Value(); }

}  // namespace casper::obs
