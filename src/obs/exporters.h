#ifndef CASPER_OBS_EXPORTERS_H_
#define CASPER_OBS_EXPORTERS_H_

#include <string>

#include "src/obs/metrics.h"

/// \file
/// Renderers for a MetricsSnapshot. Both are deterministic — families
/// by name, samples by label set, doubles through one shared formatter
/// — so identical registries render byte-identical output (golden-file
/// tested).

namespace casper::obs {

/// Prometheus text exposition format (version 0.0.4): one `# HELP` /
/// `# TYPE` pair per family, counters and gauges as single sample
/// lines, histograms as cumulative `_bucket{le=...}` lines plus `_sum`
/// and `_count`.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

/// JSON snapshot: `{"metrics": [{name, type, help, samples: [...]}]}`
/// with histogram samples carrying per-bucket (non-cumulative) counts.
/// This is what the throughput bench writes next to BENCH_throughput.json.
std::string ExportJson(const MetricsSnapshot& snapshot);

}  // namespace casper::obs

#endif  // CASPER_OBS_EXPORTERS_H_
