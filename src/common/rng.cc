#include "src/common/rng.h"

#include "src/common/status.h"

namespace casper {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  CASPER_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  CASPER_DCHECK(lo <= hi);
  const uint64_t span = hi - lo + 1;
  if (span == 0) return Next();  // Full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + v % span;
}

Point Rng::PointIn(const Rect& r) {
  CASPER_DCHECK(!r.is_empty());
  return Point{Uniform(r.min.x, r.max.x), Uniform(r.min.y, r.max.y)};
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xda3e39cb94b95bdbULL); }

}  // namespace casper
