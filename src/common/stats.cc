#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace casper {

void SummaryStats::Add(double v) {
  if (!samples_.empty() && v < samples_.back()) sorted_ = false;
  samples_.push_back(v);
  sum_ += v;
}

double SummaryStats::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double SummaryStats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SummaryStats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SummaryStats::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  CASPER_DCHECK(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

double SummaryStats::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void SummaryStats::Merge(const SummaryStats& other) {
  for (double v : other.samples_) Add(v);
}

}  // namespace casper
