#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace casper {

SummaryStats::SummaryStats(const SummaryStats& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  samples_ = other.samples_;
  sorted_ = other.sorted_;
  sum_ = other.sum_;
}

SummaryStats::SummaryStats(SummaryStats&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  samples_ = std::move(other.samples_);
  sorted_ = other.sorted_;
  sum_ = other.sum_;
  other.samples_.clear();
  other.sorted_ = true;
  other.sum_ = 0.0;
}

SummaryStats& SummaryStats::operator=(const SummaryStats& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  samples_ = other.samples_;
  sorted_ = other.sorted_;
  sum_ = other.sum_;
  return *this;
}

SummaryStats& SummaryStats::operator=(SummaryStats&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  samples_ = std::move(other.samples_);
  sorted_ = other.sorted_;
  sum_ = other.sum_;
  other.samples_.clear();
  other.sorted_ = true;
  other.sum_ = 0.0;
  return *this;
}

void SummaryStats::Add(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!samples_.empty() && v < samples_.back()) sorted_ = false;
  samples_.push_back(v);
  sum_ += v;
}

size_t SummaryStats::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

double SummaryStats::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double SummaryStats::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

void SummaryStats::EnsureSortedLocked() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SummaryStats::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  EnsureSortedLocked();
  return samples_.front();
}

double SummaryStats::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  EnsureSortedLocked();
  return samples_.back();
}

double SummaryStats::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  CASPER_DCHECK(q >= 0.0 && q <= 1.0);
  EnsureSortedLocked();
  // Nearest-rank: the smallest sample whose cumulative frequency >= q.
  const double n = static_cast<double>(samples_.size());
  const size_t rank =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(q * n)));
  return samples_[std::min(rank - 1, samples_.size() - 1)];
}

double SummaryStats::StdDev() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.size() < 2) return 0.0;
  const double m = sum_ / static_cast<double>(samples_.size());
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void SummaryStats::Merge(const SummaryStats& other) {
  if (this == &other) {
    // Self-merge doubles every sample; copy first to avoid iterating a
    // vector we are appending to.
    const SummaryStats copy(other);
    Merge(copy);
    return;
  }
  std::scoped_lock lock(mu_, other.mu_);
  for (double v : other.samples_) {
    if (!samples_.empty() && v < samples_.back()) sorted_ = false;
    samples_.push_back(v);
    sum_ += v;
  }
}

}  // namespace casper
