#ifndef CASPER_COMMON_GEOMETRY_H_
#define CASPER_COMMON_GEOMETRY_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <string>

/// \file
/// 2-D geometry primitives shared by every Casper module: points,
/// axis-aligned rectangles, and the distance kernels Algorithm 2 needs
/// (point-point, point-rectangle MinDist/MaxDist, furthest corner, and
/// perpendicular-bisector/segment intersection).

namespace casper {

/// A point in the 2-D plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Squared Euclidean distance (cheaper; use for comparisons).
double SquaredDistance(const Point& a, const Point& b);

/// Euclidean distance.
double Distance(const Point& a, const Point& b);

/// An axis-aligned rectangle, closed on all sides. The canonical empty
/// rectangle (default constructed) has min > max and reports
/// `is_empty()`; all set operations treat it as the identity.
struct Rect {
  Point min{+1.0, +1.0};
  Point max{-1.0, -1.0};

  Rect() = default;
  Rect(Point mn, Point mx) : min(mn), max(mx) {}
  Rect(double min_x, double min_y, double max_x, double max_y)
      : min{min_x, min_y}, max{max_x, max_y} {}

  /// Degenerate rectangle containing exactly one point.
  static Rect FromPoint(const Point& p) { return Rect(p, p); }

  bool is_empty() const { return min.x > max.x || min.y > max.y; }

  double width() const { return is_empty() ? 0.0 : max.x - min.x; }
  double height() const { return is_empty() ? 0.0 : max.y - min.y; }
  double Area() const { return width() * height(); }
  /// Half-perimeter; the R-tree split heuristic margin term.
  double Margin() const { return width() + height(); }

  Point Center() const {
    return Point{(min.x + max.x) / 2.0, (min.y + max.y) / 2.0};
  }

  bool Contains(const Point& p) const {
    return !is_empty() && p.x >= min.x && p.x <= max.x && p.y >= min.y &&
           p.y <= max.y;
  }

  /// True when `other` lies fully inside this rectangle.
  bool Contains(const Rect& other) const {
    if (other.is_empty()) return true;
    if (is_empty()) return false;
    return other.min.x >= min.x && other.max.x <= max.x &&
           other.min.y >= min.y && other.max.y <= max.y;
  }

  /// Closed-boundary overlap test (touching rectangles intersect).
  bool Intersects(const Rect& other) const {
    if (is_empty() || other.is_empty()) return false;
    return min.x <= other.max.x && other.min.x <= max.x &&
           min.y <= other.max.y && other.min.y <= max.y;
  }

  /// Area of the overlap region (0 when disjoint).
  double IntersectionArea(const Rect& other) const;

  /// Smallest rectangle containing both.
  Rect Union(const Rect& other) const;

  /// Rectangle grown outward by `d >= 0` on every side.
  Rect Expanded(double d) const {
    if (is_empty()) return *this;
    return Rect(min.x - d, min.y - d, max.x + d, max.y + d);
  }

  /// Rectangle with each side pushed outward by its own distance
  /// (the Algorithm 2 extended-area construction: `left` moves min.x
  /// left by that amount, etc.). Distances must be >= 0.
  Rect ExpandedPerSide(double left, double bottom, double right,
                       double top) const {
    if (is_empty()) return *this;
    return Rect(min.x - left, min.y - bottom, max.x + right, max.y + top);
  }

  /// The four corners in the fixed order used by the query processor:
  /// v0 = (min.x, min.y), v1 = (max.x, min.y), v2 = (max.x, max.y),
  /// v3 = (min.x, max.y) (counter-clockwise from bottom-left).
  std::array<Point, 4> Corners() const {
    return {Point{min.x, min.y}, Point{max.x, min.y}, Point{max.x, max.y},
            Point{min.x, max.y}};
  }

  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min == b.min && a.max == b.max;
  }
};

/// Distance from `p` to the closest point of `r` (0 if inside).
double MinDist(const Point& p, const Rect& r);

/// Distance from `p` to the farthest point of `r` (a corner).
double MaxDist(const Point& p, const Rect& r);

/// Struct-of-arrays view over a block of `count` rectangles: rectangle i
/// is [(xlo[i], ylo[i]), (xhi[i], yhi[i])]. The flat R-tree stores node
/// and entry MBRs in this layout so the batched kernels below can score
/// a whole node block in one contiguous pass (auto-vectorizable: no
/// branches, no pointer chasing).
struct RectSoA {
  const double* xlo = nullptr;
  const double* ylo = nullptr;
  const double* xhi = nullptr;
  const double* yhi = nullptr;
};

/// out[i] = MinDist(p, rect i) for i in [0, count). Bit-identical to the
/// scalar MinDist above — differential tests rely on exact agreement.
void BatchedMinDist(const Point& p, const RectSoA& rects, size_t count,
                    double* out);

/// out[i] = MaxDist(p, rect i) for i in [0, count). Bit-identical to the
/// scalar MaxDist above.
void BatchedMaxDist(const Point& p, const RectSoA& rects, size_t count,
                    double* out);

/// The corner of `r` farthest from `p` (ties broken toward the corner
/// ordering of Rect::Corners()). Used by the private-data filter step.
Point FurthestCorner(const Point& p, const Rect& r);

/// A directed segment from `a` to `b`.
struct Segment {
  Point a;
  Point b;

  double Length() const { return Distance(a, b); }
  Point Midpoint() const {
    return Point{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
  }
};

/// Intersection of the perpendicular bisector of segment `st` (the locus
/// of points equidistant from s and t) with segment `edge`.
///
/// Returns true and sets `*out` when the bisector crosses the edge.
/// Used by Algorithm 2 step 2: s and t are the filter targets of the two
/// edge vertices, the result is the middle point m_ij. When s == t the
/// bisector is undefined and the function returns false (the paper's
/// "m_ij does not exist" case).
bool BisectorEdgeIntersection(const Point& s, const Point& t,
                              const Segment& edge, Point* out);

/// Clamp `p` into `r` (no-op when already inside).
Point ClampToRect(const Point& p, const Rect& r);

}  // namespace casper

#endif  // CASPER_COMMON_GEOMETRY_H_
