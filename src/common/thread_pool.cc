#include "src/common/thread_pool.h"

#include "src/common/stopwatch.h"

namespace casper {

ThreadPool::ThreadPool(size_t thread_count) {
  const size_t n = thread_count > 0 ? thread_count : 1;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Graceful shutdown: keep draining until the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    Stopwatch watch;
    task();
    busy_seconds_.fetch_add(watch.ElapsedSeconds(),
                            std::memory_order_relaxed);
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace casper
