#include "src/common/geometry.h"

#include <cstdio>

namespace casper {

double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double Rect::IntersectionArea(const Rect& other) const {
  if (is_empty() || other.is_empty()) return 0.0;
  const double w = std::min(max.x, other.max.x) - std::max(min.x, other.min.x);
  const double h = std::min(max.y, other.max.y) - std::max(min.y, other.min.y);
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

Rect Rect::Union(const Rect& other) const {
  if (is_empty()) return other;
  if (other.is_empty()) return *this;
  return Rect(std::min(min.x, other.min.x), std::min(min.y, other.min.y),
              std::max(max.x, other.max.x), std::max(max.y, other.max.y));
}

std::string Rect::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[(%g, %g), (%g, %g)]", min.x, min.y, max.x,
                max.y);
  return buf;
}

double MinDist(const Point& p, const Rect& r) {
  const double dx = std::max({r.min.x - p.x, 0.0, p.x - r.max.x});
  const double dy = std::max({r.min.y - p.y, 0.0, p.y - r.max.y});
  return std::sqrt(dx * dx + dy * dy);
}

double MaxDist(const Point& p, const Rect& r) {
  const double dx = std::max(std::abs(p.x - r.min.x), std::abs(p.x - r.max.x));
  const double dy = std::max(std::abs(p.y - r.min.y), std::abs(p.y - r.max.y));
  return std::sqrt(dx * dx + dy * dy);
}

void BatchedMinDist(const Point& p, const RectSoA& rects, size_t count,
                    double* out) {
  const double px = p.x;
  const double py = p.y;
  for (size_t i = 0; i < count; ++i) {
    const double dx =
        std::max(std::max(rects.xlo[i] - px, 0.0), px - rects.xhi[i]);
    const double dy =
        std::max(std::max(rects.ylo[i] - py, 0.0), py - rects.yhi[i]);
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

void BatchedMaxDist(const Point& p, const RectSoA& rects, size_t count,
                    double* out) {
  const double px = p.x;
  const double py = p.y;
  for (size_t i = 0; i < count; ++i) {
    const double dx =
        std::max(std::abs(px - rects.xlo[i]), std::abs(px - rects.xhi[i]));
    const double dy =
        std::max(std::abs(py - rects.ylo[i]), std::abs(py - rects.yhi[i]));
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

Point FurthestCorner(const Point& p, const Rect& r) {
  Point best = r.min;
  double best_d = -1.0;
  for (const Point& c : r.Corners()) {
    const double d = SquaredDistance(p, c);
    if (d > best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

bool BisectorEdgeIntersection(const Point& s, const Point& t,
                              const Segment& edge, Point* out) {
  if (s == t) return false;
  // The bisector is the set of points q with |q-s|^2 == |q-t|^2, i.e.
  //   2 (t-s) . q = |t|^2 - |s|^2.
  // Parameterize the edge as q = a + u (b - a), u in [0, 1], and solve
  // the resulting linear equation for u.
  const double nx = t.x - s.x;
  const double ny = t.y - s.y;
  const double c = 0.5 * (t.x * t.x - s.x * s.x + t.y * t.y - s.y * s.y);
  const Point& a = edge.a;
  const Point& b = edge.b;
  const double denom = nx * (b.x - a.x) + ny * (b.y - a.y);
  const double num = c - (nx * a.x + ny * a.y);
  if (denom == 0.0) {
    // Edge parallel to the bisector: either disjoint or the whole edge is
    // equidistant; treat both as "no single middle point".
    return false;
  }
  const double u = num / denom;
  if (u < 0.0 || u > 1.0) return false;
  out->x = a.x + u * (b.x - a.x);
  out->y = a.y + u * (b.y - a.y);
  return true;
}

Point ClampToRect(const Point& p, const Rect& r) {
  return Point{std::clamp(p.x, r.min.x, r.max.x),
               std::clamp(p.y, r.min.y, r.max.y)};
}

}  // namespace casper
