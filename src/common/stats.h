#ifndef CASPER_COMMON_STATS_H_
#define CASPER_COMMON_STATS_H_

#include <cstddef>
#include <mutex>
#include <vector>

namespace casper {

/// Streaming accumulator for experiment metrics: count/mean/min/max plus
/// exact quantiles on demand (samples are retained; experiment scales are
/// small enough that this is fine).
///
/// Thread-safe: Add/Merge and every reader take an internal mutex, so a
/// shared accumulator may be read (and written) from multiple threads.
/// Readers still observe a consistent snapshot only per call — composing
/// several calls is not atomic.
class SummaryStats {
 public:
  SummaryStats() = default;
  SummaryStats(const SummaryStats& other);
  SummaryStats(SummaryStats&& other) noexcept;
  SummaryStats& operator=(const SummaryStats& other);
  SummaryStats& operator=(SummaryStats&& other) noexcept;

  void Add(double v);

  size_t count() const;
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Exact q-quantile by nearest-rank: the smallest sample whose
  /// cumulative frequency is >= q, i.e. sorted[ceil(q * n) - 1] (clamped
  /// to the first sample for q = 0). q must be in [0, 1]; returns 0 when
  /// empty.
  double Quantile(double q) const;
  double StdDev() const;

  /// Merge another accumulator into this one.
  void Merge(const SummaryStats& other);

 private:
  void EnsureSortedLocked() const;

  mutable std::mutex mu_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

}  // namespace casper

#endif  // CASPER_COMMON_STATS_H_
