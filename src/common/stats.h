#ifndef CASPER_COMMON_STATS_H_
#define CASPER_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace casper {

/// Streaming accumulator for experiment metrics: count/mean/min/max plus
/// exact quantiles on demand (samples are retained; experiment scales are
/// small enough that this is fine).
class SummaryStats {
 public:
  void Add(double v);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Exact q-quantile by nearest-rank, q in [0, 1]. Returns 0 when empty.
  double Quantile(double q) const;
  double StdDev() const;

  /// Merge another accumulator into this one.
  void Merge(const SummaryStats& other);

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

}  // namespace casper

#endif  // CASPER_COMMON_STATS_H_
