#ifndef CASPER_COMMON_THREAD_POOL_H_
#define CASPER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

/// \file
/// Fixed-size worker pool for the batch query engine. Deliberately
/// simple — a single locked FIFO, no work stealing: batch queries are
/// coarse enough (one Algorithm-2 evaluation each) that queue
/// contention is negligible next to the work items, and a single queue
/// keeps completion reasoning trivial.
///
/// Shutdown is graceful: every task submitted before Shutdown() (or the
/// destructor) runs to completion before the workers join, so futures
/// obtained from Submit never dangle. Submitting *after* shutdown has
/// begun is not a crash: Submit returns kUnavailable and the callable is
/// never run, so racing producers degrade cleanly instead of aborting
/// the process. A task that throws delivers its exception through the
/// future (std::packaged_task semantics) rather than terminating a
/// worker.

namespace casper {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers immediately (at least one).
  explicit ThreadPool(size_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a nullary callable; the future resolves to its return
  /// value once a worker has run it (or rethrows the task's exception).
  /// Returns kUnavailable — and never runs `fn` — once Shutdown() has
  /// begun, so late producers see a typed error instead of an abort or
  /// a future that never resolves.
  template <typename F>
  auto Submit(F&& fn)
      -> Result<std::future<std::invoke_result_t<std::decay_t<F>>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return Status::Unavailable("thread pool is shutting down");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Drains the queue (pending tasks still run) and joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  size_t thread_count() const { return workers_.size(); }

  /// Tasks enqueued but not yet picked up by a worker.
  size_t pending() const;

  /// Cumulative wall time workers have spent inside tasks (relaxed
  /// reads; exact once the pool is idle). The utilization input of the
  /// batch engine's pool gauge.
  double busy_seconds() const {
    return busy_seconds_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<double> busy_seconds_{0.0};
};

}  // namespace casper

#endif  // CASPER_COMMON_THREAD_POOL_H_
