#ifndef CASPER_COMMON_CODEC_H_
#define CASPER_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/common/geometry.h"
#include "src/common/result.h"

/// \file
/// The little-endian byte-codec substrate shared by the wire-message
/// protocol (src/casper/messages.cc) and the page-based storage tier
/// (src/storage/): a Writer/Reader pair over length-prefixed,
/// fixed-width little-endian fields, plus the FNV-1a-64 frame seal.
/// Every sealed frame — a wire message or a storage header — carries a
/// trailing checksum of its body, so a corrupted byte inside a raw
/// double is a typed decode failure instead of a silently different
/// valid value. Decoders validate every length prefix and that the
/// buffer is fully consumed; truncated or mistyped buffers fail with
/// InvalidArgument instead of crashing.

namespace casper::wire {

inline constexpr size_t kChecksumBytes = 8;

inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Append the body's checksum, little-endian.
inline std::string Seal(std::string body) {
  const uint64_t sum = Fnv1a64(body);
  for (size_t i = 0; i < kChecksumBytes; ++i) {
    body.push_back(static_cast<char>(static_cast<uint8_t>(sum >> (8 * i))));
  }
  return body;
}

/// Verify and strip the trailing checksum, returning the frame body.
/// `what` names the frame type in the error message.
inline Result<std::string_view> Unseal(std::string_view frame,
                                       const char* what) {
  if (frame.size() < kChecksumBytes + 1) {
    return Status::InvalidArgument(std::string("truncated ") + what +
                                   " frame");
  }
  const std::string_view body =
      frame.substr(0, frame.size() - kChecksumBytes);
  uint64_t sum = 0;
  for (size_t i = 0; i < kChecksumBytes; ++i) {
    sum |= static_cast<uint64_t>(static_cast<uint8_t>(frame[body.size() + i]))
           << (8 * i);
  }
  if (sum != Fnv1a64(body)) {
    return Status::InvalidArgument(std::string("checksum mismatch in ") +
                                   what + " frame");
  }
  return body;
}

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void P(const Point& p) {
    F64(p.x);
    F64(p.y);
  }
  void R(const Rect& r) {
    P(r.min);
    P(r.max);
  }
  void Count(size_t n) { U64(static_cast<uint64_t>(n)); }
  void Str(std::string_view s) {
    Count(s.size());
    out_.append(s);
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  uint8_t U8() {
    if (pos_ + 1 > bytes_.size()) return Fail<uint8_t>();
    return static_cast<uint8_t>(bytes_[pos_++]);
  }
  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(U8()) << (8 * i);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(U8()) << (8 * i);
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool Bool() {
    const uint8_t v = U8();
    if (v > 1) failed_ = true;
    return v != 0;
  }
  Point P() {
    Point p;
    p.x = F64();
    p.y = F64();
    return p;
  }
  Rect R() {
    Rect r;
    r.min = P();
    r.max = P();
    return r;
  }

  /// Length prefix for a container whose records occupy at least
  /// `min_record_bytes` each — a hostile length cannot force an
  /// allocation larger than the buffer itself.
  size_t Count(size_t min_record_bytes) {
    const uint64_t n = U64();
    if (failed_ || n > Remaining() / min_record_bytes) {
      failed_ = true;
      return 0;
    }
    return static_cast<size_t>(n);
  }

  std::string Str() {
    const size_t n = Count(1);
    if (failed_) return std::string();
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool Tag(uint8_t expected) { return U8() == expected && !failed_; }

  /// Advance past `n` bytes and return their start — the zero-copy
  /// decoders' window onto a record block. Null (and failed) when fewer
  /// than `n` bytes remain.
  const char* Skip(size_t n) {
    if (n > Remaining()) {
      failed_ = true;
      return nullptr;
    }
    const char* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }

  size_t Remaining() const { return bytes_.size() - pos_; }
  bool failed() const { return failed_; }

  Status Finish(const char* what) {
    if (failed_ || pos_ != bytes_.size()) {
      return Status::InvalidArgument(std::string("malformed ") + what +
                                     " message");
    }
    return Status::OK();
  }

 private:
  template <typename T>
  T Fail() {
    failed_ = true;
    return T{};
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace casper::wire

#endif  // CASPER_COMMON_CODEC_H_
