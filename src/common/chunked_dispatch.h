#ifndef CASPER_COMMON_CHUNKED_DISPATCH_H_
#define CASPER_COMMON_CHUNKED_DISPATCH_H_

#include <cstddef>
#include <functional>

#include "src/common/thread_pool.h"

/// \file
/// Chunked work-stealing parallel-for over an index range, built on top
/// of the plain ThreadPool. Submitting one pool task per index costs a
/// queue lock + wake per item, which dominates when items are a few
/// microseconds each (the batch engine's regime). This dispatcher
/// submits exactly one role task per worker instead: the range is
/// pre-partitioned into contiguous chunks spread across per-worker
/// deques, each worker drains its own deque from the front and steals
/// from the tail of a neighbor's when it runs dry. Lock traffic is one
/// brief deque lock per ~64-item chunk rather than per item, and
/// stealing keeps stragglers from serializing the batch.
///
/// Chunks are contiguous index ranges handed to `body(begin, end)`, so
/// callers that write results into pre-assigned slots (responses[i])
/// get request-order output for free regardless of which worker ran
/// which chunk. Completion of ParallelForChunked happens-after every
/// body invocation (the caller joins every role task's future), so the
/// caller may read all slots without further synchronization.

namespace casper {

/// What the dispatch did; useful for tests and for tuning.
struct ChunkedDispatchStats {
  size_t chunks = 0;
  size_t steals = 0;
  /// True when the pool could not accept role tasks (shutdown race) and
  /// the caller ran the whole range inline instead.
  bool inline_fallback = false;
};

/// Run `body(begin, end)` over disjoint chunks covering [0, n).
/// `chunk_size` 0 picks ~4 chunks per worker, capped at 64 items.
/// Never fails: if the pool is shutting down the range runs inline on
/// the calling thread. Blocks until every chunk has completed.
ChunkedDispatchStats ParallelForChunked(
    ThreadPool& pool, size_t n,
    const std::function<void(size_t begin, size_t end)>& body,
    size_t chunk_size = 0);

}  // namespace casper

#endif  // CASPER_COMMON_CHUNKED_DISPATCH_H_
