#ifndef CASPER_COMMON_STATUS_H_
#define CASPER_COMMON_STATUS_H_

#include <cassert>
#include <cstdlib>
#include <cstdio>
#include <string>
#include <utility>

/// \file
/// RocksDB-style error handling: fallible operations return a `Status`
/// (or `Result<T>`, see result.h) rather than throwing. The library is
/// built without exceptions in mind; nothing in src/ throws.

namespace casper {

/// Assert-style guard for programmer errors (contract violations).
/// Enabled in all build types: the library is small enough that the
/// checks are cheap relative to the work they guard.
#define CASPER_DCHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CASPER_DCHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a value outside the documented domain.
  kNotFound,          ///< Referenced entity (user id, node id, ...) unknown.
  kAlreadyExists,     ///< Registration of an id that is already registered.
  kFailedPrecondition,///< Operation not valid in the current state.
  kOutOfRange,        ///< Index/coordinate outside the managed space.
  kInternal,          ///< Invariant violation that should never happen.
  kDeadlineExceeded,  ///< The per-request time budget ran out.
  kUnavailable,       ///< Transient transport/service failure; retryable.
  kDataLoss,          ///< Payload corrupted or lost in transit; retryable.
};

/// True for the codes that describe *transient* transport conditions a
/// caller may retry verbatim (the request never took effect, or taking
/// effect twice is harmless under the request-id idempotency contract).
/// kDeadlineExceeded is deliberately not retryable: the time budget is
/// already spent, and retrying would only stretch tail latency.
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kDataLoss;
}

/// Lightweight status object: a code plus an optional human-readable
/// message. `Status::OK()` carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Whether a transport-level caller may safely retry the operation.
  bool IsRetryable() const { return ::casper::IsRetryable(code_); }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>"; for logs and test failure output.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kUnavailable: return "Unavailable";
      case StatusCode::kDataLoss: return "DataLoss";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// Propagate a non-OK status to the caller.
#define CASPER_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::casper::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace casper

#endif  // CASPER_COMMON_STATUS_H_
