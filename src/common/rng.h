#ifndef CASPER_COMMON_RNG_H_
#define CASPER_COMMON_RNG_H_

#include <cstdint>

#include "src/common/geometry.h"

/// \file
/// Deterministic pseudo-random generation. All experiments and tests seed
/// explicitly so that every run is reproducible; nothing in the library
/// reads entropy from the environment.

namespace casper {

/// xoshiro256** generator seeded via SplitMix64. Small, fast, and good
/// enough statistically for workload generation (not cryptographic).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi). Requires lo <= hi (returns lo when equal).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi);

  /// Uniform point inside `r`.
  Point PointIn(const Rect& r);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fork a decorrelated child generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace casper

#endif  // CASPER_COMMON_RNG_H_
