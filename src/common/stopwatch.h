#ifndef CASPER_COMMON_STOPWATCH_H_
#define CASPER_COMMON_STOPWATCH_H_

#include <chrono>

namespace casper {

/// Monotonic wall-clock timer for the experiment harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace casper

#endif  // CASPER_COMMON_STOPWATCH_H_
