#ifndef CASPER_COMMON_RESULT_H_
#define CASPER_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "src/common/status.h"

namespace casper {

/// Value-or-status, in the spirit of `absl::StatusOr` / `arrow::Result`.
/// A `Result<T>` either holds a `T` (then `ok()` is true) or a non-OK
/// `Status` explaining the failure. Access to `value()` on an error
/// result is a fatal contract violation.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status, so `return value;` and
  /// `return Status::NotFound(...)` both work in a Result-returning
  /// function (mirrors absl::StatusOr ergonomics).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    CASPER_DCHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    CASPER_DCHECK(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    CASPER_DCHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    CASPER_DCHECK(ok());
    return std::get<T>(std::move(data_));
  }

  /// The status; `Status::OK()` when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Evaluate a Result-returning expression; on error propagate the status,
/// otherwise bind the value to `lhs`.
#define CASPER_ASSIGN_OR_RETURN(lhs, expr)      \
  auto lhs##_result = (expr);                   \
  if (!lhs##_result.ok()) return lhs##_result.status(); \
  auto lhs = std::move(lhs##_result).value()

}  // namespace casper

#endif  // CASPER_COMMON_RESULT_H_
