#include "src/common/chunked_dispatch.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace casper {

namespace {

constexpr size_t kMaxChunk = 64;

struct WorkerDeque {
  std::mutex mu;
  std::deque<std::pair<size_t, size_t>> chunks;
};

}  // namespace

ChunkedDispatchStats ParallelForChunked(
    ThreadPool& pool, size_t n,
    const std::function<void(size_t begin, size_t end)>& body,
    size_t chunk_size) {
  ChunkedDispatchStats stats;
  if (n == 0) return stats;

  const size_t workers = std::max<size_t>(pool.thread_count(), 1);
  size_t chunk = chunk_size;
  if (chunk == 0) {
    chunk = std::clamp<size_t>(n / (workers * 4), 1, kMaxChunk);
  }

  // Worker w owns the contiguous span [n*w/W, n*(w+1)/W), chopped into
  // chunks front-to-back. Contiguous spans keep each worker walking
  // neighboring response slots (and neighboring cloaks) instead of
  // striding across the batch.
  std::vector<WorkerDeque> deques(workers);
  for (size_t w = 0; w < workers; ++w) {
    const size_t span_begin = n * w / workers;
    const size_t span_end = n * (w + 1) / workers;
    for (size_t b = span_begin; b < span_end; b += chunk) {
      deques[w].chunks.emplace_back(b, std::min(b + chunk, span_end));
      ++stats.chunks;
    }
  }

  std::atomic<size_t> steals{0};
  auto drain = [&deques, &body, &steals, workers](size_t self) {
    for (;;) {
      std::pair<size_t, size_t> range;
      bool got = false;
      {
        std::lock_guard<std::mutex> lock(deques[self].mu);
        if (!deques[self].chunks.empty()) {
          range = deques[self].chunks.front();
          deques[self].chunks.pop_front();
          got = true;
        }
      }
      if (!got) {
        // Own deque dry: steal from the tail of a neighbor's (the far
        // end of the victim's span, minimizing contention with the
        // victim's front pops). One full scan finding nothing means no
        // chunk is left unstarted anywhere — started chunks finish in
        // whichever worker holds them — so the drain is done.
        for (size_t offset = 1; offset < workers && !got; ++offset) {
          WorkerDeque& victim = deques[(self + offset) % workers];
          std::lock_guard<std::mutex> lock(victim.mu);
          if (!victim.chunks.empty()) {
            range = victim.chunks.back();
            victim.chunks.pop_back();
            got = true;
          }
        }
        if (!got) return;
        steals.fetch_add(1, std::memory_order_relaxed);
      }
      body(range.first, range.second);
    }
  };

  // One role task per worker. A failed Submit (pool shutting down under
  // us) is survivable: live workers steal the dead worker's span, and
  // if nothing was submitted at all the caller drains every deque
  // inline.
  std::vector<std::future<void>> joined;
  joined.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    auto submitted = pool.Submit([&drain, w] { drain(w); });
    if (submitted.ok()) joined.push_back(std::move(submitted).value());
  }
  if (joined.empty()) {
    stats.inline_fallback = true;
    for (size_t w = 0; w < workers; ++w) drain(w);
  }
  for (std::future<void>& f : joined) f.get();
  stats.steals = steals.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace casper
