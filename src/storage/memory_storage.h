#ifndef CASPER_STORAGE_MEMORY_STORAGE_H_
#define CASPER_STORAGE_MEMORY_STORAGE_H_

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/storage_manager.h"

/// \file
/// In-memory IStorageManager: pages live in an unordered_map, roots in
/// an array, Flush is a no-op. The reference backend for tests and the
/// serialization benches, and the default when a persisted structure
/// is built transiently (serialize-to-pages without touching disk).

namespace casper::storage {

class MemoryStorageManager final : public IStorageManager {
 public:
  MemoryStorageManager() { roots_.fill(kNoPage); }

  Status Load(PageId id, std::string* out) override;
  Result<PageId> Store(PageId id, std::string_view data) override;
  Status Delete(PageId id) override;
  Status SetRoot(size_t slot, PageId page) override;
  Result<PageId> Root(size_t slot) const override;
  Status Flush() override { return Status::OK(); }

  size_t page_count() const { return pages_.size(); }

 private:
  std::unordered_map<PageId, std::string> pages_;
  std::vector<PageId> free_ids_;  ///< Deleted ids, reused LIFO.
  std::array<PageId, kRootSlots> roots_;
  PageId next_id_ = 0;
};

}  // namespace casper::storage

#endif  // CASPER_STORAGE_MEMORY_STORAGE_H_
