#ifndef CASPER_STORAGE_DISK_STORAGE_H_
#define CASPER_STORAGE_DISK_STORAGE_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/casper_metrics.h"
#include "src/storage/storage_manager.h"

/// \file
/// Disk-backed IStorageManager over two files:
///
///   <base>.dat — fixed-size physical slots (`page_size` bytes each).
///     A logical page of any length occupies a chain of slots; slot
///     payloads are raw bytes, all framing lives in the index.
///   <base>.idx — the committed header: a wire::Seal'd frame holding
///     the root slots, the free-slot list, and the page table (per
///     page: id, byte length, FNV-1a-64 checksum of the payload, slot
///     chain).
///
/// Crash safety is write-ahead-of-the-header + copy-on-write slots:
/// Store() never overwrites a slot the committed header references —
/// rewrites allocate fresh slots and quarantine the old ones. Flush()
/// is the commit point: it fflushes the data file, writes the new
/// header to <base>.idx.tmp, and rename()s it into place atomically.
/// A crash at any moment leaves the previous committed state fully
/// readable (the old header still points at intact slots); a torn or
/// corrupted slot under the *committed* header is caught by the
/// per-page checksum at Load() and surfaced as a typed kDataLoss.

namespace casper::storage {

struct DiskStorageOptions {
  /// Physical slot size in the data file. Pages longer than this chain
  /// across multiple slots.
  size_t page_size = 4096;

  /// Instrument bundle for casper_storage_* counters; null resolves to
  /// obs::CasperMetrics::Default().
  obs::CasperMetrics* metrics = nullptr;
};

class DiskStorageManager final : public IStorageManager {
 public:
  /// Create a fresh store at `base_path` (writes `<base_path>.dat` and
  /// `<base_path>.idx`, truncating any previous pair). A base path
  /// whose parent directory does not exist is kNotFound — rejected
  /// before any file is touched.
  static Result<std::unique_ptr<DiskStorageManager>> Create(
      const std::string& base_path, const DiskStorageOptions& options = {});

  /// Reopen the last committed state at `base_path`. A missing pair is
  /// kNotFound; a truncated or checksum-invalid header is kDataLoss.
  static Result<std::unique_ptr<DiskStorageManager>> Open(
      const std::string& base_path, const DiskStorageOptions& options = {});

  ~DiskStorageManager() override;
  DiskStorageManager(const DiskStorageManager&) = delete;
  DiskStorageManager& operator=(const DiskStorageManager&) = delete;

  Status Load(PageId id, std::string* out) override;
  Result<PageId> Store(PageId id, std::string_view data) override;
  Status Delete(PageId id) override;
  Status SetRoot(size_t slot, PageId page) override;
  Result<PageId> Root(size_t slot) const override;
  Status Flush() override;

  struct Stats {
    size_t pages = 0;        ///< Logical pages in the table.
    size_t slots = 0;        ///< Physical slots ever allocated.
    size_t free_slots = 0;   ///< Reusable now.
    size_t quarantined = 0;  ///< Freed but pinned by the committed header.
    size_t page_size = 0;
  };
  Stats stats() const;

  const std::string& base_path() const { return base_path_; }

 private:
  /// One logical page's footprint in the data file.
  struct PageRecord {
    uint64_t length = 0;    ///< Payload bytes.
    uint64_t checksum = 0;  ///< FNV-1a-64 of the payload.
    std::vector<uint64_t> slots;
  };

  DiskStorageManager(std::string base_path, const DiskStorageOptions& options);

  Status OpenDataFile(bool truncate);
  Status ReadHeader();
  std::string EncodeHeader() const;
  Status WriteSlots(const std::vector<uint64_t>& slots,
                    std::string_view data);
  uint64_t AllocSlot();

  std::string base_path_;
  size_t page_size_;
  obs::CasperMetrics* metrics_;

  std::FILE* dat_ = nullptr;

  std::unordered_map<PageId, PageRecord> pages_;
  std::vector<PageId> free_ids_;
  std::vector<uint64_t> free_slots_;    ///< Safe to reuse immediately.
  std::vector<uint64_t> quarantined_;   ///< Reusable after the next commit.
  std::array<PageId, kRootSlots> roots_;
  PageId next_id_ = 0;
  uint64_t next_slot_ = 0;
};

}  // namespace casper::storage

#endif  // CASPER_STORAGE_DISK_STORAGE_H_
