#include "src/storage/memory_storage.h"

#include <utility>

namespace casper::storage {

Status MemoryStorageManager::Load(PageId id, std::string* out) {
  const auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  *out = it->second;
  return Status::OK();
}

Result<PageId> MemoryStorageManager::Store(PageId id, std::string_view data) {
  if (id == kNoPage) {
    if (!free_ids_.empty()) {
      id = free_ids_.back();
      free_ids_.pop_back();
    } else {
      id = next_id_++;
    }
    pages_.emplace(id, std::string(data));
    return id;
  }
  const auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  it->second.assign(data);
  return id;
}

Status MemoryStorageManager::Delete(PageId id) {
  if (pages_.erase(id) == 0) {
    return Status::NotFound("page " + std::to_string(id));
  }
  free_ids_.push_back(id);
  return Status::OK();
}

Status MemoryStorageManager::SetRoot(size_t slot, PageId page) {
  if (slot >= kRootSlots) {
    return Status::OutOfRange("root slot " + std::to_string(slot));
  }
  roots_[slot] = page;
  return Status::OK();
}

Result<PageId> MemoryStorageManager::Root(size_t slot) const {
  if (slot >= kRootSlots) {
    return Status::OutOfRange("root slot " + std::to_string(slot));
  }
  return roots_[slot];
}

}  // namespace casper::storage
