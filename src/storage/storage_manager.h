#ifndef CASPER_STORAGE_STORAGE_MANAGER_H_
#define CASPER_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/status.h"

/// \file
/// The page-based storage abstraction the persistent tier is built on.
/// A storage manager hands out logical pages — opaque byte strings
/// addressed by PageId — plus a small set of named root slots so a
/// client (a persisted R-tree, a checkpointed store) can find its
/// entry page again after reopen. Backends: MemoryStorageManager
/// (unordered_map, for tests and as the in-RAM default),
/// DiskStorageManager (fixed-size slots in a data file, crash-safe
/// header commit, per-page checksums), and BufferPool (an LRU page
/// cache layered over either).
///
/// The interface is deliberately byte-oriented: layers above serialize
/// their nodes with the wire codec (src/common/codec.h) and never see
/// file offsets, so swapping backends — or wrapping one in a pool —
/// is a constructor argument, not a code change.

namespace casper::storage {

/// Logical page address. Ids are dense-ish, reused after Delete, and
/// stable across Flush/reopen on the disk backend.
using PageId = uint64_t;

/// "No page": pass to Store() to allocate, returned by Root() for an
/// unset slot, and usable by clients as a null link.
inline constexpr PageId kNoPage = ~0ull;

/// Number of named root slots a manager persists alongside its pages.
inline constexpr size_t kRootSlots = 4;

class IStorageManager {
 public:
  virtual ~IStorageManager() = default;

  /// Read page `id` into `*out` (replacing its contents). kNotFound if
  /// the page was never stored or has been deleted; kDataLoss if the
  /// backend detects corruption.
  virtual Status Load(PageId id, std::string* out) = 0;

  /// Write a page. `id == kNoPage` allocates a fresh page and returns
  /// its id; otherwise overwrites page `id` (which must exist) and
  /// returns `id`. Pages may be any length, including empty.
  virtual Result<PageId> Store(PageId id, std::string_view data) = 0;

  /// Free page `id`. kNotFound if it does not exist.
  virtual Status Delete(PageId id) = 0;

  /// Record page id `page` in root slot `slot` (< kRootSlots). Pass
  /// kNoPage to clear the slot. Persisted by Flush on durable backends.
  virtual Status SetRoot(size_t slot, PageId page) = 0;

  /// The page recorded in `slot`, or kNoPage if unset.
  virtual Result<PageId> Root(size_t slot) const = 0;

  /// Make everything stored so far durable. On the disk backend this
  /// is the commit point: the header is rewritten and atomically
  /// renamed into place, after which reopen sees exactly this state.
  virtual Status Flush() = 0;
};

}  // namespace casper::storage

#endif  // CASPER_STORAGE_STORAGE_MANAGER_H_
