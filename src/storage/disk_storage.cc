#include "src/storage/disk_storage.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/common/codec.h"

namespace casper::storage {
namespace {

// "CSPRPAG1", little-endian, plus a format version for forward schema
// changes. The magic rejects a foreign file before any field parses.
constexpr uint64_t kHeaderMagic = 0x3147415052505343ull;
constexpr uint32_t kHeaderVersion = 1;

constexpr size_t kPageRecordMinBytes = 8 + 8 + 8 + 8;  // id, len, sum, count.

std::string IdxPath(const std::string& base) { return base + ".idx"; }
std::string DatPath(const std::string& base) { return base + ".dat"; }
std::string TmpPath(const std::string& base) { return base + ".idx.tmp"; }

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::NotFound("cannot open " + path);
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Internal("read failed for " + path);
  return bytes;
}

}  // namespace

DiskStorageManager::DiskStorageManager(std::string base_path,
                                       const DiskStorageOptions& options)
    : base_path_(std::move(base_path)),
      page_size_(std::max<size_t>(options.page_size, 64)),
      metrics_(options.metrics ? options.metrics
                               : obs::CasperMetrics::Default()) {
  roots_.fill(kNoPage);
}

DiskStorageManager::~DiskStorageManager() {
  if (dat_) std::fclose(dat_);
}

namespace {

/// The directory that will hold `base`'s .dat/.idx files. "shard0" and
/// "./shard0" live in the current directory.
std::string ParentDirOf(const std::string& base) {
  const size_t slash = base.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return base.substr(0, slash);
}

}  // namespace

Result<std::unique_ptr<DiskStorageManager>> DiskStorageManager::Create(
    const std::string& base_path, const DiskStorageOptions& options) {
  // fopen("wb+") on a path with a missing parent fails with an opaque
  // errno; callers handing off shard checkpoints need a typed answer
  // they can branch on, so check the directory explicitly first.
  struct stat st;
  const std::string parent = ParentDirOf(base_path);
  if (stat(parent.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::NotFound("parent directory does not exist: " + parent);
  }
  auto mgr = std::unique_ptr<DiskStorageManager>(
      new DiskStorageManager(base_path, options));
  CASPER_RETURN_IF_ERROR(mgr->OpenDataFile(/*truncate=*/true));
  // Commit the empty state so a crash before the first real Flush
  // reopens as an empty store, not a missing one.
  CASPER_RETURN_IF_ERROR(mgr->Flush());
  return mgr;
}

Result<std::unique_ptr<DiskStorageManager>> DiskStorageManager::Open(
    const std::string& base_path, const DiskStorageOptions& options) {
  auto mgr = std::unique_ptr<DiskStorageManager>(
      new DiskStorageManager(base_path, options));
  CASPER_RETURN_IF_ERROR(mgr->ReadHeader());
  CASPER_RETURN_IF_ERROR(mgr->OpenDataFile(/*truncate=*/false));
  return mgr;
}

Status DiskStorageManager::OpenDataFile(bool truncate) {
  dat_ = std::fopen(DatPath(base_path_).c_str(), truncate ? "wb+" : "rb+");
  if (!dat_) {
    return truncate
               ? Status::Internal("cannot create " + DatPath(base_path_))
               : Status::NotFound("cannot open " + DatPath(base_path_));
  }
  return Status::OK();
}

std::string DiskStorageManager::EncodeHeader() const {
  wire::Writer w;
  w.U64(kHeaderMagic);
  w.U32(kHeaderVersion);
  w.U64(page_size_);
  w.U64(next_id_);
  w.U64(next_slot_);
  for (const PageId root : roots_) w.U64(root);
  // Quarantined slots are unreferenced the moment this header commits,
  // so the committed free list absorbs them — nothing leaks on reopen.
  w.Count(free_slots_.size() + quarantined_.size());
  for (const uint64_t s : free_slots_) w.U64(s);
  for (const uint64_t s : quarantined_) w.U64(s);
  w.Count(free_ids_.size());
  for (const PageId id : free_ids_) w.U64(id);
  w.Count(pages_.size());
  for (const auto& [id, rec] : pages_) {
    w.U64(id);
    w.U64(rec.length);
    w.U64(rec.checksum);
    w.Count(rec.slots.size());
    for (const uint64_t s : rec.slots) w.U64(s);
  }
  return wire::Seal(w.Take());
}

Status DiskStorageManager::ReadHeader() {
  CASPER_ASSIGN_OR_RETURN(frame, ReadFile(IdxPath(base_path_)));
  auto body = wire::Unseal(frame, "storage header");
  if (!body.ok()) {
    metrics_->storage_checksum_failures_total->Increment();
    return Status::DataLoss(body.status().message());
  }
  wire::Reader r(*body);
  if (r.U64() != kHeaderMagic || r.U32() != kHeaderVersion || r.failed()) {
    return Status::DataLoss("not a casper storage header: " +
                            IdxPath(base_path_));
  }
  page_size_ = std::max<size_t>(r.U64(), 64);
  next_id_ = r.U64();
  next_slot_ = r.U64();
  for (PageId& root : roots_) root = r.U64();
  const size_t n_free = r.Count(8);
  free_slots_.resize(n_free);
  for (uint64_t& s : free_slots_) s = r.U64();
  const size_t n_free_ids = r.Count(8);
  free_ids_.resize(n_free_ids);
  for (PageId& id : free_ids_) id = r.U64();
  const size_t n_pages = r.Count(kPageRecordMinBytes);
  pages_.reserve(n_pages);
  for (size_t i = 0; i < n_pages; ++i) {
    const PageId id = r.U64();
    PageRecord rec;
    rec.length = r.U64();
    rec.checksum = r.U64();
    const size_t n_slots = r.Count(8);
    rec.slots.resize(n_slots);
    for (uint64_t& s : rec.slots) s = r.U64();
    if (r.failed()) break;
    pages_.emplace(id, std::move(rec));
  }
  if (!r.Finish("storage header").ok()) {
    return Status::DataLoss("malformed storage header: " +
                            IdxPath(base_path_));
  }
  return Status::OK();
}

Status DiskStorageManager::Load(PageId id, std::string* out) {
  const auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  const PageRecord& rec = it->second;
  out->clear();
  out->reserve(rec.length);
  uint64_t remaining = rec.length;
  std::string chunk;
  for (const uint64_t slot : rec.slots) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(remaining, page_size_));
    chunk.resize(want);
    if (std::fseek(dat_, static_cast<long>(slot * page_size_), SEEK_SET) !=
            0 ||
        std::fread(chunk.data(), 1, want, dat_) != want) {
      metrics_->storage_checksum_failures_total->Increment();
      return Status::DataLoss("short read in page " + std::to_string(id) +
                              " of " + DatPath(base_path_));
    }
    out->append(chunk);
    remaining -= want;
  }
  if (remaining != 0 || wire::Fnv1a64(*out) != rec.checksum) {
    metrics_->storage_checksum_failures_total->Increment();
    return Status::DataLoss("checksum mismatch in page " +
                            std::to_string(id) + " of " +
                            DatPath(base_path_));
  }
  metrics_->storage_pages_read_total->Increment();
  return Status::OK();
}

uint64_t DiskStorageManager::AllocSlot() {
  if (!free_slots_.empty()) {
    const uint64_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  return next_slot_++;
}

Status DiskStorageManager::WriteSlots(const std::vector<uint64_t>& slots,
                                      std::string_view data) {
  size_t offset = 0;
  for (const uint64_t slot : slots) {
    const size_t n = std::min(page_size_, data.size() - offset);
    if (std::fseek(dat_, static_cast<long>(slot * page_size_), SEEK_SET) !=
            0 ||
        std::fwrite(data.data() + offset, 1, n, dat_) != n) {
      return Status::Internal("write failed for " + DatPath(base_path_));
    }
    offset += n;
  }
  return Status::OK();
}

Result<PageId> DiskStorageManager::Store(PageId id, std::string_view data) {
  PageRecord* rec;
  if (id == kNoPage) {
    if (!free_ids_.empty()) {
      id = free_ids_.back();
      free_ids_.pop_back();
    } else {
      id = next_id_++;
    }
    rec = &pages_[id];
  } else {
    const auto it = pages_.find(id);
    if (it == pages_.end()) {
      return Status::NotFound("page " + std::to_string(id));
    }
    rec = &it->second;
    // Copy-on-write: the committed header may still reference these
    // slots, so they stay quarantined until the next commit.
    quarantined_.insert(quarantined_.end(), rec->slots.begin(),
                        rec->slots.end());
    rec->slots.clear();
  }
  const size_t n_slots = (data.size() + page_size_ - 1) / page_size_;
  rec->slots.reserve(n_slots);
  for (size_t i = 0; i < n_slots; ++i) rec->slots.push_back(AllocSlot());
  const Status written = WriteSlots(rec->slots, data);
  if (!written.ok()) return written;
  rec->length = data.size();
  rec->checksum = wire::Fnv1a64(data);
  metrics_->storage_pages_written_total->Increment();
  return id;
}

Status DiskStorageManager::Delete(PageId id) {
  const auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound("page " + std::to_string(id));
  }
  quarantined_.insert(quarantined_.end(), it->second.slots.begin(),
                      it->second.slots.end());
  pages_.erase(it);
  free_ids_.push_back(id);
  return Status::OK();
}

Status DiskStorageManager::SetRoot(size_t slot, PageId page) {
  if (slot >= kRootSlots) {
    return Status::OutOfRange("root slot " + std::to_string(slot));
  }
  roots_[slot] = page;
  return Status::OK();
}

Result<PageId> DiskStorageManager::Root(size_t slot) const {
  if (slot >= kRootSlots) {
    return Status::OutOfRange("root slot " + std::to_string(slot));
  }
  return roots_[slot];
}

Status DiskStorageManager::Flush() {
  if (std::fflush(dat_) != 0) {
    return Status::Internal("flush failed for " + DatPath(base_path_));
  }
  const std::string header = EncodeHeader();
  const std::string tmp = TmpPath(base_path_);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return Status::Internal("cannot create " + tmp);
  const bool written =
      std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!written) {
    std::remove(tmp.c_str());
    return Status::Internal("write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), IdxPath(base_path_).c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("commit rename failed for " + tmp);
  }
  // The old header is gone; its slots are reusable now.
  free_slots_.insert(free_slots_.end(), quarantined_.begin(),
                     quarantined_.end());
  quarantined_.clear();
  return Status::OK();
}

DiskStorageManager::Stats DiskStorageManager::stats() const {
  Stats s;
  s.pages = pages_.size();
  s.slots = static_cast<size_t>(next_slot_);
  s.free_slots = free_slots_.size();
  s.quarantined = quarantined_.size();
  s.page_size = page_size_;
  return s;
}

}  // namespace casper::storage
