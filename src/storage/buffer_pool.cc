#include "src/storage/buffer_pool.h"

#include <algorithm>
#include <utility>

namespace casper::storage {

BufferPool::BufferPool(IStorageManager* inner,
                       const BufferPoolOptions& options)
    : inner_(inner),
      capacity_(std::max<size_t>(options.capacity_pages, 1)),
      metrics_(options.metrics ? options.metrics
                               : obs::CasperMetrics::Default()) {
  metrics_->storage_pool_capacity_pages->Set(static_cast<double>(capacity_));
}

BufferPool::~BufferPool() = default;

void BufferPool::Touch(Frame& frame, PageId id) {
  (void)id;
  lru_.splice(lru_.begin(), lru_, frame.lru_pos);
}

Status BufferPool::WriteBack(PageId id, Frame& frame) {
  CASPER_RETURN_IF_ERROR(inner_->Store(id, frame.data).status());
  frame.dirty = false;
  ++writebacks_;
  metrics_->storage_pool_writebacks_total->Increment();
  return Status::OK();
}

Status BufferPool::EvictOne() {
  // LRU order, skipping pinned frames.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const PageId id = *it;
    Frame& frame = frames_.at(id);
    if (frame.pins > 0) continue;
    if (frame.dirty) CASPER_RETURN_IF_ERROR(WriteBack(id, frame));
    lru_.erase(frame.lru_pos);
    frames_.erase(id);
    ++evictions_;
    metrics_->storage_pool_evictions_total->Increment();
    metrics_->storage_pool_resident_pages->Set(
        static_cast<double>(frames_.size()));
    return Status::OK();
  }
  return Status::FailedPrecondition("all cached pages are pinned");
}

Result<BufferPool::Frame*> BufferPool::Admit(PageId id, std::string data,
                                             bool dirty) {
  while (frames_.size() >= capacity_) {
    const Status evicted = EvictOne();
    if (!evicted.ok()) {
      if (evicted.code() == StatusCode::kFailedPrecondition) break;
      return evicted;  // A failed dirty write-back is a real error.
    }
  }
  lru_.push_front(id);
  Frame& frame = frames_[id];
  frame.data = std::move(data);
  frame.dirty = dirty;
  frame.pins = 0;
  frame.lru_pos = lru_.begin();
  metrics_->storage_pool_resident_pages->Set(
      static_cast<double>(frames_.size()));
  return &frame;
}

Status BufferPool::Load(PageId id, std::string* out) {
  const auto it = frames_.find(id);
  if (it != frames_.end()) {
    Touch(it->second, id);
    *out = it->second.data;
    ++hits_;
    metrics_->storage_pool_hits_total->Increment();
    return Status::OK();
  }
  std::string data;
  CASPER_RETURN_IF_ERROR(inner_->Load(id, &data));
  ++misses_;
  metrics_->storage_pool_misses_total->Increment();
  *out = data;
  return Admit(id, std::move(data), /*dirty=*/false).status();
}

Result<PageId> BufferPool::Store(PageId id, std::string_view data) {
  if (id == kNoPage) {
    // New pages write through: the backend owns id allocation, and the
    // fresh copy is cached clean.
    CASPER_ASSIGN_OR_RETURN(fresh, inner_->Store(kNoPage, data));
    CASPER_RETURN_IF_ERROR(
        Admit(fresh, std::string(data), /*dirty=*/false).status());
    return fresh;
  }
  const auto it = frames_.find(id);
  if (it != frames_.end()) {
    // Write-back: the update stays cached-dirty until eviction or
    // Flush.
    it->second.data.assign(data);
    it->second.dirty = true;
    Touch(it->second, id);
    return id;
  }
  // Uncached overwrite: write through (also validates the page
  // exists), then cache the fresh copy.
  CASPER_RETURN_IF_ERROR(inner_->Store(id, data).status());
  CASPER_RETURN_IF_ERROR(
      Admit(id, std::string(data), /*dirty=*/false).status());
  return id;
}

Status BufferPool::Delete(PageId id) {
  const auto it = frames_.find(id);
  if (it != frames_.end()) {
    if (it->second.pins > 0) {
      return Status::FailedPrecondition("page " + std::to_string(id) +
                                        " is pinned");
    }
    lru_.erase(it->second.lru_pos);
    frames_.erase(it);
    metrics_->storage_pool_resident_pages->Set(
        static_cast<double>(frames_.size()));
  }
  return inner_->Delete(id);
}

Status BufferPool::SetRoot(size_t slot, PageId page) {
  return inner_->SetRoot(slot, page);
}

Result<PageId> BufferPool::Root(size_t slot) const {
  return inner_->Root(slot);
}

Status BufferPool::Flush() {
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) CASPER_RETURN_IF_ERROR(WriteBack(id, frame));
  }
  return inner_->Flush();
}

Status BufferPool::Pin(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    std::string scratch;
    CASPER_RETURN_IF_ERROR(Load(id, &scratch));
    it = frames_.find(id);
    CASPER_DCHECK(it != frames_.end());
  }
  if (it->second.pins++ == 0) {
    ++pinned_;
    metrics_->storage_pool_pinned_pages->Set(static_cast<double>(pinned_));
  }
  return Status::OK();
}

Status BufferPool::Unpin(PageId id) {
  const auto it = frames_.find(id);
  if (it == frames_.end() || it->second.pins == 0) {
    return Status::FailedPrecondition("page " + std::to_string(id) +
                                      " is not pinned");
  }
  if (--it->second.pins == 0) {
    --pinned_;
    metrics_->storage_pool_pinned_pages->Set(static_cast<double>(pinned_));
  }
  return Status::OK();
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.writebacks = writebacks_;
  s.resident = frames_.size();
  s.pinned = pinned_;
  s.capacity = capacity_;
  return s;
}

}  // namespace casper::storage
