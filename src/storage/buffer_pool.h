#ifndef CASPER_STORAGE_BUFFER_POOL_H_
#define CASPER_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "src/obs/casper_metrics.h"
#include "src/storage/storage_manager.h"

/// \file
/// LRU page cache layered over any IStorageManager. Loads fill the
/// cache; Stores mark pages dirty and defer the backend write until
/// eviction or Flush (write-back), so a hot working set touches the
/// disk backend once per page, not once per access. Pin/Unpin excludes
/// a page from eviction while a caller holds a reference into it.
/// Hit/miss/eviction/writeback counters are exported through
/// casper_storage_pool_* so the hit curve is observable in the same
/// scrape as the serving-path metrics.
///
/// Not thread-safe — same single-writer contract as the stores built
/// on top of it.

namespace casper::storage {

struct BufferPoolOptions {
  /// Maximum unpinned pages held resident. Pinned pages may push the
  /// cache past this bound; eviction resumes as pins drop.
  size_t capacity_pages = 1024;

  /// Instrument bundle for casper_storage_pool_*; null resolves to
  /// obs::CasperMetrics::Default().
  obs::CasperMetrics* metrics = nullptr;
};

class BufferPool final : public IStorageManager {
 public:
  /// Wraps `inner` (not owned; must outlive the pool).
  BufferPool(IStorageManager* inner, const BufferPoolOptions& options = {});
  ~BufferPool() override;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  Status Load(PageId id, std::string* out) override;
  Result<PageId> Store(PageId id, std::string_view data) override;
  Status Delete(PageId id) override;
  Status SetRoot(size_t slot, PageId page) override;
  Result<PageId> Root(size_t slot) const override;

  /// Write back every dirty page, then flush the backend.
  Status Flush() override;

  /// Exclude a cached page from eviction (counted; Pin twice, Unpin
  /// twice). Pinning loads the page if absent.
  Status Pin(PageId id);
  Status Unpin(PageId id);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    size_t resident = 0;
    size_t pinned = 0;
    size_t capacity = 0;

    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  Stats stats() const;

 private:
  struct Frame {
    std::string data;
    bool dirty = false;
    uint32_t pins = 0;
    std::list<PageId>::iterator lru_pos;  ///< Into lru_, MRU at front.
  };

  /// Cache `data` for `id`, evicting as needed. Returns the frame.
  Result<Frame*> Admit(PageId id, std::string data, bool dirty);
  void Touch(Frame& frame, PageId id);
  Status EvictOne();
  Status WriteBack(PageId id, Frame& frame);

  IStorageManager* inner_;
  size_t capacity_;
  obs::CasperMetrics* metrics_;

  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  ///< Front = most recently used.
  size_t pinned_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t writebacks_ = 0;
};

}  // namespace casper::storage

#endif  // CASPER_STORAGE_BUFFER_POOL_H_
