#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench/bench_common.h"
#include "src/casper/messages.h"
#include "src/server/query_server.h"
#include "src/transport/channel.h"
#include "src/transport/listener.h"
#include "src/transport/server_endpoint.h"
#include "src/transport/socket_channel.h"

/// \file
/// Transport round-trip cost: queries/sec and latency percentiles of
/// the same sealed CloakedQueryMsg answered by the same QueryServer
/// through (a) the in-process DirectChannel — the zero-copy floor — and
/// (b) a SocketChannel over a Unix-domain socket into a SocketListener,
/// sequentially and with concurrent client threads. The gap between the
/// two is the price of the real network boundary (framing, syscalls,
/// the listener event loop and worker pool), which the perf gate tracks
/// PR over PR via BENCH_transport.json.
///
/// Honors CASPER_BENCH_SCALE like every other bench (calls per mode
/// scale down for the CI gate's quick run).

namespace casper::bench {
namespace {

struct Row {
  std::string mode;
  size_t threads = 1;
  size_t calls = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;

  std::string ToJson() const {
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "{\"mode\": \"%s\", \"threads\": %zu, \"calls\": %zu, "
        "\"wall_seconds\": %.6f, \"qps\": %.1f, "
        "\"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f}",
        mode.c_str(), threads, calls, wall_seconds, qps, p50_us, p95_us,
        p99_us);
    return buf;
  }
};

std::string QueryBytes(uint64_t request_id) {
  CloakedQueryMsg msg;
  msg.kind = QueryKind::kNearestPublic;
  msg.request_id = request_id;
  msg.cloak = Rect(0.42, 0.42, 0.46, 0.46);
  return Encode(msg);
}

/// Drive `calls` round trips through `channel` from `threads` client
/// threads; per-call latency is sampled on thread 0 so percentile cost
/// does not distort the throughput measurement on the others.
Row Drive(const std::string& mode, transport::Channel* channel,
          size_t threads, size_t calls) {
  Row row;
  row.mode = mode;
  row.threads = threads;
  row.calls = calls;
  SummaryStats micros;
  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t per_thread = calls / threads;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([channel, t, per_thread, &micros] {
      for (size_t i = 0; i < per_thread; ++i) {
        const std::string request = QueryBytes(t * per_thread + i + 1);
        if (t == 0) {
          Stopwatch per_call;
          (void)channel->Call(request, transport::CallContext{});
          micros.Add(per_call.ElapsedMicros());
        } else {
          (void)channel->Call(request, transport::CallContext{});
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  row.wall_seconds = wall.ElapsedSeconds();
  row.qps = static_cast<double>(per_thread * threads) / row.wall_seconds;
  row.p50_us = micros.Quantile(0.50);
  row.p95_us = micros.Quantile(0.95);
  row.p99_us = micros.Quantile(0.99);
  return row;
}

}  // namespace
}  // namespace casper::bench

int main() {
  using namespace casper;
  using namespace casper::bench;

  const size_t calls = Scaled(100000);  // 5K per mode at the gate's 0.05.

  PrintTitle("Transport round-trip: DirectChannel vs Unix-domain socket");
  std::printf("calls_per_mode=%zu hardware_threads=%u\n", calls,
              std::thread::hardware_concurrency());

  server::QueryServer server((server::QueryServerOptions()));
  Rng rng(0xEC40);
  const Rect space(0.0, 0.0, 1.0, 1.0);
  server.SetPublicTargets(workload::UniformPublicTargets(
      Scaled(100000), space, &rng));
  transport::ServerEndpoint endpoint(&server);
  transport::DirectChannel direct(&endpoint);

  const std::string address =
      "unix:/tmp/casper_bench_echo_" + std::to_string(getpid()) + ".sock";
  auto listener = transport::SocketListener::Start(
      address,
      [&endpoint](std::string_view request,
                  const transport::CallContext& context) {
        return endpoint.Handle(request, context);
      },
      transport::ListenerOptions{});
  if (!listener.ok()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }

  std::vector<Row> rows;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    Row direct_row =
        Drive("direct", &direct, threads, calls);
    rows.push_back(direct_row);
    std::printf("%s\n", direct_row.ToJson().c_str());

    transport::SocketChannel socket(address);
    (void)socket.Call(QueryBytes(0), transport::CallContext{});  // Dial.
    Row socket_row = Drive("uds_socket", &socket, threads, calls);
    rows.push_back(socket_row);
    std::printf("%s\n", socket_row.ToJson().c_str());
  }
  (*listener)->Shutdown();

  std::FILE* out = std::fopen("BENCH_transport.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\"hardware_threads\": %u, \"calls_per_mode\": %zu, "
                      "\"rows\": [\n",
                 std::thread::hardware_concurrency(), calls);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(out, "  %s%s\n", rows[i].ToJson().c_str(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "]}\n");
    std::fclose(out);
    std::printf("wrote BENCH_transport.json (%zu rows)\n", rows.size());
  }
  return 0;
}
