// Figure 13 (§6.2.1): scalability of the privacy-aware query processor
// with the number of *public* target objects (1K -> 10K), comparing the
// one/two/four-filter variants of Algorithm 2.
//   13a — candidate list size
//   13b — query processing time
// Query cloaks come from an adaptive anonymizer over 10K users with the
// paper-default profiles (k in [1,50], A_min in [.005,.01]%).

#include "bench/bench_common.h"
#include "src/processor/private_nn.h"

int main() {
  using namespace casper::bench;
  using casper::processor::FilterPolicy;

  const size_t users = Scaled(10000);
  SimulatedCity city(users, 19);
  casper::anonymizer::PyramidConfig config;
  config.space = city.bounds();
  config.height = 9;
  casper::workload::ProfileDistribution dist;
  auto anon = BuildAnonymizer(true, config, city, users, dist, 19);

  std::vector<casper::anonymizer::CloakingResult> cloaks;
  MeanCloakMicros(anon.get(), Scaled(500), 21, &cloaks);

  const std::vector<size_t> target_counts = {
      Scaled(1000), Scaled(2000), Scaled(4000), Scaled(6000),
      Scaled(8000), Scaled(10000)};
  const FilterPolicy policies[] = {FilterPolicy::kOneFilter,
                                   FilterPolicy::kTwoFilters,
                                   FilterPolicy::kFourFilters};

  std::printf("Figure 13 reproduction: %zu query cloaks, targets %zu..%zu "
              "(scale %.2f)\n",
              cloaks.size(), target_counts.front(), target_counts.back(),
              Scale());

  struct Row {
    size_t targets;
    double candidates[3];
    double micros[3];
  };
  std::vector<Row> rows;
  casper::Rng rng(23);
  for (size_t count : target_counts) {
    casper::processor::PublicTargetStore store(
        casper::workload::UniformPublicTargets(count, config.space, &rng));
    Row row{count, {0, 0, 0}, {0, 0, 0}};
    for (int p = 0; p < 3; ++p) {
      casper::SummaryStats size_stats;
      casper::Stopwatch watch;
      for (const auto& cloak : cloaks) {
        auto result = casper::processor::PrivateNearestNeighbor(
            store, cloak.region, policies[p]);
        CASPER_DCHECK(result.ok());
        size_stats.Add(static_cast<double>(result->size()));
      }
      row.micros[p] = watch.ElapsedMicros() / cloaks.size();
      row.candidates[p] = size_stats.mean();
    }
    rows.push_back(row);
  }

  PrintTitle("Fig 13a: candidate list size vs public targets");
  std::printf("%-10s %12s %12s %12s\n", "targets", "1 filter", "2 filters",
              "4 filters");
  for (const auto& r : rows) {
    std::printf("%-10zu %12.1f %12.1f %12.1f\n", r.targets, r.candidates[0],
                r.candidates[1], r.candidates[2]);
  }
  PrintTitle("Fig 13b: query processing time (us) vs public targets");
  std::printf("%-10s %12s %12s %12s\n", "targets", "1 filter", "2 filters",
              "4 filters");
  for (const auto& r : rows) {
    std::printf("%-10zu %12.2f %12.2f %12.2f\n", r.targets, r.micros[0],
                r.micros[1], r.micros[2]);
  }
  return 0;
}
