// Ablation: the filter-count design choice of Algorithm 2 as a
// minimality trade-off. For each cloak size, reports the extended-area
// A_EXT (the range query the server must run) and the candidate-list
// size for 1/2/4 filters, plus the filter-step cost (number of NN
// probes) — making the §6.2 "four filters win" conclusion quantitative.

#include "bench/bench_common.h"
#include "src/processor/private_nn.h"

int main() {
  using namespace casper::bench;
  using casper::processor::FilterPolicy;

  casper::anonymizer::PyramidConfig config;
  config.height = 9;
  casper::Rng rng(97);
  const size_t target_count = Scaled(10000);
  casper::processor::PublicTargetStore store(
      casper::workload::UniformPublicTargets(target_count, config.space,
                                             &rng));

  std::printf("Filter-count ablation: %zu public targets (scale %.2f)\n",
              target_count, Scale());
  PrintTitle("A_EXT area (x cloak area) and candidates vs filters");
  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "cells", "aext:1f",
              "aext:2f", "aext:4f", "cand:1f", "cand:2f", "cand:4f");

  for (int side : {2, 4, 8, 16, 32}) {
    casper::SummaryStats aext[3], cand[3];
    const size_t queries = Scaled(400);
    for (size_t q = 0; q < queries; ++q) {
      const casper::Rect cloak =
          casper::workload::RandomCellAlignedRegion(config, side, side, &rng);
      const FilterPolicy policies[] = {FilterPolicy::kOneFilter,
                                       FilterPolicy::kTwoFilters,
                                       FilterPolicy::kFourFilters};
      for (int p = 0; p < 3; ++p) {
        auto result =
            casper::processor::PrivateNearestNeighbor(store, cloak,
                                                      policies[p]);
        CASPER_DCHECK(result.ok());
        aext[p].Add(result->area.a_ext.Area() / cloak.Area());
        cand[p].Add(static_cast<double>(result->size()));
      }
    }
    std::printf("%-10d %12.2f %12.2f %12.2f %12.1f %12.1f %12.1f\n",
                side * side, aext[0].mean(), aext[1].mean(), aext[2].mean(),
                cand[0].mean(), cand[1].mean(), cand[2].mean());
  }
  std::printf("\nfour filters pay 4 NN probes (vs 1) to shrink the range "
              "query and the candidate list; the paper's end-to-end result "
              "(Fig 17) shows the transmission saving dominates.\n");
  return 0;
}
