// Ablation: serving outstanding query volume (§5 defers scalability to
// incremental processors; these are the two levers this library adds).
//  (a) Cloak-keyed candidate-list cache: because the anonymizer's
//      cloaks are cell-aligned, co-located users share cloaks exactly —
//      the cache hit rate and the per-query speedup quantify that.
//  (b) Continuous-query manager: fraction of cloak-change events served
//      by the containment shortcut instead of a full re-evaluation.

#include "bench/bench_common.h"
#include "src/processor/continuous.h"
#include "src/processor/query_cache.h"

int main() {
  using namespace casper::bench;
  const size_t users = Scaled(10000);
  const size_t target_count = Scaled(10000);
  SimulatedCity city(users, 211);
  casper::anonymizer::PyramidConfig config;
  config.space = city.bounds();
  config.height = 9;
  casper::workload::ProfileDistribution dist;
  auto anon = BuildAnonymizer(true, config, city, users, dist, 223);

  casper::Rng rng(227);
  casper::processor::PublicTargetStore store(
      casper::workload::UniformPublicTargets(target_count, config.space,
                                             &rng));

  std::printf("Query-volume ablation: %zu users, %zu targets (scale %.2f)\n",
              users, target_count, Scale());

  // (a) Cache: a query stream from random users (co-location comes from
  // the population itself).
  PrintTitle("(a) cloak-keyed cache: hit rate and per-query time");
  std::printf("%-10s %10s %12s %12s %14s\n", "queries", "hit%",
              "us:cached", "us:direct", "distinct cloaks");
  for (size_t volume : {Scaled(1000), Scaled(5000), Scaled(20000)}) {
    casper::processor::CachingQueryProcessor cache(&store, 4096);
    casper::Rng pick(229);
    casper::Stopwatch watch;
    for (size_t q = 0; q < volume; ++q) {
      const auto uid = pick.UniformInt(0, users - 1);
      auto cloak = anon->Cloak(uid);
      CASPER_DCHECK(cloak.ok());
      CASPER_DCHECK(cache.Query(cloak->region).ok());
    }
    const double cached_us = watch.ElapsedMicros() / volume;

    casper::Rng pick2(229);
    watch.Reset();
    for (size_t q = 0; q < volume; ++q) {
      const auto uid = pick2.UniformInt(0, users - 1);
      auto cloak = anon->Cloak(uid);
      CASPER_DCHECK(cloak.ok());
      CASPER_DCHECK(
          casper::processor::PrivateNearestNeighbor(store, cloak->region)
              .ok());
    }
    const double direct_us = watch.ElapsedMicros() / volume;
    std::printf("%-10zu %9.1f%% %12.2f %12.2f %14llu\n", volume,
                100.0 * cache.stats().HitRate(), cached_us, direct_us,
                static_cast<unsigned long long>(cache.stats().misses));
  }

  // (b) Continuous manager under movement.
  PrintTitle("(b) continuous queries: containment reuse under movement");
  std::printf("%-8s %14s %14s %10s\n", "ticks", "evaluations", "reuses",
              "reuse%");
  {
    casper::processor::ContinuousQueryManager manager(&store);
    std::vector<std::pair<casper::anonymizer::UserId,
                          casper::processor::QueryId>>
        queries;
    casper::Rng pick(233);
    for (int i = 0; i < 200; ++i) {
      const auto uid = pick.UniformInt(0, users - 1);
      auto cloak = anon->Cloak(uid);
      CASPER_DCHECK(cloak.ok());
      auto qid = manager.Register(cloak->region);
      CASPER_DCHECK(qid.ok());
      queries.emplace_back(uid, *qid);
    }
    int report_ticks = 0;
    for (int tick = 0; tick < 20; ++tick) {
      for (const auto& u : city.Ticks(static_cast<size_t>(tick) + 1).back()) {
        if (u.uid < users) {
          CASPER_DCHECK(anon->UpdateLocation(
                                u.uid, ClampToRect(u.position, config.space))
                            .ok());
        }
      }
      for (const auto& [uid, qid] : queries) {
        auto cloak = anon->Cloak(uid);
        CASPER_DCHECK(cloak.ok());
        CASPER_DCHECK(manager.OnCloakChanged(qid, cloak->region).ok());
      }
      ++report_ticks;
    }
    const auto& stats = manager.stats();
    const uint64_t events = stats.evaluations + stats.reuses;
    std::printf("%-8d %14llu %14llu %9.1f%%\n", report_ticks,
                static_cast<unsigned long long>(stats.evaluations),
                static_cast<unsigned long long>(stats.reuses),
                100.0 * stats.reuses / events);
  }
  std::printf("\ncell-aligned cloaks repeat across co-located users, so a "
              "small cache absorbs most of the query volume; standing "
              "queries reuse answers whenever the cloak did not grow.\n");
  return 0;
}
