// Ablation (§2/§4 related work): Casper's adaptive anonymizer vs the
// two prior location anonymizers the paper positions against —
// Gruteser-Grunwald spatio-temporal cloaking (uniform k, per-request
// subdivision) and CliqueCloak (per-user k, MBR groups). Reports cloak
// quality (area), service rate, and cloaking time.
//
// The paper could not compare directly ("limited either for small
// numbers of users or for privacy requirement"); having all three in
// one binary makes those limitations measurable.

#include "bench/bench_common.h"
#include "src/baselines/clique_cloak.h"
#include "src/baselines/gg_cloak.h"

int main() {
  using namespace casper::bench;
  const size_t users = Scaled(10000);
  SimulatedCity city(users, 101);
  casper::anonymizer::PyramidConfig config;
  config.space = city.bounds();
  config.height = 9;

  std::printf("Anonymizer baselines: %zu users (scale %.2f)\n", users,
              Scale());
  PrintTitle("cloak area / service rate / time per request vs k");
  std::printf("%-6s %14s %14s %14s %9s %9s %9s %10s %10s %10s\n", "k",
              "area:casper", "area:gg", "area:clique", "svc:cas", "svc:gg",
              "svc:clq", "us:casper", "us:gg", "us:clique");

  for (uint32_t k : {5u, 10u, 20u, 50u, 100u}) {
    // --- Casper adaptive (per-user profiles; here all equal for parity).
    casper::workload::ProfileDistribution dist;
    dist.k_min = dist.k_max = k;
    dist.area_fraction_min = dist.area_fraction_max = 0.0;
    auto casper_anon = BuildAnonymizer(true, config, city, users, dist, 103);

    // --- Gruteser-Grunwald with the same (uniform) k.
    casper::baselines::GGCloak gg(config, k);
    for (casper::anonymizer::UserId uid = 0; uid < users; ++uid) {
      const casper::Point p = casper::ClampToRect(
          city.simulator().PositionOf(uid), config.space);
      CASPER_DCHECK(gg.RegisterUser(uid, p).ok());
    }

    // --- CliqueCloak: requests stream in; tolerance 5% of the space.
    casper::baselines::CliqueCloak clique(config.space);

    const size_t samples = Scaled(1000);
    casper::Rng pick(107);

    casper::SummaryStats casper_area, gg_area, clique_area;
    double casper_us = 0.0, gg_us = 0.0, clique_us = 0.0;
    size_t clique_served = 0;
    casper::Stopwatch watch;
    for (size_t i = 0; i < samples; ++i) {
      const casper::anonymizer::UserId uid = pick.UniformInt(0, users - 1);
      watch.Reset();
      auto cloak = casper_anon->Cloak(uid);
      casper_us += watch.ElapsedMicros();
      CASPER_DCHECK(cloak.ok());
      casper_area.Add(cloak->region.Area());
    }
    for (size_t i = 0; i < samples; ++i) {
      const casper::anonymizer::UserId uid = pick.UniformInt(0, users - 1);
      watch.Reset();
      auto cloak = gg.Cloak(uid);
      gg_us += watch.ElapsedMicros();
      CASPER_DCHECK(cloak.ok());
      gg_area.Add(cloak->region.Area());
    }
    for (size_t i = 0; i < samples; ++i) {
      const casper::anonymizer::UserId uid = pick.UniformInt(0, users - 1);
      casper::baselines::CliqueRequest req;
      req.uid = uid + i * users;  // Unique per request.
      req.position = casper::ClampToRect(city.simulator().PositionOf(uid),
                                         config.space);
      req.k = k;
      req.tolerance = 0.05 * config.space.width();
      watch.Reset();
      auto served = clique.Submit(req);
      clique_us += watch.ElapsedMicros();
      CASPER_DCHECK(served.ok());
      for (const auto& c : *served) {
        clique_area.Add(c.region.Area());
        ++clique_served;
      }
    }

    std::printf(
        "%-6u %14.6f %14.6f %14.6f %8.1f%% %8.1f%% %8.1f%% %10.2f %10.2f "
        "%10.2f\n",
        k, casper_area.mean(), gg_area.mean(), clique_area.mean(), 100.0,
        100.0, 100.0 * clique_served / samples, casper_us / samples,
        gg_us / samples, clique_us / samples);
  }
  std::printf(
      "\ncasper & GG always serve (GG at per-request scan cost); clique "
      "leaves requests starving as k grows and leaks member positions on "
      "its MBR boundary.\n");
  return 0;
}
