// Figure 15 (§6.2.2): effect of the querying user's privacy profile —
// the cloaked *query* region grows from 4 to 1024 lowest-level cells —
// on candidate list size and query processing time over 10K public
// targets, for the 1/2/4-filter variants.

#include "bench/bench_common.h"
#include "src/processor/private_nn.h"

int main() {
  using namespace casper::bench;
  using casper::processor::FilterPolicy;

  casper::anonymizer::PyramidConfig config;
  config.height = 9;

  casper::Rng rng(41);
  const size_t target_count = Scaled(10000);
  casper::processor::PublicTargetStore store(
      casper::workload::UniformPublicTargets(target_count, config.space,
                                             &rng));

  // Square query regions of 4, 16, 64, 256, 1024 cells.
  const std::vector<int> sides = {2, 4, 8, 16, 32};
  const FilterPolicy policies[] = {FilterPolicy::kOneFilter,
                                   FilterPolicy::kTwoFilters,
                                   FilterPolicy::kFourFilters};
  const size_t queries = Scaled(500);

  std::printf("Figure 15 reproduction: %zu public targets, %zu queries per "
              "point (scale %.2f)\n",
              target_count, queries, Scale());

  struct Row {
    int cells;
    double candidates[3];
    double micros[3];
  };
  std::vector<Row> rows;
  for (int side : sides) {
    Row row{side * side, {0, 0, 0}, {0, 0, 0}};
    // Pre-draw the query regions so each policy sees identical cloaks.
    std::vector<casper::Rect> regions;
    for (size_t q = 0; q < queries; ++q) {
      regions.push_back(
          casper::workload::RandomCellAlignedRegion(config, side, side,
                                                    &rng));
    }
    for (int p = 0; p < 3; ++p) {
      casper::SummaryStats size_stats;
      casper::Stopwatch watch;
      for (const auto& region : regions) {
        auto result = casper::processor::PrivateNearestNeighbor(
            store, region, policies[p]);
        CASPER_DCHECK(result.ok());
        size_stats.Add(static_cast<double>(result->size()));
      }
      row.micros[p] = watch.ElapsedMicros() / queries;
      row.candidates[p] = size_stats.mean();
    }
    rows.push_back(row);
  }

  PrintTitle("Fig 15a: candidate list size vs cloaked query region (cells)");
  std::printf("%-10s %12s %12s %12s\n", "cells", "1 filter", "2 filters",
              "4 filters");
  for (const auto& r : rows) {
    std::printf("%-10d %12.1f %12.1f %12.1f\n", r.cells, r.candidates[0],
                r.candidates[1], r.candidates[2]);
  }
  PrintTitle("Fig 15b: query processing time (us) vs query region (cells)");
  std::printf("%-10s %12s %12s %12s\n", "cells", "1 filter", "2 filters",
              "4 filters");
  for (const auto& r : rows) {
    std::printf("%-10d %12.2f %12.2f %12.2f\n", r.cells, r.micros[0],
                r.micros[1], r.micros[2]);
  }
  return 0;
}
