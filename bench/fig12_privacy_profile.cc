// Figure 12 (§6.1.3): effect of the k-anonymity requirement on the
// basic vs adaptive anonymizers (50K users, height 9). The k range
// sweeps from the most relaxed [1-10] to the most restrictive [150-200]
// group; A_min stays at the paper default.
//   12a — average cloaking time per request
//   12b — counter updates per location update
// A second table repeats the sweep over A_min groups (the experiment
// the paper describes but omits for space).

#include "bench/bench_common.h"

int main() {
  using namespace casper::bench;
  const size_t users = Scaled(50000);
  std::printf("Figure 12 reproduction: %zu users (scale %.2f)\n", users,
              Scale());
  SimulatedCity city(users, 11);
  const auto& ticks = city.Ticks(3);

  casper::anonymizer::PyramidConfig config;
  config.space = city.bounds();
  config.height = 9;

  const std::vector<std::pair<uint32_t, uint32_t>> k_groups = {
      {1, 10}, {10, 50}, {50, 100}, {100, 150}, {150, 200}};

  struct Row {
    std::string label;
    double cloak_us[2];
    double updates[2];
  };
  std::vector<Row> rows;
  for (const auto& g : k_groups) {
    casper::workload::ProfileDistribution dist;
    dist.k_min = g.first;
    dist.k_max = g.second;
    Row row;
    row.label =
        "[" + std::to_string(g.first) + "-" + std::to_string(g.second) + "]";
    for (int adaptive = 0; adaptive <= 1; ++adaptive) {
      auto anon =
          BuildAnonymizer(adaptive == 1, config, city, users, dist, 13);
      row.cloak_us[adaptive] = MeanCloakMicros(anon.get(), Scaled(2000), 5);
      row.updates[adaptive] = UpdateCostPerLocationUpdate(anon.get(), ticks);
    }
    rows.push_back(row);
  }

  PrintTitle("Fig 12a: cloaking time (us) vs k range");
  std::printf("%-12s %12s %12s\n", "k range", "basic", "adaptive");
  for (const auto& r : rows) {
    std::printf("%-12s %12.2f %12.2f\n", r.label.c_str(), r.cloak_us[0],
                r.cloak_us[1]);
  }
  PrintTitle("Fig 12b: counter updates per location update vs k range");
  std::printf("%-12s %12s %12s\n", "k range", "basic", "adaptive");
  for (const auto& r : rows) {
    std::printf("%-12s %12.2f %12.2f\n", r.label.c_str(), r.updates[0],
                r.updates[1]);
  }

  // The A_min variant (§6.1.3 closing remark).
  const std::vector<std::pair<double, double>> a_groups = {
      {0.00005, 0.0001}, {0.0005, 0.001}, {0.002, 0.005}, {0.01, 0.02}};
  rows.clear();
  for (const auto& g : a_groups) {
    casper::workload::ProfileDistribution dist;
    dist.area_fraction_min = g.first;
    dist.area_fraction_max = g.second;
    Row row;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%.3f-%.3f%%]", g.first * 100,
                  g.second * 100);
    row.label = buf;
    for (int adaptive = 0; adaptive <= 1; ++adaptive) {
      auto anon =
          BuildAnonymizer(adaptive == 1, config, city, users, dist, 17);
      row.cloak_us[adaptive] = MeanCloakMicros(anon.get(), Scaled(2000), 5);
      row.updates[adaptive] = UpdateCostPerLocationUpdate(anon.get(), ticks);
    }
    rows.push_back(row);
  }
  PrintTitle("Fig 12 (A_min variant): cloaking time (us) vs A_min range");
  std::printf("%-16s %12s %12s\n", "A_min range", "basic", "adaptive");
  for (const auto& r : rows) {
    std::printf("%-16s %12.2f %12.2f\n", r.label.c_str(), r.cloak_us[0],
                r.cloak_us[1]);
  }
  PrintTitle("Fig 12 (A_min variant): updates per location update");
  std::printf("%-16s %12s %12s\n", "A_min range", "basic", "adaptive");
  for (const auto& r : rows) {
    std::printf("%-16s %12.2f %12.2f\n", r.label.c_str(), r.updates[0],
                r.updates[1]);
  }
  return 0;
}
