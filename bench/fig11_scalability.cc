// Figure 11 (§6.1.2): scalability of the basic vs adaptive location
// anonymizers when the number of registered users grows 1K -> 50K
// (pyramid height 9, paper-default profiles).
//   11a — average cloaking time per request
//   11b — counter updates per location update

#include "bench/bench_common.h"

int main() {
  using namespace casper::bench;
  const std::vector<size_t> user_counts = {
      Scaled(1000),  Scaled(10000), Scaled(20000),
      Scaled(30000), Scaled(40000), Scaled(50000)};
  std::printf("Figure 11 reproduction: users %zu..%zu (scale %.2f)\n",
              user_counts.front(), user_counts.back(), Scale());

  SimulatedCity city(user_counts.back(), 7);
  casper::workload::ProfileDistribution dist;  // Paper defaults.

  struct Row {
    size_t users;
    double cloak_us[2];
    double updates[2];
  };
  std::vector<Row> rows;
  for (size_t users : user_counts) {
    casper::anonymizer::PyramidConfig config;
    config.space = city.bounds();
    config.height = 9;
    Row row{users, {0, 0}, {0, 0}};
    for (int adaptive = 0; adaptive <= 1; ++adaptive) {
      auto anon =
          BuildAnonymizer(adaptive == 1, config, city, users, dist, 7);
      row.cloak_us[adaptive] = MeanCloakMicros(anon.get(), Scaled(2000), 3);
      row.updates[adaptive] =
          UpdateCostPerLocationUpdate(anon.get(), city.Ticks(3));
    }
    rows.push_back(row);
  }

  PrintTitle("Fig 11a: cloaking time (us) vs number of users");
  std::printf("%-10s %12s %12s\n", "users", "basic", "adaptive");
  for (const auto& r : rows) {
    std::printf("%-10zu %12.2f %12.2f\n", r.users, r.cloak_us[0],
                r.cloak_us[1]);
  }

  PrintTitle("Fig 11b: counter updates per location update vs users");
  std::printf("%-10s %12s %12s\n", "users", "basic", "adaptive");
  for (const auto& r : rows) {
    std::printf("%-10zu %12.2f %12.2f\n", r.users, r.updates[0],
                r.updates[1]);
  }
  return 0;
}
