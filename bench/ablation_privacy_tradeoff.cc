// Ablation (§3): the personal privacy/quality-of-service trade-off —
// "mobile users have the ability to adjust a personal trade-off between
// the amount of information they would like to reveal about their
// locations and the quality of service". Sweeps k and reports the
// privacy side (cloak area, anonymity-set entropy, center-attack error)
// against the service-cost side (candidate-list size, downlink bytes,
// transmission time).

#include "bench/bench_common.h"
#include "src/anonymizer/privacy_analysis.h"
#include "src/casper/transmission.h"
#include "src/processor/private_nn.h"

int main() {
  using namespace casper::bench;
  const size_t users = Scaled(10000);
  const size_t target_count = Scaled(10000);
  SimulatedCity city(users, 113);
  casper::anonymizer::PyramidConfig config;
  config.space = city.bounds();
  config.height = 9;

  casper::Rng rng(127);
  casper::processor::PublicTargetStore store(
      casper::workload::UniformPublicTargets(target_count, config.space,
                                             &rng));
  casper::TransmissionModel channel;

  std::printf("Privacy/QoS trade-off: %zu users, %zu targets (scale %.2f)\n",
              users, target_count, Scale());
  PrintTitle("privacy gained vs service cost per k");
  std::printf("%-6s %12s %10s %10s | %12s %10s %10s\n", "k", "area",
              "entropy", "attackerr", "candidates", "bytes", "xmit(us)");

  for (uint32_t k : {1u, 5u, 10u, 25u, 50u, 100u, 200u}) {
    casper::workload::ProfileDistribution dist;
    dist.k_min = dist.k_max = k;
    dist.area_fraction_min = dist.area_fraction_max = 0.0;
    auto anon = BuildAnonymizer(true, config, city, users, dist, 131);

    std::vector<casper::anonymizer::CloakObservation> observations;
    casper::SummaryStats candidates;
    casper::Rng pick(137);
    const size_t samples = Scaled(800);
    for (size_t i = 0; i < samples; ++i) {
      const casper::anonymizer::UserId uid = pick.UniformInt(0, users - 1);
      auto cloak = anon->Cloak(uid);
      CASPER_DCHECK(cloak.ok());
      auto profile = anon->GetProfile(uid);
      CASPER_DCHECK(profile.ok());
      observations.push_back(casper::anonymizer::CloakObservation{
          cloak->region, cloak->users_in_region, *profile,
          casper::ClampToRect(city.simulator().PositionOf(uid),
                              config.space)});
      auto answer =
          casper::processor::PrivateNearestNeighbor(store, cloak->region);
      CASPER_DCHECK(answer.ok());
      candidates.Add(static_cast<double>(answer->size()));
    }
    const auto report = casper::anonymizer::AnalyzeCloaks(observations);
    const double mean_candidates = candidates.mean();
    std::printf("%-6u %12.6f %10.2f %10.3f | %12.1f %10.0f %10.1f\n", k,
                report.area.mean(), report.identity_entropy_bits.mean(),
                report.center_attack_normalized_error, mean_candidates,
                mean_candidates * channel.record_bytes(),
                channel.SecondsFor(static_cast<size_t>(mean_candidates)) *
                    1e6);
  }
  std::printf("\nlarger k buys more anonymity bits and larger cloaks at the "
              "price of larger candidate lists and transmission time — the "
              "knob each user turns via her privacy profile.\n");
  return 0;
}
