#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/sharding/shard_router.h"

/// \file
/// Shard scale-out throughput: queries/sec through the ShardRouter at
/// 1, 2, 4, and 8 shards over the identical store and workload. Each
/// configuration is driven by min(8, hardware) client threads issuing
/// small localized queries — the regime sharding is built for, where a
/// query's fan-out set is one or two shards, so adding shards shrinks
/// every per-shard index and spreads the per-client breaker/cache
/// contention.
///
/// Workload scale honors CASPER_BENCH_SCALE like every other bench
/// (the CI gate runs at 0.05). Each configuration takes the best of
/// three measured passes so the 1 -> 8 trajectory is noise-robust.
///
/// Emits one JSON row per shard count to stdout and the array to
/// BENCH_sharding.json; `tools/check_perf_regression.py
/// --shard-scaling-floor` enforces that the 8-shard run beats the
/// 1-shard run when the machine has enough hardware threads to mean
/// anything.

namespace casper::bench {
namespace {

using sharding::ShardRouter;
using sharding::ShardRouterOptions;

std::unique_ptr<ShardRouter> BuildRouter(size_t shards, size_t targets,
                                         size_t regions,
                                         obs::MetricsRegistry* registry) {
  ShardRouterOptions options;
  options.num_shards = shards;
  options.partition_level = 4;  // 256 cells: 32 per shard at 8 shards.
  options.space = Rect(0.0, 0.0, 1.0, 1.0);
  options.registry = registry;
  auto router = std::make_unique<ShardRouter>(options);

  Rng rng(1234);
  router->SetPublicTargets(
      workload::UniformPublicTargets(targets, options.space, &rng));
  SnapshotMsg snapshot;
  snapshot.regions.reserve(regions);
  for (size_t i = 0; i < regions; ++i) {
    const Point c = rng.PointIn(Rect(0.02, 0.02, 0.98, 0.98));
    const double half = rng.Uniform(0.002, 0.01);
    snapshot.regions.push_back(
        {100000 + i, Rect(c.x - half, c.y - half, c.x + half, c.y + half)});
  }
  const Status loaded = router->Load(snapshot);
  CASPER_DCHECK(loaded.ok());
  return router;
}

/// One thread's query stream: localized NN / k-NN / range / private-NN
/// over small cloaks, the same mix the throughput bench uses, spread
/// uniformly over the space so every shard sees traffic.
void RunQueries(const ShardRouter& router, size_t count, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    CloakedQueryMsg q;
    const Point c = rng.PointIn(Rect(0.02, 0.02, 0.9, 0.9));
    q.cloak = Rect(c.x, c.y, c.x + 0.02, c.y + 0.02);
    switch (i % 4) {
      case 0:
        q.kind = QueryKind::kNearestPublic;
        break;
      case 1:
        q.kind = QueryKind::kKNearestPublic;
        q.k = 6;
        break;
      case 2:
        q.kind = QueryKind::kRangePublic;
        q.radius = 0.01;
        break;
      case 3:
        q.kind = QueryKind::kNearestPrivate;
        break;
    }
    const auto answer = router.Execute(q);
    CASPER_DCHECK(answer.ok());
  }
}

struct Row {
  size_t shards = 0;
  size_t threads = 0;
  size_t queries = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;

  std::string ToJson() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"shards\": %zu, \"threads\": %zu, \"queries\": %zu, "
                  "\"wall_seconds\": %.6f, \"qps\": %.1f}",
                  shards, threads, queries, wall_seconds, qps);
    return buf;
  }
};

}  // namespace
}  // namespace casper::bench

int main() {
  using namespace casper;
  using namespace casper::bench;

  const size_t targets = Scaled(400000);  // 20K at the CI gate's 0.05.
  const size_t regions = Scaled(40000);   // 2K at 0.05.
  const size_t queries_per_thread = Scaled(40000);  // 2K at 0.05.
  const unsigned hardware = std::thread::hardware_concurrency();
  const size_t threads =
      std::min<size_t>(8, hardware > 0 ? hardware : 1);

  PrintTitle("Shard scale-out throughput (1 -> 8 shards)");
  std::printf("targets=%zu regions=%zu threads=%zu hardware_threads=%u\n",
              targets, regions, threads, hardware);

  std::vector<Row> rows;
  for (size_t shards : {1, 2, 4, 8}) {
    obs::MetricsRegistry registry;
    const auto router = BuildRouter(shards, targets, regions, &registry);

    // Warm-up pass, then best-of-five measured passes (the 1 -> 8
    // trajectory is gated, so each point must be noise-robust).
    RunQueries(*router, queries_per_thread / 4, 99);
    double best_wall = 0.0;
    for (int pass = 0; pass < 5; ++pass) {
      Stopwatch wall;
      std::vector<std::thread> workers;
      for (size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t, pass] {
          RunQueries(*router, queries_per_thread,
                     0xBEEF + 100 * static_cast<uint64_t>(pass) + t);
        });
      }
      for (auto& w : workers) w.join();
      const double elapsed = wall.ElapsedSeconds();
      if (best_wall == 0.0 || elapsed < best_wall) best_wall = elapsed;
    }

    Row row;
    row.shards = shards;
    row.threads = threads;
    row.queries = queries_per_thread * threads;
    row.wall_seconds = best_wall;
    row.qps = static_cast<double>(row.queries) / best_wall;
    rows.push_back(row);
    std::printf("%s\n", row.ToJson().c_str());
  }

  std::FILE* out = std::fopen("BENCH_sharding.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\"hardware_threads\": %u, \"targets\": %zu, "
                 "\"regions\": %zu, \"rows\": [\n",
                 hardware, targets, regions);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(out, "  %s%s\n", rows[i].ToJson().c_str(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "]}\n");
    std::fclose(out);
    std::printf("wrote BENCH_sharding.json (%zu rows)\n", rows.size());
  }
  return 0;
}
