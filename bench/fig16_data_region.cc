// Figure 16 (§6.2.2): effect of the privacy profile of the *target*
// objects — private target regions grow from 4 to 256 lowest-level
// cells — on candidate list size and query time (10K private targets,
// paper-default query cloaks).

#include "bench/bench_common.h"
#include "src/processor/private_nn_private.h"

int main() {
  using namespace casper::bench;
  using casper::processor::FilterPolicy;

  const size_t users = Scaled(10000);
  SimulatedCity city(users, 43);
  casper::anonymizer::PyramidConfig config;
  config.space = city.bounds();
  config.height = 9;
  casper::workload::ProfileDistribution dist;
  auto anon = BuildAnonymizer(true, config, city, users, dist, 43);

  std::vector<casper::anonymizer::CloakingResult> cloaks;
  MeanCloakMicros(anon.get(), Scaled(500), 47, &cloaks);

  const size_t target_count = Scaled(10000);
  const std::vector<int> sides = {2, 4, 8, 16};  // 4..256 cells.
  const FilterPolicy policies[] = {FilterPolicy::kOneFilter,
                                   FilterPolicy::kTwoFilters,
                                   FilterPolicy::kFourFilters};

  std::printf("Figure 16 reproduction: %zu private targets, %zu queries per "
              "point (scale %.2f)\n",
              target_count, cloaks.size(), Scale());

  struct Row {
    int cells;
    double candidates[3];
    double micros[3];
  };
  std::vector<Row> rows;
  casper::Rng rng(53);
  const double cell_w = config.space.width() / (1u << config.height);
  const double cell_h = config.space.height() / (1u << config.height);
  for (int side : sides) {
    // Fixed-size square target regions of side*side cells.
    std::vector<casper::processor::PrivateTarget> targets;
    for (size_t i = 0; i < target_count; ++i) {
      const double w = side * cell_w;
      const double h = side * cell_h;
      const casper::Point c = rng.PointIn(
          casper::Rect(config.space.min.x, config.space.min.y,
                       config.space.max.x - w, config.space.max.y - h));
      targets.push_back({i, casper::Rect(c.x, c.y, c.x + w, c.y + h)});
    }
    casper::processor::PrivateTargetStore store(targets);

    Row row{side * side, {0, 0, 0}, {0, 0, 0}};
    for (int p = 0; p < 3; ++p) {
      casper::processor::PrivateNNOptions options;
      options.policy = policies[p];
      casper::SummaryStats size_stats;
      casper::Stopwatch watch;
      for (const auto& cloak : cloaks) {
        auto result = casper::processor::PrivateNearestNeighborOverPrivate(
            store, cloak.region, options);
        CASPER_DCHECK(result.ok());
        size_stats.Add(static_cast<double>(result->size()));
      }
      row.micros[p] = watch.ElapsedMicros() / cloaks.size();
      row.candidates[p] = size_stats.mean();
    }
    rows.push_back(row);
  }

  PrintTitle("Fig 16a: candidate list size vs target region size (cells)");
  std::printf("%-10s %12s %12s %12s\n", "cells", "1 filter", "2 filters",
              "4 filters");
  for (const auto& r : rows) {
    std::printf("%-10d %12.1f %12.1f %12.1f\n", r.cells, r.candidates[0],
                r.candidates[1], r.candidates[2]);
  }
  PrintTitle("Fig 16b: query processing time (us) vs target region (cells)");
  std::printf("%-10s %12s %12s %12s\n", "cells", "1 filter", "2 filters",
              "4 filters");
  for (const auto& r : rows) {
    std::printf("%-10d %12.2f %12.2f %12.2f\n", r.cells, r.micros[0],
                r.micros[1], r.micros[2]);
  }
  return 0;
}
