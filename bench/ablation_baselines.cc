// Ablation (Figure 4, §5.1): the two naive extremes vs Casper's
// candidate list, across cloak sizes. Reports answer quality (fraction
// of queries where the user ends up with her true nearest target) and
// downlink bytes per query.

#include "bench/bench_common.h"
#include "src/casper/transmission.h"
#include "src/processor/naive.h"
#include "src/processor/private_nn.h"

int main() {
  using namespace casper::bench;

  casper::anonymizer::PyramidConfig config;
  config.height = 9;
  casper::Rng rng(73);
  const size_t target_count = Scaled(10000);
  casper::processor::PublicTargetStore store(
      casper::workload::UniformPublicTargets(target_count, config.space,
                                             &rng));
  casper::TransmissionModel channel;

  std::printf("Figure 4 baselines: %zu public targets (scale %.2f)\n",
              target_count, Scale());
  PrintTitle("answer quality and bytes shipped per query vs cloak size");
  std::printf("%-10s %18s %18s %18s\n", "cells", "center-NN", "send-all",
              "casper(4 filters)");
  std::printf("%-10s %10s %7s %10s %7s %10s %7s\n", "", "correct%", "bytes",
              "correct%", "bytes", "correct%", "bytes");

  for (int side : {2, 4, 8, 16, 32}) {
    const size_t queries = Scaled(500);
    size_t center_right = 0, casper_right = 0;
    double casper_bytes = 0.0;
    for (size_t q = 0; q < queries; ++q) {
      const casper::Rect cloak =
          casper::workload::RandomCellAlignedRegion(config, side, side, &rng);
      const casper::Point user = rng.PointIn(cloak);
      auto truth = store.Nearest(user);
      CASPER_DCHECK(truth.ok());

      auto naive = casper::processor::NaiveCenterNearest(store, cloak);
      CASPER_DCHECK(naive.ok());
      if (naive->id == truth->id) ++center_right;

      auto answer = casper::processor::PrivateNearestNeighbor(store, cloak);
      CASPER_DCHECK(answer.ok());
      auto refined =
          casper::processor::RefineNearest(answer->candidates, user);
      CASPER_DCHECK(refined.ok());
      if (refined->id == truth->id) ++casper_right;
      casper_bytes += static_cast<double>(channel.BytesFor(answer->size()));
    }
    std::printf("%-10d %10.1f %7zu %10.1f %7zu %10.1f %7.0f\n", side * side,
                100.0 * center_right / queries, channel.BytesFor(1),
                100.0, channel.BytesFor(target_count),
                100.0 * casper_right / queries, casper_bytes / queries);
  }
  std::printf("\ncenter-NN ships one record but guesses; send-all ships the "
              "whole table; casper ships a small list and is always "
              "right.\n");
  return 0;
}
