// Figure 17 (§6.3): end-to-end time of a private NN query through the
// whole Casper stack, decomposed into location-anonymizer time,
// privacy-aware query-processor time, and candidate-list transmission
// time (64-byte records over 100 Mbps). Adaptive anonymizer, four
// filters, 10K users, 10K targets; target regions of 1-64 cells for the
// private-data case.
//   17a — k groups [1-10] .. [40-50]
//   17b — k groups up to [150-200]

#include "bench/bench_common.h"
#include "src/casper/transmission.h"
#include "src/processor/private_nn.h"
#include "src/processor/private_nn_private.h"

namespace casper::bench {
namespace {

struct Breakdown {
  double anonymizer_us = 0.0;
  double processor_us = 0.0;
  double transmission_us = 0.0;
  double total() const {
    return anonymizer_us + processor_us + transmission_us;
  }
};

void RunGroups(const std::vector<std::pair<uint32_t, uint32_t>>& groups,
               const char* title) {
  const size_t users = Scaled(10000);
  const size_t target_count = Scaled(10000);
  SimulatedCity city(users, 59);
  anonymizer::PyramidConfig config;
  config.space = city.bounds();
  config.height = 9;

  Rng rng(61);
  processor::PublicTargetStore public_store(
      workload::UniformPublicTargets(target_count, config.space, &rng));
  processor::PrivateTargetStore private_store(
      workload::RandomPrivateTargets(target_count, config, 8, &rng));
  TransmissionModel channel;

  PrintTitle(std::string(title) +
             ": end-to-end time breakdown (us) per k group");
  std::printf("%-12s | %10s %10s %10s %10s | %10s %10s %10s %10s\n",
              "k range", "pub:anon", "pub:query", "pub:xmit", "pub:total",
              "prv:anon", "prv:query", "prv:xmit", "prv:total");

  for (const auto& g : groups) {
    workload::ProfileDistribution dist;
    dist.k_min = g.first;
    dist.k_max = g.second;
    auto anon = BuildAnonymizer(true, config, city, users, dist, 67);

    Breakdown pub, prv;
    const size_t queries = Scaled(400);
    Rng pick(71);
    for (size_t q = 0; q < queries; ++q) {
      const anonymizer::UserId uid = pick.UniformInt(0, users - 1);
      Stopwatch watch;
      auto cloak = anon->Cloak(uid);
      const double cloak_us = watch.ElapsedMicros();
      CASPER_DCHECK(cloak.ok());

      watch.Reset();
      auto pub_answer = processor::PrivateNearestNeighbor(
          public_store, cloak->region, processor::FilterPolicy::kFourFilters);
      const double pub_us = watch.ElapsedMicros();
      CASPER_DCHECK(pub_answer.ok());

      watch.Reset();
      processor::PrivateNNOptions options;
      auto prv_answer = processor::PrivateNearestNeighborOverPrivate(
          private_store, cloak->region, options);
      const double prv_us = watch.ElapsedMicros();
      CASPER_DCHECK(prv_answer.ok());

      pub.anonymizer_us += cloak_us;
      pub.processor_us += pub_us;
      pub.transmission_us += channel.SecondsFor(pub_answer->size()) * 1e6;
      prv.anonymizer_us += cloak_us;
      prv.processor_us += prv_us;
      prv.transmission_us += channel.SecondsFor(prv_answer->size()) * 1e6;
    }
    const double n = static_cast<double>(queries);
    std::printf("[%3u-%3u]    | %10.1f %10.1f %10.1f %10.1f | %10.1f %10.1f "
                "%10.1f %10.1f\n",
                g.first, g.second, pub.anonymizer_us / n, pub.processor_us / n,
                pub.transmission_us / n, pub.total() / n, prv.anonymizer_us / n,
                prv.processor_us / n, prv.transmission_us / n,
                prv.total() / n);
  }
}

}  // namespace
}  // namespace casper::bench

int main() {
  using namespace casper::bench;
  std::printf("Figure 17 reproduction (scale %.2f)\n", Scale());
  RunGroups({{1, 10}, {10, 20}, {20, 30}, {30, 40}, {40, 50}}, "Fig 17a");
  RunGroups({{1, 10}, {40, 50}, {90, 100}, {140, 150}, {150, 200}},
            "Fig 17b");
  return 0;
}
