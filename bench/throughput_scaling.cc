#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/casper/batch_query_engine.h"
#include "src/obs/exporters.h"

/// \file
/// Batch-query throughput scaling: queries/sec of the parallel
/// BatchQueryEngine across thread count (1, 2, 4, 8) × batch size,
/// against the sequential CasperService loop as baseline.
///
/// Workload scale: defaults are sized so that the CI gate's
/// CASPER_BENCH_SCALE=0.05 run still measures a real hot path — 50K
/// public targets and 2K/8K-query batches (tens-of-millisecond walls),
/// not a micro-workload where timer noise and fixed dispatch overhead
/// dominate. A full-scale (1.0) run is a 1M-target stress shot.
///
/// Emits one JSON object per configuration to stdout and writes the
/// full array to BENCH_throughput.json so the perf trajectory is
/// tracked PR over PR. Note: speedup over the baseline requires actual
/// hardware parallelism — the JSON records `hardware_threads` so
/// single-core CI runs are interpretable (the regression gate only
/// enforces its parallel-speedup rule when the baseline machine had
/// >= 2 hardware threads).

namespace casper::bench {
namespace {

CasperService BuildService(size_t users, size_t targets, uint64_t seed) {
  CasperOptions options;
  options.pyramid.height = 8;
  CasperService service(options);
  Rng rng(seed);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < users; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(1, 50));
    const Status st = service.RegisterUser(uid, profile, rng.PointIn(space));
    CASPER_DCHECK(st.ok());
  }
  service.SetPublicTargets(workload::UniformPublicTargets(targets, space,
                                                          &rng));
  const Status st = service.SyncPrivateData();
  CASPER_DCHECK(st.ok());
  return service;
}

/// Same kind mix as the batch-engine tests: NN / k-NN / range / buddy.
std::vector<server::BatchQueryRequest> MixedBatch(size_t count, size_t users,
                                                  double space_width) {
  std::vector<server::BatchQueryRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const anonymizer::UserId uid = i % users;
    switch (i % 4) {
      case 0:
        requests.push_back(server::BatchQueryRequest::NearestPublic(uid));
        break;
      case 1:
        requests.push_back(server::BatchQueryRequest::KNearestPublic(uid, 5));
        break;
      case 2:
        requests.push_back(
            server::BatchQueryRequest::RangePublic(uid, space_width * 0.01));
        break;
      case 3:
        requests.push_back(server::BatchQueryRequest::NearestPrivate(uid));
        break;
    }
  }
  return requests;
}

struct SequentialResult {
  double qps = 0.0;
  double wall_seconds = 0.0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
};

/// Sequential reference: the plain CasperService loop through the
/// unified dispatch, no pool, no cache — the pre-batch-engine serving
/// model. Each query is timed individually so the sequential rows carry
/// real latency percentiles (they used to report 0.00).
SequentialResult SequentialRun(
    CasperService* service,
    const std::vector<server::BatchQueryRequest>& batch) {
  SequentialResult result;
  SummaryStats micros;
  Stopwatch wall;
  for (const server::BatchQueryRequest& request : batch) {
    Stopwatch per_query;
    (void)service->Execute(request.ToRequest());
    micros.Add(per_query.ElapsedMicros());
  }
  result.wall_seconds = wall.ElapsedSeconds();
  result.qps = static_cast<double>(batch.size()) / result.wall_seconds;
  result.p50_us = micros.Quantile(0.50);
  result.p95_us = micros.Quantile(0.95);
  result.p99_us = micros.Quantile(0.99);
  return result;
}

struct Row {
  std::string label;
  size_t threads = 0;  ///< 0 = sequential baseline.
  size_t batch_size = 0;
  bool cache = false;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  double cache_hit_rate = 0.0;

  std::string ToJson() const {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"mode\": \"%s\", \"threads\": %zu, \"batch_size\": %zu, "
        "\"cache\": %s, \"wall_seconds\": %.6f, \"qps\": %.1f, "
        "\"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f, "
        "\"cache_hit_rate\": %.4f}",
        label.c_str(), threads, batch_size, cache ? "true" : "false",
        wall_seconds, qps, p50_us, p95_us, p99_us, cache_hit_rate);
    return buf;
  }
};

}  // namespace
}  // namespace casper::bench

int main() {
  using namespace casper;
  using namespace casper::bench;

  const size_t targets = Scaled(1000000);   // 50K at the CI gate's 0.05.
  const size_t users = Scaled(40000);       // 2K at 0.05.
  const std::vector<size_t> batch_sizes = {Scaled(40000),    // 2K at 0.05.
                                           Scaled(160000)};  // 8K at 0.05.
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  PrintTitle("Batch query throughput scaling (threads x batch size)");
  std::printf("targets=%zu users=%zu hardware_threads=%u\n", targets, users,
              std::thread::hardware_concurrency());

  CasperService service = BuildService(users, targets, 42);
  const double width = service.options().pyramid.space.width();

  std::vector<Row> rows;
  for (size_t batch_size : batch_sizes) {
    const auto batch = MixedBatch(batch_size, users, width);

    Row seq;
    seq.label = "sequential";
    seq.batch_size = batch_size;
    // Warm-up pass (index caches, allocator), then the measured pass.
    (void)SequentialRun(&service, batch);
    const SequentialResult sequential = SequentialRun(&service, batch);
    seq.qps = sequential.qps;
    seq.wall_seconds = sequential.wall_seconds;
    seq.p50_us = sequential.p50_us;
    seq.p95_us = sequential.p95_us;
    seq.p99_us = sequential.p99_us;
    rows.push_back(seq);
    std::printf("%s\n", seq.ToJson().c_str());

    for (size_t threads : thread_counts) {
      for (bool cache : {false, true}) {
        server::BatchEngineOptions options;
        options.threads = threads;
        options.use_cache = cache;
        server::BatchQueryEngine engine(&service, options);
        (void)engine.Execute(batch);  // Warm-up (fills the cache too).
        server::BatchResult result = engine.Execute(batch);

        Row row;
        row.label = "batch_engine";
        row.threads = threads;
        row.batch_size = batch_size;
        row.cache = cache;
        row.wall_seconds = result.summary.wall_seconds;
        row.qps = result.summary.queries_per_second;
        row.p50_us = result.summary.processor_p50_micros;
        row.p95_us = result.summary.processor_p95_micros;
        row.p99_us = result.summary.processor_p99_micros;
        row.cache_hit_rate = result.summary.cache.HitRate();
        rows.push_back(row);
        std::printf("%s\n", row.ToJson().c_str());
      }
    }
  }

  std::FILE* out = std::fopen("BENCH_throughput.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\"hardware_threads\": %u, \"targets\": %zu, "
                      "\"users\": %zu, \"rows\": [\n",
                 std::thread::hardware_concurrency(), targets, users);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(out, "  %s%s\n", rows[i].ToJson().c_str(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "]}\n");
    std::fclose(out);
    std::printf("wrote BENCH_throughput.json (%zu rows)\n", rows.size());
  }

  // The run's full observability snapshot (every service above shares
  // the process-default registry) rides along as a CI artifact.
  const std::string metrics =
      obs::ExportJson(obs::MetricsRegistry::Default()->Scrape());
  std::FILE* metrics_out = std::fopen("BENCH_metrics.json", "w");
  if (metrics_out != nullptr) {
    std::fwrite(metrics.data(), 1, metrics.size(), metrics_out);
    std::fclose(metrics_out);
    std::printf("wrote BENCH_metrics.json\n");
  }
  return 0;
}
