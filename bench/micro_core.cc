// google-benchmark microbenchmarks for the hot paths underneath every
// experiment: R-tree operations, pyramid maintenance, cloaking, the
// Algorithm 2 geometry, and the moving-object simulator.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "src/anonymizer/adaptive_anonymizer.h"
#include "src/anonymizer/basic_anonymizer.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"
#include "src/network/network_generator.h"
#include "src/processor/density.h"
#include "src/processor/private_knn.h"
#include "src/processor/private_nn.h"
#include "src/processor/public_nn_private.h"
#include "src/processor/query_cache.h"
#include "src/spatial/flat_rtree.h"
#include "src/spatial/grid_index.h"
#include "src/spatial/rtree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_storage.h"
#include "src/storage/memory_storage.h"

namespace casper {
namespace {

spatial::RTree BuildTree(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<spatial::RTree::Entry> entries;
  for (uint64_t i = 0; i < n; ++i) {
    entries.push_back({Rect::FromPoint(rng.PointIn(Rect(0, 0, 1, 1))), i});
  }
  return spatial::RTree::BulkLoad(std::move(entries));
}

void BM_RTreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<spatial::RTree::Entry> entries;
  for (uint64_t i = 0; i < n; ++i) {
    entries.push_back({Rect::FromPoint(rng.PointIn(Rect(0, 0, 1, 1))), i});
  }
  for (auto _ : state) {
    auto copy = entries;
    benchmark::DoNotOptimize(spatial::RTree::BulkLoad(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000);

void BM_RTreeInsert(benchmark::State& state) {
  Rng rng(2);
  spatial::RTree tree;
  uint64_t id = 0;
  for (auto _ : state) {
    tree.Insert(Rect::FromPoint(rng.PointIn(Rect(0, 0, 1, 1))), id++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeInsert);

void BM_RTreeNearest(benchmark::State& state) {
  const auto tree = BuildTree(static_cast<size_t>(state.range(0)), 3);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Nearest(rng.PointIn(Rect(0, 0, 1, 1))));
  }
}
BENCHMARK(BM_RTreeNearest)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeRange1Pct(benchmark::State& state) {
  const auto tree = BuildTree(static_cast<size_t>(state.range(0)), 5);
  Rng rng(6);
  std::vector<spatial::RTree::Entry> out;
  for (auto _ : state) {
    out.clear();
    const Point c = rng.PointIn(Rect(0, 0, 0.9, 0.9));
    tree.RangeQuery(Rect(c.x, c.y, c.x + 0.1, c.y + 0.1), &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RTreeRange1Pct)->Arg(10000)->Arg(100000);

std::vector<spatial::RTree::Entry> RandomEntries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<spatial::RTree::Entry> entries;
  for (uint64_t i = 0; i < n; ++i) {
    entries.push_back({Rect::FromPoint(rng.PointIn(Rect(0, 0, 1, 1))), i});
  }
  return entries;
}

/// Scalar MinDist over an array of rectangles — the per-box cost the
/// pointer tree pays at every node visit.
void BM_MinDistScalar(benchmark::State& state) {
  const auto entries = RandomEntries(static_cast<size_t>(state.range(0)), 23);
  Rng rng(24);
  std::vector<double> out(entries.size());
  for (auto _ : state) {
    const Point q = rng.PointIn(Rect(0, 0, 1, 1));
    for (size_t i = 0; i < entries.size(); ++i) {
      out[i] = MinDist(q, entries[i].box);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(entries.size()));
}
BENCHMARK(BM_MinDistScalar)->Arg(16)->Arg(256)->Arg(4096);

/// The SoA batched kernel the flat tree uses: same distances, computed
/// over four parallel coordinate arrays so the compiler can vectorize.
void BM_MinDistBatched(benchmark::State& state) {
  const auto entries = RandomEntries(static_cast<size_t>(state.range(0)), 23);
  std::vector<double> xlo, ylo, xhi, yhi;
  for (const auto& e : entries) {
    xlo.push_back(e.box.min.x);
    ylo.push_back(e.box.min.y);
    xhi.push_back(e.box.max.x);
    yhi.push_back(e.box.max.y);
  }
  const RectSoA soa{xlo.data(), ylo.data(), xhi.data(), yhi.data()};
  Rng rng(24);
  std::vector<double> out(entries.size());
  for (auto _ : state) {
    const Point q = rng.PointIn(Rect(0, 0, 1, 1));
    BatchedMinDist(q, soa, entries.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(entries.size()));
}
BENCHMARK(BM_MinDistBatched)->Arg(16)->Arg(256)->Arg(4096);

/// Pointer-chasing Guttman k-NN — baseline for the flat traversal.
void BM_PointerKnn(benchmark::State& state) {
  const auto tree = BuildTree(static_cast<size_t>(state.range(0)), 25);
  Rng rng(26);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.KNearest(rng.PointIn(Rect(0, 0, 1, 1)), 8));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointerKnn)->Arg(10000)->Arg(100000);

/// Flat STR-packed k-NN over the identical entry set. Acceptance wants
/// this >= 1.3x the pointer traversal at 100K entries.
void BM_FlatKnn(benchmark::State& state) {
  const spatial::FlatRTree tree = spatial::FlatRTree::Build(
      RandomEntries(static_cast<size_t>(state.range(0)), 25));
  Rng rng(26);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.KNearest(rng.PointIn(Rect(0, 0, 1, 1)), 8));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatKnn)->Arg(10000)->Arg(100000);

/// Flat STR-packed range query vs. the Guttman baseline above
/// (BM_RTreeRange1Pct uses the same 1% window workload).
void BM_FlatRange1Pct(benchmark::State& state) {
  const spatial::FlatRTree tree = spatial::FlatRTree::Build(
      RandomEntries(static_cast<size_t>(state.range(0)), 5));
  Rng rng(6);
  std::vector<spatial::RTree::Entry> out;
  for (auto _ : state) {
    out.clear();
    const Point c = rng.PointIn(Rect(0, 0, 0.9, 0.9));
    tree.RangeQuery(Rect(c.x, c.y, c.x + 0.1, c.y + 0.1), &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FlatRange1Pct)->Arg(10000)->Arg(100000);

void BM_GridNearest(benchmark::State& state) {
  Rng rng(7);
  spatial::GridIndex grid(Rect(0, 0, 1, 1), 64);
  for (uint64_t i = 0; i < 10000; ++i) {
    (void)grid.Insert(rng.PointIn(Rect(0, 0, 1, 1)), i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.Nearest(rng.PointIn(Rect(0, 0, 1, 1))));
  }
}
BENCHMARK(BM_GridNearest);

template <typename Anonymizer>
std::unique_ptr<Anonymizer> BuildAnon(size_t users, int height,
                                      uint64_t seed) {
  anonymizer::PyramidConfig config;
  config.height = height;
  auto anon = std::make_unique<Anonymizer>(config);
  Rng rng(seed);
  for (anonymizer::UserId uid = 0; uid < users; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(1, 50));
    profile.a_min = rng.Uniform(0.00005, 0.0001);
    CASPER_DCHECK(
        anon->RegisterUser(uid, profile, rng.PointIn(config.space)).ok());
  }
  return anon;
}

void BM_BasicUpdate(benchmark::State& state) {
  auto anon = BuildAnon<anonymizer::BasicAnonymizer>(10000, 9, 8);
  Rng rng(9);
  for (auto _ : state) {
    const anonymizer::UserId uid = rng.UniformInt(0, 9999);
    CASPER_DCHECK(
        anon->UpdateLocation(uid, rng.PointIn(Rect(0, 0, 1, 1))).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BasicUpdate);

void BM_AdaptiveUpdate(benchmark::State& state) {
  auto anon = BuildAnon<anonymizer::AdaptiveAnonymizer>(10000, 9, 10);
  Rng rng(11);
  for (auto _ : state) {
    const anonymizer::UserId uid = rng.UniformInt(0, 9999);
    CASPER_DCHECK(
        anon->UpdateLocation(uid, rng.PointIn(Rect(0, 0, 1, 1))).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptiveUpdate);

void BM_BasicCloak(benchmark::State& state) {
  auto anon = BuildAnon<anonymizer::BasicAnonymizer>(10000, 9, 12);
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anon->Cloak(rng.UniformInt(0, 9999)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BasicCloak);

void BM_AdaptiveCloak(benchmark::State& state) {
  auto anon = BuildAnon<anonymizer::AdaptiveAnonymizer>(10000, 9, 14);
  Rng rng(15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anon->Cloak(rng.UniformInt(0, 9999)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptiveCloak);

void BM_PrivateNNQuery(benchmark::State& state) {
  Rng rng(16);
  anonymizer::PyramidConfig config;
  config.height = 9;
  processor::PublicTargetStore store(workload::UniformPublicTargets(
      static_cast<size_t>(state.range(0)), config.space, &rng));
  for (auto _ : state) {
    const Rect cloak =
        workload::RandomCellAlignedRegion(config, 8, 8, &rng);
    benchmark::DoNotOptimize(processor::PrivateNearestNeighbor(store, cloak));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrivateNNQuery)->Arg(1000)->Arg(10000);

void BM_PrivateKnnQuery(benchmark::State& state) {
  Rng rng(19);
  anonymizer::PyramidConfig config;
  config.height = 9;
  processor::PublicTargetStore store(
      workload::UniformPublicTargets(10000, config.space, &rng));
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    const Rect cloak = workload::RandomCellAlignedRegion(config, 8, 8, &rng);
    benchmark::DoNotOptimize(
        processor::PrivateKNearestNeighbors(store, cloak, k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrivateKnnQuery)->Arg(1)->Arg(8)->Arg(32);

void BM_PublicNNOverPrivate(benchmark::State& state) {
  Rng rng(20);
  anonymizer::PyramidConfig config;
  config.height = 9;
  processor::PrivateTargetStore store(
      workload::RandomPrivateTargets(10000, config, 8, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(processor::PublicNearestNeighborOverPrivate(
        store, rng.PointIn(config.space)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PublicNNOverPrivate);

void BM_ExpectedDensity(benchmark::State& state) {
  Rng rng(21);
  anonymizer::PyramidConfig config;
  config.height = 9;
  processor::PrivateTargetStore store(
      workload::RandomPrivateTargets(10000, config, 8, &rng));
  const int grid = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        processor::ExpectedDensity(store, config.space, grid, grid));
  }
}
BENCHMARK(BM_ExpectedDensity)->Arg(8)->Arg(32);

void BM_CachedQueryHit(benchmark::State& state) {
  Rng rng(22);
  anonymizer::PyramidConfig config;
  config.height = 9;
  processor::PublicTargetStore store(
      workload::UniformPublicTargets(10000, config.space, &rng));
  processor::CachingQueryProcessor cache(&store, 64);
  const Rect cloak = workload::RandomCellAlignedRegion(config, 8, 8, &rng);
  CASPER_DCHECK(cache.Query(cloak).ok());  // Warm the entry.
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Query(cloak));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedQueryHit);

void BM_SimulatorTick(benchmark::State& state) {
  network::NetworkGeneratorOptions opt;
  opt.rows = 20;
  opt.cols = 20;
  auto net = network::NetworkGenerator(opt).Generate(17);
  CASPER_DCHECK(net.ok());
  network::SimulatorOptions sopt;
  sopt.object_count = static_cast<size_t>(state.range(0));
  network::MovingObjectSimulator sim(&*net, sopt, 18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Tick());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorTick)->Arg(1000)->Arg(10000);

// --- Storage tier: page codec and buffer pool ------------------------------

spatial::FlatRTree BuildFlatTree(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<spatial::FlatRTree::Entry> entries;
  for (uint64_t i = 0; i < n; ++i) {
    entries.push_back({Rect::FromPoint(rng.PointIn(Rect(0, 0, 1, 1))), i});
  }
  return spatial::FlatRTree::Build(std::move(entries));
}

void BM_FlatTreeSerialize(benchmark::State& state) {
  const auto tree = BuildFlatTree(static_cast<size_t>(state.range(0)), 23);
  for (auto _ : state) {
    storage::MemoryStorageManager sm;
    auto root = tree.SaveTo(&sm);
    CASPER_DCHECK(root.ok());
    benchmark::DoNotOptimize(*root);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlatTreeSerialize)->Arg(10000)->Arg(100000);

void BM_FlatTreeDeserialize(benchmark::State& state) {
  const auto tree = BuildFlatTree(static_cast<size_t>(state.range(0)), 23);
  storage::MemoryStorageManager sm;
  const auto root = tree.SaveTo(&sm);
  CASPER_DCHECK(root.ok());
  for (auto _ : state) {
    auto loaded = spatial::FlatRTree::LoadFrom(&sm, *root);
    CASPER_DCHECK(loaded.ok());
    benchmark::DoNotOptimize(loaded->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlatTreeDeserialize)->Arg(10000)->Arg(100000);

/// Sequential page scans through a BufferPool over a disk store, with
/// the pool sized to Arg(1)% of the page count: 1% (thrash), 10%, and
/// 100% (everything resident after the cold pass). The first iteration
/// is the cold scan; steady-state hit rates land in the counters.
void BM_BufferPoolScan(benchmark::State& state) {
  const size_t page_count = static_cast<size_t>(state.range(0));
  const std::string path = "/tmp/casper_bench_pool_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(state.range(1));
  auto sm = storage::DiskStorageManager::Create(path);
  CASPER_DCHECK(sm.ok());
  std::vector<storage::PageId> ids;
  Rng rng(29);
  for (size_t i = 0; i < page_count; ++i) {
    std::string page(4096 - 64, static_cast<char>(rng.UniformInt(0, 255)));
    auto id = (*sm)->Store(storage::kNoPage, page);
    CASPER_DCHECK(id.ok());
    ids.push_back(*id);
  }
  CASPER_DCHECK((*sm)->Flush().ok());

  storage::BufferPoolOptions options;
  options.capacity_pages = std::max<size_t>(
      1, page_count * static_cast<size_t>(state.range(1)) / 100);
  storage::BufferPool pool(sm->get(), options);
  std::string out;
  for (auto _ : state) {
    for (const auto id : ids) {
      CASPER_DCHECK(pool.Load(id, &out).ok());
      benchmark::DoNotOptimize(out.data());
    }
  }
  const auto stats = pool.stats();
  state.counters["pool_hits"] = static_cast<double>(stats.hits);
  state.counters["pool_misses"] = static_cast<double>(stats.misses);
  state.counters["pool_evictions"] = static_cast<double>(stats.evictions);
  state.counters["hit_rate"] = stats.hit_rate();
  state.SetItemsProcessed(state.iterations() * page_count);
  std::remove((path + ".dat").c_str());
  std::remove((path + ".idx").c_str());
}
BENCHMARK(BM_BufferPoolScan)
    ->Args({512, 1})
    ->Args({512, 10})
    ->Args({512, 100});

/// One cold reopen: every page load is a miss that goes to disk and
/// through checksum verification. The counterpart of the warm scans
/// above; together they chart the hit curve the perf gate tracks.
void BM_BufferPoolColdLoad(benchmark::State& state) {
  const size_t page_count = static_cast<size_t>(state.range(0));
  const std::string path =
      "/tmp/casper_bench_cold_" + std::to_string(::getpid());
  {
    auto sm = storage::DiskStorageManager::Create(path);
    CASPER_DCHECK(sm.ok());
    Rng rng(31);
    for (size_t i = 0; i < page_count; ++i) {
      std::string page(4096 - 64, static_cast<char>(rng.UniformInt(0, 255)));
      CASPER_DCHECK((*sm)->Store(storage::kNoPage, page).ok());
    }
    CASPER_DCHECK((*sm)->Flush().ok());
  }
  uint64_t misses = 0;
  std::string out;
  for (auto _ : state) {
    auto sm = storage::DiskStorageManager::Open(path);
    CASPER_DCHECK(sm.ok());
    storage::BufferPool pool(sm->get());
    for (storage::PageId id = 0; id < page_count; ++id) {
      CASPER_DCHECK(pool.Load(id, &out).ok());
      benchmark::DoNotOptimize(out.data());
    }
    misses = pool.stats().misses;
  }
  state.counters["pool_misses"] = static_cast<double>(misses);
  state.SetItemsProcessed(state.iterations() * page_count);
  std::remove((path + ".dat").c_str());
  std::remove((path + ".idx").c_str());
}
BENCHMARK(BM_BufferPoolColdLoad)->Arg(512);

}  // namespace
}  // namespace casper
