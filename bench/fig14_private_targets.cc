// Figure 14 (§6.2.1): scalability of the privacy-aware query processor
// with the number of *private* (cloaked-region) targets, 1K -> 10K.
// Target regions span 1-64 lowest-level cells (paper default).
//   14a — candidate list size
//   14b — query processing time (more filters cost more server time on
//          private data, but the smaller candidate list wins end-to-end)

#include "bench/bench_common.h"
#include "src/processor/private_nn_private.h"

int main() {
  using namespace casper::bench;
  using casper::processor::FilterPolicy;

  const size_t users = Scaled(10000);
  SimulatedCity city(users, 29);
  casper::anonymizer::PyramidConfig config;
  config.space = city.bounds();
  config.height = 9;
  casper::workload::ProfileDistribution dist;
  auto anon = BuildAnonymizer(true, config, city, users, dist, 29);

  std::vector<casper::anonymizer::CloakingResult> cloaks;
  MeanCloakMicros(anon.get(), Scaled(500), 31, &cloaks);

  const std::vector<size_t> target_counts = {
      Scaled(1000), Scaled(2000), Scaled(4000), Scaled(6000),
      Scaled(8000), Scaled(10000)};
  const FilterPolicy policies[] = {FilterPolicy::kOneFilter,
                                   FilterPolicy::kTwoFilters,
                                   FilterPolicy::kFourFilters};

  std::printf("Figure 14 reproduction: %zu query cloaks, private targets "
              "%zu..%zu, regions 1-64 cells (scale %.2f)\n",
              cloaks.size(), target_counts.front(), target_counts.back(),
              Scale());

  struct Row {
    size_t targets;
    double candidates[3];
    double micros[3];
  };
  std::vector<Row> rows;
  casper::Rng rng(37);
  for (size_t count : target_counts) {
    casper::processor::PrivateTargetStore store(
        casper::workload::RandomPrivateTargets(count, config, 8, &rng));
    Row row{count, {0, 0, 0}, {0, 0, 0}};
    for (int p = 0; p < 3; ++p) {
      casper::processor::PrivateNNOptions options;
      options.policy = policies[p];
      casper::SummaryStats size_stats;
      casper::Stopwatch watch;
      for (const auto& cloak : cloaks) {
        auto result = casper::processor::PrivateNearestNeighborOverPrivate(
            store, cloak.region, options);
        CASPER_DCHECK(result.ok());
        size_stats.Add(static_cast<double>(result->size()));
      }
      row.micros[p] = watch.ElapsedMicros() / cloaks.size();
      row.candidates[p] = size_stats.mean();
    }
    rows.push_back(row);
  }

  PrintTitle("Fig 14a: candidate list size vs private targets");
  std::printf("%-10s %12s %12s %12s\n", "targets", "1 filter", "2 filters",
              "4 filters");
  for (const auto& r : rows) {
    std::printf("%-10zu %12.1f %12.1f %12.1f\n", r.targets, r.candidates[0],
                r.candidates[1], r.candidates[2]);
  }
  PrintTitle("Fig 14b: query processing time (us) vs private targets");
  std::printf("%-10s %12s %12s %12s\n", "targets", "1 filter", "2 filters",
              "4 filters");
  for (const auto& r : rows) {
    std::printf("%-10zu %12.2f %12.2f %12.2f\n", r.targets, r.micros[0],
                r.micros[1], r.micros[2]);
  }
  return 0;
}
