// Figure 10 (§6.1.1): effect of the pyramid height (4..9 levels) on the
// basic vs adaptive location anonymizers with 50K registered users.
//   10a — average cloaking time per request
//   10b — average counter updates per location update
//   10c — k-accuracy k'/k per k-group (A_min = 0); both anonymizers
//         produce identical regions, so one column serves both
//   10d — area accuracy A'/A_min per A_min group (k = 1)

#include "bench/bench_common.h"

namespace casper::bench {
namespace {

constexpr uint64_t kSeed = 42;

void Fig10ab(SimulatedCity* city, size_t users) {
  workload::ProfileDistribution dist;  // Paper defaults: k 1-50, A 0.005-0.01%.
  const auto& ticks = city->Ticks(3);

  PrintTitle("Fig 10a: cloaking time (us) vs pyramid height");
  std::printf("%-8s %12s %12s\n", "height", "basic", "adaptive");
  std::vector<std::pair<int, std::array<double, 2>>> update_rows;
  for (int height = 4; height <= 9; ++height) {
    anonymizer::PyramidConfig config;
    config.space = city->bounds();
    config.height = height;
    double cloak_us[2];
    double updates[2];
    for (int adaptive = 0; adaptive <= 1; ++adaptive) {
      auto anon = BuildAnonymizer(adaptive == 1, config, *city, users, dist,
                                  kSeed);
      cloak_us[adaptive] = MeanCloakMicros(anon.get(), Scaled(2000), kSeed);
      updates[adaptive] = UpdateCostPerLocationUpdate(anon.get(), ticks);
    }
    std::printf("%-8d %12.2f %12.2f\n", height, cloak_us[0], cloak_us[1]);
    update_rows.push_back({height, {updates[0], updates[1]}});
  }

  PrintTitle("Fig 10b: counter updates per location update vs height");
  std::printf("%-8s %12s %12s\n", "height", "basic", "adaptive");
  for (const auto& [height, u] : update_rows) {
    std::printf("%-8d %12.2f %12.2f\n", height, u[0], u[1]);
  }
}

void Fig10c(SimulatedCity* city, size_t users) {
  PrintTitle("Fig 10c: k-accuracy k'/k vs height (A_min = 0)");
  const std::vector<std::pair<uint32_t, uint32_t>> groups = {
      {1, 10}, {40, 50}, {90, 100}, {150, 200}};
  std::printf("%-8s", "height");
  for (const auto& g : groups) {
    std::printf("   k[%3u-%3u]", g.first, g.second);
  }
  std::printf("\n");
  for (int height = 4; height <= 9; ++height) {
    anonymizer::PyramidConfig config;
    config.space = city->bounds();
    config.height = height;
    std::printf("%-8d", height);
    for (const auto& g : groups) {
      workload::ProfileDistribution dist;
      dist.k_min = g.first;
      dist.k_max = g.second;
      dist.area_fraction_min = dist.area_fraction_max = 0.0;
      auto anon =
          BuildAnonymizer(true, config, *city, users, dist, kSeed + height);
      SummaryStats ratio;
      Rng pick(7);
      for (size_t i = 0; i < Scaled(1000); ++i) {
        const anonymizer::UserId uid = pick.UniformInt(0, users - 1);
        auto result = anon->Cloak(uid);
        CASPER_DCHECK(result.ok());
        auto profile = anon->GetProfile(uid);
        CASPER_DCHECK(profile.ok());
        ratio.Add(static_cast<double>(result->users_in_region) / profile->k);
      }
      std::printf(" %12.2f", ratio.mean());
    }
    std::printf("\n");
  }
}

void Fig10d(SimulatedCity* city, size_t users) {
  PrintTitle("Fig 10d: area accuracy A'/A_min vs height (k = 1)");
  const std::vector<std::pair<double, double>> groups = {
      {0.00005, 0.0001}, {0.0005, 0.001}, {0.002, 0.005}, {0.01, 0.02}};
  std::printf("%-8s", "height");
  for (const auto& g : groups) {
    std::printf(" A[%.3f-%.3f%%]", g.first * 100, g.second * 100);
  }
  std::printf("\n");
  for (int height = 4; height <= 9; ++height) {
    anonymizer::PyramidConfig config;
    config.space = city->bounds();
    config.height = height;
    std::printf("%-8d", height);
    for (const auto& g : groups) {
      workload::ProfileDistribution dist;
      dist.k_min = dist.k_max = 1;
      dist.area_fraction_min = g.first;
      dist.area_fraction_max = g.second;
      auto anon = BuildAnonymizer(true, config, *city, users, dist,
                                  kSeed + 31 * height);
      SummaryStats ratio;
      Rng pick(9);
      for (size_t i = 0; i < Scaled(1000); ++i) {
        const anonymizer::UserId uid = pick.UniformInt(0, users - 1);
        auto result = anon->Cloak(uid);
        CASPER_DCHECK(result.ok());
        auto profile = anon->GetProfile(uid);
        CASPER_DCHECK(profile.ok());
        ratio.Add(result->region.Area() / profile->a_min);
      }
      std::printf(" %15.2f", ratio.mean());
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace casper::bench

int main() {
  using namespace casper::bench;
  const size_t users = Scaled(50000);
  std::printf("Figure 10 reproduction: %zu users (scale %.2f)\n", users,
              Scale());
  SimulatedCity city(users, 42);
  Fig10ab(&city, users);
  Fig10c(&city, users);
  Fig10d(&city, users);
  return 0;
}
