// Ablation: the horizontal/vertical neighbor-merge step of Algorithm 1
// (lines 5-13). §4.3 credits it for the anonymizer's accuracy; this
// bench quantifies that by cloaking the same population with the step
// enabled vs disabled and reporting k-accuracy (k'/k), region area, and
// cloaking time.

#include "bench/bench_common.h"

int main() {
  using namespace casper::bench;

  const size_t users = Scaled(50000);
  SimulatedCity city(users, 79);
  casper::anonymizer::PyramidConfig config;
  config.space = city.bounds();
  config.height = 9;

  std::printf("Neighbor-merge ablation: %zu users (scale %.2f)\n", users,
              Scale());
  PrintTitle("k-accuracy and cloak area with/without neighbor merge");
  std::printf("%-12s %12s %12s %14s %14s %10s\n", "k range", "k'/k:on",
              "k'/k:off", "area:on", "area:off", "merge%");

  for (const auto& g : std::vector<std::pair<uint32_t, uint32_t>>{
           {1, 10}, {10, 50}, {50, 100}, {150, 200}}) {
    casper::workload::ProfileDistribution dist;
    dist.k_min = g.first;
    dist.k_max = g.second;
    dist.area_fraction_min = dist.area_fraction_max = 0.0;
    auto anon = BuildAnonymizer(true, config, city, users, dist, 83);

    casper::anonymizer::CloakingOptions with;
    casper::anonymizer::CloakingOptions without;
    without.enable_neighbor_merge = false;

    casper::SummaryStats ratio_on, ratio_off, area_on, area_off;
    size_t merges = 0;
    const size_t samples = Scaled(2000);
    casper::Rng pick(89);
    for (size_t i = 0; i < samples; ++i) {
      const casper::anonymizer::UserId uid = pick.UniformInt(0, users - 1);
      auto profile = anon->GetProfile(uid);
      CASPER_DCHECK(profile.ok());
      auto a = anon->Cloak(uid, with);
      auto b = anon->Cloak(uid, without);
      CASPER_DCHECK(a.ok());
      CASPER_DCHECK(b.ok());
      ratio_on.Add(static_cast<double>(a->users_in_region) / profile->k);
      ratio_off.Add(static_cast<double>(b->users_in_region) / profile->k);
      area_on.Add(a->region.Area());
      area_off.Add(b->region.Area());
      if (a->merged_with_neighbor) ++merges;
    }
    std::printf("[%3u-%3u]    %12.2f %12.2f %14.6f %14.6f %10.1f\n", g.first,
                g.second, ratio_on.mean(), ratio_off.mean(), area_on.mean(),
                area_off.mean(), 100.0 * merges / samples);
  }
  std::printf("\nthe merge step cuts k overshoot (k'/k) and region area — "
              "tighter cloaks mean smaller candidate lists downstream.\n");
  return 0;
}
