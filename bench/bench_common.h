#ifndef CASPER_BENCH_BENCH_COMMON_H_
#define CASPER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/anonymizer/adaptive_anonymizer.h"
#include "src/anonymizer/basic_anonymizer.h"
#include "src/casper/workload.h"
#include "src/common/stats.h"
#include "src/common/stopwatch.h"
#include "src/network/network_generator.h"

/// \file
/// Shared scaffolding for the figure-reproduction benches: the
/// simulated user population (road-network driven, as in the paper's
/// §6 setup), timing helpers, and table printing.
///
/// Scale: every bench honors CASPER_BENCH_SCALE (a float, default 1.0 =
/// the paper's sizes). Set e.g. CASPER_BENCH_SCALE=0.1 for a quick run.

namespace casper::bench {

inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("CASPER_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

inline size_t Scaled(size_t n) {
  const auto v = static_cast<size_t>(static_cast<double>(n) * Scale());
  return v > 0 ? v : 1;
}

/// The moving-object workload every §6.1 experiment runs on: a synthetic
/// road network (Hennepin County substitute) plus a simulator, built
/// once per binary.
class SimulatedCity {
 public:
  SimulatedCity(size_t objects, uint64_t seed) {
    network::NetworkGeneratorOptions opt;
    opt.rows = 24;
    opt.cols = 24;
    auto net = network::NetworkGenerator(opt).Generate(seed);
    CASPER_DCHECK(net.ok());
    network_ = std::make_unique<network::RoadNetwork>(std::move(net).value());
    network::SimulatorOptions sopt;
    sopt.object_count = objects;
    sopt.tick_seconds = 1.0;
    simulator_ = std::make_unique<network::MovingObjectSimulator>(
        network_.get(), sopt, seed ^ 0x9e3779b9);
    // Warm up: objects start exactly on network nodes; ~a map-crossing
    // of travel spreads them along edges so the population matches the
    // paper's in-flight distribution rather than a node-clustered one.
    for (int i = 0; i < 60; ++i) simulator_->Tick();
  }

  const network::MovingObjectSimulator& simulator() const {
    return *simulator_;
  }

  /// Pre-computed per-tick update batches (so several anonymizers can
  /// replay the identical movement history).
  const std::vector<std::vector<network::LocationUpdate>>& Ticks(
      size_t count) {
    while (ticks_.size() < count) ticks_.push_back(simulator_->Tick());
    return ticks_;
  }

  Rect bounds() const { return network_->bounds(); }

 private:
  std::unique_ptr<network::RoadNetwork> network_;
  std::unique_ptr<network::MovingObjectSimulator> simulator_;
  std::vector<std::vector<network::LocationUpdate>> ticks_;
};

/// Registers `users` simulated users (uids 0..users-1) with profiles
/// from `dist` into a fresh anonymizer of the given kind.
inline std::unique_ptr<anonymizer::LocationAnonymizer> BuildAnonymizer(
    bool adaptive, const anonymizer::PyramidConfig& config,
    const SimulatedCity& city, size_t users,
    const workload::ProfileDistribution& dist, uint64_t seed) {
  std::unique_ptr<anonymizer::LocationAnonymizer> anon;
  if (adaptive) {
    anon = std::make_unique<anonymizer::AdaptiveAnonymizer>(config);
  } else {
    anon = std::make_unique<anonymizer::BasicAnonymizer>(config);
  }
  Rng rng(seed);
  const Status st = workload::RegisterSimulatedUsers(city.simulator(), users,
                                                     dist, anon.get(), &rng);
  CASPER_DCHECK(st.ok());
  return anon;
}

/// Mean cloaking wall time (microseconds) over a sample of users, with
/// optional per-cloak region capture.
inline double MeanCloakMicros(anonymizer::LocationAnonymizer* anon,
                              size_t samples, uint64_t seed,
                              std::vector<anonymizer::CloakingResult>* out =
                                  nullptr) {
  Rng rng(seed);
  const size_t n = anon->user_count();
  Stopwatch total;
  double elapsed = 0.0;
  for (size_t i = 0; i < samples; ++i) {
    const anonymizer::UserId uid = rng.UniformInt(0, n - 1);
    Stopwatch watch;
    auto result = anon->Cloak(uid);
    elapsed += watch.ElapsedMicros();
    CASPER_DCHECK(result.ok());
    if (out != nullptr) out->push_back(result.value());
  }
  (void)total;
  return elapsed / static_cast<double>(samples);
}

/// Replays `ticks` against the anonymizer and returns the structural
/// update cost per location update (the paper's Fig 10b/11b/12b metric).
inline double UpdateCostPerLocationUpdate(
    anonymizer::LocationAnonymizer* anon,
    const std::vector<std::vector<network::LocationUpdate>>& ticks) {
  anon->ResetStats();
  workload::ApplyTickStats tick_stats;
  for (const auto& batch : ticks) {
    const Status st = workload::ApplyTick(batch, anon, &tick_stats);
    CASPER_DCHECK(st.ok());
  }
  // Every simulated object is registered here; a drop means the bench
  // measured fewer updates than it claims.
  CASPER_DCHECK(tick_stats.dropped == 0);
  return anon->stats().UpdatesPerLocationUpdate();
}

/// Wall time (microseconds) of replaying the ticks, per update.
inline double UpdateMicrosPerLocationUpdate(
    anonymizer::LocationAnonymizer* anon,
    const std::vector<std::vector<network::LocationUpdate>>& ticks) {
  size_t updates = 0;
  workload::ApplyTickStats tick_stats;
  Stopwatch watch;
  for (const auto& batch : ticks) {
    const Status st = workload::ApplyTick(batch, anon, &tick_stats);
    CASPER_DCHECK(st.ok());
    updates += batch.size();
  }
  CASPER_DCHECK(tick_stats.dropped == 0);
  return watch.ElapsedMicros() / static_cast<double>(updates);
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace casper::bench

#endif  // CASPER_BENCH_BENCH_COMMON_H_
