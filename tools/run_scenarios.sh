#!/usr/bin/env bash
# Run every named city-scale scenario against the facade, socket, and
# 4-shard stacks with invariant oracles on, writing one
# BENCH_scenario_<name>[_<stack>].json per run into the current
# directory. Any oracle violation fails the script (casper_cli exits 1).
#
# Usage: tools/run_scenarios.sh [path/to/casper_cli]
#
# Honors CASPER_BENCH_SCALE (the CLI scales its default users / targets
# / queries-per-tick; CI uses 0.05). Set CASPER_SCENARIO_TICKS to
# shorten runs further.
set -euo pipefail

CLI=${1:-./build/tools/casper_cli}
TICKS=${CASPER_SCENARIO_TICKS:-}

if [[ ! -x "$CLI" ]]; then
  echo "error: casper_cli not found at $CLI (build it first, or pass the path)" >&2
  exit 2
fi

tick_args=()
if [[ -n "$TICKS" ]]; then
  tick_args+=(--ticks="$TICKS")
fi

scenarios=$("$CLI" scenario list | awk '{print $1}')
status=0
for name in $scenarios; do
  for stack in facade socket shards; do
    out="BENCH_scenario_${name}"
    stack_args=()
    case "$stack" in
      socket) stack_args+=(--socket); out+="_socket" ;;
      shards) stack_args+=(--shards=4); out+="_shards4" ;;
    esac
    echo "=== scenario $name on $stack ==="
    if ! "$CLI" scenario "$name" "${stack_args[@]}" "${tick_args[@]}" \
        --out="${out}.json"; then
      echo "FAILED: $name on $stack" >&2
      status=1
    fi
  done
done
exit $status
