#!/usr/bin/env python3
"""Unit tests for check_perf_regression.py (stdlib only).

Runs the gate as a subprocess against synthetic bench JSON and asserts
on the (exit status, output) contract CI depends on:
  0 = within budget, 1 = regression, 2 = unusable input.
Degenerate inputs — truncated JSON, rows missing their config keys or
qps, zero qps, mismatched bench configurations — must exit 2 with a
one-line diagnostic, never a traceback.

Run directly:  python3 tools/test_check_perf_regression.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_perf_regression.py")


def bench(rows, targets=1000, users=100, hardware_threads=None):
    data = {"targets": targets, "users": users, "rows": rows}
    if hardware_threads is not None:
        data["hardware_threads"] = hardware_threads
    return data


def row(mode="batch", threads=4, batch_size=64, cache=True, qps=1000.0,
        p99_us=None):
    r = {"mode": mode, "threads": threads, "batch_size": batch_size,
         "cache": cache, "qps": qps}
    if p99_us is not None:
        r["p99_us"] = p99_us
    return r


def speedup_bench(seq_qps, par_qps, hardware_threads=4):
    """A minimal bench with one sequential and one parallel row."""
    return bench(
        [row(mode="sequential", threads=0, cache=False, qps=seq_qps),
         row(mode="batch_engine", threads=2, cache=False, qps=par_qps)],
        hardware_threads=hardware_threads)


def sharding_bench(qps_by_shards, hardware_threads=8):
    """A minimal BENCH_sharding.json payload."""
    data = {"rows": [{"shards": s, "threads": 8, "queries": 1000,
                      "wall_seconds": 1.0, "qps": q}
                     for s, q in qps_by_shards.items()]}
    if hardware_threads is not None:
        data["hardware_threads"] = hardware_threads
    return data


class GateTest(unittest.TestCase):
    def run_gate(self, baseline, current, extra_args=()):
        """Write both payloads to temp files and run the gate."""
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "baseline.json")
            cur_path = os.path.join(tmp, "current.json")
            for path, payload in ((base_path, baseline), (cur_path, current)):
                with open(path, "w") as f:
                    if isinstance(payload, str):
                        f.write(payload)
                    else:
                        json.dump(payload, f)
            return subprocess.run(
                [sys.executable, GATE, "--baseline", base_path,
                 "--current", cur_path, *extra_args],
                capture_output=True, text=True)

    def assert_clean_exit(self, proc, code):
        self.assertEqual(proc.returncode, code,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
        self.assertNotIn("Traceback", proc.stderr)

    # --- Healthy paths ---------------------------------------------------

    def test_identical_benches_pass(self):
        b = bench([row(threads=t) for t in (1, 2, 4)])
        proc = self.run_gate(b, b)
        self.assert_clean_exit(proc, 0)
        self.assertIn("OK: throughput within budget", proc.stdout)

    def test_uniform_slowdown_fails(self):
        base = bench([row(threads=t, qps=1000.0) for t in (1, 2, 4)])
        cur = bench([row(threads=t, qps=500.0) for t in (1, 2, 4)])
        proc = self.run_gate(base, cur)
        self.assert_clean_exit(proc, 1)
        self.assertIn("FAIL", proc.stderr)

    def test_one_noisy_row_does_not_trip_the_geomean(self):
        base = bench([row(threads=t, qps=1000.0) for t in (1, 2, 4, 8)])
        cur = bench([row(threads=1, qps=700.0)] +
                    [row(threads=t, qps=1000.0) for t in (2, 4, 8)])
        proc = self.run_gate(base, cur)
        self.assert_clean_exit(proc, 0)

    def test_max_drop_is_respected(self):
        base = bench([row(qps=1000.0)])
        cur = bench([row(qps=900.0)])
        self.assert_clean_exit(self.run_gate(base, cur), 0)
        self.assert_clean_exit(
            self.run_gate(base, cur, extra_args=("--max-drop", "0.05")), 1)

    # --- Parallel-speedup floor ------------------------------------------

    def test_parallel_speedup_met_passes(self):
        b = speedup_bench(seq_qps=1000.0, par_qps=1200.0)
        proc = self.run_gate(b, b)
        self.assert_clean_exit(proc, 0)
        self.assertIn("parallel speedup", proc.stdout)
        self.assertIn("ok", proc.stdout)

    def test_parallel_speedup_below_floor_fails(self):
        b = speedup_bench(seq_qps=1000.0, par_qps=1050.0)  # 1.05x < 1.10x
        proc = self.run_gate(b, b)
        self.assert_clean_exit(proc, 1)
        self.assertIn("parallel speedup", proc.stderr)
        self.assertIn("below", proc.stderr)

    def test_parallel_speedup_floor_is_configurable(self):
        b = speedup_bench(seq_qps=1000.0, par_qps=1050.0)
        proc = self.run_gate(b, b,
                             extra_args=("--min-parallel-speedup", "1.0"))
        self.assert_clean_exit(proc, 0)

    def test_speedup_rule_skipped_on_single_core(self):
        b = speedup_bench(seq_qps=1000.0, par_qps=500.0, hardware_threads=1)
        proc = self.run_gate(b, b)
        self.assert_clean_exit(proc, 0)
        self.assertIn("parallel-speedup rule skipped", proc.stdout)

    def test_speedup_rule_skipped_without_hardware_threads(self):
        b = speedup_bench(seq_qps=1000.0, par_qps=500.0,
                          hardware_threads=None)
        proc = self.run_gate(b, b)
        self.assert_clean_exit(proc, 0)
        self.assertIn("parallel-speedup rule skipped", proc.stdout)

    def test_missing_parallel_row_fails_when_rule_active(self):
        b = bench([row(mode="sequential", threads=0, cache=False)],
                  hardware_threads=4)
        proc = self.run_gate(b, b)
        self.assert_clean_exit(proc, 1)
        self.assertIn("no (batch_engine, threads>=2, cache=false) row",
                      proc.stderr)

    # --- Shard-scaling floor ---------------------------------------------

    def run_gate_with_sharding(self, sharding, extra_args=()):
        """Healthy baseline/current pair plus a --sharding file."""
        b = bench([row()])
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "baseline.json")
            cur_path = os.path.join(tmp, "current.json")
            shard_path = os.path.join(tmp, "sharding.json")
            for path, payload in ((base_path, b), (cur_path, b),
                                  (shard_path, sharding)):
                with open(path, "w") as f:
                    if isinstance(payload, str):
                        f.write(payload)
                    else:
                        json.dump(payload, f)
            return subprocess.run(
                [sys.executable, GATE, "--baseline", base_path,
                 "--current", cur_path, "--sharding", shard_path,
                 *extra_args],
                capture_output=True, text=True)

    def test_shard_scaling_met_passes(self):
        proc = self.run_gate_with_sharding(
            sharding_bench({1: 1000.0, 8: 1500.0}))
        self.assert_clean_exit(proc, 0)
        self.assertIn("shard scaling", proc.stdout)
        self.assertIn("ok", proc.stdout)

    def test_shard_scaling_below_floor_fails(self):
        proc = self.run_gate_with_sharding(
            sharding_bench({1: 1000.0, 8: 1050.0}))  # 1.05x < 1.10x
        self.assert_clean_exit(proc, 1)
        self.assertIn("8-shard qps only", proc.stderr)

    def test_shard_scaling_floor_is_configurable(self):
        proc = self.run_gate_with_sharding(
            sharding_bench({1: 1000.0, 8: 1050.0}),
            extra_args=("--shard-scaling-floor", "1.0"))
        self.assert_clean_exit(proc, 0)

    def test_shard_scaling_skipped_on_few_hardware_threads(self):
        proc = self.run_gate_with_sharding(
            sharding_bench({1: 1000.0, 8: 200.0}, hardware_threads=1))
        self.assert_clean_exit(proc, 0)
        self.assertIn("shard-scaling rule skipped", proc.stdout)

    def test_shard_scaling_skipped_without_hardware_threads(self):
        proc = self.run_gate_with_sharding(
            sharding_bench({1: 1000.0, 8: 200.0}, hardware_threads=None))
        self.assert_clean_exit(proc, 0)
        self.assertIn("shard-scaling rule skipped", proc.stdout)

    def test_shard_min_threads_is_configurable(self):
        sharding = sharding_bench({1: 1000.0, 8: 200.0}, hardware_threads=2)
        proc = self.run_gate_with_sharding(
            sharding, extra_args=("--shard-min-threads", "2"))
        self.assert_clean_exit(proc, 1)
        self.assertIn("8-shard qps only", proc.stderr)

    def test_sharding_file_missing_shard_row_exits_2(self):
        proc = self.run_gate_with_sharding(sharding_bench({1: 1000.0}))
        self.assert_clean_exit(proc, 2)
        self.assertIn("no row for shards=8", proc.stderr)

    def test_truncated_sharding_file_exits_2(self):
        proc = self.run_gate_with_sharding('{"rows": [')
        self.assert_clean_exit(proc, 2)
        self.assertIn("cannot read", proc.stderr)

    def test_sharding_zero_qps_exits_2(self):
        proc = self.run_gate_with_sharding(
            sharding_bench({1: 0.0, 8: 1000.0}))
        self.assert_clean_exit(proc, 2)
        self.assertIn("not a positive number", proc.stderr)

    def test_sharding_duplicate_shard_count_exits_2(self):
        sharding = sharding_bench({1: 1000.0, 8: 1500.0})
        sharding["rows"].append({"shards": 8, "qps": 2000.0})
        proc = self.run_gate_with_sharding(sharding)
        self.assert_clean_exit(proc, 2)
        self.assertIn("duplicate shard count", proc.stderr)

    def test_gate_without_sharding_flag_ignores_rule(self):
        b = bench([row()])
        proc = self.run_gate(b, b)
        self.assert_clean_exit(proc, 0)
        self.assertNotIn("shard scaling", proc.stdout)

    # --- Compare mode ----------------------------------------------------

    def test_compare_mode_never_fails(self):
        base = speedup_bench(seq_qps=1000.0, par_qps=500.0)
        cur = bench(
            [row(mode="sequential", threads=0, cache=False, qps=100.0,
                 p99_us=950.5),
             row(mode="batch_engine", threads=2, cache=False, qps=50.0,
                 p99_us=120.0)],
            hardware_threads=4)
        proc = self.run_gate(base, cur, extra_args=("--compare",))
        self.assert_clean_exit(proc, 0)
        self.assertIn("compare mode: report only", proc.stdout)

    def test_compare_mode_prints_p99_columns(self):
        b = bench([row(p99_us=123.4)])
        proc = self.run_gate(b, b, extra_args=("--compare",))
        self.assert_clean_exit(proc, 0)
        self.assertIn("base p99", proc.stdout)
        self.assertIn("123.4", proc.stdout)

    def test_missing_p99_renders_as_dash(self):
        b = bench([row()])  # no p99_us field
        proc = self.run_gate(b, b, extra_args=("--compare",))
        self.assert_clean_exit(proc, 0)
        self.assertIn("-", proc.stdout)

    def test_compare_mode_still_validates_input(self):
        proc = self.run_gate('{"rows": [', bench([row()]),
                             extra_args=("--compare",))
        self.assert_clean_exit(proc, 2)

    # --- Degenerate inputs ----------------------------------------------

    def test_missing_file_exits_2(self):
        with tempfile.TemporaryDirectory() as tmp:
            proc = subprocess.run(
                [sys.executable, GATE,
                 "--baseline", os.path.join(tmp, "nope.json"),
                 "--current", os.path.join(tmp, "nope.json")],
                capture_output=True, text=True)
        self.assert_clean_exit(proc, 2)
        self.assertIn("cannot read", proc.stderr)

    def test_truncated_json_exits_2(self):
        proc = self.run_gate('{"rows": [', bench([row()]))
        self.assert_clean_exit(proc, 2)
        self.assertIn("cannot read", proc.stderr)

    def test_non_object_payload_exits_2(self):
        proc = self.run_gate([1, 2, 3], bench([row()]))
        self.assert_clean_exit(proc, 2)
        self.assertIn("expected a JSON object", proc.stderr)

    def test_empty_rows_exits_2(self):
        proc = self.run_gate(bench([]), bench([row()]))
        self.assert_clean_exit(proc, 2)
        self.assertIn("no rows", proc.stderr)

    def test_row_missing_qps_exits_2(self):
        bad = row()
        del bad["qps"]
        proc = self.run_gate(bench([bad]), bench([row()]))
        self.assert_clean_exit(proc, 2)
        self.assertIn("missing qps", proc.stderr)

    def test_row_missing_config_key_exits_2(self):
        bad = row()
        del bad["threads"]
        proc = self.run_gate(bench([bad]), bench([row()]))
        self.assert_clean_exit(proc, 2)
        self.assertIn("missing threads", proc.stderr)

    def test_non_numeric_qps_exits_2(self):
        proc = self.run_gate(bench([row(qps="fast")]), bench([row()]))
        self.assert_clean_exit(proc, 2)
        self.assertIn("qps is not a number", proc.stderr)

    def test_zero_qps_exits_2(self):
        proc = self.run_gate(bench([row(qps=0.0)]), bench([row()]))
        self.assert_clean_exit(proc, 2)
        self.assertIn("non-positive qps", proc.stderr)

    def test_duplicate_configuration_exits_2(self):
        proc = self.run_gate(bench([row(), row(qps=2000.0)]),
                             bench([row()]))
        self.assert_clean_exit(proc, 2)
        self.assertIn("duplicate configuration", proc.stderr)

    def test_disjoint_configurations_exit_2(self):
        base = bench([row(mode="batch")])
        cur = bench([row(mode="sequential")])
        proc = self.run_gate(base, cur)
        self.assert_clean_exit(proc, 2)
        self.assertIn("no comparable rows", proc.stderr)

    def test_partially_mismatched_rows_warn_but_compare(self):
        base = bench([row(threads=1), row(threads=2)])
        cur = bench([row(threads=1), row(threads=4)])
        proc = self.run_gate(base, cur)
        self.assert_clean_exit(proc, 0)
        self.assertIn("baseline-only configuration skipped", proc.stderr)
        self.assertIn("current-only configuration skipped", proc.stderr)

    def test_workload_mismatch_exits_2(self):
        proc = self.run_gate(bench([row()], targets=1000),
                             bench([row()], targets=5000))
        self.assert_clean_exit(proc, 2)
        self.assertIn("workload mismatch", proc.stderr)


def metrics_export(samples):
    """A metrics-export JSON payload ({name: value} or
    {name: [(labels, value), ...]}) in the ExportJson shape."""
    metrics = []
    for name, value in samples.items():
        entries = value if isinstance(value, list) else [({}, value)]
        metrics.append({
            "name": name, "type": "counter", "help": "t.",
            "samples": [{"labels": labels, "value": v}
                        for labels, v in entries]})
    return {"metrics": metrics}


class StorageMetricsCompareTest(GateTest):
    """The --compare casper_storage_* table fed by --baseline-metrics /
    --current-metrics. Always informational: bad metrics files must
    never change the exit status."""

    def run_compare_with_metrics(self, base_metrics, cur_metrics):
        b = bench([row()])
        with tempfile.TemporaryDirectory() as tmp:
            paths = {}
            for stem, payload in (("base_m", base_metrics),
                                  ("cur_m", cur_metrics)):
                path = os.path.join(tmp, stem + ".json")
                with open(path, "w") as f:
                    if isinstance(payload, str):
                        f.write(payload)
                    else:
                        json.dump(payload, f)
                paths[stem] = path
            base_path = os.path.join(tmp, "baseline.json")
            cur_path = os.path.join(tmp, "current.json")
            for path in (base_path, cur_path):
                with open(path, "w") as f:
                    json.dump(b, f)
            return subprocess.run(
                [sys.executable, GATE, "--baseline", base_path,
                 "--current", cur_path, "--compare",
                 "--baseline-metrics", paths["base_m"],
                 "--current-metrics", paths["cur_m"]],
                capture_output=True, text=True)

    def test_storage_samples_print_side_by_side(self):
        base = metrics_export({"casper_storage_pool_hits_total": 10,
                               "casper_storage_pool_misses_total": 90})
        cur = metrics_export({"casper_storage_pool_hits_total": 75,
                              "casper_storage_pool_misses_total": 25})
        proc = self.run_compare_with_metrics(base, cur)
        self.assert_clean_exit(proc, 0)
        self.assertIn("casper_storage_pool_hits_total", proc.stdout)
        self.assertIn("10", proc.stdout)
        self.assertIn("75", proc.stdout)
        self.assertIn("compare mode", proc.stdout)

    def test_non_storage_metrics_are_filtered_out(self):
        m = metrics_export({"casper_storage_pool_hits_total": 1,
                            "casper_requests_total": 42})
        proc = self.run_compare_with_metrics(m, m)
        self.assert_clean_exit(proc, 0)
        self.assertIn("casper_storage_pool_hits_total", proc.stdout)
        self.assertNotIn("casper_requests_total", proc.stdout)

    def test_sample_missing_on_one_side_renders_dash(self):
        base = metrics_export({"casper_storage_pool_hits_total": 5})
        cur = metrics_export(
            {"casper_storage_pool_hits_total": 5,
             "casper_storage_checksum_failures_total": 1})
        proc = self.run_compare_with_metrics(base, cur)
        self.assert_clean_exit(proc, 0)
        for line in proc.stdout.splitlines():
            if "checksum_failures" in line:
                self.assertIn("-", line)
                break
        else:
            self.fail(f"no checksum_failures row in: {proc.stdout}")

    def test_labeled_samples_match_by_labels(self):
        base = metrics_export({"casper_storage_pages_read_total":
                               [({"tier": "a"}, 3), ({"tier": "b"}, 4)]})
        cur = metrics_export({"casper_storage_pages_read_total":
                              [({"tier": "b"}, 9)]})
        proc = self.run_compare_with_metrics(base, cur)
        self.assert_clean_exit(proc, 0)
        self.assertIn("tier=a", proc.stdout)
        self.assertIn("tier=b", proc.stdout)

    def test_malformed_metrics_file_warns_but_exits_0(self):
        good = metrics_export({"casper_storage_pool_hits_total": 1})
        proc = self.run_compare_with_metrics('{"metrics": [', good)
        self.assert_clean_exit(proc, 0)
        self.assertIn("cannot read metrics file", proc.stderr)
        self.assertIn("compare mode", proc.stdout)

    def test_wrong_shape_metrics_file_warns_but_exits_0(self):
        good = metrics_export({"casper_storage_pool_hits_total": 1})
        proc = self.run_compare_with_metrics({"rows": []}, good)
        self.assert_clean_exit(proc, 0)
        self.assertIn("skipping storage comparison", proc.stderr)

    def test_non_numeric_sample_values_are_skipped(self):
        bad = {"metrics": [{
            "name": "casper_storage_pool_hits_total", "type": "counter",
            "samples": [{"labels": {}, "value": "many"}]}]}
        good = metrics_export({"casper_storage_pool_hits_total": 2})
        proc = self.run_compare_with_metrics(bad, good)
        self.assert_clean_exit(proc, 0)
        for line in proc.stdout.splitlines():
            if "pool_hits" in line:
                self.assertIn("-", line)
                self.assertIn("2", line)

    def test_no_storage_samples_notes_empty_table(self):
        empty = metrics_export({})
        proc = self.run_compare_with_metrics(empty, empty)
        self.assert_clean_exit(proc, 0)
        self.assertIn("no casper_storage_* samples", proc.stdout)

    def test_compare_without_metrics_flags_prints_no_table(self):
        b = bench([row()])
        proc = self.run_gate(b, b, extra_args=("--compare",))
        self.assert_clean_exit(proc, 0)
        self.assertNotIn("storage metric", proc.stdout)


def scenario_report(name, qps=500.0, p95=120.0, violations=0, passed=True):
    """A minimal BENCH_scenario_<name>.json in the casper_cli shape."""
    return {
        "scenario": name, "stack": "facade", "qps": qps,
        "latency_micros": {"count": 100, "mean": 80.0, "p50": 60.0,
                           "p95": p95, "p99": 2 * p95, "max": 3 * p95},
        "oracles": {"enabled": True, "nn_checks": 30, "nn_violations":
                    violations, "region_checks": 5, "region_violations": 0,
                    "continuous_checks": 10, "continuous_violations": 0,
                    "skipped": 0},
        "passed": passed,
    }


class ScenarioCompareTest(GateTest):
    """The --compare scenario table fed by --scenarios-baseline /
    --scenarios-current. Informational only: scenario files never gate,
    and bad files only warn."""

    def run_compare_with_scenarios(self, base_reports, cur_reports):
        b = bench([row()])
        with tempfile.TemporaryDirectory() as tmp:
            def dump(stem, payload):
                path = os.path.join(tmp, stem + ".json")
                with open(path, "w") as f:
                    if isinstance(payload, str):
                        f.write(payload)
                    else:
                        json.dump(payload, f)
                return path

            base_paths = [dump(f"base_s{i}", p)
                          for i, p in enumerate(base_reports)]
            cur_paths = [dump(f"cur_s{i}", p)
                         for i, p in enumerate(cur_reports)]
            base_path = dump("baseline", b)
            cur_path = dump("current", b)
            cmd = [sys.executable, GATE, "--baseline", base_path,
                   "--current", cur_path, "--compare"]
            if base_paths:
                cmd += ["--scenarios-baseline", *base_paths]
            if cur_paths:
                cmd += ["--scenarios-current", *cur_paths]
            return subprocess.run(cmd, capture_output=True, text=True)

    def test_scenarios_print_side_by_side(self):
        base = [scenario_report("rush_hour", qps=400.0),
                scenario_report("flash_crowd", qps=300.0)]
        cur = [scenario_report("rush_hour", qps=440.0),
               scenario_report("flash_crowd", qps=290.0)]
        proc = self.run_compare_with_scenarios(base, cur)
        self.assert_clean_exit(proc, 0)
        self.assertIn("rush_hour", proc.stdout)
        self.assertIn("flash_crowd", proc.stdout)
        self.assertIn("400.0", proc.stdout)
        self.assertIn("440.0", proc.stdout)
        self.assertIn("never gates", proc.stdout)

    def test_scenario_violations_never_gate_compare(self):
        base = [scenario_report("churn_chaos")]
        cur = [scenario_report("churn_chaos", violations=7, passed=False)]
        proc = self.run_compare_with_scenarios(base, cur)
        self.assert_clean_exit(proc, 0)
        self.assertIn("7", proc.stdout)
        self.assertIn("NO", proc.stdout)

    def test_scenario_missing_on_one_side_renders_dash(self):
        proc = self.run_compare_with_scenarios(
            [scenario_report("rush_hour")],
            [scenario_report("rush_hour"),
             scenario_report("continuous_storm")])
        self.assert_clean_exit(proc, 0)
        for line in proc.stdout.splitlines():
            if "continuous_storm" in line:
                self.assertIn("-", line)
                break
        else:
            self.fail(f"no continuous_storm row in: {proc.stdout}")

    def test_malformed_scenario_file_warns_but_exits_0(self):
        proc = self.run_compare_with_scenarios(
            ['{"scenario": ', scenario_report("rush_hour")],
            [scenario_report("rush_hour")])
        self.assert_clean_exit(proc, 0)
        self.assertIn("cannot read scenario file", proc.stderr)
        self.assertIn("rush_hour", proc.stdout)

    def test_scenario_file_without_name_is_skipped(self):
        proc = self.run_compare_with_scenarios(
            [{"qps": 1.0}], [scenario_report("rush_hour")])
        self.assert_clean_exit(proc, 0)
        self.assertIn("no 'scenario' key", proc.stderr)

    def test_compare_without_scenario_flags_prints_no_table(self):
        b = bench([row()])
        proc = self.run_gate(b, b, extra_args=("--compare",))
        self.assert_clean_exit(proc, 0)
        self.assertNotIn("scenario table", proc.stdout)


if __name__ == "__main__":
    unittest.main()
