// casper_cli — an interactive (or scripted) shell around CasperService.
//
// Reads one command per line from stdin and prints results to stdout;
// built for quick exploration, demos, and end-to-end scripting. Run
// `help` for the command list, or pipe a script:
//
//   printf 'targets 100 7\nregister 1 5 0 .5 .5\n...' | casper_cli

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/casper/batch_query_engine.h"
#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"
#include "src/obs/exporters.h"
#include "src/scenarios/scenario.h"
#include "src/server/query_server.h"
#include "src/sharding/shard_endpoint.h"
#include "src/sharding/shard_router.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_storage.h"
#include "src/transport/fault_injection.h"
#include "src/transport/listener.h"
#include "src/transport/server_endpoint.h"
#include "src/transport/socket_channel.h"

namespace casper {
namespace {

/// Chaos knobs, all off by default. `--chaos-drop` and
/// `--chaos-corrupt` are split evenly between the request and response
/// directions; any non-zero knob wraps the tier channel in a seeded
/// transport::FaultInjectingChannel, so a whole interactive session
/// (or scripted pipe) runs against a misbehaving transport.
struct ChaosFlags {
  double drop = 0.0;
  double corrupt = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  unsigned long long delay_micros = 200;
  unsigned long long seed = 0xC4A05;

  bool enabled() const {
    return drop > 0.0 || corrupt > 0.0 || duplicate > 0.0 || delay > 0.0;
  }

  transport::FaultProfile ToProfile() const {
    transport::FaultProfile profile;
    profile.drop_request_rate = drop / 2.0;
    profile.drop_response_rate = drop / 2.0;
    profile.corrupt_request_rate = corrupt / 2.0;
    profile.corrupt_response_rate = corrupt / 2.0;
    profile.duplicate_rate = duplicate;
    profile.delay_rate = delay;
    profile.delay_micros = delay_micros;
    return profile;
  }
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [--shards=N] [--connect=ADDR] [--idempotency-window=N]\n"
      "          [--chaos-drop=R] [--chaos-corrupt=R]\n"
      "          [--chaos-dup=R] [--chaos-delay=R] "
      "[--chaos-delay-micros=N]\n"
      "          [--chaos-seed=N]\n"
      "       %s scenario <name> [--socket | --shards=N | "
      "--connect=ADDR]\n"
      "          [--users=N] [--targets=N] [--ticks=N] "
      "[--queries-per-tick=N]\n"
      "          [--threads=N] [--seed=N] [--no-oracles] "
      "[--oracle-interval=N]\n"
      "          [--oracle-samples=N] [--out=PATH] [--chaos-*]\n"
      "       %s serve <addr> [--shards=N] [--targets=N "
      "[--targets-seed=S]]\n"
      "          [--idempotency-window=N] [--net-workers=N] "
      "[--net-max-conns=N]\n"
      "          [--net-watermark=N] [--net-max-rps=N] "
      "[--net-max-bytes=N]\n"
      "          [--net-ban-seconds=F] [--net-idle-timeout=F]\n"
      "  --shards=N replaces the single server tier with N QueryServer\n"
      "  shards behind a sharding::ShardRouter; every query, upsert, and\n"
      "  snapshot fans out over per-shard resilient channels (see the\n"
      "  `shards` and `rebalance` commands).\n"
      "  --connect=ADDR sends the anonymizer's wire traffic to a remote\n"
      "  `%s serve` process over a real socket (`unix:/path` or\n"
      "  `host:port`) instead of the in-process server; chaos flags\n"
      "  compose around the socket channel.\n"
      "  `scenario <name>` replays a named city-scale workload\n"
      "  (rush_hour, flash_crowd, continuous_storm, mixed_profiles,\n"
      "  churn_chaos) with invariant oracles, writing\n"
      "  BENCH_scenario_<name>.json; sizes honor CASPER_BENCH_SCALE and\n"
      "  `scenario list` prints the registry. Exit 1 = invariant\n"
      "  violation.\n"
      "  `serve <addr>` runs the untrusted server tier alone: a\n"
      "  SocketListener bound to <addr>, admission control and DoS\n"
      "  limits per the --net-* flags, SIGINT/SIGTERM drain.\n"
      "  R are per-call fault probabilities in [0, 1]; any non-zero rate\n"
      "  injects deterministic faults (seeded by --chaos-seed) into the\n"
      "  anonymizer<->server channel — or, with --shards, independently\n"
      "  into every shard's channel, so single-shard outages show up as\n"
      "  degraded=true partial answers. The `transport` command shows the\n"
      "  breaker state and what was injected.\n",
      argv0, argv0, argv0, argv0);
}

/// Parse one --chaos-* flag; returns false on an unknown flag or an
/// out-of-range value.
bool ParseFlag(const char* arg, ChaosFlags* chaos) {
  double* rate = nullptr;
  if (std::strncmp(arg, "--chaos-drop=", 13) == 0) {
    rate = &chaos->drop;
    arg += 13;
  } else if (std::strncmp(arg, "--chaos-corrupt=", 16) == 0) {
    rate = &chaos->corrupt;
    arg += 16;
  } else if (std::strncmp(arg, "--chaos-dup=", 12) == 0) {
    rate = &chaos->duplicate;
    arg += 12;
  } else if (std::strncmp(arg, "--chaos-delay=", 14) == 0) {
    rate = &chaos->delay;
    arg += 14;
  } else if (std::strncmp(arg, "--chaos-delay-micros=", 21) == 0) {
    return std::sscanf(arg + 21, "%llu", &chaos->delay_micros) == 1;
  } else if (std::strncmp(arg, "--chaos-seed=", 13) == 0) {
    return std::sscanf(arg + 13, "%llu", &chaos->seed) == 1;
  } else {
    return false;
  }
  return std::sscanf(arg, "%lf", rate) == 1 && *rate >= 0.0 && *rate <= 1.0;
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  register <uid> <k> <a_min> <x> <y>   register a mobile user\n"
      "  move <uid> <x> <y>                   location update\n"
      "  profile <uid> <k> <a_min>            change privacy profile\n"
      "  deregister <uid>                     remove a user\n"
      "  targets <n> <seed>                   n uniform public targets\n"
      "  cloak <uid>                          show the cloaked region\n"
      "  nn <uid>                             private NN over public data\n"
      "  knn <uid> <k>                        private k-NN\n"
      "  range <uid> <radius>                 private range query\n"
      "  sync                                 push cloaks to the server\n"
      "  count <x0> <y0> <x1> <y1>            public range count\n"
      "  density <cols> <rows>                expected-density map\n"
      "  buddy <uid>                          private NN over private data\n"
      "  batch <count> <threads>              mixed parallel batch + summary\n"
      "  stats                                anonymizer statistics\n"
      "  transport                            breaker state, replay depth,\n"
      "                                       injected-fault stats\n"
      "  flush                                drain the upsert replay buffer\n"
      "  save <path>                          checkpoint the server tier to\n"
      "                                       <path>.dat/<path>.idx\n"
      "  open <path>                          reopen server state from a\n"
      "                                       saved checkpoint\n"
      "  metrics [json]                       scrape the metrics registry\n"
      "                                       (Prometheus text, or JSON)\n"
      "  shards                               partition map, per-shard\n"
      "                                       counts/breakers (--shards)\n"
      "  rebalance <dir>                      recompute the partition from\n"
      "                                       observed load and hand cells\n"
      "                                       off via checkpoints under\n"
      "                                       <dir> (--shards)\n"
      "  help                                 this text\n"
      "  quit                                 exit\n");
}

volatile sig_atomic_t g_stop = 0;
void StopSignal(int) { g_stop = 1; }

/// `casper_cli serve <addr>`: run the untrusted server tier alone — a
/// QueryServer (or, with --shards, a ShardRouter fleet) behind a
/// SocketListener — until SIGINT/SIGTERM, then drain gracefully. The
/// trusted anonymizer stays in the client process (`--connect=ADDR`),
/// so exact user locations never enter this process at all.
int RunServe(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s serve <addr> [flags]\n", argv[0]);
    return 2;
  }
  const std::string address = argv[2];
  unsigned long long shards = 0;
  unsigned long long targets = 0, targets_seed = 7;
  unsigned long long idempotency_window = 8192;
  transport::ListenerOptions net;
  // A public-facing listener wants DoS limits on by default; keep them
  // generous enough that a single well-behaved anonymizer never trips
  // them (the in-process tier sustains ~1e5 qps; a remote one far
  // less).
  net.max_requests_per_window = 200000;
  net.max_bytes_per_window = 64u << 20;
  for (int i = 3; i < argc; ++i) {
    const char* arg = argv[i];
    unsigned long long* target_ull = nullptr;
    if (std::strncmp(arg, "--shards=", 9) == 0) {
      if (std::sscanf(arg + 9, "%llu", &shards) != 1 || shards < 1 ||
          shards > 256) {
        std::fprintf(stderr, "bad flag: %s (want 1..256 shards)\n", arg);
        return 2;
      }
      continue;
    } else if (std::strncmp(arg, "--targets=", 10) == 0) {
      target_ull = &targets;
      arg += 10;
    } else if (std::strncmp(arg, "--targets-seed=", 15) == 0) {
      target_ull = &targets_seed;
      arg += 15;
    } else if (std::strncmp(arg, "--idempotency-window=", 21) == 0) {
      target_ull = &idempotency_window;
      arg += 21;
    } else if (std::strncmp(arg, "--net-workers=", 14) == 0) {
      unsigned long long v;
      if (std::sscanf(arg + 14, "%llu", &v) != 1 || v < 1 || v > 64) {
        std::fprintf(stderr, "bad flag: %s\n", argv[i]);
        return 2;
      }
      net.worker_threads = static_cast<int>(v);
      continue;
    } else if (std::strncmp(arg, "--net-max-conns=", 16) == 0) {
      unsigned long long v;
      if (std::sscanf(arg + 16, "%llu", &v) != 1 || v < 1) {
        std::fprintf(stderr, "bad flag: %s\n", argv[i]);
        return 2;
      }
      net.max_connections = v;
      continue;
    } else if (std::strncmp(arg, "--net-watermark=", 16) == 0) {
      unsigned long long v;
      if (std::sscanf(arg + 16, "%llu", &v) != 1 || v < 1) {
        std::fprintf(stderr, "bad flag: %s\n", argv[i]);
        return 2;
      }
      net.inbound_queue_watermark = v;
      continue;
    } else if (std::strncmp(arg, "--net-max-rps=", 14) == 0) {
      unsigned long long v;
      if (std::sscanf(arg + 14, "%llu", &v) != 1) {
        std::fprintf(stderr, "bad flag: %s\n", argv[i]);
        return 2;
      }
      net.max_requests_per_window = v;
      continue;
    } else if (std::strncmp(arg, "--net-max-bytes=", 16) == 0) {
      unsigned long long v;
      if (std::sscanf(arg + 16, "%llu", &v) != 1) {
        std::fprintf(stderr, "bad flag: %s\n", argv[i]);
        return 2;
      }
      net.max_bytes_per_window = v;
      continue;
    } else if (std::strncmp(arg, "--net-ban-seconds=", 18) == 0) {
      if (std::sscanf(arg + 18, "%lf", &net.ban_seconds) != 1) {
        std::fprintf(stderr, "bad flag: %s\n", argv[i]);
        return 2;
      }
      continue;
    } else if (std::strncmp(arg, "--net-idle-timeout=", 19) == 0) {
      if (std::sscanf(arg + 19, "%lf", &net.idle_timeout_seconds) != 1) {
        std::fprintf(stderr, "bad flag: %s\n", argv[i]);
        return 2;
      }
      continue;
    } else {
      std::fprintf(stderr, "bad flag: %s\n", argv[i]);
      return 2;
    }
    if (std::sscanf(arg, "%llu", target_ull) != 1) {
      std::fprintf(stderr, "bad flag: %s\n", argv[i]);
      return 2;
    }
  }

  // The managed space; a --connect client derives the same default from
  // its PyramidConfig, so --targets provisioning is reproducible on
  // both sides (the soak test computes its NN oracle locally from the
  // same (n, seed) pair).
  const Rect space = anonymizer::PyramidConfig{}.space;

  std::unique_ptr<server::QueryServer> query_server;
  std::unique_ptr<transport::ServerEndpoint> endpoint;
  std::unique_ptr<sharding::ShardRouter> router;
  std::unique_ptr<sharding::ShardEndpoint> shard_endpoint;
  transport::SocketHandler raw_handler;
  if (shards > 0) {
    sharding::ShardRouterOptions router_options;
    router_options.num_shards = shards;
    router_options.partition_level = 4;
    router_options.space = space;
    router_options.server.idempotency_window = idempotency_window;
    router = std::make_unique<sharding::ShardRouter>(router_options);
    shard_endpoint = std::make_unique<sharding::ShardEndpoint>(router.get());
    raw_handler = [&shard_endpoint](std::string_view request,
                                    const transport::CallContext& context) {
      return shard_endpoint->Handle(request, context);
    };
  } else {
    server::QueryServerOptions server_options;
    server_options.density_extent = space;
    server_options.idempotency_window = idempotency_window;
    query_server = std::make_unique<server::QueryServer>(server_options);
    endpoint = std::make_unique<transport::ServerEndpoint>(query_server.get());
    raw_handler = [&endpoint](std::string_view request,
                              const transport::CallContext& context) {
      return endpoint->Handle(request, context);
    };
  }
  if (targets > 0) {
    Rng target_rng(targets_seed);
    auto generated =
        workload::UniformPublicTargets(targets, space, &target_rng);
    if (router != nullptr) {
      router->SetPublicTargets(generated);
    } else {
      query_server->SetPublicTargets(generated);
    }
  }

  auto listener = transport::SocketListener::Start(
      address, transport::SerializedHandler(std::move(raw_handler)), net);
  if (!listener.ok()) {
    std::fprintf(stderr, "%s\n", listener.status().ToString().c_str());
    return 1;
  }
  signal(SIGINT, StopSignal);
  signal(SIGTERM, StopSignal);
  // The readiness line clients and scripts wait for; flushed so it is
  // visible through a pipe immediately.
  std::printf("serving on %s (%llu shard%s, %llu targets, "
              "idempotency_window=%llu)\n",
              (*listener)->bound_address().c_str(),
              shards > 0 ? shards : 1ull, shards > 1 ? "s" : "", targets,
              idempotency_window);
  std::fflush(stdout);
  while (!g_stop) usleep(100 * 1000);
  (*listener)->Shutdown();
  const transport::ListenerStats s = (*listener)->stats();
  std::printf("drained: accepted=%llu frames=%llu shed=%llu "
              "rate_limited=%llu bans=%llu frame_errors=%llu\n",
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.frames),
              static_cast<unsigned long long>(s.shed),
              static_cast<unsigned long long>(s.rate_limited),
              static_cast<unsigned long long>(s.bans),
              static_cast<unsigned long long>(s.frame_errors));
  return 0;
}

const char* BreakerStateName(transport::BreakerState state) {
  switch (state) {
    case transport::BreakerState::kClosed:
      return "closed";
    case transport::BreakerState::kOpen:
      return "open";
    case transport::BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

/// Scenario sizes honor CASPER_BENCH_SCALE the way the benches do:
/// defaults are multiplied by the scale, explicit flags are absolute.
size_t ScenarioScaled(size_t n) {
  static const double scale = [] {
    const char* env = std::getenv("CASPER_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  const auto v = static_cast<size_t>(static_cast<double>(n) * scale);
  return v > 0 ? v : 1;
}

/// `casper_cli scenario <name>`: replay one named city-scale scenario
/// against the chosen stack and write its BENCH_scenario_<name>.json.
/// Exit 0 = ran clean, 1 = an invariant oracle caught a violation,
/// 2 = usage error, 3 = setup failure.
int RunScenarioCommand(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s scenario <name> [flags]\n", argv[0]);
    return 2;
  }
  const std::string name = argv[2];
  if (name == "list") {
    for (const std::string& n : scenarios::ScenarioNames()) {
      auto script = scenarios::ScriptFor(n);
      std::printf("%-18s %s\n", n.c_str(),
                  script.ok() ? script->description.c_str() : "");
    }
    return 0;
  }

  scenarios::ScenarioOptions options;
  options.users = ScenarioScaled(options.users);
  options.targets = ScenarioScaled(options.targets);
  options.queries_per_tick = ScenarioScaled(options.queries_per_tick);
  options.out_path = "BENCH_scenario_" + name + ".json";

  ChaosFlags chaos;
  unsigned long long value = 0;
  for (int i = 3; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--users=", 8) == 0 &&
        std::sscanf(arg + 8, "%llu", &value) == 1 && value > 0) {
      options.users = value;
    } else if (std::strncmp(arg, "--targets=", 10) == 0 &&
               std::sscanf(arg + 10, "%llu", &value) == 1 && value > 0) {
      options.targets = value;
    } else if (std::strncmp(arg, "--ticks=", 8) == 0 &&
               std::sscanf(arg + 8, "%llu", &value) == 1 && value > 0) {
      options.ticks = value;
    } else if (std::strncmp(arg, "--queries-per-tick=", 19) == 0 &&
               std::sscanf(arg + 19, "%llu", &value) == 1) {
      options.queries_per_tick = value;
    } else if (std::strncmp(arg, "--threads=", 10) == 0 &&
               std::sscanf(arg + 10, "%llu", &value) == 1 && value > 0) {
      options.threads = value;
    } else if (std::strncmp(arg, "--seed=", 7) == 0 &&
               std::sscanf(arg + 7, "%llu", &value) == 1) {
      options.seed = value;
    } else if (std::strncmp(arg, "--oracle-interval=", 18) == 0 &&
               std::sscanf(arg + 18, "%llu", &value) == 1 && value > 0) {
      options.oracle_interval = value;
    } else if (std::strncmp(arg, "--oracle-samples=", 17) == 0 &&
               std::sscanf(arg + 17, "%llu", &value) == 1) {
      options.oracle_samples = value;
    } else if (std::strcmp(arg, "--no-oracles") == 0) {
      options.oracles = false;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      options.out_path = arg + 6;
    } else if (std::strcmp(arg, "--socket") == 0) {
      options.stack.kind = scenarios::StackKind::kSocket;
    } else if (std::strncmp(arg, "--shards=", 9) == 0 &&
               std::sscanf(arg + 9, "%llu", &value) == 1 && value >= 1 &&
               value <= 256) {
      options.stack.kind = scenarios::StackKind::kShards;
      options.stack.shards = value;
    } else if (std::strncmp(arg, "--connect=", 10) == 0 &&
               arg[10] != '\0') {
      options.stack.kind = scenarios::StackKind::kConnect;
      options.stack.connect = arg + 10;
    } else if (ParseFlag(arg, &chaos)) {
      // Accumulated below.
    } else {
      std::fprintf(stderr, "bad flag: %s\n", arg);
      return 2;
    }
  }
  if (chaos.enabled()) {
    options.stack.chaos = chaos.ToProfile();
    options.stack.chaos_seed = chaos.seed;
  }

  auto script = scenarios::ScriptFor(name);
  if (!script.ok()) {
    std::fprintf(stderr, "%s (try `%s scenario list`)\n",
                 script.status().message().c_str(), argv[0]);
    return 2;
  }

  std::printf("scenario %s: %s\n", name.c_str(),
              script->description.c_str());
  auto report = scenarios::RunScenario(*script, options);
  if (!report.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 report.status().message().c_str());
    return 3;
  }
  std::printf(
      "stack=%s users=%zu targets=%zu ticks=%zu\n"
      "queries: total=%llu ok=%llu errors=%llu degraded=%llu shed=%llu "
      "(%.0f qps)\n"
      "latency_micros: p50=%.1f p95=%.1f p99=%.1f\n"
      "updates: applied=%zu dropped=%zu  zero_progress_fallbacks=%llu\n"
      "continuous: queries=%zu evaluations=%llu reuses=%llu\n"
      "oracles: nn=%llu/%llu region=%llu/%llu continuous=%llu/%llu "
      "skipped=%llu\n"
      "report: %s\n"
      "%s\n",
      report->stack.c_str(), report->users, report->targets, report->ticks,
      static_cast<unsigned long long>(report->queries_total),
      static_cast<unsigned long long>(report->queries_ok),
      static_cast<unsigned long long>(report->queries_error),
      static_cast<unsigned long long>(report->queries_degraded),
      static_cast<unsigned long long>(report->queries_shed), report->qps,
      report->latency_micros.p50, report->latency_micros.p95,
      report->latency_micros.p99, report->updates.applied,
      report->updates.dropped,
      static_cast<unsigned long long>(report->zero_progress_fallbacks),
      report->continuous_queries,
      static_cast<unsigned long long>(report->continuous.evaluations),
      static_cast<unsigned long long>(report->continuous.reuses),
      static_cast<unsigned long long>(report->oracles.nn_violations),
      static_cast<unsigned long long>(report->oracles.nn_checks),
      static_cast<unsigned long long>(report->oracles.region_violations),
      static_cast<unsigned long long>(report->oracles.region_checks),
      static_cast<unsigned long long>(report->oracles.continuous_violations),
      static_cast<unsigned long long>(report->oracles.continuous_checks),
      static_cast<unsigned long long>(report->oracles.skipped),
      options.out_path.c_str(),
      report->Passed() ? "PASSED" : "FAILED: invariant violations");
  return report->Passed() ? 0 : 1;
}

int Run(int argc, char** argv) {
  ChaosFlags chaos;
  unsigned long long shards = 0;  // 0 = classic single-server tier.
  std::string connect;            // Empty = in-process server tier.
  unsigned long long idempotency_window = 8192;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(argv[0]);
      return 0;
    }
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      if (std::sscanf(argv[i] + 9, "%llu", &shards) != 1 || shards < 1 ||
          shards > 256) {
        std::fprintf(stderr, "bad flag: %s (want 1..256 shards)\n", argv[i]);
        PrintUsage(argv[0]);
        return 2;
      }
      continue;
    }
    if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      connect = argv[i] + 10;
      if (connect.empty()) {
        std::fprintf(stderr, "bad flag: %s (want an address)\n", argv[i]);
        return 2;
      }
      continue;
    }
    if (std::strncmp(argv[i], "--idempotency-window=", 21) == 0) {
      if (std::sscanf(argv[i] + 21, "%llu", &idempotency_window) != 1) {
        std::fprintf(stderr, "bad flag: %s\n", argv[i]);
        return 2;
      }
      continue;
    }
    if (!ParseFlag(argv[i], &chaos)) {
      std::fprintf(stderr, "bad flag: %s\n", argv[i]);
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (!connect.empty() && shards > 0) {
    std::fprintf(stderr,
                 "--connect and --shards are exclusive: sharding lives "
                 "server-side (`casper_cli serve <addr> --shards=N`)\n");
    return 2;
  }

  CasperOptions options;
  options.pyramid.height = 8;
  options.server_idempotency_window = idempotency_window;
  transport::FaultInjectingChannel* fault = nullptr;
  transport::SocketChannel* socket = nullptr;
  std::vector<transport::FaultInjectingChannel*> shard_faults;
  const transport::FaultProfile profile = chaos.ToProfile();

  // Sharded mode: the service's wire traffic is redirected from its
  // in-process server to a ShardRouter fleet. The router and its wire
  // front must outlive the service, whose resilient client holds the
  // returned channel.
  std::unique_ptr<sharding::ShardRouter> router;
  std::unique_ptr<sharding::ShardEndpoint> shard_endpoint;
  if (shards > 0) {
    sharding::ShardRouterOptions router_options;
    router_options.num_shards = shards;
    router_options.partition_level = 4;
    router_options.space = options.pyramid.space;
    if (chaos.enabled()) {
      // Chaos composes per shard: each shard's channel gets its own
      // deterministic fault stream, so one shard can trip its breaker
      // while the rest keep answering (degraded=true partial answers).
      router_options.channel_decorator =
          [&shard_faults, &profile, &chaos](
              transport::Channel* inner,
              size_t shard) -> std::unique_ptr<transport::Channel> {
        auto owned = std::make_unique<transport::FaultInjectingChannel>(
            inner, profile, chaos.seed + shard);
        shard_faults.push_back(owned.get());
        return owned;
      };
    }
    router = std::make_unique<sharding::ShardRouter>(router_options);
    shard_endpoint = std::make_unique<sharding::ShardEndpoint>(router.get());
    options.channel_decorator =
        [&shard_endpoint](
            transport::Channel*) -> std::unique_ptr<transport::Channel> {
      return std::make_unique<sharding::ShardChannel>(shard_endpoint.get());
    };
  } else if (!connect.empty()) {
    // Remote server tier: replace the in-process direct channel with a
    // real socket channel; chaos (when enabled) composes *around* the
    // socket, exactly as it wrapped the direct channel.
    options.channel_decorator =
        [&socket, &fault, &profile, &chaos, &connect](
            transport::Channel*) -> std::unique_ptr<transport::Channel> {
      transport::SocketChannelOptions socket_options;
      socket_options.connect_timeout_seconds = 0.5;
      socket_options.io_timeout_seconds = 2.0;
      auto owned =
          std::make_unique<transport::SocketChannel>(connect, socket_options);
      socket = owned.get();
      if (!chaos.enabled()) return owned;
      auto wrapped = std::make_unique<transport::FaultInjectingChannel>(
          owned.get(), profile, chaos.seed);
      fault = wrapped.get();
      // The fault wrapper does not own its inner channel; park the
      // socket on a composite so both live as long as the client.
      struct Composite : transport::Channel {
        std::unique_ptr<transport::SocketChannel> inner;
        std::unique_ptr<transport::FaultInjectingChannel> outer;
        Result<std::string> Call(std::string_view request,
                                 const transport::CallContext& context)
            override {
          return outer->Call(request, context);
        }
      };
      auto composite = std::make_unique<Composite>();
      composite->inner = std::move(owned);
      composite->outer = std::move(wrapped);
      return composite;
    };
  } else if (chaos.enabled()) {
    options.channel_decorator =
        [&fault, &profile, &chaos](
            transport::Channel* inner) -> std::unique_ptr<transport::Channel> {
      auto owned = std::make_unique<transport::FaultInjectingChannel>(
          inner, profile, chaos.seed);
      fault = owned.get();
      return owned;
    };
  }
  CasperService service(options);
  if (!connect.empty()) {
    std::printf("connected to %s (remote server tier)\n", connect.c_str());
  }
  if (shards > 0) {
    std::printf("sharding: %llu shards over %s\n", shards,
                router->partition().ToString().c_str());
  }
  if (chaos.enabled()) {
    std::printf("chaos: combined fault rate %.3f, seed %llu%s\n",
                profile.CombinedRate(), chaos.seed,
                shards > 0 ? " (independent per shard)" : "");
  }
  Rng rng(1);
  // Registered uids, in registration order — the batch command cycles
  // through them (the service itself never exposes an id roster).
  std::vector<unsigned long long> uids;

  char line[512];
  std::printf("casper> ");
  std::fflush(stdout);
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    char cmd[32] = {0};
    if (std::sscanf(line, "%31s", cmd) != 1) {
      std::printf("casper> ");
      std::fflush(stdout);
      continue;
    }
    const std::string c = cmd;

    if (c == "quit" || c == "exit") {
      break;
    } else if (c == "help") {
      PrintHelp();
    } else if (c == "register") {
      unsigned long long uid;
      unsigned k;
      double a_min, x, y;
      if (std::sscanf(line, "%*s %llu %u %lf %lf %lf", &uid, &k, &a_min, &x,
                      &y) != 5) {
        std::printf("usage: register <uid> <k> <a_min> <x> <y>\n");
      } else {
        const Status st =
            service.RegisterUser(uid, {k, a_min}, Point{x, y});
        if (st.ok()) uids.push_back(uid);
        std::printf("%s\n", st.ToString().c_str());
      }
    } else if (c == "move") {
      unsigned long long uid;
      double x, y;
      if (std::sscanf(line, "%*s %llu %lf %lf", &uid, &x, &y) != 3) {
        std::printf("usage: move <uid> <x> <y>\n");
      } else {
        std::printf("%s\n",
                    service.UpdateUserLocation(uid, Point{x, y})
                        .ToString()
                        .c_str());
      }
    } else if (c == "profile") {
      unsigned long long uid;
      unsigned k;
      double a_min;
      if (std::sscanf(line, "%*s %llu %u %lf", &uid, &k, &a_min) != 3) {
        std::printf("usage: profile <uid> <k> <a_min>\n");
      } else {
        std::printf("%s\n",
                    service.UpdateUserProfile(uid, {k, a_min})
                        .ToString()
                        .c_str());
      }
    } else if (c == "deregister") {
      unsigned long long uid;
      if (std::sscanf(line, "%*s %llu", &uid) != 1) {
        std::printf("usage: deregister <uid>\n");
      } else {
        const Status st = service.DeregisterUser(uid);
        if (st.ok()) std::erase(uids, uid);
        std::printf("%s\n", st.ToString().c_str());
      }
    } else if (c == "targets") {
      unsigned long long n, seed;
      if (std::sscanf(line, "%*s %llu %llu", &n, &seed) != 2) {
        std::printf("usage: targets <n> <seed>\n");
      } else {
        Rng target_rng(seed);
        auto generated = workload::UniformPublicTargets(
            n, service.options().pyramid.space, &target_rng);
        if (!connect.empty()) {
          // Public targets are server-side provisioning, not wire
          // traffic; a remote tier provisions its own on startup.
          std::printf("targets is server-side provisioning; start the "
                      "remote tier with `casper_cli serve <addr> "
                      "--targets=%llu --targets-seed=%llu`\n",
                      n, seed);
        } else if (router != nullptr) {
          // Server-side provisioning goes to the fleet the wire traffic
          // reaches, not the bypassed in-process server.
          router->SetPublicTargets(generated);
          std::printf("OK: %llu public targets across %zu shards\n", n,
                      router->num_shards());
        } else {
          service.SetPublicTargets(generated);
          std::printf("OK: %llu public targets\n", n);
        }
      }
    } else if (c == "cloak") {
      unsigned long long uid;
      if (std::sscanf(line, "%*s %llu", &uid) != 1) {
        std::printf("usage: cloak <uid>\n");
      } else {
        auto result = service.anonymizer_tier().Cloak(uid);
        if (!result.ok()) {
          std::printf("%s\n", result.status().ToString().c_str());
        } else {
          std::printf("region=%s users=%llu levels=%d merged=%d\n",
                      result->region.ToString().c_str(),
                      static_cast<unsigned long long>(
                          result->users_in_region),
                      result->levels_visited,
                      result->merged_with_neighbor ? 1 : 0);
        }
      }
    } else if (c == "nn") {
      unsigned long long uid;
      if (std::sscanf(line, "%*s %llu", &uid) != 1) {
        std::printf("usage: nn <uid>\n");
      } else {
        auto r = service.QueryNearestPublic(uid);
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
        } else {
          std::printf("cloak=%s candidates=%zu exact=target:%llu at "
                      "(%g, %g) total_us=%.1f\n",
                      r->cloak.region.ToString().c_str(),
                      r->server_answer.size(),
                      static_cast<unsigned long long>(r->exact.id),
                      r->exact.position.x, r->exact.position.y,
                      r->timing.Total() * 1e6);
        }
      }
    } else if (c == "knn") {
      unsigned long long uid, k;
      if (std::sscanf(line, "%*s %llu %llu", &uid, &k) != 2) {
        std::printf("usage: knn <uid> <k>\n");
      } else {
        auto r = service.QueryKNearestPublic(uid, k);
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
        } else {
          std::printf("candidates=%zu exact=[", r->server_answer.size());
          for (size_t i = 0; i < r->exact.size(); ++i) {
            std::printf("%s%llu", i == 0 ? "" : ",",
                        static_cast<unsigned long long>(r->exact[i].id));
          }
          std::printf("]\n");
        }
      }
    } else if (c == "range") {
      unsigned long long uid;
      double radius;
      if (std::sscanf(line, "%*s %llu %lf", &uid, &radius) != 2) {
        std::printf("usage: range <uid> <radius>\n");
      } else {
        auto r = service.QueryRangePublic(uid, radius);
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
        } else {
          std::printf("candidates=%zu window=%s\n", r->candidates.size(),
                      r->search_window.ToString().c_str());
        }
      }
    } else if (c == "sync") {
      std::printf("%s\n", service.SyncPrivateData().ToString().c_str());
    } else if (c == "count") {
      double x0, y0, x1, y1;
      if (std::sscanf(line, "%*s %lf %lf %lf %lf", &x0, &y0, &x1, &y1) != 4) {
        std::printf("usage: count <x0> <y0> <x1> <y1>\n");
      } else {
        auto r = service.QueryPublicRange(Rect(x0, y0, x1, y1));
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
        } else {
          std::printf("certain=%zu expected=%.2f possible=%zu\n", r->certain,
                      r->expected, r->possible);
        }
      }
    } else if (c == "density") {
      int cols, rows;
      if (std::sscanf(line, "%*s %d %d", &cols, &rows) != 2) {
        std::printf("usage: density <cols> <rows>\n");
      } else {
        auto r = service.QueryDensity(cols, rows);
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
        } else {
          for (int row = rows - 1; row >= 0; --row) {
            for (int col = 0; col < cols; ++col) {
              std::printf("%8.2f", r->At(col, row));
            }
            std::printf("\n");
          }
          std::printf("total=%.2f\n", r->Total());
        }
      }
    } else if (c == "buddy") {
      unsigned long long uid;
      if (std::sscanf(line, "%*s %llu", &uid) != 1) {
        std::printf("usage: buddy <uid>\n");
      } else {
        auto r = service.QueryNearestPrivate(uid);
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
        } else {
          auto resolved = service.ResolvePseudonym(r->best.id);
          std::printf("candidates=%zu best=pseudonym:%016llx (user %llu) "
                      "region=%s\n",
                      r->server_answer.size(),
                      static_cast<unsigned long long>(r->best.id),
                      static_cast<unsigned long long>(
                          resolved.ok() ? *resolved : 0),
                      r->best.region.ToString().c_str());
        }
      }
    } else if (c == "batch") {
      unsigned long long count, threads;
      if (std::sscanf(line, "%*s %llu %llu", &count, &threads) != 2 ||
          count == 0 || threads == 0) {
        std::printf("usage: batch <count> <threads>\n");
      } else if (uids.empty()) {
        std::printf("batch needs at least one registered user\n");
      } else {
        // A mixed workload cycling through every query kind, funneled
        // through the unified QueryRequest dispatch by the engine.
        const Rect space = service.options().pyramid.space;
        const double radius = space.width() * 0.01;
        std::vector<server::BatchQueryRequest> requests;
        requests.reserve(count);
        for (unsigned long long i = 0; i < count; ++i) {
          const unsigned long long uid = uids[i % uids.size()];
          switch (i % 7) {
            case 0:
              requests.push_back(
                  server::BatchQueryRequest::NearestPublic(uid));
              break;
            case 1:
              requests.push_back(
                  server::BatchQueryRequest::KNearestPublic(uid, 5));
              break;
            case 2:
              requests.push_back(
                  server::BatchQueryRequest::RangePublic(uid, radius));
              break;
            case 3:
              requests.push_back(
                  server::BatchQueryRequest::NearestPrivate(uid));
              break;
            case 4:
              requests.push_back(
                  server::BatchQueryRequest::PublicNearest(rng.PointIn(space)));
              break;
            case 5: {
              const Point corner = rng.PointIn(space);
              requests.push_back(server::BatchQueryRequest::PublicRange(
                  Rect(corner.x, corner.y,
                       std::min(space.max.x, corner.x + radius),
                       std::min(space.max.y, corner.y + radius))));
              break;
            }
            case 6:
              requests.push_back(server::BatchQueryRequest::Density(4, 4));
              break;
          }
        }
        server::BatchEngineOptions engine_options;
        engine_options.threads = threads;
        server::BatchQueryEngine engine(&service, engine_options);
        const server::BatchResult result = engine.Execute(requests);
        const server::BatchSummary& s = result.summary;
        std::printf("batch=%zu ok=%zu errors=%zu threads=%llu\n",
                    s.batch_size, s.ok_count, s.error_count, threads);
        std::printf("wall_s=%.6f cloak_s=%.6f qps=%.1f\n", s.wall_seconds,
                    s.cloak_seconds, s.queries_per_second);
        std::printf("processor_us p50=%.2f p95=%.2f p99=%.2f mean=%.2f\n",
                    s.processor_p50_micros, s.processor_p95_micros,
                    s.processor_p99_micros, s.processor_mean_micros);
        std::printf("totals_s anonymizer=%.6f processor=%.6f "
                    "transmission=%.6f\n",
                    s.totals.anonymizer_seconds, s.totals.processor_seconds,
                    s.totals.transmission_seconds);
        std::printf("cache hits=%llu misses=%llu hit_rate=%.4f\n",
                    static_cast<unsigned long long>(s.cache.hits),
                    static_cast<unsigned long long>(s.cache.misses),
                    s.cache.HitRate());
      }
    } else if (c == "metrics") {
      // The service registers its instruments on the process-default
      // registry (CasperOptions.metrics == nullptr), so one scrape
      // covers all three tiers plus any batch engines.
      char format[32] = {0};
      const bool json =
          std::sscanf(line, "%*s %31s", format) == 1 &&
          std::strcmp(format, "json") == 0;
      const obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::Default()->Scrape();
      const std::string text = json ? obs::ExportJson(snapshot)
                                    : obs::ExportPrometheus(snapshot);
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else if (c == "transport") {
      const transport::ResilientClient& client = service.transport_client();
      std::printf("breaker=%s replay_depth=%zu\n",
                  BreakerStateName(client.breaker_state()),
                  client.replay_depth());
      if (socket != nullptr) {
        const transport::SocketChannelStats ss = socket->stats();
        std::printf("socket %s: calls=%llu dials=%llu dial_failures=%llu "
                    "reconnects=%llu backoff_fastfails=%llu "
                    "io_timeouts=%llu data_loss=%llu\n",
                    socket->address().c_str(),
                    static_cast<unsigned long long>(ss.calls),
                    static_cast<unsigned long long>(ss.dials),
                    static_cast<unsigned long long>(ss.dial_failures),
                    static_cast<unsigned long long>(ss.reconnects),
                    static_cast<unsigned long long>(ss.backoff_fastfails),
                    static_cast<unsigned long long>(ss.io_timeouts),
                    static_cast<unsigned long long>(ss.data_loss));
      }
      if (fault != nullptr) {
        const transport::FaultStats s = fault->stats();
        std::printf("calls=%llu injected=%llu dropped_req=%llu "
                    "dropped_resp=%llu dup=%llu corrupt_req=%llu "
                    "corrupt_resp=%llu delayed=%llu late=%llu\n",
                    static_cast<unsigned long long>(s.calls),
                    static_cast<unsigned long long>(s.TotalInjected()),
                    static_cast<unsigned long long>(s.dropped_requests),
                    static_cast<unsigned long long>(s.dropped_responses),
                    static_cast<unsigned long long>(s.duplicated),
                    static_cast<unsigned long long>(s.corrupted_requests),
                    static_cast<unsigned long long>(s.corrupted_responses),
                    static_cast<unsigned long long>(s.delayed),
                    static_cast<unsigned long long>(s.late_deliveries));
      } else if (!shard_faults.empty()) {
        std::printf("chaos is per shard (see the `shards` command)\n");
      } else {
        std::printf("chaos off (see casper_cli --help)\n");
      }
    } else if (c == "flush") {
      std::printf("%s\n",
                  service.transport_client().Flush().ToString().c_str());
    } else if (c == "save") {
      char path[256] = {0};
      if (router != nullptr) {
        std::printf("save operates on the single-server tier; with "
                    "--shards use `rebalance <dir>` checkpoints\n");
      } else if (!connect.empty()) {
        std::printf("save operates on the in-process server tier; a "
                    "--connect server checkpoints on its own side\n");
      } else if (std::sscanf(line, "%*s %255s", path) != 1) {
        std::printf("usage: save <path>\n");
      } else {
        auto sm = storage::DiskStorageManager::Create(path);
        if (!sm.ok()) {
          std::printf("%s\n", sm.status().ToString().c_str());
        } else {
          const Status saved = service.SaveServerState(sm->get());
          if (saved.ok()) {
            const auto stats = (*sm)->stats();
            std::printf("saved targets=%zu regions=%zu pages=%zu "
                        "page_size=%zu\n",
                        service.public_store().size(),
                        service.private_store().size(), stats.pages,
                        stats.page_size);
          } else {
            std::printf("%s\n", saved.ToString().c_str());
          }
        }
      }
    } else if (c == "open") {
      char path[256] = {0};
      if (router != nullptr) {
        std::printf("open operates on the single-server tier; restart "
                    "without --shards to reopen a checkpoint\n");
      } else if (!connect.empty()) {
        std::printf("open operates on the in-process server tier; a "
                    "--connect server reopens on its own side\n");
      } else if (std::sscanf(line, "%*s %255s", path) != 1) {
        std::printf("usage: open <path>\n");
      } else {
        auto sm = storage::DiskStorageManager::Open(path);
        if (!sm.ok()) {
          std::printf("%s\n", sm.status().ToString().c_str());
        } else {
          // Read through a pool so the reopen shows up in the
          // casper_storage_pool_* instruments (`metrics` command).
          storage::BufferPool pool(sm->get());
          const Status opened = service.OpenServerState(&pool);
          if (opened.ok()) {
            const auto ps = pool.stats();
            std::printf("opened targets=%zu regions=%zu pool_hits=%llu "
                        "pool_misses=%llu\n",
                        service.public_store().size(),
                        service.private_store().size(),
                        static_cast<unsigned long long>(ps.hits),
                        static_cast<unsigned long long>(ps.misses));
          } else {
            std::printf("%s\n", opened.ToString().c_str());
          }
        }
      }
    } else if (c == "shards") {
      if (router == nullptr) {
        std::printf("sharding off (run with --shards=N)\n");
      } else {
        const obs::ShardMetrics& m = router->metrics();
        std::printf("shards=%zu public=%zu regions=%zu partition=%s\n",
                    router->num_shards(), router->total_public(),
                    router->total_regions(),
                    router->partition().ToString().c_str());
        for (size_t s = 0; s < router->num_shards(); ++s) {
          std::printf("shard %zu: bounds=%s public=%zu regions=%zu "
                      "breaker=%s requests=%llu errors=%llu\n",
                      s, router->partition().ShardBounds(s).ToString().c_str(),
                      router->public_count(s), router->region_count(s),
                      BreakerStateName(router->breaker_state(s)),
                      static_cast<unsigned long long>(
                          m.requests_total[s]->Value()),
                      static_cast<unsigned long long>(
                          m.errors_total[s]->Value()));
        }
        std::printf("degraded_answers=%llu unavailable=%llu probes=%llu "
                    "rebalances=%llu handoff_objects=%llu\n",
                    static_cast<unsigned long long>(
                        m.degraded_answers_total->Value()),
                    static_cast<unsigned long long>(
                        m.unavailable_total->Value()),
                    static_cast<unsigned long long>(
                        m.probe_calls_total->Value()),
                    static_cast<unsigned long long>(
                        m.rebalances_total->Value()),
                    static_cast<unsigned long long>(
                        m.handoff_objects_total->Value()));
        for (size_t s = 0; s < shard_faults.size(); ++s) {
          const transport::FaultStats fs = shard_faults[s]->stats();
          std::printf("shard %zu chaos: calls=%llu injected=%llu\n", s,
                      static_cast<unsigned long long>(fs.calls),
                      static_cast<unsigned long long>(fs.TotalInjected()));
        }
      }
    } else if (c == "rebalance") {
      char dir[256] = {0};
      if (router == nullptr) {
        std::printf("sharding off (run with --shards=N)\n");
      } else if (std::sscanf(line, "%*s %255s", dir) != 1) {
        std::printf("usage: rebalance <dir>\n");
      } else {
        const Status st = router->Rebalance(dir);
        if (!st.ok()) {
          std::printf("%s\n", st.ToString().c_str());
        } else {
          const obs::ShardMetrics& m = router->metrics();
          std::printf("OK: rebalances=%llu handoff_objects=%llu "
                      "partition=%s\n",
                      static_cast<unsigned long long>(
                          m.rebalances_total->Value()),
                      static_cast<unsigned long long>(
                          m.handoff_objects_total->Value()),
                      router->partition().ToString().c_str());
        }
      }
    } else if (c == "stats") {
      const auto& s = service.anonymizer().stats();
      std::printf("users=%zu location_updates=%llu counter_updates=%llu "
                  "splits=%llu merges=%llu cloaks=%llu\n",
                  service.user_count(),
                  static_cast<unsigned long long>(s.location_updates),
                  static_cast<unsigned long long>(s.counter_updates),
                  static_cast<unsigned long long>(s.splits),
                  static_cast<unsigned long long>(s.merges),
                  static_cast<unsigned long long>(s.cloak_calls));
    } else {
      std::printf("unknown command '%s' (try: help)\n", cmd);
    }
    std::printf("casper> ");
    std::fflush(stdout);
  }
  std::printf("bye\n");
  return 0;
}

}  // namespace
}  // namespace casper

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    return casper::RunServe(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "scenario") == 0) {
    return casper::RunScenarioCommand(argc, argv);
  }
  return casper::Run(argc, argv);
}
