#!/usr/bin/env python3
"""Perf-regression gate over throughput_scaling output.

Compares a fresh BENCH_throughput.json against the checked-in baseline
(bench/BENCH_baseline.json, recorded on the same small fixed workload:
CASPER_BENCH_SCALE=0.05). Rows are matched by configuration (mode,
threads, batch_size, cache); the gate fails when the geometric mean of
the per-row qps ratios (current / baseline) drops by more than
--max-drop (default 25%).

The geometric mean keeps one noisy row from tripping the gate while a
uniform slowdown — e.g. an accidental O(n^2) in the query path — still
fails decisively: a synthetic 2x slowdown yields a ratio of ~0.5
everywhere and a geomean far below the 0.75 floor.

Usage:
  check_perf_regression.py --current BENCH_throughput.json \
      --baseline bench/BENCH_baseline.json [--max-drop 0.25]

Exit status: 0 = within budget, 1 = regression, 2 = unusable input.
Stdlib only; no third-party dependencies.
"""

import argparse
import json
import math
import sys


KEY_FIELDS = ("mode", "threads", "batch_size", "cache")


def row_key(row):
    return tuple(row[f] for f in KEY_FIELDS)


def load_rows(path):
    """Load and validate one bench JSON; exits 2 on anything malformed.

    A degenerate baseline (truncated file, rows missing their config
    keys or qps, zero/negative qps from a benchmark that crashed
    mid-run) must fail the gate *legibly*, not with a traceback — CI
    surfaces only the last few lines.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict) or not isinstance(data.get("rows"), list):
        print(f"error: {path}: expected a JSON object with a 'rows' list",
              file=sys.stderr)
        sys.exit(2)
    rows = {}
    for i, r in enumerate(data["rows"]):
        if not isinstance(r, dict):
            print(f"error: {path}: row {i} is not an object", file=sys.stderr)
            sys.exit(2)
        missing = [f for f in KEY_FIELDS + ("qps",) if f not in r]
        if missing:
            print(f"error: {path}: row {i} missing {', '.join(missing)}",
                  file=sys.stderr)
            sys.exit(2)
        if not isinstance(r["qps"], (int, float)) or isinstance(r["qps"], bool):
            print(f"error: {path}: row {i} qps is not a number: {r['qps']!r}",
                  file=sys.stderr)
            sys.exit(2)
        key = row_key(r)
        if key in rows:
            print(f"error: {path}: duplicate configuration {key}",
                  file=sys.stderr)
            sys.exit(2)
        rows[key] = r
    if not rows:
        print(f"error: no rows in {path}", file=sys.stderr)
        sys.exit(2)
    return data, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--max-drop", type=float, default=0.25,
                        help="maximum tolerated fractional qps drop")
    args = parser.parse_args()

    base_meta, base = load_rows(args.baseline)
    cur_meta, cur = load_rows(args.current)

    for meta in ("targets", "users"):
        if base_meta.get(meta) != cur_meta.get(meta):
            print(f"error: workload mismatch: {meta} "
                  f"baseline={base_meta.get(meta)} "
                  f"current={cur_meta.get(meta)} "
                  "(regenerate the baseline at the same CASPER_BENCH_SCALE)",
                  file=sys.stderr)
            sys.exit(2)

    common = sorted(set(base) & set(cur))
    if not common:
        print("error: no comparable rows between baseline and current "
              f"(baseline configs: {sorted(base)[:4]}..., "
              f"current configs: {sorted(cur)[:4]}...)",
              file=sys.stderr)
        sys.exit(2)
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    for key in only_base:
        print(f"warning: baseline-only configuration skipped: {key}",
              file=sys.stderr)
    for key in only_cur:
        print(f"warning: current-only configuration skipped: {key}",
              file=sys.stderr)

    log_sum = 0.0
    worst = (None, float("inf"))
    print(f"{'configuration':<44} {'base qps':>12} {'cur qps':>12} "
          f"{'ratio':>7}")
    for key in common:
        base_qps = base[key]["qps"]
        cur_qps = cur[key]["qps"]
        if base_qps <= 0.0 or cur_qps <= 0.0:
            print(f"error: non-positive qps for {key}", file=sys.stderr)
            sys.exit(2)
        ratio = cur_qps / base_qps
        log_sum += math.log(ratio)
        if ratio < worst[1]:
            worst = (key, ratio)
        mode, threads, batch, cache = key
        label = f"{mode} threads={threads} batch={batch} cache={cache}"
        print(f"{label:<44} {base_qps:>12.1f} {cur_qps:>12.1f} {ratio:>7.3f}")

    geomean = math.exp(log_sum / len(common))
    floor = 1.0 - args.max_drop
    print(f"\nrows={len(common)} geomean_ratio={geomean:.3f} "
          f"floor={floor:.3f} worst={worst[0]} ({worst[1]:.3f})")
    if geomean < floor:
        print(f"FAIL: throughput dropped "
              f"{(1.0 - geomean) * 100.0:.1f}% (> {args.max_drop * 100:.0f}% "
              "budget)", file=sys.stderr)
        return 1
    print("OK: throughput within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
