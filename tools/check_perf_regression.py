#!/usr/bin/env python3
"""Perf-regression gate over throughput_scaling output.

Compares a fresh BENCH_throughput.json against the checked-in baseline
(bench/BENCH_baseline.json, recorded on the same small fixed workload:
CASPER_BENCH_SCALE=0.05). Rows are matched by configuration (mode,
threads, batch_size, cache); the gate fails when the geometric mean of
the per-row qps ratios (current / baseline) drops by more than
--max-drop (default 25%).

The geometric mean keeps one noisy row from tripping the gate while a
uniform slowdown — e.g. an accidental O(n^2) in the query path — still
fails decisively: a synthetic 2x slowdown yields a ratio of ~0.5
everywhere and a geomean far below the 0.75 floor.

Beyond the geomean, the gate enforces a parallel-speedup floor: the
best `batch_engine` row with threads >= 2 and the cache off must beat
the sequential baseline's qps by at least --min-parallel-speedup
(default 1.10x) at every batch size. The rule is hardware-aware — it
only fires when BOTH files report `hardware_threads >= 2`, because on
a single-core runner no dispatcher can beat the sequential loop and
the rule would only measure scheduler overhead.

With --sharding (a BENCH_sharding.json from bench/shard_scaling), the
gate additionally enforces a shard-scaling floor: the 8-shard row's qps
must beat the 1-shard row's by at least --shard-scaling-floor (default
1.10x). Like the parallel-speedup rule it is hardware-aware — skipped
(with a note) when the file reports fewer than --shard-min-threads
hardware threads (default 8), because a machine that cannot run the
shards in parallel measures only fan-out overhead. The sharding file is
self-contained (current run only); it needs no checked-in baseline.

`--compare` switches to a report-only mode: it prints the per-config
before/after table (qps and p99 side by side) and always exits 0 after
input validation — for PR descriptions and perf triage, not gating.

With --scenarios-baseline / --scenarios-current (lists of
BENCH_scenario_*.json files from `casper_cli scenario`), --compare
additionally prints a before/after table per scenario — qps, p95
latency, total oracle violations, and pass/fail — matched by scenario
name. Like the storage table it is informational only: scenario runs
are seeded but their latency is machine-dependent, so the table never
gates; bad or missing files print a warning and are skipped.

With --baseline-metrics / --current-metrics (metrics-export JSON files,
the `metrics json` / ExportJson shape), --compare additionally prints a
before/after table of every `casper_storage_*` sample, matched by
(name, labels). A sample present on only one side renders "-"; a
missing or malformed metrics file prints a warning and skips the table
without affecting the exit status — the storage counters are triage
context, never a gate.

Usage:
  check_perf_regression.py --current BENCH_throughput.json \
      --baseline bench/BENCH_baseline.json [--max-drop 0.25] \
      [--min-parallel-speedup 1.10] [--compare] \
      [--sharding BENCH_sharding.json] [--shard-scaling-floor 1.10] \
      [--shard-min-threads 8] \
      [--baseline-metrics BENCH_metrics.json] \
      [--current-metrics BENCH_metrics.json]

Exit status: 0 = within budget, 1 = regression, 2 = unusable input.
Stdlib only; no third-party dependencies.
"""

import argparse
import json
import math
import sys


KEY_FIELDS = ("mode", "threads", "batch_size", "cache")


def row_key(row):
    return tuple(row[f] for f in KEY_FIELDS)


def load_rows(path):
    """Load and validate one bench JSON; exits 2 on anything malformed.

    A degenerate baseline (truncated file, rows missing their config
    keys or qps, zero/negative qps from a benchmark that crashed
    mid-run) must fail the gate *legibly*, not with a traceback — CI
    surfaces only the last few lines.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict) or not isinstance(data.get("rows"), list):
        print(f"error: {path}: expected a JSON object with a 'rows' list",
              file=sys.stderr)
        sys.exit(2)
    rows = {}
    for i, r in enumerate(data["rows"]):
        if not isinstance(r, dict):
            print(f"error: {path}: row {i} is not an object", file=sys.stderr)
            sys.exit(2)
        missing = [f for f in KEY_FIELDS + ("qps",) if f not in r]
        if missing:
            print(f"error: {path}: row {i} missing {', '.join(missing)}",
                  file=sys.stderr)
            sys.exit(2)
        if not isinstance(r["qps"], (int, float)) or isinstance(r["qps"], bool):
            print(f"error: {path}: row {i} qps is not a number: {r['qps']!r}",
                  file=sys.stderr)
            sys.exit(2)
        key = row_key(r)
        if key in rows:
            print(f"error: {path}: duplicate configuration {key}",
                  file=sys.stderr)
            sys.exit(2)
        rows[key] = r
    if not rows:
        print(f"error: no rows in {path}", file=sys.stderr)
        sys.exit(2)
    return data, rows


def parallel_speedup_failures(meta_base, meta_cur, rows, min_speedup):
    """The strengthened rule: best (batch_engine, threads>=2, cache=off)
    row must beat the sequential row by `min_speedup` per batch size.

    Returns a list of human-readable failure strings; empty when the
    rule passes or is skipped. Skipped (with a note on stdout) when
    either file was recorded on a single-core machine, where the rule
    would only measure dispatch overhead.
    """
    base_hw = meta_base.get("hardware_threads")
    cur_hw = meta_cur.get("hardware_threads")
    if not (isinstance(base_hw, int) and base_hw >= 2 and
            isinstance(cur_hw, int) and cur_hw >= 2):
        print(f"note: parallel-speedup rule skipped "
              f"(hardware_threads: baseline={base_hw} current={cur_hw}; "
              "needs >= 2 in both)")
        return []
    sequential = {}
    best_parallel = {}
    for (mode, threads, batch, cache), r in rows.items():
        if mode == "sequential":
            sequential[batch] = r["qps"]
        elif mode == "batch_engine" and threads >= 2 and not cache:
            best_parallel[batch] = max(best_parallel.get(batch, 0.0),
                                       r["qps"])
    failures = []
    for batch, seq_qps in sorted(sequential.items()):
        par_qps = best_parallel.get(batch)
        if par_qps is None:
            failures.append(f"batch={batch}: no (batch_engine, threads>=2, "
                            "cache=false) row to compare against sequential")
            continue
        speedup = par_qps / seq_qps
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(f"parallel speedup batch={batch}: {par_qps:.1f} / "
              f"{seq_qps:.1f} = {speedup:.3f}x "
              f"(floor {min_speedup:.2f}x) {verdict}")
        if speedup < min_speedup:
            failures.append(
                f"batch={batch}: parallel speedup {speedup:.3f}x below "
                f"{min_speedup:.2f}x floor")
    return failures


def load_shard_rows(path):
    """Load and validate a BENCH_sharding.json; exits 2 when malformed.

    Returns (meta, {shards: qps}). The shape is self-contained — the
    shard-scaling rule compares rows of the same run, so no baseline
    pairing happens here — but the same legibility bar applies: a
    truncated or half-written file must fail with a one-line
    diagnostic, not a traceback.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict) or not isinstance(data.get("rows"), list):
        print(f"error: {path}: expected a JSON object with a 'rows' list",
              file=sys.stderr)
        sys.exit(2)
    qps_by_shards = {}
    for i, r in enumerate(data["rows"]):
        if not isinstance(r, dict):
            print(f"error: {path}: row {i} is not an object", file=sys.stderr)
            sys.exit(2)
        shards = r.get("shards")
        qps = r.get("qps")
        if not isinstance(shards, int) or isinstance(shards, bool):
            print(f"error: {path}: row {i} missing integer 'shards'",
                  file=sys.stderr)
            sys.exit(2)
        if not isinstance(qps, (int, float)) or isinstance(qps, bool) or \
                qps <= 0.0:
            print(f"error: {path}: row {i} qps is not a positive number: "
                  f"{qps!r}", file=sys.stderr)
            sys.exit(2)
        if shards in qps_by_shards:
            print(f"error: {path}: duplicate shard count {shards}",
                  file=sys.stderr)
            sys.exit(2)
        qps_by_shards[shards] = float(qps)
    for required in (1, 8):
        if required not in qps_by_shards:
            print(f"error: {path}: no row for shards={required}",
                  file=sys.stderr)
            sys.exit(2)
    return data, qps_by_shards


def shard_scaling_failures(meta, qps_by_shards, floor, min_threads):
    """The shard-scaling floor: 8-shard qps >= floor * 1-shard qps.

    Returns a list of failure strings; empty when the rule passes or is
    skipped. Skipped when the run's machine has fewer than
    `min_threads` hardware threads — with e.g. one core, eight shards
    time-slice a single CPU and the ratio measures nothing but the
    router's fan-out overhead.
    """
    hw = meta.get("hardware_threads")
    if not (isinstance(hw, int) and hw >= min_threads):
        print(f"note: shard-scaling rule skipped (hardware_threads={hw}; "
              f"needs >= {min_threads})")
        return []
    ratio = qps_by_shards[8] / qps_by_shards[1]
    verdict = "ok" if ratio >= floor else "FAIL"
    print(f"shard scaling: {qps_by_shards[8]:.1f} / {qps_by_shards[1]:.1f} "
          f"= {ratio:.3f}x (floor {floor:.2f}x) {verdict}")
    if ratio < floor:
        return [f"8-shard qps only {ratio:.3f}x of 1-shard "
                f"(floor {floor:.2f}x)"]
    return []


STORAGE_METRIC_PREFIX = "casper_storage_"


def load_storage_samples(path):
    """Extract {(name, sorted-labels): value} for casper_storage_*
    series from a metrics-export JSON file (the ExportJson / `metrics
    json` shape). Returns None — with a warning — on anything missing
    or malformed: the storage table is triage context, not a gate, so
    a bad file must never break the run.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"warning: cannot read metrics file {path}: {e}",
              file=sys.stderr)
        return None
    if not isinstance(data, dict) or not isinstance(data.get("metrics"),
                                                    list):
        print(f"warning: {path}: expected a JSON object with a 'metrics' "
              "list; skipping storage comparison", file=sys.stderr)
        return None
    samples = {}
    for metric in data["metrics"]:
        if not isinstance(metric, dict):
            continue
        name = metric.get("name")
        if not isinstance(name, str) or \
                not name.startswith(STORAGE_METRIC_PREFIX):
            continue
        for sample in metric.get("samples") or []:
            if not isinstance(sample, dict):
                continue
            value = sample.get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue  # Histogram samples carry no scalar 'value'.
            labels = sample.get("labels")
            label_key = tuple(sorted(labels.items())) \
                if isinstance(labels, dict) else ()
            samples[(name, label_key)] = value
    return samples


def fmt_metric_value(value):
    if value is None:
        return "-"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.3f}"


def print_storage_comparison(baseline_path, current_path):
    """The --compare storage table; purely informational."""
    base = load_storage_samples(baseline_path) if baseline_path else {}
    cur = load_storage_samples(current_path) if current_path else {}
    if base is None or cur is None:
        return
    keys = sorted(set(base) | set(cur))
    if not keys:
        print("\nno casper_storage_* samples in either metrics file")
        return
    print(f"\n{'storage metric':<52} {'baseline':>12} {'current':>12}")
    for name, label_key in keys:
        label = name
        if label_key:
            rendered = ",".join(f"{k}={v}" for k, v in label_key)
            label = f"{name}{{{rendered}}}"
        print(f"{label:<52} "
              f"{fmt_metric_value(base.get((name, label_key))):>12} "
              f"{fmt_metric_value(cur.get((name, label_key))):>12}")


def load_scenario_reports(paths):
    """Load BENCH_scenario_*.json reports (the `casper_cli scenario`
    shape) into {scenario_name: report}. Returns None — with a warning —
    when nothing usable loads; individual bad files are skipped with a
    warning. The scenario table is triage context, never a gate.
    """
    if not paths:
        return None
    reports = {}
    for path in paths:
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, ValueError) as e:
            print(f"warning: cannot read scenario file {path}: {e}",
                  file=sys.stderr)
            continue
        name = data.get("scenario") if isinstance(data, dict) else None
        if not isinstance(name, str):
            print(f"warning: {path}: no 'scenario' key; skipping",
                  file=sys.stderr)
            continue
        if name in reports:
            print(f"warning: duplicate scenario report for {name!r} "
                  f"({path}); keeping the first", file=sys.stderr)
            continue
        reports[name] = data
    return reports or None


def scenario_cell(report, *keys):
    """Dig `keys` out of a scenario report; '-' when absent/not a number."""
    node = report
    for key in keys:
        node = node.get(key) if isinstance(node, dict) else None
    if isinstance(node, bool):
        return "yes" if node else "NO"
    if isinstance(node, (int, float)):
        return f"{node:.1f}" if isinstance(node, float) else str(node)
    return "-"


def scenario_violations(report):
    oracles = report.get("oracles")
    if not isinstance(oracles, dict):
        return "-"
    total = 0
    for key in ("nn_violations", "region_violations",
                "continuous_violations"):
        value = oracles.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            return "-"
        total += value
    return str(total)


def print_scenario_comparison(baseline_paths, current_paths):
    """The --compare scenario table; purely informational (scenario
    runs are seeded but latency is machine-dependent, so this never
    gates — it feeds the PR's before/after section).
    """
    base = load_scenario_reports(baseline_paths)
    cur = load_scenario_reports(current_paths)
    if base is None and cur is None:
        return
    base = base or {}
    cur = cur or {}
    names = sorted(set(base) | set(cur))
    print(f"\n{'scenario':<20} {'qps b/c':>19} {'p95us b/c':>19} "
          f"{'viol b/c':>11} {'pass b/c':>9}")
    for name in names:
        b = base.get(name, {})
        c = cur.get(name, {})
        print(f"{name:<20} "
              f"{scenario_cell(b, 'qps'):>9}/{scenario_cell(c, 'qps'):>9} "
              f"{scenario_cell(b, 'latency_micros', 'p95'):>9}/"
              f"{scenario_cell(c, 'latency_micros', 'p95'):>9} "
              f"{scenario_violations(b):>5}/{scenario_violations(c):>5} "
              f"{scenario_cell(b, 'passed'):>4}/{scenario_cell(c, 'passed'):>4}")
    print("scenario table: report only, never gates")


def fmt_p99(row):
    p99 = row.get("p99_us")
    if isinstance(p99, (int, float)) and not isinstance(p99, bool):
        return f"{p99:.1f}"
    return "-"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--max-drop", type=float, default=0.25,
                        help="maximum tolerated fractional qps drop")
    parser.add_argument("--min-parallel-speedup", type=float, default=1.10,
                        help="required qps ratio of the best parallel "
                             "(threads>=2, cache off) row over sequential; "
                             "enforced only when both files report "
                             "hardware_threads >= 2")
    parser.add_argument("--sharding",
                        help="BENCH_sharding.json from bench/shard_scaling; "
                             "enables the shard-scaling floor")
    parser.add_argument("--shard-scaling-floor", type=float, default=1.10,
                        help="required qps ratio of the 8-shard row over "
                             "the 1-shard row in --sharding; enforced only "
                             "when that run had >= --shard-min-threads "
                             "hardware threads")
    parser.add_argument("--shard-min-threads", type=int, default=8,
                        help="minimum hardware_threads in the --sharding "
                             "file for the shard-scaling rule to fire")
    parser.add_argument("--compare", action="store_true",
                        help="report-only: print the before/after qps and "
                             "p99 table, never fail")
    parser.add_argument("--baseline-metrics",
                        help="metrics-export JSON for the baseline run; "
                             "adds a casper_storage_* table to --compare")
    parser.add_argument("--current-metrics",
                        help="metrics-export JSON for the current run; "
                             "adds a casper_storage_* table to --compare")
    parser.add_argument("--scenarios-baseline", nargs="+", default=[],
                        help="BENCH_scenario_*.json files from the baseline "
                             "run; adds a non-gating scenario table to "
                             "--compare")
    parser.add_argument("--scenarios-current", nargs="+", default=[],
                        help="BENCH_scenario_*.json files from the current "
                             "run; adds a non-gating scenario table to "
                             "--compare")
    args = parser.parse_args()

    base_meta, base = load_rows(args.baseline)
    cur_meta, cur = load_rows(args.current)

    for meta in ("targets", "users"):
        if base_meta.get(meta) != cur_meta.get(meta):
            print(f"error: workload mismatch: {meta} "
                  f"baseline={base_meta.get(meta)} "
                  f"current={cur_meta.get(meta)} "
                  "(regenerate the baseline at the same CASPER_BENCH_SCALE)",
                  file=sys.stderr)
            sys.exit(2)

    common = sorted(set(base) & set(cur))
    if not common:
        print("error: no comparable rows between baseline and current "
              f"(baseline configs: {sorted(base)[:4]}..., "
              f"current configs: {sorted(cur)[:4]}...)",
              file=sys.stderr)
        sys.exit(2)
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    for key in only_base:
        print(f"warning: baseline-only configuration skipped: {key}",
              file=sys.stderr)
    for key in only_cur:
        print(f"warning: current-only configuration skipped: {key}",
              file=sys.stderr)

    log_sum = 0.0
    worst = (None, float("inf"))
    print(f"{'configuration':<44} {'base qps':>12} {'cur qps':>12} "
          f"{'ratio':>7} {'base p99':>10} {'cur p99':>10}")
    for key in common:
        base_qps = base[key]["qps"]
        cur_qps = cur[key]["qps"]
        if base_qps <= 0.0 or cur_qps <= 0.0:
            print(f"error: non-positive qps for {key}", file=sys.stderr)
            sys.exit(2)
        ratio = cur_qps / base_qps
        log_sum += math.log(ratio)
        if ratio < worst[1]:
            worst = (key, ratio)
        mode, threads, batch, cache = key
        label = f"{mode} threads={threads} batch={batch} cache={cache}"
        print(f"{label:<44} {base_qps:>12.1f} {cur_qps:>12.1f} "
              f"{ratio:>7.3f} {fmt_p99(base[key]):>10} "
              f"{fmt_p99(cur[key]):>10}")

    geomean = math.exp(log_sum / len(common))
    floor = 1.0 - args.max_drop
    print(f"\nrows={len(common)} geomean_ratio={geomean:.3f} "
          f"floor={floor:.3f} worst={worst[0]} ({worst[1]:.3f})")

    shard_meta, shard_rows = (None, None)
    if args.sharding:
        shard_meta, shard_rows = load_shard_rows(args.sharding)
        print(f"\nshard scaling rows "
              f"(hardware_threads={shard_meta.get('hardware_threads')}): " +
              ", ".join(f"{s}=>{q:.1f}"
                        for s, q in sorted(shard_rows.items())))

    if args.compare:
        if args.baseline_metrics or args.current_metrics:
            print_storage_comparison(args.baseline_metrics,
                                     args.current_metrics)
        if args.scenarios_baseline or args.scenarios_current:
            print_scenario_comparison(args.scenarios_baseline,
                                      args.scenarios_current)
        print("compare mode: report only, no gating")
        return 0

    failed = False
    if geomean < floor:
        print(f"FAIL: throughput dropped "
              f"{(1.0 - geomean) * 100.0:.1f}% (> {args.max_drop * 100:.0f}% "
              "budget)", file=sys.stderr)
        failed = True

    for failure in parallel_speedup_failures(base_meta, cur_meta, cur,
                                             args.min_parallel_speedup):
        print(f"FAIL: {failure}", file=sys.stderr)
        failed = True

    if shard_rows is not None:
        for failure in shard_scaling_failures(shard_meta, shard_rows,
                                              args.shard_scaling_floor,
                                              args.shard_min_threads):
            print(f"FAIL: {failure}", file=sys.stderr)
            failed = True

    if failed:
        return 1
    print("OK: throughput within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
