#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace casper {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 41 + 1; });
  ASSERT_TRUE(future.ok());
  EXPECT_EQ(future.value().get(), 42);
}

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    auto submitted = pool.Submit(
        [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, ConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  std::mutex mu;
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        auto f = pool.Submit(
            [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
        ASSERT_TRUE(f.ok());
        std::lock_guard<std::mutex> lock(mu);
        futures.push_back(std::move(f).value());
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 800);
}

TEST(ThreadPoolTest, GracefulShutdownDrainsQueue) {
  std::atomic<int> counter{0};
  {
    // One worker, many slow-ish tasks: most are still queued when the
    // destructor runs, and all must still execute.
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.Submit([&counter] {
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(100));
                        counter.fetch_add(1, std::memory_order_relaxed);
                      })
                      .ok());
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownReturnsUnavailable) {
  ThreadPool pool(2);
  pool.Shutdown();
  bool ran = false;
  auto submitted = pool.Submit([&ran] { ran = true; });
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(submitted.status().IsRetryable());
  EXPECT_FALSE(ran);  // The callable must never run.
}

TEST(ThreadPoolTest, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto submitted = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  ASSERT_TRUE(submitted.ok());
  EXPECT_THROW(submitted.value().get(), std::runtime_error);
  // The worker survives the throwing task and keeps serving.
  auto next = pool.Submit([] { return 7; });
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().get(), 7);
}

TEST(ThreadPoolTest, SingleWorkerPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    auto submitted = pool.Submit([&order, i] { order.push_back(i); });
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(20);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).value().get(), 7);
}

TEST(ThreadPoolTest, FuturesCarryDistinctResults) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    auto submitted = pool.Submit([i] { return i * i; });
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

}  // namespace
}  // namespace casper
