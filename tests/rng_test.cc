#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace casper {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
  EXPECT_DOUBLE_EQ(rng.Uniform(2.0, 2.0), 2.0);
}

TEST(RngTest, UniformIntInclusiveAndCoversRange) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All 5 values should appear.
  EXPECT_EQ(rng.UniformInt(4, 4), 4u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(17);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.UniformInt(0, kBuckets - 1)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, PointInStaysInside) {
  Rng rng(21);
  const Rect r(2, 3, 5, 4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(r.Contains(rng.PointIn(r)));
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(31);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace casper
