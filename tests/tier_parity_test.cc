#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"

/// Parity tests for the three-tier split: the facade's unified
/// Execute() dispatch, the legacy Query* wrappers (the pre-refactor
/// sequential API, pinned by the unchanged casper_service tests), and a
/// hand-driven tier pipeline that pushes every message through the
/// binary wire codec must all produce identical answers.

namespace casper {
namespace {

CasperService MakeService(size_t users, size_t targets, uint64_t seed) {
  CasperOptions options;
  options.pyramid.height = 6;
  CasperService service(options);
  Rng rng(seed);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < users; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(1, 10));
    EXPECT_TRUE(service.RegisterUser(uid, profile, rng.PointIn(space)).ok());
  }
  Rng target_rng(seed + 1);
  service.SetPublicTargets(
      workload::UniformPublicTargets(targets, space, &target_rng));
  EXPECT_TRUE(service.SyncPrivateData().ok());
  return service;
}

/// The facade path, re-built by hand at the wire-message level: strip
/// identity, serialize the query across the anonymizer/server boundary,
/// evaluate, serialize the candidate list back, refine client-side.
Result<QueryResponse> ManualTierPath(CasperService& service,
                                     const QueryRequest& request,
                                     const anonymizer::CloakingResult& cloak) {
  auto& tier = service.anonymizer_tier();
  auto& server = service.query_server();

  CASPER_ASSIGN_OR_RETURN(stripped, tier.StripIdentity(request, cloak));
  CASPER_ASSIGN_OR_RETURN(query_on_server,
                          DecodeCloakedQuery(Encode(stripped)));
  CASPER_ASSIGN_OR_RETURN(answer, server.Execute(query_on_server));
  CASPER_ASSIGN_OR_RETURN(answer_on_client,
                          DecodeCandidateList(Encode(answer)));
  return tier.RefineForClient(request, cloak, std::move(answer_on_client),
                              service.options().transmission);
}

void ExpectSameAnswer(const QueryResponse& a, const QueryResponse& b) {
  ASSERT_EQ(a.index(), b.index());
  if (const auto* ra = std::get_if<PublicNNResponse>(&a)) {
    const auto& rb = std::get<PublicNNResponse>(b);
    EXPECT_TRUE(ra->server_answer == rb.server_answer);
    EXPECT_TRUE(ra->exact == rb.exact);
    EXPECT_EQ(ra->cloak.region, rb.cloak.region);
  } else if (const auto* ra = std::get_if<PublicKnnResponse>(&a)) {
    const auto& rb = std::get<PublicKnnResponse>(b);
    EXPECT_TRUE(ra->server_answer == rb.server_answer);
    EXPECT_TRUE(ra->exact == rb.exact);
  } else if (const auto* ra = std::get_if<PublicRangeResponse>(&a)) {
    const auto& rb = std::get<PublicRangeResponse>(b);
    EXPECT_TRUE(ra->server_answer == rb.server_answer);
    EXPECT_TRUE(ra->exact == rb.exact);
  } else if (const auto* ra = std::get_if<PrivateNNResponse>(&a)) {
    const auto& rb = std::get<PrivateNNResponse>(b);
    EXPECT_TRUE(ra->server_answer == rb.server_answer);
    EXPECT_TRUE(ra->best == rb.best);
  } else if (const auto* ra = std::get_if<processor::PublicNNCandidates>(&a)) {
    EXPECT_TRUE(*ra == std::get<processor::PublicNNCandidates>(b));
  } else if (const auto* ra = std::get_if<processor::RangeCountResult>(&a)) {
    EXPECT_TRUE(*ra == std::get<processor::RangeCountResult>(b));
  } else if (const auto* ra = std::get_if<processor::DensityMap>(&a)) {
    EXPECT_TRUE(*ra == std::get<processor::DensityMap>(b));
  } else {
    FAIL() << "unhandled response alternative";
  }
}

std::vector<QueryRequest> SampleRequests(const CasperService& service,
                                         size_t users) {
  const Rect space = service.options().pyramid.space;
  const double radius = space.width() * 0.05;
  std::vector<QueryRequest> requests;
  for (uint64_t uid = 0; uid < users; uid += 3) {
    requests.push_back(NearestPublicQ{uid});
    requests.push_back(KNearestPublicQ{uid, 1 + uid % 5});
    requests.push_back(RangePublicQ{uid, radius});
    requests.push_back(NearestPrivateQ{uid});
  }
  requests.push_back(PublicNearestQ{Point{0.3, 0.7}});
  requests.push_back(PublicNearestQ{Point{0.9, 0.1}});
  requests.push_back(
      PublicRangeQ{Rect(0.2, 0.2, 0.6, 0.6)});
  requests.push_back(PublicRangeQ{space});
  requests.push_back(DensityQ{4, 4});
  requests.push_back(DensityQ{8, 2});
  return requests;
}

TEST(TierParityTest, WireCodecPathMatchesFacadeEvaluate) {
  CasperService service = MakeService(30, 300, 11);
  for (const QueryRequest& request : SampleRequests(service, 30)) {
    anonymizer::CloakingResult cloak;
    if (IsCloakedKind(KindOf(request))) {
      auto cloak_result = service.anonymizer_tier().Cloak(UidOf(request));
      ASSERT_TRUE(cloak_result.ok()) << cloak_result.status().ToString();
      cloak = std::move(cloak_result).value();
    }
    auto facade = service.Evaluate(request, cloak);
    auto manual = ManualTierPath(service, request, cloak);
    ASSERT_EQ(facade.ok(), manual.ok());
    ASSERT_TRUE(facade.ok()) << facade.status().ToString();
    ExpectSameAnswer(*facade, *manual);
  }
}

TEST(TierParityTest, UnifiedDispatchMatchesLegacyWrappers) {
  // Twin services built with the identical event sequence: one driven
  // through the legacy wrappers (the pre-refactor API), one through the
  // unified Execute() dispatch. Every answer — pseudonyms included,
  // since both consume the same registry stream — must match.
  CasperService legacy = MakeService(30, 300, 23);
  CasperService unified = MakeService(30, 300, 23);
  const Rect space = legacy.options().pyramid.space;
  const double radius = space.width() * 0.05;

  for (uint64_t uid = 0; uid < 30; uid += 4) {
    auto a = legacy.QueryNearestPublic(uid);
    auto b = unified.Execute(NearestPublicQ{uid});
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectSameAnswer(QueryResponse(*a), *b);

    auto ka = legacy.QueryKNearestPublic(uid, 3);
    auto kb = unified.Execute(KNearestPublicQ{uid, 3});
    ASSERT_TRUE(ka.ok() && kb.ok());
    ExpectSameAnswer(QueryResponse(*ka), *kb);

    auto ra = legacy.QueryRangePublic(uid, radius);
    auto rb = unified.Execute(RangePublicQ{uid, radius});
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_TRUE(*ra == std::get<PublicRangeResponse>(*rb).server_answer);

    auto ba = legacy.QueryNearestPrivate(uid);
    auto bb = unified.Execute(NearestPrivateQ{uid});
    ASSERT_TRUE(ba.ok() && bb.ok());
    ExpectSameAnswer(QueryResponse(*ba), *bb);
  }

  auto na = legacy.QueryPublicNearest(Point{0.4, 0.4});
  auto nb = unified.Execute(PublicNearestQ{Point{0.4, 0.4}});
  ASSERT_TRUE(na.ok() && nb.ok());
  ExpectSameAnswer(QueryResponse(*na), *nb);

  auto ca = legacy.QueryPublicRange(space);
  auto cb = unified.Execute(PublicRangeQ{space});
  ASSERT_TRUE(ca.ok() && cb.ok());
  ExpectSameAnswer(QueryResponse(*ca), *cb);

  auto da = legacy.QueryDensity(5, 5);
  auto db = unified.Execute(DensityQ{5, 5});
  ASSERT_TRUE(da.ok() && db.ok());
  ExpectSameAnswer(QueryResponse(*da), *db);
}

TEST(TierParityTest, ErrorsMatchThePreRefactorContract) {
  CasperOptions options;
  options.pyramid.height = 6;
  CasperService service(options);

  // Unknown user.
  auto nn = service.Execute(NearestPublicQ{99});
  EXPECT_FALSE(nn.ok());
  EXPECT_EQ(nn.status().code(), StatusCode::kNotFound);

  // Stale private snapshot: checked before anything else, exact
  // pre-refactor message.
  auto buddy = service.Execute(NearestPrivateQ{0});
  EXPECT_FALSE(buddy.ok());
  EXPECT_EQ(buddy.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(buddy.status().ToString().find(
                "private data snapshot is stale; call SyncPrivateData()"),
            std::string::npos)
      << buddy.status().ToString();

  // Lone user has no buddies.
  anonymizer::PrivacyProfile profile;
  profile.k = 1;
  ASSERT_TRUE(service.RegisterUser(0, profile, Point{0.5, 0.5}).ok());
  ASSERT_TRUE(service.SyncPrivateData().ok());
  auto lone = service.Execute(NearestPrivateQ{0});
  EXPECT_FALSE(lone.ok());
  EXPECT_EQ(lone.status().code(), StatusCode::kNotFound);
  // The processor's own error (the lone user's region is excluded, and
  // the store holds nothing else) — exactly what the monolith returned.
  EXPECT_NE(lone.status().ToString().find("no eligible target in store"),
            std::string::npos)
      << lone.status().ToString();
}

TEST(TierParityTest, ServerTierNeverSeesTheUserId) {
  // Structural parity check at the message level: for every cloaked
  // kind, the CloakedQueryMsg that crosses the boundary carries no
  // field recoverable as the querying uid.
  CasperService service = MakeService(20, 100, 31);
  auto& tier = service.anonymizer_tier();
  const Rect space = service.options().pyramid.space;
  for (uint64_t uid = 0; uid < 20; ++uid) {
    auto cloak = tier.Cloak(uid);
    ASSERT_TRUE(cloak.ok());
    for (const QueryRequest& request :
         {QueryRequest(NearestPublicQ{uid}), QueryRequest(KNearestPublicQ{uid, 4}),
          QueryRequest(RangePublicQ{uid, space.width() * 0.03}),
          QueryRequest(NearestPrivateQ{uid})}) {
      auto stripped = tier.StripIdentity(request, *cloak);
      ASSERT_TRUE(stripped.ok());
      // The cloak strictly contains more than the user's point, and the
      // only id-shaped field is the pseudonym handle, never the uid.
      EXPECT_TRUE(stripped->cloak.Contains(
          *service.ClientPosition(uid)));
      if (stripped->has_exclude) {
        EXPECT_NE(stripped->exclude_handle, uid);
      }
    }
  }
}

}  // namespace
}  // namespace casper
