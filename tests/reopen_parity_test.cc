#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/casper/messages.h"
#include "src/server/query_server.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_storage.h"

/// Reopen parity (the acceptance gate for the storage tier): build a
/// server from a randomized workload, Save() it to disk, throw the live
/// object away, Open() a fresh server over the same files through a
/// BufferPool, and differential-test every one of the seven query kinds
/// against a twin that never left memory. Responses are compared as
/// *encoded wire bytes* (with the timing field zeroed), so candidate
/// order, counts, and payload encoding must all survive the round trip
/// exactly.
///
/// Scale follows CASPER_BENCH_SCALE like the benches: the CI value 0.05
/// means 50k public targets; unset defaults to a quick local run.

namespace casper {
namespace {

double ScaleFromEnv() {
  const char* raw = std::getenv("CASPER_BENCH_SCALE");
  if (raw == nullptr) return 0.005;  // 5k targets: quick local default.
  const double scale = std::atof(raw);
  return scale > 0.0 ? scale : 0.005;
}

class ReopenParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "casper_reopen_parity_" +
            std::to_string(::getpid());
    std::remove((path_ + ".dat").c_str());
    std::remove((path_ + ".idx").c_str());
  }

  void TearDown() override {
    std::remove((path_ + ".dat").c_str());
    std::remove((path_ + ".idx").c_str());
  }

  /// Populate `server` with the randomized workload: public targets plus
  /// a region maintenance stream with fresh upserts, rotations
  /// (has_replaces), and removals. Returns the handles still stored.
  std::vector<uint64_t> PopulateServer(server::QueryServer* server,
                                       size_t target_count) {
    std::mt19937 rng(4242);
    std::uniform_real_distribution<double> coord(0.0, 1.0);
    std::uniform_real_distribution<double> extent(0.0, 0.03);

    std::vector<processor::PublicTarget> targets;
    targets.reserve(target_count);
    for (size_t i = 0; i < target_count; ++i)
      targets.push_back({i + 1, Point{coord(rng), coord(rng)}});
    server->SetPublicTargets(targets);

    std::vector<uint64_t> live;
    uint64_t next_handle = 1;
    for (int op = 0; op < 2000; ++op) {
      const int dice = static_cast<int>(rng() % 10);
      if (dice == 0 && !live.empty()) {
        // Deregistration.
        RegionRemoveMsg remove;
        remove.handle = live[rng() % live.size()];
        EXPECT_TRUE(server->Apply(remove).ok());
        live.erase(std::find(live.begin(), live.end(), remove.handle));
      } else {
        RegionUpsertMsg upsert;
        upsert.handle = next_handle++;
        const double x = coord(rng), y = coord(rng);
        upsert.region = Rect(x, y, std::min(1.0, x + extent(rng)),
                             std::min(1.0, y + extent(rng)));
        if (dice < 4 && !live.empty()) {
          // Pseudonym rotation: replace an existing stored region.
          const size_t victim = rng() % live.size();
          upsert.has_replaces = true;
          upsert.replaces = live[victim];
          live.erase(live.begin() + victim);
        }
        EXPECT_TRUE(server->Apply(upsert).ok());
        live.push_back(upsert.handle);
      }
    }
    return live;
  }

  /// One randomized query per call for `kind`, built from the shared rng
  /// so both servers see the identical request.
  CloakedQueryMsg MakeQuery(QueryKind kind, std::mt19937& rng,
                            const std::vector<uint64_t>& handles) {
    std::uniform_real_distribution<double> coord(0.0, 1.0);
    std::uniform_real_distribution<double> extent(0.0, 0.1);
    CloakedQueryMsg query;
    query.kind = kind;
    const double x = coord(rng), y = coord(rng);
    query.cloak = Rect(x, y, std::min(1.0, x + extent(rng)),
                       std::min(1.0, y + extent(rng)));
    switch (kind) {
      case QueryKind::kNearestPublic:
        break;
      case QueryKind::kKNearestPublic:
        query.k = 1 + rng() % 8;
        break;
      case QueryKind::kRangePublic:
        query.radius = 0.01 + 0.1 * coord(rng);
        break;
      case QueryKind::kNearestPrivate:
        if (!handles.empty() && rng() % 2 == 0) {
          query.has_exclude = true;
          query.exclude_handle = handles[rng() % handles.size()];
        }
        break;
      case QueryKind::kPublicNearest:
        query.point = Point{coord(rng), coord(rng)};
        break;
      case QueryKind::kPublicRange: {
        const double rx = coord(rng), ry = coord(rng);
        query.region = Rect(rx, ry, std::min(1.0, rx + 2.0 * extent(rng)),
                            std::min(1.0, ry + 2.0 * extent(rng)));
        break;
      }
      case QueryKind::kDensity:
        query.cols = 4 + static_cast<int32_t>(rng() % 13);
        query.rows = 4 + static_cast<int32_t>(rng() % 13);
        break;
    }
    return query;
  }

  std::string path_;
};

TEST_F(ReopenParityTest, AllSevenQueryKindsAnswerIdenticallyAfterReopen) {
  const size_t target_count =
      static_cast<size_t>(1000000.0 * ScaleFromEnv());
  server::QueryServerOptions options;

  // The twin that never leaves memory.
  server::QueryServer live(options);
  const std::vector<uint64_t> handles = PopulateServer(&live, target_count);
  ASSERT_GT(handles.size(), 100u);

  // Persist and commit.
  {
    auto sm = storage::DiskStorageManager::Create(path_);
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    ASSERT_TRUE(live.Save(sm->get()).ok());
  }

  // A cold process: fresh server object, reopened files, buffer pool in
  // front (so this path is exercised exactly as the CLI runs it).
  auto reopened_sm = storage::DiskStorageManager::Open(path_);
  ASSERT_TRUE(reopened_sm.ok()) << reopened_sm.status().ToString();
  storage::BufferPoolOptions pool_options;
  pool_options.capacity_pages = 256;
  storage::BufferPool pool(reopened_sm->get(), pool_options);
  server::QueryServer reopened(options);
  ASSERT_TRUE(reopened.Open(&pool).ok());

  ASSERT_EQ(reopened.public_store().size(), live.public_store().size());
  ASSERT_EQ(reopened.private_store().size(), live.private_store().size());

  const QueryKind kinds[] = {
      QueryKind::kNearestPublic, QueryKind::kKNearestPublic,
      QueryKind::kRangePublic,   QueryKind::kNearestPrivate,
      QueryKind::kPublicNearest, QueryKind::kPublicRange,
      QueryKind::kDensity};
  std::mt19937 rng(777);
  for (const QueryKind kind : kinds) {
    for (int probe = 0; probe < 25; ++probe) {
      const CloakedQueryMsg query = MakeQuery(kind, rng, handles);
      auto want = live.Execute(query);
      auto got = reopened.Execute(query);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      // processor_seconds is wall-clock noise; everything else —
      // candidate records, their order, counts, aggregates — must match
      // byte for byte on the wire.
      want->processor_seconds = 0.0;
      got->processor_seconds = 0.0;
      EXPECT_EQ(Encode(*got), Encode(*want))
          << "kind=" << static_cast<int>(kind) << " probe=" << probe;
    }
  }

  // The reopen actually went through the pool.
  EXPECT_GT(pool.stats().misses, 0u);
}

TEST_F(ReopenParityTest, ReopenedServerAcceptsNewMutations) {
  server::QueryServerOptions options;
  server::QueryServer live(options);
  PopulateServer(&live, 500);
  {
    auto sm = storage::DiskStorageManager::Create(path_);
    ASSERT_TRUE(sm.ok());
    ASSERT_TRUE(live.Save(sm->get()).ok());
  }
  auto sm = storage::DiskStorageManager::Open(path_);
  ASSERT_TRUE(sm.ok());
  server::QueryServer reopened(options);
  ASSERT_TRUE(reopened.Open(sm->get()).ok());

  // Apply the same post-reopen mutation to both; parity must hold for
  // queries that see it.
  RegionUpsertMsg upsert;
  upsert.handle = 999999;
  upsert.region = Rect(0.4, 0.4, 0.41, 0.41);
  ASSERT_TRUE(live.Apply(upsert).ok());
  ASSERT_TRUE(reopened.Apply(upsert).ok());

  CloakedQueryMsg query;
  query.kind = QueryKind::kPublicRange;
  query.region = Rect(0.35, 0.35, 0.45, 0.45);
  auto want = live.Execute(query);
  auto got = reopened.Execute(query);
  ASSERT_TRUE(want.ok() && got.ok());
  want->processor_seconds = 0.0;
  got->processor_seconds = 0.0;
  EXPECT_EQ(Encode(*got), Encode(*want));
}

TEST_F(ReopenParityTest, OpenOnEmptyStorageIsNotFoundAndLeavesServerIntact) {
  auto sm = storage::DiskStorageManager::Create(path_);
  ASSERT_TRUE(sm.ok());
  server::QueryServer server{server::QueryServerOptions{}};
  server.SetPublicTargets({{1, Point{0.5, 0.5}}});
  const Status opened = server.Open(sm->get());
  EXPECT_EQ(opened.code(), StatusCode::kNotFound);
  // Failed open left existing state untouched.
  EXPECT_EQ(server.public_store().size(), 1u);
}

}  // namespace
}  // namespace casper
