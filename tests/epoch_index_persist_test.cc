#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/spatial/epoch_index.h"
#include "src/storage/memory_storage.h"

/// EpochIndex checkpoint/restore: a restored index must answer every
/// query exactly like the index it was checkpointed from — including
/// when the checkpoint caught a non-empty delta/tombstone overlay — and
/// must keep working as a writable index afterwards.

namespace casper::spatial {
namespace {

Rect BoxAt(std::mt19937& rng) {
  std::uniform_real_distribution<double> coord(0.0, 500.0);
  std::uniform_real_distribution<double> extent(0.0, 5.0);
  const double x = coord(rng), y = coord(rng);
  return Rect(x, y, x + extent(rng), y + extent(rng));
}

/// Differential probe battery over both indexes' current snapshots.
void ExpectIndexesAnswerIdentically(const EpochIndex& want_index,
                                    const EpochIndex& got_index,
                                    uint32_t seed) {
  const auto want = want_index.Acquire();
  const auto got = got_index.Acquire();
  ASSERT_EQ(got->size(), want->size());

  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coord(-20.0, 520.0);
  for (int probe = 0; probe < 60; ++probe) {
    const Point q{coord(rng), coord(rng)};
    const Rect window(q.x, q.y, q.x + 80.0, q.y + 80.0);

    EXPECT_EQ(got->RangeCount(window), want->RangeCount(window));
    std::vector<EpochIndex::Entry> want_hits, got_hits;
    want->RangeQuery(window, &want_hits);
    got->RangeQuery(window, &got_hits);
    ASSERT_EQ(got_hits.size(), want_hits.size());
    for (size_t i = 0; i < want_hits.size(); ++i)
      EXPECT_EQ(got_hits[i].id, want_hits[i].id);

    const auto want_knn = want->KNearest(q, 5);
    const auto got_knn = got->KNearest(q, 5);
    ASSERT_EQ(got_knn.size(), want_knn.size());
    for (size_t i = 0; i < want_knn.size(); ++i) {
      EXPECT_EQ(got_knn[i].id, want_knn[i].id);
      EXPECT_DOUBLE_EQ(got_knn[i].distance, want_knn[i].distance);
    }

    const auto want_nn = want->Nearest(q);
    const auto got_nn = got->Nearest(q);
    ASSERT_EQ(got_nn.found, want_nn.found);
    if (want_nn.found) {
      EXPECT_EQ(got_nn.neighbor.id, want_nn.neighbor.id);
    }
  }
}

/// Build an index by replaying a randomized insert/remove workload.
/// `rebuild_threshold` tunes how much of the state lives in the overlay
/// at checkpoint time.
EpochIndex BuildWorkloadIndex(size_t ops, size_t rebuild_threshold,
                              uint32_t seed) {
  EpochIndex index(8, rebuild_threshold);
  std::mt19937 rng(seed);
  std::vector<EpochIndex::Entry> live;
  for (size_t op = 0; op < ops; ++op) {
    const bool remove = !live.empty() && rng() % 4 == 0;
    if (remove) {
      const size_t victim = rng() % live.size();
      EXPECT_TRUE(index.Remove(live[victim].box, live[victim].id));
      live.erase(live.begin() + victim);
    } else {
      const EpochIndex::Entry e{BoxAt(rng), 5000 + op};
      index.Insert(e.box, e.id);
      live.push_back(e);
    }
  }
  return index;
}

class EpochIndexPersistTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EpochIndexPersistTest, RestoredIndexAnswersIdentically) {
  // The parameter is the rebuild threshold: 1 keeps the overlay empty
  // (pure base), 64 leaves a mid-size overlay, 100000 never rebuilds so
  // the whole workload lives in the delta.
  const EpochIndex index = BuildWorkloadIndex(800, GetParam(), 101);

  storage::MemoryStorageManager sm;
  auto root = index.Checkpoint(&sm);
  ASSERT_TRUE(root.ok()) << root.status().ToString();

  auto restored = EpochIndex::Restore(&sm, *root);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->size(), index.size());
  EXPECT_EQ(restored->stats().delta_entries, index.stats().delta_entries);
  EXPECT_EQ(restored->stats().tombstones, index.stats().tombstones);
  ExpectIndexesAnswerIdentically(index, *restored, 211);
}

INSTANTIATE_TEST_SUITE_P(OverlaySizes, EpochIndexPersistTest,
                         ::testing::Values(1, 64, 100000),
                         [](const auto& info) {
                           return "Threshold" + std::to_string(info.param);
                         });

TEST(EpochIndexPersistSingleTest, EmptyIndexRoundTrip) {
  const EpochIndex index(16, 128);
  storage::MemoryStorageManager sm;
  auto root = index.Checkpoint(&sm);
  ASSERT_TRUE(root.ok());
  auto restored = EpochIndex::Restore(&sm, *root);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->empty());
  EXPECT_EQ(restored->Acquire()->RangeCount(Rect(-1e9, -1e9, 1e9, 1e9)), 0u);
}

TEST(EpochIndexPersistSingleTest, RestoredIndexStaysWritable) {
  EpochIndex index = BuildWorkloadIndex(200, 64, 303);
  storage::MemoryStorageManager sm;
  auto root = index.Checkpoint(&sm);
  ASSERT_TRUE(root.ok());
  auto restored = EpochIndex::Restore(&sm, *root);
  ASSERT_TRUE(restored.ok());

  // Mutate BOTH indexes identically; they must stay in lockstep.
  std::mt19937 rng(909);
  for (int i = 0; i < 150; ++i) {
    const Rect box = BoxAt(rng);
    const uint64_t id = 90000 + i;
    index.Insert(box, id);
    restored->Insert(box, id);
  }
  ExpectIndexesAnswerIdentically(index, *restored, 911);
}

TEST(EpochIndexPersistSingleTest, GarbageRootFails) {
  storage::MemoryStorageManager sm;
  auto id = sm.Store(storage::kNoPage, "not an epoch checkpoint");
  ASSERT_TRUE(id.ok());
  const auto restored = EpochIndex::Restore(&sm, *id);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace casper::spatial
