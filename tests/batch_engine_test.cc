#include "src/casper/batch_query_engine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/casper/workload.h"
#include "src/common/rng.h"

namespace casper::server {
namespace {

CasperService MakeService(size_t users, size_t targets, uint64_t seed,
                          bool adaptive = true) {
  CasperOptions options;
  options.pyramid.height = 6;
  options.use_adaptive_anonymizer = adaptive;
  CasperService service(options);
  Rng rng(seed);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < users; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(1, 10));
    EXPECT_TRUE(service.RegisterUser(uid, profile, rng.PointIn(space)).ok());
  }
  service.SetPublicTargets(
      workload::UniformPublicTargets(targets, space, &rng));
  return service;
}

/// A deterministic mixed batch cycling through all four query kinds.
std::vector<BatchQueryRequest> MixedBatch(size_t count, size_t users,
                                          double space_width) {
  std::vector<BatchQueryRequest> requests;
  for (size_t i = 0; i < count; ++i) {
    const anonymizer::UserId uid = i % users;
    switch (i % 4) {
      case 0:
        requests.push_back(BatchQueryRequest::NearestPublic(uid));
        break;
      case 1:
        requests.push_back(BatchQueryRequest::KNearestPublic(uid, 3));
        break;
      case 2:
        requests.push_back(
            BatchQueryRequest::RangePublic(uid, space_width * 0.02));
        break;
      case 3:
        requests.push_back(BatchQueryRequest::NearestPrivate(uid));
        break;
    }
  }
  return requests;
}

std::vector<uint64_t> Ids(const std::vector<processor::PublicTarget>& ts) {
  std::vector<uint64_t> ids;
  for (const auto& t : ts) ids.push_back(t.id);
  return ids;
}

std::vector<uint64_t> Ids(const std::vector<processor::PrivateTarget>& ts) {
  std::vector<uint64_t> ids;
  for (const auto& t : ts) ids.push_back(t.id);
  return ids;
}

/// Runs the batch through the sequential CasperService path and asserts
/// the engine's responses are identical, slot by slot — candidate lists
/// in the same order, same extended areas, same refined answers.
void ExpectParityWithSequential(CasperService* service,
                                const std::vector<BatchQueryRequest>& batch,
                                const BatchResult& result) {
  ASSERT_EQ(result.responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const BatchQueryRequest& request = batch[i];
    const BatchQueryResponse& response = result.responses[i];
    ASSERT_EQ(response.kind, request.kind) << "slot " << i;
    switch (request.kind) {
      case QueryKind::kNearestPublic: {
        auto expected = service->QueryNearestPublic(request.uid);
        ASSERT_EQ(response.status.code(), expected.status().code());
        if (!expected.ok()) break;
        ASSERT_NE(response.nearest_public(), nullptr);
        const auto& got = *response.nearest_public();
        EXPECT_EQ(Ids(got.server_answer.candidates),
                  Ids(expected->server_answer.candidates));
        EXPECT_EQ(got.server_answer.area.a_ext, expected->server_answer.area.a_ext);
        EXPECT_EQ(got.exact.id, expected->exact.id);
        EXPECT_EQ(got.cloak.region, expected->cloak.region);
        break;
      }
      case QueryKind::kKNearestPublic: {
        auto expected = service->QueryKNearestPublic(request.uid, request.k);
        ASSERT_EQ(response.status.code(), expected.status().code());
        if (!expected.ok()) break;
        ASSERT_NE(response.k_nearest_public(), nullptr);
        const auto& got = *response.k_nearest_public();
        EXPECT_EQ(Ids(got.server_answer.candidates),
                  Ids(expected->server_answer.candidates));
        EXPECT_EQ(Ids(got.exact), Ids(expected->exact));
        break;
      }
      case QueryKind::kRangePublic: {
        auto expected = service->QueryRangePublic(request.uid, request.radius);
        ASSERT_EQ(response.status.code(), expected.status().code());
        if (!expected.ok()) break;
        ASSERT_NE(response.range_public(), nullptr);
        const auto& got = *response.range_public();
        EXPECT_EQ(Ids(got.server_answer.candidates),
                  Ids(expected->candidates));
        EXPECT_EQ(got.server_answer.search_window, expected->search_window);
        break;
      }
      case QueryKind::kNearestPrivate: {
        auto expected = service->QueryNearestPrivate(request.uid);
        ASSERT_EQ(response.status.code(), expected.status().code());
        if (!expected.ok()) break;
        ASSERT_NE(response.nearest_private(), nullptr);
        const auto& got = *response.nearest_private();
        EXPECT_EQ(Ids(got.server_answer.candidates),
                  Ids(expected->server_answer.candidates));
        EXPECT_EQ(got.best.id, expected->best.id);
        break;
      }
      default:
        break;
    }
  }
}

TEST(BatchQueryEngineTest, MixedBatchMatchesSequentialPath) {
  CasperService service = MakeService(120, 800, 1);
  ASSERT_TRUE(service.SyncPrivateData().ok());
  const double width = service.options().pyramid.space.width();
  const auto batch = MixedBatch(200, 120, width);

  for (const bool use_cache : {false, true}) {
    BatchEngineOptions options;
    options.threads = 4;
    options.use_cache = use_cache;
    BatchQueryEngine engine(&service, options);
    BatchResult result = engine.Execute(batch);
    ExpectParityWithSequential(&service, batch, result);
    EXPECT_EQ(result.summary.batch_size, batch.size());
    EXPECT_EQ(result.summary.ok_count + result.summary.error_count,
              batch.size());
  }
}

TEST(BatchQueryEngineTest, ManyThreadsStress) {
  CasperService service = MakeService(200, 1500, 2);
  ASSERT_TRUE(service.SyncPrivateData().ok());
  const double width = service.options().pyramid.space.width();
  const auto batch = MixedBatch(1000, 200, width);

  BatchEngineOptions options;
  options.threads = 8;
  options.use_cache = true;
  BatchQueryEngine engine(&service, options);

  // Several rounds through the same engine: later rounds are served
  // largely from the shared cache and must stay byte-identical.
  for (int round = 0; round < 3; ++round) {
    BatchResult result = engine.Execute(batch);
    ExpectParityWithSequential(&service, batch, result);
  }
  EXPECT_GT(engine.cache()->stats().HitRate(), 0.5);
}

TEST(BatchQueryEngineTest, ResponsesInRequestOrder) {
  CasperService service = MakeService(64, 600, 3);
  ASSERT_TRUE(service.SyncPrivateData().ok());
  // Alternate heavy (k-NN with large k) and light queries so completion
  // order differs from request order under any scheduling.
  std::vector<BatchQueryRequest> batch;
  for (size_t i = 0; i < 128; ++i) {
    const anonymizer::UserId uid = i % 64;
    if (i % 2 == 0) {
      batch.push_back(BatchQueryRequest::KNearestPublic(uid, 40));
    } else {
      batch.push_back(BatchQueryRequest::NearestPublic(uid));
    }
  }
  BatchEngineOptions options;
  options.threads = 8;
  BatchQueryEngine engine(&service, options);
  BatchResult result = engine.Execute(batch);

  ASSERT_EQ(result.responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(result.responses[i].kind, batch[i].kind) << "slot " << i;
    ASSERT_TRUE(result.responses[i].ok()) << "slot " << i;
    // The payload present must match the kind — a k-NN response in an
    // NN slot would mean slots were shuffled.
    if (batch[i].kind == QueryKind::kKNearestPublic) {
      EXPECT_NE(result.responses[i].k_nearest_public(), nullptr);
      EXPECT_EQ(result.responses[i].nearest_public(), nullptr);
      // Refined list is user-specific: verify against the sequential
      // answer for exactly this slot's uid.
      auto expected = service.QueryKNearestPublic(batch[i].uid, 40);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(Ids(result.responses[i].k_nearest_public()->exact),
                Ids(expected->exact));
    } else {
      EXPECT_NE(result.responses[i].nearest_public(), nullptr);
      EXPECT_EQ(result.responses[i].k_nearest_public(), nullptr);
      auto expected = service.QueryNearestPublic(batch[i].uid);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(result.responses[i].nearest_public()->exact.id,
                expected->exact.id);
    }
  }
}

TEST(BatchQueryEngineTest, PerSlotErrorsDoNotAbortTheBatch) {
  CasperService service = MakeService(20, 200, 4);
  ASSERT_TRUE(service.SyncPrivateData().ok());
  std::vector<BatchQueryRequest> batch;
  batch.push_back(BatchQueryRequest::NearestPublic(0));
  batch.push_back(BatchQueryRequest::NearestPublic(9999));  // Unknown uid.
  batch.push_back(BatchQueryRequest::KNearestPublic(1, 3));

  BatchQueryEngine engine(&service);
  BatchResult result = engine.Execute(batch);
  ASSERT_EQ(result.responses.size(), 3u);
  EXPECT_TRUE(result.responses[0].ok());
  EXPECT_EQ(result.responses[1].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(result.responses[2].ok());
  EXPECT_EQ(result.summary.ok_count, 2u);
  EXPECT_EQ(result.summary.error_count, 1u);
}

TEST(BatchQueryEngineTest, UnsyncedPrivateDataFailsOnlyPrivateSlots) {
  CasperService service = MakeService(30, 200, 5);  // No SyncPrivateData.
  std::vector<BatchQueryRequest> batch;
  batch.push_back(BatchQueryRequest::NearestPublic(0));
  batch.push_back(BatchQueryRequest::NearestPrivate(1));

  BatchQueryEngine engine(&service);
  BatchResult result = engine.Execute(batch);
  EXPECT_TRUE(result.responses[0].ok());
  EXPECT_EQ(result.responses[1].status.code(),
            StatusCode::kFailedPrecondition);
}

TEST(BatchQueryEngineTest, SummaryAggregatesTimings) {
  CasperService service = MakeService(50, 500, 6);
  ASSERT_TRUE(service.SyncPrivateData().ok());
  const auto batch = MixedBatch(100, 50,
                                service.options().pyramid.space.width());
  BatchEngineOptions options;
  options.threads = 2;
  BatchQueryEngine engine(&service, options);
  BatchResult result = engine.Execute(batch);

  EXPECT_GT(result.summary.wall_seconds, 0.0);
  EXPECT_GT(result.summary.queries_per_second, 0.0);
  EXPECT_GT(result.summary.totals.processor_seconds, 0.0);
  EXPECT_GT(result.summary.totals.transmission_seconds, 0.0);
  EXPECT_GE(result.summary.processor_p95_micros,
            result.summary.processor_p50_micros);
  EXPECT_GE(result.summary.processor_p99_micros,
            result.summary.processor_p95_micros);
  EXPECT_GT(result.summary.cache.hits + result.summary.cache.misses, 0u);
}

TEST(BatchQueryEngineTest, CacheInvalidationAfterTargetMutation) {
  CasperService service = MakeService(40, 300, 7);
  ASSERT_TRUE(service.SyncPrivateData().ok());
  std::vector<BatchQueryRequest> batch;
  for (anonymizer::UserId uid = 0; uid < 40; ++uid) {
    batch.push_back(BatchQueryRequest::NearestPublic(uid));
  }
  BatchQueryEngine engine(&service);
  (void)engine.Execute(batch);

  // Mutate the public targets, invalidate, and re-run: answers must
  // match the fresh sequential path, not the cached pre-mutation ones.
  service.AddPublicTarget({777777, service.options().pyramid.space.Center()});
  engine.InvalidatePublicCache();
  BatchResult result = engine.Execute(batch);
  ExpectParityWithSequential(&service, batch, result);
}

}  // namespace
}  // namespace casper::server
