#include "src/processor/private_range.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

TEST(PrivateRangeTest, InclusiveForAllUserPositions) {
  Rng rng(1);
  const Rect space(0, 0, 1, 1);
  std::vector<PublicTarget> targets;
  for (uint64_t i = 0; i < 400; ++i) {
    targets.push_back({i, rng.PointIn(space)});
  }
  PublicTargetStore store(targets);

  const Rect cloak(0.4, 0.3, 0.6, 0.5);
  const double radius = 0.15;
  auto result = PrivateRangeOverPublic(store, cloak, radius);
  ASSERT_TRUE(result.ok());
  std::vector<uint64_t> ids;
  for (const auto& t : result->candidates) ids.push_back(t.id);
  std::sort(ids.begin(), ids.end());

  for (int trial = 0; trial < 200; ++trial) {
    const Point user = rng.PointIn(cloak);
    for (const auto& t : targets) {
      if (Distance(user, t.position) <= radius) {
        EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), t.id));
      }
    }
  }
}

TEST(PrivateRangeTest, WindowIsCloakExpandedByRadius) {
  PublicTargetStore store(std::vector<PublicTarget>{{0, {0.5, 0.5}}});
  const Rect cloak(0.4, 0.4, 0.6, 0.6);
  auto result = PrivateRangeOverPublic(store, cloak, 0.1);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->search_window.min.x, 0.3, 1e-12);
  EXPECT_NEAR(result->search_window.min.y, 0.3, 1e-12);
  EXPECT_NEAR(result->search_window.max.x, 0.7, 1e-12);
  EXPECT_NEAR(result->search_window.max.y, 0.7, 1e-12);
}

TEST(PrivateRangeTest, ZeroRadiusQueriesCloakOnly) {
  PublicTargetStore store(std::vector<PublicTarget>{
      {0, {0.5, 0.5}}, {1, {0.9, 0.9}}});
  auto result = PrivateRangeOverPublic(store, Rect(0.4, 0.4, 0.6, 0.6), 0.0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 1u);
  EXPECT_EQ(result->candidates[0].id, 0u);
}

TEST(PrivateRangeTest, ErrorPaths) {
  PublicTargetStore store;
  EXPECT_EQ(PrivateRangeOverPublic(store, Rect(), 0.1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      PrivateRangeOverPublic(store, Rect(0, 0, 1, 1), -0.5).status().code(),
      StatusCode::kInvalidArgument);
  PrivateTargetStore pstore;
  EXPECT_EQ(PrivateRangeOverPrivate(pstore, Rect(), 0.1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PrivateRangeTest, OverPrivateReturnsOverlappingRegions) {
  PrivateTargetStore store(std::vector<PrivateTarget>{
      {0, Rect(0.0, 0.0, 0.25, 0.25)},
      {1, Rect(0.7, 0.7, 0.8, 0.8)},
  });
  auto result =
      PrivateRangeOverPrivate(store, Rect(0.3, 0.3, 0.4, 0.4), 0.06);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 1u);
  EXPECT_EQ(result->candidates[0].id, 0u);
}

TEST(PrivateRangeTest, RefineRangeFiltersExactCircle) {
  std::vector<PublicTarget> candidates = {
      {0, {0.5, 0.5}}, {1, {0.8, 0.5}}, {2, {0.5, 0.95}}};
  auto exact = RefineRange(candidates, {0.5, 0.5}, 0.31);
  std::vector<uint64_t> ids;
  for (const auto& t : exact) ids.push_back(t.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{0, 1}));
}

TEST(PrivateRangeTest, RefinementNeverAddsCandidates) {
  Rng rng(5);
  std::vector<PublicTarget> targets;
  for (uint64_t i = 0; i < 200; ++i) {
    targets.push_back({i, rng.PointIn(Rect(0, 0, 1, 1))});
  }
  PublicTargetStore store(targets);
  const Rect cloak(0.2, 0.2, 0.5, 0.4);
  auto result = PrivateRangeOverPublic(store, cloak, 0.2);
  ASSERT_TRUE(result.ok());
  const Point user = rng.PointIn(cloak);
  auto exact = RefineRange(result->candidates, user, 0.2);
  EXPECT_LE(exact.size(), result->candidates.size());
}

}  // namespace
}  // namespace casper::processor
